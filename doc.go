// Package tagwatch is the root of the Tagwatch reproduction: a
// rate-adaptive reading system for COTS RFID devices (Lin et al.,
// CoNEXT 2017) together with every substrate its evaluation needs — an
// EPC Gen2 air-protocol simulator, an RF phase/RSS channel model, an LLRP
// client and reader emulator speaking the binary protocol over TCP, the
// self-learning GMM motion assessment of Phase I, the set-cover bitmask
// scheduler of Phase II, a differential-hologram tracker, and a
// sorting-facility workload generator.
//
// The implementation lives under internal/; runnable entry points are
// under cmd/ and examples/. See README.md for the architecture overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every figure of the paper's evaluation.
package tagwatch
