package tagwatch_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// cost-aware greedy vs a pure-coverage greedy, the GMM stack depth, the
// start-up cost τ₀, and the Phase II dwell. Run with:
//
//	go test -bench=Ablation -benchtime=1x

import (
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/schedule"
)

// BenchmarkAblationCostAwareGreedy compares the paper's cost-aware greedy
// against a pure-coverage greedy (τ₀ = 0 prices each covered tag equally,
// so the search minimises collateral instead of rounds). The metric is the
// true execution cost of each plan under the measured model: ignoring τ₀
// fragments the schedule into many rounds and pays the start-up cost
// repeatedly.
func BenchmarkAblationCostAwareGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pop, err := epc.RandomPopulation(rng, 200, 96)
	if err != nil {
		b.Fatal(err)
	}
	targets := pop[:10]
	paperCost := aloha.PaperCostModel()

	aware, err := schedule.NewIndexTable(schedule.DefaultConfig(), pop)
	if err != nil {
		b.Fatal(err)
	}
	pureCfg := schedule.DefaultConfig()
	pureCfg.Cost = aloha.CostModel{Tau0: 0, TauBar: paperCost.TauBar}
	pure, err := schedule.NewIndexTable(pureCfg, pop)
	if err != nil {
		b.Fatal(err)
	}
	trueCost := func(p schedule.Plan) time.Duration {
		var total time.Duration
		for _, m := range p.Masks {
			total += paperCost.Cost(m.Covered)
		}
		return total
	}
	for i := 0; i < b.N; i++ {
		pa, err := aware.Select(targets)
		if err != nil {
			b.Fatal(err)
		}
		pp, err := pure.Select(targets)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(trueCost(pa).Milliseconds()), "cost-aware-ms")
		b.ReportMetric(float64(trueCost(pp).Milliseconds()), "pure-coverage-ms")
		b.ReportMetric(float64(len(pa.Masks)), "aware-masks")
		b.ReportMetric(float64(len(pp.Masks)), "pure-masks")
	}
}

// BenchmarkAblationGMMStackDepth compares K=1 (a single Gaussian, the §4.1
// strawman) with the paper's K=8 in a two-mode multipath environment. A
// single capped Gaussian is forced to stretch over both multipath modes,
// so it stops flagging them (low FPR) but also stops noticing genuine
// centimetre displacements — the mixture keeps each mode tight and stays
// sensitive.
func BenchmarkAblationGMMStackDepth(b *testing.B) {
	tag := epc.MustParse("30f4ab12cd0045e100000001")
	run := func(k int, seed int64) (sensitivity float64) {
		rng := rand.New(rand.NewSource(seed))
		det := motion.NewPhaseMoG(motion.Config{K: k})
		modes := []float64{1.0, 2.4}
		for i := 0; i < 1500; i++ {
			x := rf.WrapPhase(modes[rng.Intn(2)] + rng.NormFloat64()*0.08)
			det.Observe(tag, 0, 0, x, time.Duration(i)*time.Millisecond)
		}
		// Probe 1 cm displacements (≈0.39 rad) off each mode.
		var hits, probes int
		for i := 0; i < 200; i++ {
			base := modes[rng.Intn(2)]
			x := rf.WrapPhase(base + 0.39 + rng.NormFloat64()*0.08)
			probes++
			if det.Peek(tag, 0, 0, x) > 3 {
				hits++
			}
		}
		return float64(hits) / float64(probes)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1, int64(i)+1), "sens-1cm-K1")
		b.ReportMetric(run(8, int64(i)+1), "sens-1cm-K8")
	}
}

// ablationRig builds a 40-tag/2-mover rig with the given reader start-up
// cost and measures the movers' Phase II IRR gain over reading-all.
func ablationGain(b *testing.B, tau0 time.Duration, dwell time.Duration, seed int64) float64 {
	b.Helper()
	build := func() (*core.SimDevice, []epc.EPC, []epc.EPC) {
		rng := rand.New(rand.NewSource(seed))
		scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
		scn.AddAntenna(rf.Pt(0, 0, 2))
		codes, err := epc.RandomPopulation(rng, 40, 96)
		if err != nil {
			b.Fatal(err)
		}
		for i, c := range codes[:2] {
			scn.AddTag(c, scene.Circle{Center: rf.Pt(1.5, 1.5, 0), Radius: 0.2, Speed: 0.7, StartAngle: float64(i)})
		}
		for i, c := range codes[2:] {
			scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.3, 0.4+float64(i/8)*0.3, 0)})
		}
		rcfg := reader.DefaultConfig()
		rcfg.StartupCost = tau0
		return core.NewSimDevice(reader.New(rcfg, scn)), codes[:2], codes
	}
	// Baseline.
	devB, moversB, _ := build()
	span := 6 * dwell
	start := devB.Now()
	var base int
	for _, r := range devB.ReadAllFor(span) {
		if r.EPC == moversB[0] || r.EPC == moversB[1] {
			base++
		}
	}
	baseIRR := float64(base) / (devB.Now() - start).Seconds()

	// Tagwatch.
	dev, movers, _ := build()
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = dwell
	cfg.StickyFor = 5 * dwell / 2
	tw := core.New(cfg, dev)
	for i := 0; i < 8; i++ {
		tw.RunCycle()
	}
	start = dev.Now()
	var got int
	for dev.Now()-start < span {
		rep := tw.RunCycle()
		for _, r := range append(rep.PhaseIReads, rep.PhaseIIReads...) {
			if r.EPC == movers[0] || r.EPC == movers[1] {
				got++
			}
		}
	}
	irr := float64(got) / (dev.Now() - start).Seconds()
	if baseIRR == 0 {
		return 0
	}
	return irr / baseIRR
}

// BenchmarkAblationStartupCost sweeps τ₀: every selective round pays the
// start-up cost for a handful of target tags, so a heavier τ₀ erodes the
// rate-adaptive gain — the effect behind the paper's warning that
// scheduling cost can counteract its benefit.
func BenchmarkAblationStartupCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationGain(b, 5*time.Millisecond, 2*time.Second, int64(i)+1), "gain-tau0-5ms")
		b.ReportMetric(ablationGain(b, 19*time.Millisecond, 2*time.Second, int64(i)+1), "gain-tau0-19ms")
		b.ReportMetric(ablationGain(b, 50*time.Millisecond, 2*time.Second, int64(i)+1), "gain-tau0-50ms")
	}
}

// BenchmarkAblationDwell sweeps the Phase II dwell: longer dwells amortise
// Phase I better (higher gain) at the price of slower reaction to state
// transitions.
func BenchmarkAblationDwell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(ablationGain(b, 19*time.Millisecond, 1*time.Second, int64(i)+1), "gain-dwell-1s")
		b.ReportMetric(ablationGain(b, 19*time.Millisecond, 5*time.Second, int64(i)+1), "gain-dwell-5s")
		b.ReportMetric(ablationGain(b, 19*time.Millisecond, 10*time.Second, int64(i)+1), "gain-dwell-10s")
	}
}

// BenchmarkAblationPerLinkStacks compares per-(antenna,channel) immobility
// stacks against a single shared stack per tag. With frequency hopping,
// the shared stack mixes phases whose per-channel offsets differ, so a
// parked tag's readings land in ever-different modes and masquerade as
// motion — the false-positive rate explodes.
func BenchmarkAblationPerLinkStacks(b *testing.B) {
	run := func(ignoreChannel bool, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
		scn.AddAntenna(rf.Pt(0, 0, 2))
		codes, err := epc.RandomPopulation(rng, 20, 96)
		if err != nil {
			b.Fatal(err)
		}
		for i, c := range codes {
			scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%5)*0.3, 0.4+float64(i/5)*0.3, 0)})
		}
		rcfg := reader.DefaultConfig() // hops every 2 s
		r := reader.New(rcfg, scn)
		det := motion.NewPhaseMoG(motion.Config{IgnoreChannel: ignoreChannel})
		var fp, n int
		for r.Now() < 900*time.Second {
			reads, _ := r.RunRound(reader.RoundOpts{Antenna: 1})
			r.Advance(time.Second)
			for _, rd := range reads {
				res := det.Observe(rd.EPC, rd.Antenna, rd.Channel, rd.PhaseRad, rd.Time)
				if rd.Time > 600*time.Second { // after warm-up
					n++
					if res.Restless() {
						fp++
					}
				}
			}
		}
		return float64(fp) / float64(n)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false, int64(i)+1), "fpr-per-link")
		b.ReportMetric(run(true, int64(i)+1), "fpr-shared")
	}
}
