module tagwatch

go 1.22
