// Command tagwatchvet is the repo's invariant checker: a multichecker
// over the custom analyzers in internal/analysis that encode what the
// compiler cannot see — seed-replayability of the simulators, shutdown
// paths for every background goroutine, a leak-free timer discipline,
// an unbroken error pipeline, no blocking work under a mutex, capped
// wire-length allocations, fsync-ordered rename commits, and
// deadline-armed socket I/O.
//
// Run it standalone:
//
//	go run ./cmd/tagwatchvet ./...
//
// or as a vet tool, which integrates with go vet's package driver and
// build cache:
//
//	go build -o /tmp/tagwatchvet ./cmd/tagwatchvet
//	go vet -vettool=/tmp/tagwatchvet ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
// Individual analyzers can be disabled with -simclock=false etc.; a
// single finding is suppressed in source with the analyzer's
// //tagwatch:allow-* directive plus a justification.
package main

import (
	"os"

	"tagwatch/internal/analysis"
	"tagwatch/internal/analysis/conndeadline"
	"tagwatch/internal/analysis/deverr"
	"tagwatch/internal/analysis/fsyncorder"
	"tagwatch/internal/analysis/goleaklite"
	"tagwatch/internal/analysis/locksend"
	"tagwatch/internal/analysis/simclock"
	"tagwatch/internal/analysis/wirebound"
)

func main() {
	os.Exit(analysis.Main(os.Stdout, os.Stderr, os.Args[1:], []*analysis.Analyzer{
		simclock.Analyzer,
		goleaklite.Analyzer,
		deverr.Analyzer,
		locksend.Analyzer,
		wirebound.Analyzer,
		fsyncorder.Analyzer,
		conndeadline.Analyzer,
	}))
}
