// Command gauntlet runs a declarative fault campaign against the full
// stack: each case replays one scenario workload through real fleet
// machinery while one fault script runs — chaos-degraded or partitioned
// replication links, flap storms, a disk that fills or starts failing
// mid-run, skewed reader clocks, stalled event-stream consumers — and a
// set of invariant oracles judges the outcome against a no-fault
// control run. The verdict is a JSON report whose deterministic portion
// hashes to a stable fingerprint: two runs of the same campaign and
// seed must agree on it.
//
// Usage:
//
//	gauntlet -campaign smoke
//	gauntlet -campaign smoke -seed 7 -report verdict.json
//	gauntlet -list
//
// Exit codes:
//
//	0  campaign ran and every oracle passed
//	1  campaign could not run to a verdict (setup failure, cancelled)
//	2  usage error (unknown flag or campaign, bad seed)
//	3  campaign ran but the report could not be written
//	4  campaign ran and at least one oracle failed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tagwatch/internal/gauntlet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		campaign = flag.String("campaign", "", "built-in campaign to run (required; see -list)")
		list     = flag.Bool("list", false, "list built-in campaigns and exit")
		seed     = flag.Int64("seed", 1, "campaign seed; offsets every case seed")
		out      = flag.String("report", "", "write the JSON verdict report to this file (default stdout)")
		dir      = flag.String("dir", "", "scratch root for case state directories (default a temp dir, removed on exit)")
		quiet    = flag.Bool("quiet", false, "suppress per-case progress lines")
	)
	flag.Parse()

	if *list {
		for _, name := range gauntlet.Names() {
			c, err := gauntlet.Lookup(name)
			if err != nil {
				log.Printf("gauntlet: %v", err)
				return 1
			}
			fmt.Printf("%-12s %2d cases  %s\n", c.Name, len(c.Cases), c.Description)
		}
		return 0
	}
	if *campaign == "" {
		fmt.Fprintln(os.Stderr, "gauntlet: -campaign is required (try -list)")
		return 2
	}
	c, err := gauntlet.Lookup(*campaign)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gauntlet:", err)
		return 2
	}

	scratch := *dir
	if scratch == "" {
		tmp, err := os.MkdirTemp("", "gauntlet-*")
		if err != nil {
			log.Printf("gauntlet: scratch dir: %v", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		scratch = tmp
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	logf("gauntlet: campaign %q, %d cases, seed %d", c.Name, len(c.Cases), *seed)
	rep, err := gauntlet.NewRunner(c, scratch, *seed, logf).Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gauntlet:", err)
		return 1
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gauntlet:", err)
		return 1
	}
	b = append(b, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			fmt.Fprintln(os.Stderr, "gauntlet:", err)
			return 3
		}
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gauntlet:", err)
		return 3
	}

	verdict := "PASS"
	if !rep.AllPassed {
		verdict = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "gauntlet: %s — %d/%d cases passed in %dms, fingerprint %.12s…\n",
		verdict, rep.Passed, len(rep.Cases), rep.Wall.ElapsedMS, rep.Fingerprint)
	if !rep.AllPassed {
		return 4
	}
	return 0
}
