// Command edged runs the read-optimized fan-out tier: it follows one
// fleetd primary over a resumable SSE subscription, mirrors the merged
// tag registry locally, and re-serves /api/tags + /api/events (with the
// same cursor/gap/reset semantics) to downstream clients — so read load
// scales on edges instead of on the node that talks to the readers.
//
// Usage:
//
//	edged -upstream primary:8080 -http :8081
//
// Then:
//
//	curl localhost:8081/api/tags          # mirror + X-Tagwatch-Staleness-Ms
//	curl -N localhost:8081/api/events     # resumable downstream stream
//	curl localhost:8081/api/status        # link cursor + loss accounting
//	curl localhost:8081/healthz           # 200 "ok" or "degraded", never dead
//
// When the upstream dies, edged keeps serving the mirror and reports
// itself degraded; when the upstream comes back — same process or a
// promoted standby with a new identity — the client re-anchors
// (replaying the missed window when possible, taking an explicit reset
// otherwise) and the mirror re-converges.
//
// Exit codes — aligned with fleetd/replayd/gauntlet so init systems and
// drills can branch:
//
//	0  clean shutdown
//	1  runtime failure (could not listen or serve)
//	2  usage or configuration error (bad flags)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tagwatch/internal/edge"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		upstream    = flag.String("upstream", "", "fleetd primary HTTP address (host:port), required")
		httpAddr    = flag.String("http", ":8081", "downstream HTTP listen address")
		readTimeout = flag.Duration("read-timeout", 45*time.Second, "per-frame upstream read deadline; must exceed the upstream SSE heartbeat")
		backoffBase = flag.Duration("backoff-base", 100*time.Millisecond, "initial upstream reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 5*time.Second, "upstream reconnect backoff ceiling")
		staleAfter  = flag.Duration("stale-after", 30*time.Second, "mirror age past which /healthz reports degraded")
		maxSSE      = flag.Int("max-sse", 1024, "concurrent downstream /api/events subscribers before new streams get 503")
		ringCap     = flag.Int("ring", 4096, "downstream replay ring depth (events recoverable via Last-Event-ID)")
		quiet       = flag.Bool("quiet", false, "suppress link lifecycle logging")
	)
	flag.Parse()

	if *upstream == "" {
		log.Print("edged: -upstream is required (e.g. -upstream primary:8080)")
		return 2
	}
	if *readTimeout <= 0 || *backoffBase <= 0 || *ringCap <= 0 {
		log.Print("edged: -read-timeout, -backoff-base, and -ring must be positive")
		return 2
	}

	cfg := edge.Config{
		Upstream:      *upstream,
		ReadTimeout:   *readTimeout,
		BackoffBase:   *backoffBase,
		BackoffMax:    *backoffMax,
		StaleAfter:    *staleAfter,
		MaxSSEClients: *maxSSE,
		EventRingCap:  *ringCap,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := edge.NewClient(cfg)
	go func() {
		// Run only returns at ctx cancellation; a dead upstream is a
		// degraded condition the edge outlives, not an exit.
		_ = client.Run(ctx)
	}()

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Printf("listen %s: %v", *httpAddr, err)
		return 1
	}
	fmt.Printf("edged: following %s, HTTP on %s\n", *upstream, lis.Addr())

	srv := edge.NewServer(client)
	if err := srv.Serve(ctx, lis); err != nil && err != http.ErrServerClosed {
		log.Printf("http: %v", err)
		return 1
	}

	st := client.Status()
	fmt.Printf("edged: %d tags mirrored, %d sessions, %d resets, %d gaps (%d healed, %d reset)\n",
		st.Tags, st.Sessions, st.Resets, st.Gaps, st.GapsHealed, st.GapsReset)
	return 0
}
