// Command tagwatchd runs the Tagwatch middleware against an LLRP reader
// (real or emulated) and prints per-cycle summaries: who is present, who
// is moving, which bitmasks Phase II scheduled, and the resulting per-tag
// reading rates.
//
// Usage:
//
//	tagwatchd -reader 127.0.0.1:5084 -cycles 10 -dwell 5s
//	tagwatchd -reader 127.0.0.1:5084 -pin 30f4ab12cd0045e100000001
//
// SIGINT/SIGTERM stop the cycle loop cleanly: durable state (-state-dir)
// gets its final snapshot, the legacy -state file is still saved, and
// the lifetime metrics still print. With -state-dir every cycle's
// changes are journaled to stable storage before the next cycle starts,
// so even a SIGKILL loses at most the in-flight cycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/statestore"
)

func main() {
	var (
		readerAddr  = flag.String("reader", "127.0.0.1:5084", "LLRP reader address")
		cycles      = flag.Int("cycles", 10, "reading cycles to run (0 = forever)")
		dwell       = flag.Duration("dwell", 5*time.Second, "Phase II dwell")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second, "LLRP connect timeout")
		keepalive   = flag.Duration("keepalive", 5*time.Second, "reader keepalive period; a session silent for 3 periods dies with a watchdog error (0 = no watchdog)")
		opTimeout   = flag.Duration("op-timeout", 10*time.Second, "per-operation LLRP request/response deadline")
		pins        = flag.String("pin", "", "comma-separated EPCs to always schedule")
		config      = flag.String("config", "", "JSON configuration file (see core.FileConfig)")
		state       = flag.String("state", "", "legacy state file: learned immobility models are loaded at start and saved at exit (no crash safety; prefer -state-dir)")
		stateDir    = flag.String("state-dir", "", "durable state directory: crash-safe snapshots + per-cycle journal; supersedes -state")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "with -state-dir, time between full snapshots (journal appends cover every cycle in between)")
		maxTags     = flag.Int("max-tags", 0, "motion-model capacity bound; first contact past the cap evicts the stalest tracked tag (0 = unbounded)")
	)
	flag.Parse()

	// The signal-aware context makes interruption graceful: the cycle loop
	// stops at the next cycle boundary and every deferred save still runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dctx, cancel := context.WithTimeout(ctx, *dialTimeout)
	conn, err := llrp.Dial(dctx, *readerAddr)
	cancel()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	fmt.Printf("tagwatchd: connected to %s\n", *readerAddr)
	conn.SetOpTimeout(*opTimeout)
	if *keepalive > 0 {
		kctx, kcancel := context.WithTimeout(ctx, *dialTimeout)
		err := conn.StartKeepalive(kctx, *keepalive, 3)
		kcancel()
		if err != nil {
			log.Fatalf("keepalive setup: %v", err)
		}
	}

	// A signal mid-cycle closes the connection, which aborts the in-flight
	// ROSpec wait instead of riding out the dwell.
	unblock := context.AfterFunc(ctx, func() { conn.Close() })
	defer unblock()

	cfg := core.DefaultConfig()
	if *config != "" {
		loaded, err := core.LoadConfigFile(*config)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		cfg = loaded
	}
	cfg.PhaseIIDwell = *dwell
	cfg.Motion.MaxTags = *maxTags
	if *pins != "" {
		for _, s := range strings.Split(*pins, ",") {
			code, err := epc.Parse(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad -pin EPC %q: %v", s, err)
			}
			cfg.Pinned = append(cfg.Pinned, code)
		}
	}
	dev := core.NewLLRPDevice(conn)
	tw := core.New(cfg, dev)
	var ckpt *core.Checkpointer
	if *stateDir != "" {
		if *state != "" {
			log.Printf("-state ignored: -state-dir %s supersedes it", *stateDir)
		}
		st, err := statestore.Open(*stateDir, statestore.Options{})
		if err != nil {
			log.Fatalf("state dir: %v", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("state close: %v", err)
			}
		}()
		ckpt = core.NewCheckpointer(tw, st)
		if err := ckpt.Restore(); err != nil {
			log.Fatalf("state restore: %v", err)
		}
		if rec := st.Recovery(); rec.HasSnapshot || len(rec.Records) > 0 {
			fmt.Printf("tagwatchd: resumed durable state from %s (snapshot gen %d + %d journal records)\n",
				*stateDir, rec.SnapshotGen, len(rec.Records))
		}
		// Runs before the store Close above (LIFO): the save-on-SIGTERM
		// path — the signal context ends the loop, this writes the final
		// snapshot generation.
		defer func() {
			if err := ckpt.Snapshot(); err != nil {
				log.Printf("final snapshot: %v", err)
			}
		}()
	} else if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := tw.LoadState(f); err != nil {
				log.Printf("state load: %v (starting cold)", err)
			} else {
				fmt.Println("tagwatchd: resumed learned models from", *state)
			}
			f.Close()
		}
		defer func() {
			f, err := os.Create(*state)
			if err != nil {
				log.Printf("state save: %v", err)
				return
			}
			defer f.Close()
			if err := tw.SaveState(f); err != nil {
				log.Printf("state save: %v", err)
			}
		}()
	}

	defer func() {
		m := tw.Metrics()
		if m.Cycles == 0 {
			return
		}
		fmt.Printf("tagwatchd: %d cycles (%d fallbacks), %d+%d readings, %d targets scheduled, mean schedule cost %v\n",
			m.Cycles, m.Fallbacks, m.PhaseIReadings, m.PhaseIIReadings,
			m.TargetsScheduled, (m.ScheduleCostTotal / time.Duration(m.Cycles)).Round(time.Microsecond))
	}()

	lastSnap := time.Now()
	for i := 0; *cycles == 0 || i < *cycles; i++ {
		if ctx.Err() != nil {
			fmt.Println("tagwatchd: interrupted, saving state")
			return
		}
		rep := tw.RunCycle()
		if ckpt != nil {
			var perr error
			if *snapEvery > 0 && time.Since(lastSnap) >= *snapEvery {
				perr = ckpt.Snapshot()
				lastSnap = time.Now()
			} else {
				perr = ckpt.AfterCycle()
			}
			if perr != nil {
				log.Printf("cycle %d state persist: %v", i, perr)
			}
		}
		mode := "selective"
		if rep.FellBack {
			mode = "read-all (fallback)"
		}
		fmt.Printf("cycle %d: %d present, %d mobile, %d targets → %s, %d masks, %d+%d readings (schedule cost %v)\n",
			i, len(rep.Present), len(rep.Mobile), len(rep.Targets), mode,
			len(rep.Plan.Masks), len(rep.PhaseIReads), len(rep.PhaseIIReads),
			rep.ScheduleCost.Round(time.Microsecond))
		if rep.Err != nil {
			log.Printf("cycle %d DEGRADED: %v", i, rep.Err)
			if conn.Err() != nil && ctx.Err() == nil {
				log.Fatalf("connection lost: %v", conn.Err())
			}
		}
		for _, m := range rep.Plan.Masks {
			fmt.Printf("    mask %s covering %d tag(s)\n", m.Bitmask, m.Covered)
		}
		for _, code := range rep.Targets {
			fmt.Printf("    target %s IRR≈%.1f Hz (lifetime reads %d)\n",
				code, tw.History().IRR(code), tw.History().Total(code))
		}
	}
}
