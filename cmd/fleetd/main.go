// Command fleetd supervises a fleet of LLRP readers and serves the merged
// result over HTTP: per-reader Tagwatch cycles with automatic reconnects,
// one registry keyed by EPC, an SSE event stream, health, and Prometheus
// metrics.
//
// Usage:
//
//	fleetd -readers 10.0.0.11:5084,10.0.0.12:5084 -http :8080
//	fleetd -readers aisle1=10.0.0.11:5084,aisle2=10.0.0.12:5084 -dwell 2s
//
// Then:
//
//	curl localhost:8080/api/readers
//	curl localhost:8080/api/tags?mobile=1
//	curl -N localhost:8080/api/events
//	curl localhost:8080/metrics
//
// A durable node (-state-dir) can stream its registry to hot standbys,
// and a standby can take over when the primary host dies:
//
//	fleetd -readers ... -state-dir /var/lib/tagwatch -replicate-to standby:5091
//	fleetd -standby -state-dir /var/lib/tagwatch-standby -listen-replication :5091 \
//	       -readers ... -promote-on-signal     # SIGUSR1 promotes to a live fleet
//
// Exit codes — init systems and drills branch on these, so every
// distinct failure class gets its own:
//
//	0  clean shutdown, final registry state saved
//	1  runtime failure (could not start, listen, or serve)
//	2  usage or configuration error (bad flags, unreadable -config)
//	3  served fine but the final save failed: the durable directory is
//	   behind the live state this node answered with (exited unclean)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		readers     = flag.String("readers", "", "comma-separated LLRP readers, each ADDR or NAME=ADDR")
		httpAddr    = flag.String("http", ":8080", "HTTP listen address")
		dwell       = flag.Duration("dwell", 5*time.Second, "Phase II dwell per cycle")
		cyclePause  = flag.Duration("cycle-pause", 0, "idle time between cycles on each reader")
		dialTimeout = flag.Duration("dial-timeout", 5*time.Second, "per-attempt LLRP connect timeout")
		backoffBase = flag.Duration("backoff-base", 500*time.Millisecond, "initial reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 30*time.Second, "reconnect backoff ceiling")
		maxFailures = flag.Int("max-failures", 0, "consecutive failures before a reader goes down for good (0 = retry forever)")
		keepalive   = flag.Duration("keepalive", 5*time.Second, "reader keepalive period; the watchdog kills a session silent for keepalive-misses periods (0 = no watchdog)")
		kaMisses    = flag.Int("keepalive-misses", 3, "missed keepalive periods before a session is declared dead")
		opTimeout   = flag.Duration("op-timeout", 10*time.Second, "per-operation LLRP request/response deadline")
		cycleErrs   = flag.Int("cycle-error-limit", 3, "consecutive failing cycles before forcing a reconnect")
		config      = flag.String("config", "", "JSON Tagwatch configuration file (see core.FileConfig)")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")
		stateDir    = flag.String("state-dir", "", "durable registry directory: crash-safe snapshots + journal, restored on start, saved on shutdown")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "with -state-dir, time between full registry snapshots")
		flushEvery  = flag.Duration("journal-flush", 2*time.Second, "with -state-dir, time between incremental journal flushes (the durability lag a crash can lose)")

		replicateTo = flag.String("replicate-to", "", "comma-separated standby addresses to stream the durable registry to (requires -state-dir)")
		standby     = flag.Bool("standby", false, "run as a hot standby: apply a primary's replication stream into -state-dir; serves status only until promoted")
		listenRepl  = flag.String("listen-replication", ":5091", "with -standby, address to accept the primary's replication stream on")
		promoteSig  = flag.Bool("promote-on-signal", false, "with -standby, promote to a live fleet (using -readers and the rest of the flags) on SIGUSR1")

		maxTags       = flag.Int("max-tags", 0, "registry capacity bound; at the cap the stalest tag is evicted for each new arrival (0 = unbounded)")
		quarK         = flag.Int("quarantine-k", 0, "sightings within the quarantine window before a new EPC is believed; filters one-off ghost decodes (0/1 = off)")
		quarWindow    = flag.Duration("quarantine-window", 10*time.Second, "how long quarantine remembers a probationary EPC between sightings")
		quarCap       = flag.Int("quarantine-cap", 65536, "fixed size of the probationary ring; overflow displaces the oldest suspect")
		apiRate       = flag.Float64("api-rate", 0, "API requests/second allowed per client IP (0 = no rate limit)")
		apiBurst      = flag.Float64("api-burst", 0, "token-bucket burst per client IP (0 = 2x rate)")
		apiMaxConc    = flag.Int("api-max-concurrent", 0, "ceiling for the adaptive API concurrency limit (0 = no concurrency limit)")
		maxSSE        = flag.Int("max-sse", 64, "concurrent /api/events subscribers before new streams get 503")
		restartBudget = flag.Int("restart-budget", 5, "contained panics per window before a supervisor is tripped for good")
		restartWindow = flag.Duration("restart-window", time.Minute, "sliding window for the panic-restart budget")
	)
	flag.Parse()

	if *standby {
		if *stateDir == "" {
			log.Print("fleetd: -standby requires -state-dir (the replicated store is what gets promoted)")
			return 2
		}
	} else if *readers == "" {
		log.Print("fleetd: -readers is required (e.g. -readers 10.0.0.11:5084,10.0.0.12:5084)")
		return 2
	}
	if *replicateTo != "" && *stateDir == "" {
		log.Print("fleetd: -replicate-to requires -state-dir (replication ships the durable journal)")
		return 2
	}

	cfg := fleet.DefaultConfig()
	if *config != "" {
		loaded, err := core.LoadConfigFile(*config)
		if err != nil {
			log.Printf("config: %v", err)
			return 2
		}
		cfg.Tagwatch = loaded
	}
	cfg.Tagwatch.PhaseIIDwell = *dwell
	cfg.DialTimeout = *dialTimeout
	cfg.BackoffBase = *backoffBase
	cfg.BackoffMax = *backoffMax
	cfg.MaxFailures = *maxFailures
	cfg.CyclePause = *cyclePause
	cfg.KeepalivePeriod = *keepalive
	cfg.KeepaliveMisses = *kaMisses
	cfg.OpTimeout = *opTimeout
	cfg.CycleErrorLimit = *cycleErrs
	cfg.StateDir = *stateDir
	cfg.SnapshotInterval = *snapEvery
	cfg.JournalFlush = *flushEvery
	cfg.MaxTags = *maxTags
	cfg.Tagwatch.Motion.MaxTags = *maxTags // bound the per-reader motion models too
	cfg.QuarantineK = *quarK
	cfg.QuarantineWindow = *quarWindow
	cfg.QuarantineCap = *quarCap
	cfg.APIRate = *apiRate
	cfg.APIBurst = *apiBurst
	cfg.APIMaxConcurrent = *apiMaxConc
	cfg.MaxSSEClients = *maxSSE
	cfg.RestartBudget = *restartBudget
	cfg.RestartWindow = *restartWindow
	if *replicateTo != "" {
		for _, addr := range strings.Split(*replicateTo, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				cfg.ReplicateTo = append(cfg.ReplicateTo, addr)
			}
		}
	}
	for _, part := range strings.Split(*readers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rc := fleet.ReaderConfig{Addr: part}
		if name, addr, ok := strings.Cut(part, "="); ok {
			rc = fleet.ReaderConfig{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)}
		}
		cfg.Readers = append(cfg.Readers, rc)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *standby {
		return runStandby(ctx, cfg, *listenRepl, *httpAddr, *promoteSig, *quiet)
	}

	m := fleet.New(cfg)
	if !*quiet {
		logFleetEvents(m)
	}

	if err := m.Start(ctx); err != nil {
		log.Printf("start fleet: %v", err)
		return 1
	}

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Printf("listen %s: %v", *httpAddr, err)
		if serr := m.Stop(); serr != nil {
			log.Printf("fleetd: final save failed: %v", serr)
		}
		return 1
	}
	fmt.Printf("fleetd: %d readers supervised, HTTP on %s\n", len(cfg.Readers), lis.Addr())

	if err := m.Serve(ctx, lis); err != nil && err != http.ErrServerClosed {
		log.Printf("http: %v", err)
	}

	return finishFleet(m)
}

// finishFleet stops a live Manager and turns a failed final save into
// exit code 3 — distinct from runtime failures (1) so operators (and
// init systems, and the gauntlet) can tell "never served" apart from
// "served fine but the durable directory is now behind the live state".
func finishFleet(m *fleet.Manager) int {
	exit := 0
	if err := m.Stop(); err != nil {
		log.Printf("fleetd: final save failed: %v (exiting unclean)", err)
		exit = 3
	}
	obs, handoffs := m.Registry().Stats()
	fmt.Printf("fleetd: %d tags, %d observations, %d handoffs\n", m.Registry().Len(), obs, handoffs)
	return exit
}

// logFleetEvents logs fleet events (state changes and handoffs; cycles
// are too chatty).
func logFleetEvents(m *fleet.Manager) {
	sub := m.Bus().Subscribe(256)
	go func() {
		for ev := range sub.C() {
			switch ev.Type {
			case fleet.EventReaderState:
				if ev.Error != "" {
					log.Printf("reader %s: %s (attempt %d): %s", ev.Reader, ev.State, ev.Attempt, ev.Error)
				} else {
					log.Printf("reader %s: %s (attempt %d)", ev.Reader, ev.State, ev.Attempt)
				}
			case fleet.EventHandoff:
				log.Printf("handoff %s: %s -> %s", ev.EPC, ev.From, ev.To)
			case fleet.EventStateStore:
				log.Printf("statestore %s failed: %s (registry now non-durable)", ev.State, ev.Error)
			case fleet.EventPanic:
				log.Printf("panic in %s: %s %s", ev.Reader, ev.State, ev.Error)
			}
		}
	}()
}

// runStandby runs the hot-standby role: accept the primary's replication
// stream into -state-dir and serve a minimal status surface. With
// promote enabled, SIGUSR1 turns the node into a live fleet over the
// replicated state — the HTTP address stays the same; the handler is
// swapped in place so watchers never have to re-resolve the node.
func runStandby(ctx context.Context, cfg fleet.Config, listenRepl, httpAddr string, promote, quiet bool) int {
	lisRepl, err := net.Listen("tcp", listenRepl)
	if err != nil {
		log.Printf("listen replication %s: %v", listenRepl, err)
		return 1
	}
	sb, err := fleet.NewStandby(cfg, lisRepl)
	if err != nil {
		lisRepl.Close()
		log.Printf("standby: %v", err)
		return 1
	}
	if err := sb.Start(ctx); err != nil {
		lisRepl.Close()
		log.Printf("standby: %v", err)
		return 1
	}

	lis, err := net.Listen("tcp", httpAddr)
	if err != nil {
		sb.Stop()
		log.Printf("listen %s: %v", httpAddr, err)
		return 1
	}

	// The served handler is swappable: standby status surface now, the
	// full fleet API after promotion, on the same listener. The box keeps
	// the stored concrete type constant — atomic.Value panics if the
	// standby and fleet handlers land as their own distinct types.
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(handlerBox{sb.Handler()})
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	defer srv.Close()
	fmt.Printf("fleetd: standby, replication on %s, HTTP on %s\n", lisRepl.Addr(), lis.Addr())

	var promoteCh chan os.Signal
	if promote {
		promoteCh = make(chan os.Signal, 1)
		signal.Notify(promoteCh, syscall.SIGUSR1)
		defer signal.Stop(promoteCh)
	}

	select {
	case <-ctx.Done():
		sb.Stop()
		return 0
	case err := <-errc:
		log.Printf("http: %v", err)
		sb.Stop()
		return 1
	case <-promoteCh:
	}

	log.Print("fleetd: SIGUSR1 received, promoting standby to a live fleet")
	m, err := sb.Promote(ctx)
	if err != nil {
		log.Printf("promote: %v", err)
		return 1
	}
	if !quiet {
		logFleetEvents(m)
	}
	handler.Store(handlerBox{m.Handler()})
	fmt.Printf("fleetd: promoted, %d readers supervised, HTTP on %s\n", len(cfg.Readers), lis.Addr())

	select {
	case <-ctx.Done():
	case err := <-errc:
		log.Printf("http: %v", err)
	}
	return finishFleet(m)
}
