// Command fleetd supervises a fleet of LLRP readers and serves the merged
// result over HTTP: per-reader Tagwatch cycles with automatic reconnects,
// one registry keyed by EPC, an SSE event stream, health, and Prometheus
// metrics.
//
// Usage:
//
//	fleetd -readers 10.0.0.11:5084,10.0.0.12:5084 -http :8080
//	fleetd -readers aisle1=10.0.0.11:5084,aisle2=10.0.0.12:5084 -dwell 2s
//
// Then:
//
//	curl localhost:8080/api/readers
//	curl localhost:8080/api/tags?mobile=1
//	curl -N localhost:8080/api/events
//	curl localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/fleet"
)

func main() {
	var (
		readers     = flag.String("readers", "", "comma-separated LLRP readers, each ADDR or NAME=ADDR")
		httpAddr    = flag.String("http", ":8080", "HTTP listen address")
		dwell       = flag.Duration("dwell", 5*time.Second, "Phase II dwell per cycle")
		cyclePause  = flag.Duration("cycle-pause", 0, "idle time between cycles on each reader")
		dialTimeout = flag.Duration("dial-timeout", 5*time.Second, "per-attempt LLRP connect timeout")
		backoffBase = flag.Duration("backoff-base", 500*time.Millisecond, "initial reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 30*time.Second, "reconnect backoff ceiling")
		maxFailures = flag.Int("max-failures", 0, "consecutive failures before a reader goes down for good (0 = retry forever)")
		keepalive   = flag.Duration("keepalive", 5*time.Second, "reader keepalive period; the watchdog kills a session silent for keepalive-misses periods (0 = no watchdog)")
		kaMisses    = flag.Int("keepalive-misses", 3, "missed keepalive periods before a session is declared dead")
		opTimeout   = flag.Duration("op-timeout", 10*time.Second, "per-operation LLRP request/response deadline")
		cycleErrs   = flag.Int("cycle-error-limit", 3, "consecutive failing cycles before forcing a reconnect")
		config      = flag.String("config", "", "JSON Tagwatch configuration file (see core.FileConfig)")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")
		stateDir    = flag.String("state-dir", "", "durable registry directory: crash-safe snapshots + journal, restored on start, saved on shutdown")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "with -state-dir, time between full registry snapshots")
		flushEvery  = flag.Duration("journal-flush", 2*time.Second, "with -state-dir, time between incremental journal flushes (the durability lag a crash can lose)")

		maxTags       = flag.Int("max-tags", 0, "registry capacity bound; at the cap the stalest tag is evicted for each new arrival (0 = unbounded)")
		quarK         = flag.Int("quarantine-k", 0, "sightings within the quarantine window before a new EPC is believed; filters one-off ghost decodes (0/1 = off)")
		quarWindow    = flag.Duration("quarantine-window", 10*time.Second, "how long quarantine remembers a probationary EPC between sightings")
		quarCap       = flag.Int("quarantine-cap", 65536, "fixed size of the probationary ring; overflow displaces the oldest suspect")
		apiRate       = flag.Float64("api-rate", 0, "API requests/second allowed per client IP (0 = no rate limit)")
		apiBurst      = flag.Float64("api-burst", 0, "token-bucket burst per client IP (0 = 2x rate)")
		apiMaxConc    = flag.Int("api-max-concurrent", 0, "ceiling for the adaptive API concurrency limit (0 = no concurrency limit)")
		maxSSE        = flag.Int("max-sse", 64, "concurrent /api/events subscribers before new streams get 503")
		restartBudget = flag.Int("restart-budget", 5, "contained panics per window before a supervisor is tripped for good")
		restartWindow = flag.Duration("restart-window", time.Minute, "sliding window for the panic-restart budget")
	)
	flag.Parse()

	if *readers == "" {
		log.Fatal("fleetd: -readers is required (e.g. -readers 10.0.0.11:5084,10.0.0.12:5084)")
	}

	cfg := fleet.DefaultConfig()
	if *config != "" {
		loaded, err := core.LoadConfigFile(*config)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		cfg.Tagwatch = loaded
	}
	cfg.Tagwatch.PhaseIIDwell = *dwell
	cfg.DialTimeout = *dialTimeout
	cfg.BackoffBase = *backoffBase
	cfg.BackoffMax = *backoffMax
	cfg.MaxFailures = *maxFailures
	cfg.CyclePause = *cyclePause
	cfg.KeepalivePeriod = *keepalive
	cfg.KeepaliveMisses = *kaMisses
	cfg.OpTimeout = *opTimeout
	cfg.CycleErrorLimit = *cycleErrs
	cfg.StateDir = *stateDir
	cfg.SnapshotInterval = *snapEvery
	cfg.JournalFlush = *flushEvery
	cfg.MaxTags = *maxTags
	cfg.Tagwatch.Motion.MaxTags = *maxTags // bound the per-reader motion models too
	cfg.QuarantineK = *quarK
	cfg.QuarantineWindow = *quarWindow
	cfg.QuarantineCap = *quarCap
	cfg.APIRate = *apiRate
	cfg.APIBurst = *apiBurst
	cfg.APIMaxConcurrent = *apiMaxConc
	cfg.MaxSSEClients = *maxSSE
	cfg.RestartBudget = *restartBudget
	cfg.RestartWindow = *restartWindow
	for _, part := range strings.Split(*readers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rc := fleet.ReaderConfig{Addr: part}
		if name, addr, ok := strings.Cut(part, "="); ok {
			rc = fleet.ReaderConfig{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)}
		}
		cfg.Readers = append(cfg.Readers, rc)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := fleet.New(cfg)

	// Log fleet events (state changes and handoffs; cycles are too chatty).
	if !*quiet {
		sub := m.Bus().Subscribe(256)
		go func() {
			for ev := range sub.C() {
				switch ev.Type {
				case fleet.EventReaderState:
					if ev.Error != "" {
						log.Printf("reader %s: %s (attempt %d): %s", ev.Reader, ev.State, ev.Attempt, ev.Error)
					} else {
						log.Printf("reader %s: %s (attempt %d)", ev.Reader, ev.State, ev.Attempt)
					}
				case fleet.EventHandoff:
					log.Printf("handoff %s: %s -> %s", ev.EPC, ev.From, ev.To)
				case fleet.EventStateStore:
					log.Printf("statestore %s failed: %s (registry now non-durable)", ev.State, ev.Error)
				case fleet.EventPanic:
					log.Printf("panic in %s: %s %s", ev.Reader, ev.State, ev.Error)
				}
			}
		}()
	}

	if err := m.Start(ctx); err != nil {
		log.Fatalf("start fleet: %v", err)
	}
	defer m.Stop()

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("listen %s: %v", *httpAddr, err)
	}
	fmt.Printf("fleetd: %d readers supervised, HTTP on %s\n", len(cfg.Readers), lis.Addr())

	if err := m.Serve(ctx, lis); err != nil && err != http.ErrServerClosed {
		log.Printf("http: %v", err)
	}

	m.Stop()
	obs, handoffs := m.Registry().Stats()
	fmt.Printf("fleetd: %d tags, %d observations, %d handoffs\n", m.Registry().Len(), obs, handoffs)
}
