// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the checked-in perf-trajectory file BENCH_core.json: one record
// per benchmark with ns/op, B/op, and allocs/op, sorted by (package,
// name) so diffs against the previous trajectory point are stable.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// NsPerOp is wall time per operation; BPerOp/AllocsPerOp are -1 when
	// the run did not report memory stats.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Output is the BENCH_core.json document.
type Output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if _, err := os.Stdout.Write(b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Output, error) {
	var out Output
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok, err := parseBench(line, pkg)
			if err != nil {
				return Output{}, err
			}
			if ok {
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Output{}, err
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		a, b := out.Benchmarks[i], out.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return out, nil
}

// parseBench decodes one result line:
//
//	BenchmarkName-8   1000   1234 ns/op   512 B/op   10 allocs/op
//
// returning ok=false for benchmark lines with no measurements (e.g. a
// bare name echoed under -v).
func parseBench(line, pkg string) (Result, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false, nil
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so the name is stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("bad run count in %q: %w", line, err)
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
	}
	r := Result{Pkg: pkg, Name: name, Runs: runs, NsPerOp: ns, BPerOp: -1, AllocsPerOp: -1}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true, nil
}
