package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tagwatch/internal/llrp
cpu: whatever
BenchmarkROAccessReportEncode-8   	 1000000	      1234 ns/op	     512 B/op	      10 allocs/op
BenchmarkROAccessReportDecode-8   	  500000	      2468.5 ns/op
PASS
ok  	tagwatch/internal/llrp	2.345s
pkg: tagwatch/internal/fleet
BenchmarkRegistryObserve-8        	 2000000	       321 ns/op	      64 B/op	       2 allocs/op
PASS
`

func TestParse(t *testing.T) {
	out, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" {
		t.Fatalf("goos/goarch: %q/%q", out.Goos, out.Goarch)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(out.Benchmarks), out.Benchmarks)
	}
	// Sorted by (pkg, name): fleet first.
	first := out.Benchmarks[0]
	if first.Pkg != "tagwatch/internal/fleet" || first.Name != "RegistryObserve" {
		t.Fatalf("first = %+v", first)
	}
	if first.Runs != 2000000 || first.NsPerOp != 321 || first.BPerOp != 64 || first.AllocsPerOp != 2 {
		t.Fatalf("first values = %+v", first)
	}
	// The -8 GOMAXPROCS suffix is stripped; missing -benchmem fields are -1.
	dec := out.Benchmarks[1]
	if dec.Name != "ROAccessReportDecode" || dec.NsPerOp != 2468.5 || dec.BPerOp != -1 || dec.AllocsPerOp != -1 {
		t.Fatalf("decode = %+v", dec)
	}
}

func TestParseRejectsGarbageCounts(t *testing.T) {
	_, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX-4 nope 12 ns/op\n")))
	if err == nil {
		t.Fatal("bad run count must error")
	}
}
