// Command llrpsniff is a protocol-aware tcpdump for LLRP: a transparent
// proxy that sits between an LLRP client and a reader, printing a decoded
// one-line summary of every frame in both directions.
//
//	llrpsniff -listen 127.0.0.1:5085 -reader 127.0.0.1:5084
//	tagwatchd -reader 127.0.0.1:5085   # now observed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"tagwatch/internal/llrp"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:5085", "address clients connect to")
		reader = flag.String("reader", "127.0.0.1:5084", "upstream LLRP reader")
	)
	flag.Parse()

	start := time.Now()
	proxy := llrp.NewProxy(*reader, func(direction string, m llrp.Message) {
		fmt.Printf("%8.3fs %s %s\n", time.Since(start).Seconds(), direction, m.Summarize())
	})
	addr, err := proxy.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("llrpsniff: %s ⇄ %s\n", addr, *reader)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	proxy.Close()
}
