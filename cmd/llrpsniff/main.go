// Command llrpsniff is a protocol-aware tcpdump for LLRP: a transparent
// proxy that sits between an LLRP client and a reader, printing a decoded
// one-line summary of every frame in both directions.
//
//	llrpsniff -listen 127.0.0.1:5085 -reader 127.0.0.1:5084
//	tagwatchd -reader 127.0.0.1:5085   # now observed
//
// The -chaos flag turns the observer into a saboteur: client-side
// connections are wrapped in the seeded fault injector, so a healthy
// real reader can be made to look latent, corrupt, or half-open without
// touching it:
//
//	llrpsniff -chaos 'seed=7,latency=10ms,reset=0.005'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/llrp"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5085", "address clients connect to")
		reader    = flag.String("reader", "127.0.0.1:5084", "upstream LLRP reader")
		chaosSpec = flag.String("chaos", "", "fault injection spec applied to client connections, e.g. 'seed=42,latency=5ms,corrupt=0.01' (empty = pure observer)")
	)
	flag.Parse()

	start := time.Now()
	proxy := llrp.NewProxy(*reader, func(direction string, m llrp.Message) {
		fmt.Printf("%8.3fs %s %s\n", time.Since(start).Seconds(), direction, m.Summarize())
	})
	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
		proxy.Wrap = chaos.New(ccfg).Conn
	}
	addr, err := proxy.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("llrpsniff: %s ⇄ %s\n", addr, *reader)
	if *chaosSpec != "" {
		fmt.Printf("llrpsniff: chaos enabled: %s\n", *chaosSpec)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	proxy.Close()
}
