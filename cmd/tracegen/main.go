// Command tracegen generates a TrackPoint-style sorting-facility reading
// trace (the paper's Figs. 3–4 workload) and writes it as CSV: one row per
// tag with arrival, departure, and reading counts, plus a per-minute
// timeline.
//
// Usage:
//
//	tracegen -hours 4 -tags 527 -seed 1 > trace.csv
//	tracegen -timeline > timeline.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tagwatch/internal/trace"
)

func main() {
	var (
		hours    = flag.Float64("hours", 4, "trace duration in hours")
		tags     = flag.Int("tags", 527, "distinct tags")
		seed     = flag.Int64("seed", 1, "generation seed")
		timeline = flag.Bool("timeline", false, "emit the per-minute timeline instead of per-tag rows")
		adaptive = flag.Bool("adaptive", false, "replay the facility under the rate-adaptive policy")
	)
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	cfg.Arrivals = *tags
	cfg.RateAdaptive = *adaptive
	tr := trace.Generate(cfg, rand.New(rand.NewSource(*seed)))

	w := os.Stdout
	if *timeline {
		fmt.Fprintln(w, "minute,readings")
		for m, c := range tr.Timeline {
			fmt.Fprintf(w, "%d,%d\n", m, c)
		}
	} else {
		fmt.Fprintln(w, "epc,arrive_s,depart_s,parked,gamma,crossing_reads,parked_reads")
		for _, t := range tr.Tags {
			fmt.Fprintf(w, "%s,%.0f,%.0f,%v,%.4f,%d,%d\n",
				t.EPC, t.Arrive.Seconds(), t.Depart.Seconds(), t.Parked, t.Gamma,
				t.CrossingReads, t.ParkedReads)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d tags, %d readings over %v, peak %d concurrent movers, hottest tag %d reads\n",
		len(tr.Tags), tr.Total, cfg.Duration, tr.PeakConcurrentMovers, tr.MaxTag().Reads())
}
