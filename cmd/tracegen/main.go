// Command tracegen generates a sorting-facility reading trace and writes
// it as CSV: one row per tag with arrival, departure, and reading counts,
// plus a per-minute timeline. By default it models the paper's TrackPoint
// facility (Figs. 3–4); -scenario swaps in any built-in scenario pack, so
// this tool and the replay daemon (cmd/replayd) share one workload
// factory.
//
// Usage:
//
//	tracegen -hours 4 -tags 527 -seed 1 > trace.csv
//	tracegen -timeline > timeline.csv
//	tracegen -scenario retail-rush > rush.csv
//	tracegen -scenario list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tagwatch/internal/scenario"
	"tagwatch/internal/trace"
)

func main() {
	var (
		hours    = flag.Float64("hours", 0, "override trace duration in hours (0 keeps the scenario's)")
		tags     = flag.Int("tags", 0, "override distinct tag count (0 keeps the scenario's)")
		seed     = flag.Int64("seed", 1, "generation seed")
		timeline = flag.Bool("timeline", false, "emit the per-minute timeline instead of per-tag rows")
		adaptive = flag.Bool("adaptive", false, "replay the facility under the rate-adaptive policy")
		scen     = flag.String("scenario", "", "built-in scenario pack to generate from (\"list\" to enumerate)")
	)
	flag.Parse()

	var cfg trace.Config
	switch *scen {
	case "":
		cfg = trace.DefaultConfig()
		if *hours == 0 {
			*hours = 4
		}
		if *tags == 0 {
			*tags = 527
		}
	case "list":
		for _, p := range scenario.Packs() {
			fmt.Printf("%-22s %s\n", p.Name, p.Description)
		}
		return
	default:
		spec, err := scenario.Lookup(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		cfg, err = spec.TraceConfig()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if *hours > 0 {
		cfg.Duration = time.Duration(*hours * float64(time.Hour))
	}
	if *tags > 0 {
		cfg.Arrivals = *tags
	}
	cfg.RateAdaptive = *adaptive
	tr, err := trace.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *timeline {
		fmt.Fprintln(w, "minute,readings")
		for m, c := range tr.Timeline {
			fmt.Fprintf(w, "%d,%d\n", m, c)
		}
	} else {
		fmt.Fprintln(w, "epc,arrive_s,depart_s,parked,gamma,crossing_reads,parked_reads")
		for _, t := range tr.Tags {
			fmt.Fprintf(w, "%s,%.0f,%.0f,%v,%.4f,%d,%d\n",
				t.EPC, t.Arrive.Seconds(), t.Depart.Seconds(), t.Parked, t.Gamma,
				t.CrossingReads, t.ParkedReads)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d tags, %d readings over %v, peak %d concurrent movers, hottest tag %d reads\n",
		len(tr.Tags), tr.Total, cfg.Duration, tr.PeakConcurrentMovers, tr.MaxTag().Reads())
}
