// Command experiments regenerates the paper's evaluation figures against
// the simulated substrate.
//
// Usage:
//
//	experiments -all            # every figure, quick settings
//	experiments -fig 18 -full   # one figure at the paper's full scale
//	experiments -fig 15 -seed 7
//
// Figure numbers follow the paper: 1 (tracking), 2 (IRR model), 3 (trace,
// includes Fig 4), 8 (GMM modes), 12 (ROC), 13 (sensitivity), 14 (learning
// curve), 15/16 (schedule feasibility), 17 (schedule cost), 18 (IRR gain).
package main

import (
	"flag"
	"fmt"
	"os"

	"tagwatch/internal/experiments"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to run (0 with -all runs everything)")
		all    = flag.Bool("all", false, "run every figure")
		full   = flag.Bool("full", false, "paper-scale settings (slower)")
		seed   = flag.Int64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "also write each figure's data as CSV under this directory")
		svgDir = flag.String("svg", "", "also render each figure as SVG under this directory")
	)
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Quick: !*full}
	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "output dir: %v\n", err)
				os.Exit(1)
			}
		}
	}
	emit := func(r interface {
		fmt.Stringer
		CSV() []experiments.CSVTable
		Plots() []experiments.NamedPlot
	}) error {
		fmt.Println(r)
		if *csvDir != "" {
			for _, t := range r.CSV() {
				if err := t.WriteCSV(*csvDir); err != nil {
					return err
				}
			}
		}
		if *svgDir != "" {
			for _, np := range r.Plots() {
				if err := np.WriteSVG(*svgDir); err != nil {
					return err
				}
			}
		}
		return nil
	}
	run := func(n int) error {
		switch n {
		case 1:
			r, err := experiments.Fig01(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 2:
			r, err := experiments.Fig02(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 3, 4:
			r, err := experiments.Fig03(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 8:
			r, err := experiments.Fig08(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 12:
			r, err := experiments.Fig12(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 13:
			r, err := experiments.Fig13(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 14:
			r, err := experiments.Fig14(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 15:
			r, err := experiments.Fig15(opt, 2)
			if err != nil {
				return err
			}
			return emit(r)
		case 16:
			r, err := experiments.Fig15(opt, 5)
			if err != nil {
				return err
			}
			return emit(r)
		case 17:
			r, err := experiments.Fig17(opt)
			if err != nil {
				return err
			}
			return emit(r)
		case 18:
			r, err := experiments.Fig18(opt)
			if err != nil {
				return err
			}
			return emit(r)
		default:
			return fmt.Errorf("unknown figure %d", n)
		}
	}

	figs := []int{2, 3, 8, 12, 13, 14, 15, 16, 17, 18, 1}
	if !*all {
		if *fig == 0 {
			flag.Usage()
			os.Exit(2)
		}
		figs = []int{*fig}
	}
	for _, n := range figs {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "fig %d: %v\n", n, err)
			os.Exit(1)
		}
	}
}
