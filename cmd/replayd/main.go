// Command replayd replays a generated scenario through the full fleet
// pipeline faster than real time: it compiles a built-in scenario pack
// into its deterministic timeline, streams every reading through a real
// fleet.Manager (registry, quarantine, handoffs, event bus) at -speed
// times virtual rate, and emits a JSON run report. The deterministic
// portion of the report hashes to a fingerprint, so two same-seed runs
// are byte-identical modulo wall-clock timing — which makes replayd
// usable both as a load generator and as an end-to-end regression check.
//
// Usage:
//
//	replayd -scenario retail-rush -speed 100
//	replayd -scenario trackpoint -speed 0 -report run.json
//	replayd -list
//
// Exit codes:
//
//	0  replay completed and the report was emitted
//	1  replay failed (compile error, feed aborted, interrupted)
//	2  usage error (missing/unknown -scenario, bad -speed)
//	3  replay completed but the report could not be written
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	"tagwatch/internal/replay"
	"tagwatch/internal/scenario"
)

func main() {
	var (
		scen  = flag.String("scenario", "", "built-in scenario pack to replay (required; see -list)")
		list  = flag.Bool("list", false, "list built-in scenario packs and exit")
		seed  = flag.Int64("seed", 1, "timeline generation seed")
		speed = flag.Float64("speed", 100, "virtual seconds per wall second (0 = unthrottled)")
		hours = flag.Float64("hours", 0, "override virtual duration in hours (0 keeps the pack's)")
		tags  = flag.Int("tags", 0, "override flowing population size (0 keeps the pack's)")
		out   = flag.String("report", "", "write the JSON run report to this file (default stdout)")
		quarK = flag.Int("quarantine-k", 2, "ghost-tag quarantine threshold (<=1 disables)")
		maxT  = flag.Int("max-tags", 0, "registry capacity bound (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, p := range scenario.Packs() {
			fmt.Printf("%-22s %s\n", p.Name, p.Description)
		}
		return
	}
	if *scen == "" {
		fmt.Fprintln(os.Stderr, "replayd: -scenario is required (try -list)")
		os.Exit(2)
	}
	if *speed < 0 || math.IsNaN(*speed) || math.IsInf(*speed, 0) {
		fmt.Fprintf(os.Stderr, "replayd: -speed must be a finite value >= 0 (0 = unthrottled), got %v\n", *speed)
		os.Exit(2)
	}
	spec, err := scenario.Lookup(*scen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replayd:", err)
		os.Exit(2)
	}
	if *hours > 0 {
		spec.Duration = time.Duration(*hours * float64(time.Hour))
	}
	if *tags > 0 {
		spec.Population = *tags
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "replayd: %s seed=%d speed=%gx (%v virtual)\n",
		spec.Name, *seed, *speed, spec.Duration)
	rep, err := replay.Run(ctx, replay.Config{
		Spec:        spec,
		Seed:        *seed,
		Speed:       *speed,
		QuarantineK: *quarK,
		MaxTags:     *maxT,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "replayd:", err)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "replayd:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			fmt.Fprintln(os.Stderr, "replayd:", err)
			os.Exit(3)
		}
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "replayd:", err)
		os.Exit(3)
	}
	fmt.Fprintf(os.Stderr,
		"replayd: done in %dms (%.0fx effective): %d tags seen, %d observations, %d handoffs, fingerprint %.12s…\n",
		rep.Wall.ElapsedMS, rep.Wall.EffectiveSpeed, rep.Fleet.TagsSeen,
		rep.Fleet.Observations, rep.Fleet.Handoffs, rep.Fingerprint)
}
