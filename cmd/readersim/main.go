// Command readersim runs the LLRP reader emulator as a standalone TCP
// server: an ImpinJ-R420 stand-in with a configurable simulated tag
// population. Point any LLRP client at it (tagwatchd, or your own LTK
// code) and drive ROSpecs.
//
// Usage:
//
//	readersim -listen 127.0.0.1:5084 -tags 40 -movers 2 -timescale 1
//
// With -timescale 1 the emulator paces reports in real time; 0 free-runs.
//
// The -chaos flag interposes the seeded fault injector between clients
// and the emulator — a misbehaving reader on demand:
//
//	readersim -chaos 'seed=42,latency=5ms,corrupt=0.01,blackhole-after=65536'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"

	"tagwatch/internal/chaos"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5084", "address to listen on (5084 is the LLRP port)")
		tags      = flag.Int("tags", 40, "stationary tags in the field")
		movers    = flag.Int("movers", 2, "tags on the spinning turntable")
		antennas  = flag.Int("antennas", 1, "reader antenna ports")
		seed      = flag.Int64("seed", 1, "simulation seed")
		timescale = flag.Float64("timescale", 1.0, "wall seconds per virtual second (0 = free-run)")
		chaosSpec = flag.String("chaos", "", "fault injection spec, e.g. 'seed=42,latency=5ms,stall=0.01,truncate=0.01,corrupt=0.01,reset=0.01,blackhole-after=65536,refuse=0.1' (empty = none)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	for a := 0; a < *antennas; a++ {
		scn.AddAntenna(rf.Pt(float64(a)*1.5, 0, 2))
	}
	codes, err := epc.RandomPopulation(rng, *tags+*movers, 96)
	if err != nil {
		log.Fatalf("population: %v", err)
	}
	for i, c := range codes[:*movers] {
		scn.AddTag(c, scene.Circle{
			Center:     rf.Pt(1.5, 1.5, 0),
			Radius:     0.2,
			Speed:      0.7,
			StartAngle: float64(i),
		})
	}
	for i, c := range codes[*movers:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%10)*0.3, 0.4+float64(i/10)*0.3, 0)})
	}

	eng := reader.New(reader.DefaultConfig(), scn)
	srv := llrp.NewServer(eng, llrp.ServerConfig{TimeScale: *timescale})
	ccfg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		log.Fatalf("-chaos: %v", err)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var addr net.Addr
	if *chaosSpec != "" {
		addr = srv.Serve(chaos.New(ccfg).Listener(lis))
	} else {
		addr = srv.Serve(lis)
	}
	fmt.Printf("readersim: LLRP reader emulator on %s (%d tags, %d movers, %d antennas, timescale %.1f)\n",
		addr, *tags, *movers, *antennas, *timescale)
	if *chaosSpec != "" {
		fmt.Printf("readersim: chaos enabled: %s\n", *chaosSpec)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	srv.Close()
	fmt.Println("readersim: shut down")
}
