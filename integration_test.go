package tagwatch_test

// The grand integration test: the complete stack, end to end, over real
// TCP — scene → Gen2 link layer → reader engine → LLRP emulator ⇄ LLRP
// client → Tagwatch middleware — asserting the paper's headline behaviour
// (movers' reading rates multiply while parked tags are suppressed) plus
// the access layer riding the same inventory.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

func TestFullStackOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	// World: 24 parked items and 2 on a turntable, one antenna.
	rng := rand.New(rand.NewSource(99))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.SGTINPopulation(703710, 777000, 5, 100, 26)
	if err != nil {
		t.Fatal(err)
	}
	movers := codes[:2]
	for i, c := range movers {
		scn.AddTag(c, scene.Circle{Center: rf.Pt(1.5, 1.5, 0), Radius: 0.2, Speed: 0.7, StartAngle: float64(i)})
	}
	for i, c := range codes[2:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%8)*0.3, 0.4+float64(i/8)*0.3, 0)})
	}

	// Reader emulator behind TCP.
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 0 // single channel keeps the warm-up short for CI
	srv := llrp.NewServer(reader.New(rcfg, scn), llrp.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, err := llrp.Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The reader advertises itself.
	caps, err := conn.GetCapabilities(ctx)
	if err != nil || caps.MaxAntennas != 1 || !caps.SupportsPhaseReporting {
		t.Fatalf("capabilities: %+v, %v", caps, err)
	}

	// An AccessSpec reads a TID word from everything the inventory
	// singulates — exercised concurrently with the two-phase reading.
	if err := conn.AddAccessSpec(ctx, llrp.AccessSpec{
		ID:  1,
		Ops: []llrp.OpSpec{{OpSpecID: 7, Bank: epc.BankTID, WordPtr: 0, WordCount: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableAccessSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// The middleware over the wire.
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = time.Second
	cfg.StickyFor = 3 * time.Second
	tw := core.New(cfg, core.NewLLRPDevice(conn))

	isMover := map[epc.EPC]bool{movers[0]: true, movers[1]: true}
	var converged *core.CycleReport
	for i := 0; i < 12; i++ {
		rep := tw.RunCycle()
		if rep.FellBack {
			continue
		}
		allMoversTargeted := true
		for _, m := range movers {
			found := false
			for _, c := range rep.Targets {
				if c == m {
					found = true
				}
			}
			allMoversTargeted = allMoversTargeted && found
		}
		if allMoversTargeted && len(rep.Targets) <= 6 {
			converged = &rep
			break
		}
	}
	if converged == nil {
		t.Fatal("middleware never converged to selective reading of the movers")
	}

	// Headline behaviour: per-tag, the movers are read far more often in
	// Phase II than the parked majority. (With a same-product SGTIN
	// population the cost model may legitimately choose one broad mask —
	// collateral coverage is cheap — so the asymmetry is per tag, not in
	// absolute counts.)
	var moverReads, otherReads int
	for _, r := range converged.PhaseIIReads {
		if isMover[r.EPC] {
			moverReads++
		} else {
			otherReads++
		}
	}
	perMover := float64(moverReads) / 2
	perParked := float64(otherReads) / 24
	if moverReads < 10 || perMover < 2*perParked {
		t.Fatalf("phase II per-tag reads: mover %.1f vs parked %.1f", perMover, perParked)
	}

	// The bitmask plan is real and cheap.
	if len(converged.Plan.Masks) == 0 || converged.Plan.TotalCost > converged.Plan.NaiveCost {
		t.Fatalf("plan: %+v", converged.Plan)
	}

	// And the per-tag history shows the rate asymmetry.
	moverIRR := tw.History().IRR(movers[0])
	parkedIRR := tw.History().IRR(codes[10])
	if moverIRR <= parkedIRR {
		t.Fatalf("mover IRR %.1f must exceed parked IRR %.1f", moverIRR, parkedIRR)
	}
}
