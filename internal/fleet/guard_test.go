package fleet

// Overload-armor tests: bounded registry with eviction, ghost-tag
// quarantine (including ghosts minted by the chaos corruption fault),
// admission control on the HTTP API, SSE subscriber limits, and
// panic-containment with restart budgets.

import (
	"bufio"
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/guard"
)

func reading(code epc.EPC, at time.Duration) core.Reading {
	return core.Reading{EPC: code, Time: at, Antenna: 1, Channel: 0, PhaseRad: 1.0}
}

// TestRegistryFloodBounded floods a capped registry with 100k unique EPCs
// and requires the population bound to hold throughout, with every
// displaced tag leaving a journal tombstone.
func TestRegistryFloodBounded(t *testing.T) {
	const maxTags = 1024
	const flood = 100_000
	reg := NewRegistry()
	reg.Guard(maxTags, nil)

	rng := rand.New(rand.NewSource(41))
	codes, err := epc.RandomPopulation(rng, flood, 96)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	// Per-shard cap = ceil(maxTags/16); the effective bound is that cap
	// times the shard count.
	bound := ((maxTags + numShards - 1) / numShards) * numShards
	for i, code := range codes {
		reg.Observe("r0", reading(code, time.Duration(i)), base.Add(time.Duration(i)*time.Millisecond))
		if i%10_000 == 0 && reg.Len() > bound {
			t.Fatalf("after %d observations registry holds %d tags, bound %d", i+1, reg.Len(), bound)
		}
	}
	if got := reg.Len(); got > bound {
		t.Fatalf("registry holds %d tags, bound %d", got, bound)
	}
	evicted, _, _ := reg.GuardStats()
	if evicted == 0 {
		t.Fatal("flood evicted nothing")
	}
	if int(evicted) != flood-reg.Len() {
		t.Fatalf("evicted %d + live %d != flood %d", evicted, reg.Len(), flood)
	}
	// Every eviction left a tombstone for the journal.
	states, dropped := reg.DrainDirty()
	if len(dropped) != int(evicted) {
		t.Fatalf("DrainDirty returned %d tombstones, want %d", len(dropped), evicted)
	}
	if len(states) != reg.Len() {
		t.Fatalf("DrainDirty returned %d live states, registry holds %d", len(states), reg.Len())
	}
}

// TestRegistryEvictionOrder pins three EPCs into one shard and checks the
// stalest one is the eviction victim.
func TestRegistryEvictionOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Guard(2*numShards, nil) // 2 per shard

	rng := rand.New(rand.NewSource(7))
	codes, err := epc.RandomPopulation(rng, 512, 96)
	if err != nil {
		t.Fatal(err)
	}
	// Find three EPCs that hash to the same shard.
	want := reg.shard(codes[0])
	same := []epc.EPC{codes[0]}
	for _, c := range codes[1:] {
		if reg.shard(c) == want {
			same = append(same, c)
			if len(same) == 3 {
				break
			}
		}
	}
	if len(same) < 3 {
		t.Fatal("could not find three same-shard EPCs in sample")
	}
	base := time.Unix(1_700_000_000, 0)
	reg.Observe("r0", reading(same[0], 0), base.Add(2*time.Second)) // freshest
	reg.Observe("r0", reading(same[1], 0), base)                    // stalest
	// The shard is at its cap of 2; admitting the third EPC must evict
	// the stalest of the first two.
	reg.Observe("r0", reading(same[2], 0), base.Add(1*time.Second))
	if _, ok := reg.Get(same[1]); ok {
		t.Fatal("stalest tag survived eviction")
	}
	if _, ok := reg.Get(same[0]); !ok {
		t.Fatal("freshest tag was evicted")
	}
	if _, ok := reg.Get(same[2]); !ok {
		t.Fatal("newly admitted tag missing")
	}
}

// TestRegistryQuarantineBlocksGhosts verifies one-off EPCs never allocate
// registry entries or journal records, while a repeatedly sighted tag
// clears probation and is admitted.
func TestRegistryQuarantineBlocksGhosts(t *testing.T) {
	reg := NewRegistry()
	quar := guard.NewQuarantine[epc.EPC](3, 10*time.Second, 4096)
	reg.Guard(0, quar)

	rng := rand.New(rand.NewSource(11))
	codes, err := epc.RandomPopulation(rng, 1000, 96)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	realTag, ghosts := codes[0], codes[1:]
	for i, g := range ghosts {
		reg.Observe("r0", reading(g, time.Duration(i)), base)
	}
	if got := reg.Len(); got != 0 {
		t.Fatalf("ghosts allocated %d registry entries", got)
	}
	// The real tag needs K=3 sightings.
	for i := 0; i < 3; i++ {
		reg.Observe("r0", reading(realTag, time.Duration(i)), base.Add(time.Duration(i)*time.Second))
	}
	if _, ok := reg.Get(realTag); !ok {
		t.Fatal("confirmed tag not admitted")
	}
	states, dropped := reg.DrainDirty()
	if len(states) != 1 || states[0].EPC != realTag.String() {
		t.Fatalf("journal feed holds %d states, want only the confirmed tag", len(states))
	}
	if len(dropped) != 0 {
		t.Fatalf("journal feed holds %d tombstones, want 0", len(dropped))
	}
	// The first two sightings were held; the third confirmed and counted
	// as an observation.
	_, quarantined, qs := reg.GuardStats()
	if quarantined == 0 || qs.Held == 0 || qs.Confirmed != 1 {
		t.Fatalf("guard stats: quarantined=%d held=%d confirmed=%d", quarantined, qs.Held, qs.Confirmed)
	}
}

// corruptEPCs pipes EPC bytes through the chaos corruption fault to mint
// the ghost EPCs a broken RF front-end would decode: same length, a few
// bytes flipped, never matching any real tag.
func corruptEPCs(t *testing.T, codes []epc.EPC) []epc.EPC {
	t.Helper()
	inj := chaos.New(chaos.Config{Seed: 99, CorruptProb: 1})
	client, server := net.Pipe()
	faulty := inj.Conn(server)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer client.Close()
		for _, c := range codes {
			if _, err := client.Write(c.Bytes()); err != nil {
				return
			}
		}
	}()
	var out []epc.EPC
	for range codes {
		buf := make([]byte, len(codes[0].Bytes()))
		if _, err := io.ReadFull(faulty, buf); err != nil {
			t.Fatalf("read corrupted EPC: %v", err)
		}
		out = append(out, epc.New(buf))
	}
	faulty.Close()
	<-done
	return out
}

// TestChaosGhostsNeverReachJournal drives the quarantine with ghost EPCs
// minted by the chaos corruption fault and requires that none of them
// reach the registry or its journal feed, while the legitimate originals
// keep flowing.
func TestChaosGhostsNeverReachJournal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	legit, err := epc.RandomPopulation(rng, 64, 96)
	if err != nil {
		t.Fatal(err)
	}
	ghosts := corruptEPCs(t, legit)
	legitSet := make(map[string]bool, len(legit))
	for _, c := range legit {
		legitSet[c.String()] = true
	}
	distinct := 0
	for _, g := range ghosts {
		if !legitSet[g.String()] {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("corruption fault produced no distinct ghosts")
	}

	reg := NewRegistry()
	reg.Guard(0, guard.NewQuarantine[epc.EPC](2, 10*time.Second, 4096))
	base := time.Unix(1_700_000_000, 0)
	// Real tags are sighted every cycle; each ghost decode happens once.
	for cycle := 0; cycle < 3; cycle++ {
		at := base.Add(time.Duration(cycle) * time.Second)
		for _, c := range legit {
			reg.Observe("r0", reading(c, time.Duration(cycle)), at)
		}
	}
	for i, g := range ghosts {
		if legitSet[g.String()] {
			continue
		}
		reg.Observe("r0", reading(g, 0), base.Add(time.Duration(i)*time.Millisecond))
	}

	states, _ := reg.DrainDirty()
	for _, st := range states {
		if !legitSet[st.EPC] {
			t.Fatalf("ghost EPC %s reached the journal feed", st.EPC)
		}
	}
	if len(states) != len(legit) {
		t.Fatalf("journal feed holds %d states, want %d legit tags", len(states), len(legit))
	}
	for _, g := range ghosts {
		if legitSet[g.String()] {
			continue
		}
		if _, ok := reg.Get(g); ok {
			t.Fatalf("ghost EPC %s admitted to registry", g)
		}
	}
}

// TestSupervisorPanicRestartsThenTrips injects a deterministic panic into
// a supervisor loop and requires the manager to restart it under the
// breaker's budget, then trip it to dead — while the manager itself stays
// up and serving.
func TestSupervisorPanicRestartsThenTrips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Readers = []ReaderConfig{{Name: "r0", Addr: "127.0.0.1:1"}}
	cfg.RestartBudget = 3
	cfg.RestartWindow = time.Minute
	m := New(cfg)
	m.sups[0].crash = func() { panic("injected supervisor bug") }

	sub := m.bus.Subscribe(256)
	defer sub.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	waitFor(t, 15*time.Second, "supervisor tripped", func() bool {
		return readerStatus(m, "r0").Tripped
	})
	st := readerStatus(m, "r0")
	if st.State != StateDown.String() {
		t.Fatalf("tripped supervisor state = %s, want down", st.State)
	}
	// The manager is alive: its API layer still answers.
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/readers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/readers after trip: %d", resp.StatusCode)
	}

	// The bus saw the containments and the trip.
	var contained, tripped int
	for {
		select {
		case ev := <-sub.C():
			if ev.Type != EventPanic {
				continue
			}
			switch ev.State {
			case "contained":
				contained++
			case "tripped":
				tripped++
			}
			if tripped > 0 {
				if contained < cfg.RestartBudget {
					t.Fatalf("saw %d contained panics before trip, want >= %d", contained, cfg.RestartBudget)
				}
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no trip event on bus (contained=%d)", contained)
		}
	}
}

// TestManagerSurvivesCheckpointPanic is the containment guarantee for the
// background checkpoint loop: its panics are counted, not fatal.
func TestManagerSurvivesCheckpointPanic(t *testing.T) {
	m := New(DefaultConfig())
	perr := m.sentinel.Do("checkpoint", func() { panic("checkpoint bug") })
	if perr == nil {
		t.Fatal("sentinel did not report the panic")
	}
	if m.sentinel.Total() != 1 {
		t.Fatalf("sentinel total = %d", m.sentinel.Total())
	}
}

// TestHandlerAdmissionRateLimit verifies the fleet API answers 429 with
// Retry-After once a client spends its bucket, while /healthz and
// /metrics bypass the limiter entirely.
func TestHandlerAdmissionRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.APIRate = 1
	cfg.APIBurst = 3
	m := New(cfg)
	h := m.Handler()

	got429 := false
	for i := 0; i < 5; i++ {
		req := httptest.NewRequest("GET", "/api/tags", nil)
		req.RemoteAddr = "203.0.113.9:5555"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code == http.StatusTooManyRequests {
			got429 = true
			if rr.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if !got429 {
		t.Fatal("no request was rate limited")
	}
	for i := 0; i < 20; i++ {
		for _, path := range []string{"/healthz", "/metrics"} {
			req := httptest.NewRequest("GET", path, nil)
			req.RemoteAddr = "203.0.113.9:5555"
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code == http.StatusTooManyRequests {
				t.Fatalf("%s was rate limited", path)
			}
		}
	}
	// The metrics exposition carries the guard counters.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.RemoteAddr = "203.0.113.9:5555"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	body := rr.Body.String()
	for _, metric := range []string{
		"tagwatch_guard_api_rate_limited_total",
		"tagwatch_guard_api_shed_total",
		"tagwatch_guard_quarantine_held_total",
		"tagwatch_fleet_registry_evicted_total",
		"tagwatch_fleet_bus_rejected_total",
		"tagwatch_fleet_reader_tripped",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("metrics exposition missing %s", metric)
		}
	}
	if !strings.Contains(body, "tagwatch_guard_api_rate_limited_total 2") {
		t.Fatalf("rate-limited counter not exposed, body fragment: %.200s", body)
	}
}

// TestHandlerContainsPanics: a panicking handler answers 500 and the
// panic shows up in the admission counters instead of killing the server.
func TestHandlerContainsPanics(t *testing.T) {
	m := New(DefaultConfig())
	// None of the real handlers panic on any input we can craft, so wrap
	// the manager's own admission middleware around a deliberate bomb.
	h := m.admission.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("bug")
	}))
	req := httptest.NewRequest("GET", "/api/tags", nil)
	req.RemoteAddr = "203.0.113.2:1"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d", rr.Code)
	}
	if m.admission.Stats().Panics != 1 {
		t.Fatalf("panic not counted: %+v", m.admission.Stats())
	}
}

// TestSSESubscriberLimit opens streams up to the cap and requires the
// next one to be refused with a 503 and counted.
func TestSSESubscriberLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSSEClients = 2
	m := New(cfg)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	open := func() (*http.Response, error) {
		req, _ := http.NewRequest("GET", srv.URL+"/api/events", nil)
		return http.DefaultClient.Do(req)
	}
	var streams []*http.Response
	defer func() {
		for _, s := range streams {
			s.Body.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		resp, err := open()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream %d: %d", i, resp.StatusCode)
		}
		// Read the banner so the handler is committed before the next dial.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := open()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap stream answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if m.bus.Rejected() != 1 {
		t.Fatalf("bus rejected = %d, want 1", m.bus.Rejected())
	}
}

// TestBusPerSubscriberDrops verifies the per-subscriber drop counters
// feeding the /metrics exposition.
func TestBusPerSubscriberDrops(t *testing.T) {
	b := NewBus()
	fast := b.Subscribe(64)
	defer fast.Close()
	slow := b.Subscribe(1)
	defer slow.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: EventCycle, At: time.Now()})
	}
	drops := b.Drops()
	if len(drops) != 2 {
		t.Fatalf("Drops returned %d entries", len(drops))
	}
	if drops[0].Dropped != 0 {
		t.Fatalf("fast subscriber dropped %d", drops[0].Dropped)
	}
	if drops[1].Dropped != 9 {
		t.Fatalf("slow subscriber dropped %d, want 9", drops[1].Dropped)
	}
	if fast.Dropped() != 0 || slow.Dropped() != 9 {
		t.Fatalf("per-subscriber counters: fast=%d slow=%d", fast.Dropped(), slow.Dropped())
	}
}

// TestTagsRejectsNegativeLimit pins the explicit 400 on ?limit=-1 (the
// clamp-to-zero alternative would silently return everything).
func TestTagsRejectsNegativeLimit(t *testing.T) {
	m := New(DefaultConfig())
	h := m.Handler()
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"limit=-1", http.StatusBadRequest},
		{"limit=abc", http.StatusBadRequest},
		{"limit=0", http.StatusOK},
		{"limit=5", http.StatusOK},
	} {
		req := httptest.NewRequest("GET", "/api/tags?"+tc.query, nil)
		req.RemoteAddr = "203.0.113.3:1"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != tc.want {
			t.Fatalf("?%s answered %d, want %d", tc.query, rr.Code, tc.want)
		}
	}
}
