package fleet

import (
	"testing"
	"time"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	a := b.Subscribe(8)
	c := b.Subscribe(8)
	defer a.Close()
	defer c.Close()

	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: EventCycle, Reader: "r0", At: time.Unix(int64(i), 0)})
	}
	for _, sub := range []*Subscriber{a, c} {
		for i := 0; i < 3; i++ {
			select {
			case ev := <-sub.C():
				if ev.Reader != "r0" {
					t.Fatalf("event %d: %+v", i, ev)
				}
			default:
				t.Fatalf("subscriber missing event %d", i)
			}
		}
	}
	if pub, drop, n := statsOf(b); pub != 3 || drop != 0 || n != 2 {
		t.Fatalf("stats: published=%d dropped=%d subs=%d", pub, drop, n)
	}
}

func statsOf(b *Bus) (uint64, uint64, int) { return b.Stats() }

func TestBusSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	defer slow.Close()
	defer fast.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			b.Publish(Event{Type: EventHandoff})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}

	if got := slow.Dropped(); got != 9 {
		t.Fatalf("slow subscriber dropped %d events, want 9", got)
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d events, want 0", fast.Dropped())
	}
	if n := len(fast.C()); n != 10 {
		t.Fatalf("fast subscriber buffered %d events, want 10", n)
	}
	if _, dropped, _ := b.Stats(); dropped != 9 {
		t.Fatalf("bus-wide drop counter %d, want 9", dropped)
	}
}

func TestBusCloseIsIdempotentAndPublishSafe(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(1)
	s.Close()
	s.Close() // second close must not panic
	b.Publish(Event{Type: EventCycle})
	if _, ok := <-s.C(); ok {
		t.Fatal("closed subscriber channel still delivering")
	}
	if _, _, n := b.Stats(); n != 0 {
		t.Fatalf("subscriber count %d after close, want 0", n)
	}
}
