package fleet

import (
	"testing"
	"time"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	a := b.Subscribe(8)
	c := b.Subscribe(8)
	defer a.Close()
	defer c.Close()

	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: EventCycle, Reader: "r0", At: time.Unix(int64(i), 0)})
	}
	for _, sub := range []*Subscriber{a, c} {
		for i := 0; i < 3; i++ {
			select {
			case ev := <-sub.C():
				if ev.Reader != "r0" {
					t.Fatalf("event %d: %+v", i, ev)
				}
			default:
				t.Fatalf("subscriber missing event %d", i)
			}
		}
	}
	if pub, drop, n := statsOf(b); pub != 3 || drop != 0 || n != 2 {
		t.Fatalf("stats: published=%d dropped=%d subs=%d", pub, drop, n)
	}
}

func statsOf(b *Bus) (uint64, uint64, int) { return b.Stats() }

func TestBusSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	defer slow.Close()
	defer fast.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			b.Publish(Event{Type: EventHandoff})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}

	if got := slow.Dropped(); got != 9 {
		t.Fatalf("slow subscriber dropped %d events, want 9", got)
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d events, want 0", fast.Dropped())
	}
	if n := len(fast.C()); n != 10 {
		t.Fatalf("fast subscriber buffered %d events, want 10", n)
	}
	if _, dropped, _ := b.Stats(); dropped != 9 {
		t.Fatalf("bus-wide drop counter %d, want 9", dropped)
	}
}

// TestBusSequencesAndJournal: every publish stamps a strictly
// increasing Seq, the ring retains the newest events, and ReplayFrom
// reports honestly whether a cursor is still covered.
func TestBusSequencesAndJournal(t *testing.T) {
	b := NewBus()
	b.SetRingCap(4)
	if oldest, newest := b.Coverage(); oldest != 0 || newest != 0 {
		t.Fatalf("empty coverage = (%d,%d), want (0,0)", oldest, newest)
	}
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: EventCycle, At: time.Unix(int64(i), 0)})
	}
	if got := b.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	oldest, newest := b.Coverage()
	if oldest != 7 || newest != 10 {
		t.Fatalf("coverage = (%d,%d), want (7,10)", oldest, newest)
	}

	evs, ok := b.ReplayFrom(6)
	if !ok || len(evs) != 4 {
		t.Fatalf("ReplayFrom(6): ok=%v len=%d, want covered with 4 events", ok, len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("replayed[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if _, ok := b.ReplayFrom(5); ok {
		t.Fatal("ReplayFrom(5) claimed coverage for a seq the ring no longer holds")
	}
	if evs, ok := b.ReplayFrom(10); !ok || evs != nil {
		t.Fatalf("ReplayFrom(10) = (%v, %v), want up-to-date (nil, true)", evs, ok)
	}
	if evs, ok := b.ReplayFrom(99); !ok || evs != nil {
		t.Fatalf("ReplayFrom(future) = (%v, %v), want (nil, true)", evs, ok)
	}
}

// TestBusGapCarriesExactRange: shedding a slow subscriber must produce
// a synthetic gap event naming exactly the missed [from, to] range as
// soon as the buffer has room again — loss is announced, never silent.
func TestBusGapCarriesExactRange(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer sub.Close()

	for i := 1; i <= 4; i++ { // seqs 1..4 fill the buffer
		b.Publish(Event{Type: EventCycle})
	}
	for i := 5; i <= 7; i++ { // seqs 5..7 shed: the hole
		b.Publish(Event{Type: EventCycle})
	}
	// Drain room, then the next publish must deliver gap(5,7) first.
	<-sub.C()
	<-sub.C()
	b.Publish(Event{Type: EventCycle}) // seq 8

	want := []struct {
		typ  EventType
		seq  uint64
		from uint64
		to   uint64
	}{
		{EventCycle, 3, 0, 0},
		{EventCycle, 4, 0, 0},
		{EventGap, 7, 5, 7},
		{EventCycle, 8, 0, 0},
	}
	for i, w := range want {
		select {
		case ev := <-sub.C():
			if ev.Type != w.typ || ev.Seq != w.seq || ev.GapFrom != w.from || ev.GapTo != w.to {
				t.Fatalf("event %d = {%s seq=%d gap=%d-%d}, want {%s seq=%d gap=%d-%d}",
					i, ev.Type, ev.Seq, ev.GapFrom, ev.GapTo, w.typ, w.seq, w.from, w.to)
			}
		default:
			t.Fatalf("missing event %d (%s seq=%d)", i, w.typ, w.seq)
		}
	}
	if sub.Gaps() != 1 || b.Gaps() != 1 {
		t.Fatalf("gap counters: sub=%d bus=%d, want 1/1", sub.Gaps(), b.Gaps())
	}
	if sub.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", sub.Dropped())
	}
}

// TestBusGapExtendsWhileWedged: a subscriber that stays wedged keeps
// extending ONE pending gap instead of stacking many, and an event that
// cannot fit even behind its gap frame opens a fresh hole — announced
// on the next delivery, so no loss interval is ever swallowed.
func TestBusGapExtendsWhileWedged(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	defer sub.Close()

	b.Publish(Event{Type: EventCycle}) // seq 1 fills the buffer
	for i := 2; i <= 9; i++ {          // seqs 2..9 all shed into one hole
		b.Publish(Event{Type: EventCycle})
	}
	<-sub.C()                          // drain seq 1
	b.Publish(Event{Type: EventCycle}) // seq 10: gap(2,9) delivered, ev 10 re-shed

	ev := <-sub.C()
	if ev.Type != EventGap || ev.GapFrom != 2 || ev.GapTo != 9 || ev.Seq != 9 {
		t.Fatalf("gap = %+v, want gap 2-9 at seq 9", ev)
	}
	// Event 10 could not fit behind the gap frame (buffer of 1), so it
	// must have opened a fresh pending hole, announced on the next
	// publish once there is room.
	b.Publish(Event{Type: EventCycle}) // seq 11: gap(10,10) delivered, ev 11 re-shed
	ev = <-sub.C()
	if ev.Type != EventGap || ev.GapFrom != 10 || ev.GapTo != 10 || ev.Seq != 10 {
		t.Fatalf("second gap = %+v, want gap 10-10", ev)
	}
	if sub.Gaps() != 2 {
		t.Fatalf("gap frames delivered = %d, want 2", sub.Gaps())
	}
}

// TestBusFlushGapAnnouncesTailLoss: when the hole sits at the very end
// of a burst there is no later publish to carry the gap announcement —
// FlushGap (called by streamers on heartbeat ticks) must surface it.
func TestBusFlushGapAnnouncesTailLoss(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(2)
	defer sub.Close()

	for i := 1; i <= 5; i++ { // seqs 1-2 buffered, 3-5 shed: tail hole
		b.Publish(Event{Type: EventCycle})
	}
	if sub.FlushGap() {
		t.Fatal("FlushGap succeeded with a full buffer; the gap would arrive out of order")
	}
	<-sub.C() // drain seq 1
	if !sub.FlushGap() {
		t.Fatal("FlushGap failed with buffer room and a pending hole")
	}
	<-sub.C() // seq 2
	ev := <-sub.C()
	if ev.Type != EventGap || ev.GapFrom != 3 || ev.GapTo != 5 || ev.Seq != 5 {
		t.Fatalf("flushed gap = %+v, want gap 3-5 at seq 5", ev)
	}
	if sub.FlushGap() {
		t.Fatal("FlushGap re-announced an already-flushed gap")
	}
	if sub.Gaps() != 1 || b.Gaps() != 1 {
		t.Fatalf("gap counters: sub=%d bus=%d, want 1/1", sub.Gaps(), b.Gaps())
	}
}

func TestBusCloseIsIdempotentAndPublishSafe(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(1)
	s.Close()
	s.Close() // second close must not panic
	b.Publish(Event{Type: EventCycle})
	if _, ok := <-s.C(); ok {
		t.Fatal("closed subscriber channel still delivering")
	}
	if _, _, n := b.Stats(); n != 0 {
		t.Fatalf("subscriber count %d after close, want 0", n)
	}
}
