package fleet

import (
	"sync/atomic"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
)

// Ingest is a synthetic reader: a handle that feeds readings into the
// fleet exactly as a supervised LLRP session would — through the merged
// registry (so the guard layer, quarantine, and handoff detection all
// apply) and out over the event bus — without any connection underneath.
// It exists for replay (cmd/replayd drives a generated scenario timeline
// through one Ingest per gate) and for tests that need fleet-level
// behaviour without a live reader.
//
// An Ingest appears in Manager.Readers with state "up"; it never
// contributes to unhealthiness (a fleet of only ingests is trivially
// healthy, like a fleet with no readers).
type Ingest struct {
	name string
	m    *Manager

	readings atomic.Uint64
	cycles   atomic.Int64
	created  time.Time
}

// NewIngest registers a synthetic reader with the given name. The name
// shares the namespace of supervised readers: a tag observed by an
// ingest named "exit" after one named "entry" records a handoff
// entry→exit, exactly as two live readers would.
func (m *Manager) NewIngest(name string) *Ingest {
	in := &Ingest{name: name, m: m, created: time.Now()}
	m.mu.Lock()
	m.ingests = append(m.ingests, in)
	m.mu.Unlock()
	return in
}

// Observe merges one reading at the given timestamp, publishing a
// handoff event when the tag changed readers. The timestamp is the
// caller's: replay passes virtual time so registry state (and therefore
// quarantine and eviction decisions) is deterministic across runs.
func (in *Ingest) Observe(r core.Reading, at time.Time) (Handoff, bool) {
	in.readings.Add(1)
	ho, moved := in.m.reg.Observe(in.name, r, at)
	if moved {
		in.m.bus.Publish(Event{
			Type: EventHandoff, Reader: in.name, At: ho.At,
			EPC: ho.EPC, From: ho.From, To: ho.To,
		})
	}
	return ho, moved
}

// UpdateAssessment records this ingest's per-cycle verdict for a tag,
// under the registry's usual ownership rule (only the reader that saw
// the tag last may overwrite).
func (in *Ingest) UpdateAssessment(code epc.EPC, mobile bool, irr float64) {
	in.m.reg.UpdateAssessment(in.name, code, mobile, irr)
}

// PublishCycle emits a cycle summary on the bus under this ingest's
// name, bumping its cycle count.
func (in *Ingest) PublishCycle(at time.Time, sum *CycleSummary) {
	in.cycles.Add(1)
	in.m.bus.Publish(Event{Type: EventCycle, Reader: in.name, At: at, Cycle: sum})
}

// Readings reports how many readings this ingest has merged.
func (in *Ingest) Readings() uint64 { return in.readings.Load() }

// status shapes the ingest as a ReaderStatus for Manager.Readers.
func (in *Ingest) status() ReaderStatus {
	return ReaderStatus{
		Name:        in.name,
		Addr:        "ingest",
		State:       StateUp.String(),
		ConnectedAt: in.created,
		Cycles:      int(in.cycles.Load()),
		Readings:    in.readings.Load(),
	}
}
