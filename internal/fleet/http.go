package fleet

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/replication"
)

// Handler builds the fleet's HTTP API:
//
//	GET /api/tags        merged tag registry (?mobile=1, ?reader=NAME, ?limit=N)
//	GET /api/tags/{epc}  one tag's merged state
//	GET /api/readers     per-reader supervisor status
//	GET /api/status      node role, registry totals, replication peers
//	GET /api/events      fleet event stream as server-sent events
//	GET /healthz         200 while at least one reader is up, else 503
//	GET /metrics         Prometheus text exposition
//
// The whole mux runs behind the admission controller: per-client rate
// limiting (429) and adaptive concurrency limiting with LIFO shedding
// (503) when configured, panic containment always. /healthz and /metrics
// bypass limiting — they must answer during the exact overload the
// limits manage.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", m.handleTags)
	mux.HandleFunc("GET /api/tags/{epc}", m.handleTag)
	mux.HandleFunc("GET /api/readers", m.handleReaders)
	mux.HandleFunc("GET /api/status", m.handleStatus)
	mux.HandleFunc("GET /api/events", m.handleEvents)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return m.admission.Middleware(mux)
}

// Serve runs the HTTP API on lis until ctx is cancelled, then shuts down
// gracefully with a 5 s drain. Request contexts derive from ctx, so
// long-lived SSE streams end promptly at shutdown instead of pinning the
// drain.
//
// The server is hardened against slow and abusive clients: header reads
// and idle keep-alives are bounded, and header size is capped. There is
// deliberately no WriteTimeout — it would kill every SSE stream at a
// fixed age; slow SSE consumers are bounded instead by the per-write
// deadlines in handleEvents, and slow non-SSE responses by the admission
// latency budget.
func (m *Manager) Serve(ctx context.Context, lis net.Listener) error {
	srv := &http.Server{
		Handler:           m.Handler(),
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		srv.Close()
		return err
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (m *Manager) handleTags(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	onlyMobile := q.Get("mobile") == "1" || q.Get("mobile") == "true"
	reader := q.Get("reader")
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	tags := m.reg.Snapshot()
	out := tags[:0]
	for _, t := range tags {
		if onlyMobile && !t.Mobile {
			continue
		}
		if reader != "" && t.Reader != reader {
			continue
		}
		out = append(out, t)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Count int        `json:"count"`
		Tags  []TagState `json:"tags"`
	}{len(out), out})
}

func (m *Manager) handleTag(w http.ResponseWriter, r *http.Request) {
	code, err := epc.Parse(r.PathValue("epc"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, ok := m.reg.Get(code)
	if !ok {
		http.Error(w, "unknown tag", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleReaders(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Readers []ReaderStatus `json:"readers"`
	}{m.Readers()})
}

// handleStatus reports the node's role and replication posture in one
// place — what an operator (or an orchestrator deciding whether to
// fail over) reads first.
func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	role := "standalone"
	peers := m.ReplicationStatus()
	if len(peers) > 0 {
		role = "primary"
	}
	obs, handoffs := m.reg.Stats()
	writeJSON(w, http.StatusOK, struct {
		Role         string                   `json:"role"`
		Healthy      bool                     `json:"healthy"`
		UptimeSecs   int64                    `json:"uptime_secs"`
		Readers      int                      `json:"readers"`
		Tags         int                      `json:"tags"`
		Observations uint64                   `json:"observations"`
		Handoffs     uint64                   `json:"handoffs"`
		Durable      bool                     `json:"durable"`
		Events       EventsStatus             `json:"events"`
		Replication  []replication.PeerStatus `json:"replication,omitempty"`
	}{
		Role:         role,
		Healthy:      m.Healthy(),
		UptimeSecs:   int64(time.Since(m.Started()).Seconds()),
		Readers:      len(m.Readers()),
		Tags:         m.reg.Len(),
		Observations: obs,
		Handoffs:     handoffs,
		Durable:      m.cfg.StateDir != "",
		Events:       m.EventsStatus(),
		Replication:  peers,
	})
}

// EventsStatus is the delivery layer's observability block: how lossy
// this deployment is, measured instead of inferred.
type EventsStatus struct {
	// Identity names the bus's sequence space (cursors embed it).
	Identity string `json:"identity"`
	// LastSeq is the newest published sequence; OldestRetained is the
	// ring's replay floor — a cursor at or past OldestRetained-1 resumes,
	// anything older resets.
	LastSeq        uint64 `json:"last_seq"`
	OldestRetained uint64 `json:"oldest_retained"`
	// Published/Dropped/Gaps/Rejected are lifetime bus totals; Gaps
	// counts synthetic gap frames delivered (announced loss intervals).
	Published   uint64 `json:"published"`
	Dropped     uint64 `json:"dropped"`
	Gaps        uint64 `json:"gaps"`
	Rejected    uint64 `json:"rejected"`
	Subscribers int    `json:"subscribers"`
	// PerSubscriber breaks drops and gaps down by live subscriber.
	PerSubscriber []SubscriberDrops `json:"per_subscriber,omitempty"`
}

// EventsStatus snapshots the bus's loss accounting for /api/status.
func (m *Manager) EventsStatus() EventsStatus {
	published, dropped, subscribers := m.bus.Stats()
	oldest, newest := m.bus.Coverage()
	return EventsStatus{
		Identity:       m.bus.Identity(),
		LastSeq:        newest,
		OldestRetained: oldest,
		Published:      published,
		Dropped:        dropped,
		Gaps:           m.bus.Gaps(),
		Rejected:       m.bus.Rejected(),
		Subscribers:    subscribers,
		PerSubscriber:  m.bus.Drops(),
	}
}

// handleEvents streams the fleet bus over SSE through the shared
// EventStreamer: every frame carries a resumable cursor, reconnects
// replay from the bus ring or receive an explicit reset, shed loss
// arrives as gap frames, and an idle stream carries keepalives. SSE
// streams bypass the concurrency limit (they are long-lived by design),
// so the subscriber cap is what bounds them.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	es := &EventStreamer{
		Bus:          m.bus,
		Snapshot:     m.reg.Snapshot,
		WriteTimeout: m.cfg.SSEWriteTimeout,
		Heartbeat:    m.cfg.SSEHeartbeat,
		Buffer:       m.cfg.EventBuffer,
	}
	es.ServeHTTP(w, r)
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	readers := m.Readers()
	for _, rs := range readers {
		if rs.State == StateUp.String() {
			up++
		}
	}
	status := http.StatusOK
	state := "ok"
	if !m.Healthy() {
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	writeJSON(w, status, struct {
		Status     string `json:"status"`
		ReadersUp  int    `json:"readers_up"`
		Readers    int    `json:"readers"`
		Tags       int    `json:"tags"`
		UptimeSecs int64  `json:"uptime_secs"`
	}{state, up, len(readers), m.reg.Len(), int64(time.Since(m.Started()).Seconds())})
}
