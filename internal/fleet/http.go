package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/replication"
)

// Handler builds the fleet's HTTP API:
//
//	GET /api/tags        merged tag registry (?mobile=1, ?reader=NAME, ?limit=N)
//	GET /api/tags/{epc}  one tag's merged state
//	GET /api/readers     per-reader supervisor status
//	GET /api/status      node role, registry totals, replication peers
//	GET /api/events      fleet event stream as server-sent events
//	GET /healthz         200 while at least one reader is up, else 503
//	GET /metrics         Prometheus text exposition
//
// The whole mux runs behind the admission controller: per-client rate
// limiting (429) and adaptive concurrency limiting with LIFO shedding
// (503) when configured, panic containment always. /healthz and /metrics
// bypass limiting — they must answer during the exact overload the
// limits manage.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", m.handleTags)
	mux.HandleFunc("GET /api/tags/{epc}", m.handleTag)
	mux.HandleFunc("GET /api/readers", m.handleReaders)
	mux.HandleFunc("GET /api/status", m.handleStatus)
	mux.HandleFunc("GET /api/events", m.handleEvents)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return m.admission.Middleware(mux)
}

// Serve runs the HTTP API on lis until ctx is cancelled, then shuts down
// gracefully with a 5 s drain. Request contexts derive from ctx, so
// long-lived SSE streams end promptly at shutdown instead of pinning the
// drain.
//
// The server is hardened against slow and abusive clients: header reads
// and idle keep-alives are bounded, and header size is capped. There is
// deliberately no WriteTimeout — it would kill every SSE stream at a
// fixed age; slow SSE consumers are bounded instead by the per-write
// deadlines in handleEvents, and slow non-SSE responses by the admission
// latency budget.
func (m *Manager) Serve(ctx context.Context, lis net.Listener) error {
	srv := &http.Server{
		Handler:           m.Handler(),
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		srv.Close()
		return err
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (m *Manager) handleTags(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	onlyMobile := q.Get("mobile") == "1" || q.Get("mobile") == "true"
	reader := q.Get("reader")
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	tags := m.reg.Snapshot()
	out := tags[:0]
	for _, t := range tags {
		if onlyMobile && !t.Mobile {
			continue
		}
		if reader != "" && t.Reader != reader {
			continue
		}
		out = append(out, t)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Count int        `json:"count"`
		Tags  []TagState `json:"tags"`
	}{len(out), out})
}

func (m *Manager) handleTag(w http.ResponseWriter, r *http.Request) {
	code, err := epc.Parse(r.PathValue("epc"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, ok := m.reg.Get(code)
	if !ok {
		http.Error(w, "unknown tag", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleReaders(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Readers []ReaderStatus `json:"readers"`
	}{m.Readers()})
}

// handleStatus reports the node's role and replication posture in one
// place — what an operator (or an orchestrator deciding whether to
// fail over) reads first.
func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	role := "standalone"
	peers := m.ReplicationStatus()
	if len(peers) > 0 {
		role = "primary"
	}
	obs, handoffs := m.reg.Stats()
	writeJSON(w, http.StatusOK, struct {
		Role         string                   `json:"role"`
		Healthy      bool                     `json:"healthy"`
		UptimeSecs   int64                    `json:"uptime_secs"`
		Readers      int                      `json:"readers"`
		Tags         int                      `json:"tags"`
		Observations uint64                   `json:"observations"`
		Handoffs     uint64                   `json:"handoffs"`
		Durable      bool                     `json:"durable"`
		Replication  []replication.PeerStatus `json:"replication,omitempty"`
	}{
		Role:         role,
		Healthy:      m.Healthy(),
		UptimeSecs:   int64(time.Since(m.Started()).Seconds()),
		Readers:      len(m.Readers()),
		Tags:         m.reg.Len(),
		Observations: obs,
		Handoffs:     handoffs,
		Durable:      m.cfg.StateDir != "",
		Replication:  peers,
	})
}

// handleEvents streams the fleet bus over SSE. Each subscriber gets its
// own buffered channel; if this client cannot keep up, events drop here
// rather than backing pressure into the cycle loops, and the drop total
// rides along on every frame.
//
// Every write runs under a deadline: a stalled client (TCP window gone
// to zero, a phone in a tunnel) would otherwise block Fprintf forever
// and pin this handler goroutine — with the subscriber still registered
// — for the life of the process. A write that misses the deadline (or
// fails for any reason) disconnects the client; SSE clients reconnect.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	// send writes one frame under the deadline and reports whether the
	// client is still worth keeping. SetWriteDeadline may be unsupported
	// by an exotic wrapped writer — then the write proceeds unbounded,
	// which is the old behaviour, not a new failure.
	send := func(format string, args ...any) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(m.cfg.SSEWriteTimeout))
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return false
		}
		if err := rc.Flush(); err != nil {
			return false
		}
		return true
	}

	// SSE streams bypass the concurrency limit (they are long-lived by
	// design), so the subscriber cap is what bounds them.
	sub, ok := m.bus.TrySubscribe(m.cfg.EventBuffer)
	if !ok {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "subscriber limit reached", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if !send(": tagwatch fleet event stream\n\n") {
		return
	}

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	var id uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if !send(": heartbeat dropped=%d\n\n", sub.Dropped()) {
				return
			}
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			id++
			if !send("id: %d\nevent: %s\ndata: %s\n\n", id, ev.Type, data) {
				return
			}
		}
	}
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	readers := m.Readers()
	for _, rs := range readers {
		if rs.State == StateUp.String() {
			up++
		}
	}
	status := http.StatusOK
	state := "ok"
	if !m.Healthy() {
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	writeJSON(w, status, struct {
		Status     string `json:"status"`
		ReadersUp  int    `json:"readers_up"`
		Readers    int    `json:"readers"`
		Tags       int    `json:"tags"`
		UptimeSecs int64  `json:"uptime_secs"`
	}{state, up, len(readers), m.reg.Len(), int64(time.Since(m.Started()).Seconds())})
}
