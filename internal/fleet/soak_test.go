package fleet

// The overload soak: a ghost-EPC corruption flood plus a crowd of greedy
// API clients thrown at one manager, with the health probe timed
// throughout. By default it runs at a CI-friendly scale; set
// TAGWATCH_SOAK=full for the acceptance-scale run (1M ghosts, 500
// clients) that `make soak` executes under -race and GOMEMLIMIT.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagwatch/internal/epc"
)

func TestSoakFloodSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness skipped in -short mode")
	}
	ghosts, clients, realTags := 100_000, 60, 6000
	scale := "scaled"
	if os.Getenv("TAGWATCH_SOAK") == "full" {
		ghosts, clients, realTags = 1_000_000, 500, 6000
		scale = "full"
	}
	t.Logf("soak scale %s: %d ghosts, %d clients, %d real tags", scale, ghosts, clients, realTags)

	cfg := DefaultConfig()
	cfg.StateDir = t.TempDir()
	cfg.JournalFlush = 50 * time.Millisecond
	cfg.SnapshotInterval = time.Second
	cfg.MaxTags = 1024  // well under the confirmed-tag population, so eviction must fire
	cfg.QuarantineK = 2 // a ghost decoded once is never admitted
	cfg.QuarantineCap = 16384
	cfg.APIRate = 50 // per client IP; the whole crowd shares 127.0.0.1
	cfg.APIBurst = 50
	cfg.APIMaxConcurrent = 8
	cfg.APIQueueDepth = 8
	cfg.APIQueueTimeout = 20 * time.Millisecond
	m := New(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = m.Serve(ctx, lis) // returns http.ErrServerClosed on cancel
	}()
	baseURL := "http://" + lis.Addr().String()

	rng := rand.New(rand.NewSource(2024))
	legit, err := epc.RandomPopulation(rng, realTags, 96)
	if err != nil {
		t.Fatal(err)
	}
	legitSet := make(map[string]bool, len(legit))
	for _, c := range legit {
		legitSet[c.String()] = true
	}

	var wg sync.WaitGroup
	var healthFailures, healthProbes atomic.Uint64

	// The health probe: /healthz must answer within its deadline for the
	// whole flood. This is the "stays observable under fire" guarantee.
	// The deadline is generous because the full-scale run deliberately
	// saturates every core under the race detector — the claim is "always
	// answers", not "answers fast on an oversubscribed box".
	probeCtx, probeCancel := context.WithCancel(ctx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for probeCtx.Err() == nil {
			healthProbes.Add(1)
			resp, err := client.Get(baseURL + "/healthz")
			if err != nil {
				healthFailures.Add(1)
			} else {
				resp.Body.Close() // 503-degraded is fine; not answering is not
			}
			select {
			case <-probeCtx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}()

	// The ghost flood: unique EPCs, each decoded exactly once — the
	// registry must admit none of them. Real tags are re-observed
	// throughout so confirmed traffic flows through the same shards.
	floodWorkers := 4
	wg.Add(floodWorkers)
	base := time.Unix(1_700_000_000, 0)
	for w := 0; w < floodWorkers; w++ {
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(3000 + w)))
			buf := make([]byte, 12)
			for i := 0; i < ghosts/floodWorkers; i++ {
				wrng.Read(buf)
				ghost := epc.New(buf)
				if legitSet[ghost.String()] {
					continue // astronomically unlikely; keep the invariant exact
				}
				at := base.Add(time.Duration(i) * time.Microsecond)
				m.reg.Observe("r0", reading(ghost, time.Duration(i)), at)
				if i%64 == 0 {
					c := legit[(i/64+w*1000)%len(legit)]
					m.reg.Observe("r0", reading(c, time.Duration(i)), at)
					m.reg.Observe("r0", reading(c, time.Duration(i+1)), at.Add(time.Millisecond))
				}
			}
		}(w)
	}

	// The API crowd: every client hammers the JSON endpoints with no
	// pacing. They all share one source IP, so the token bucket and the
	// concurrency limiter both get exercised; 429/503 are the designed
	// answers, transport errors are not.
	var transportErrs, served, limited atomic.Uint64
	var crowdWg sync.WaitGroup
	crowdCtx, crowdCancel := context.WithCancel(ctx)
	crowdWg.Add(clients)
	for cl := 0; cl < clients; cl++ {
		go func() {
			defer crowdWg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			paths := []string{"/api/tags?limit=50", "/api/readers", "/api/tags"}
			for i := 0; crowdCtx.Err() == nil; i++ {
				resp, err := client.Get(baseURL + paths[i%len(paths)])
				if err != nil {
					// A client-side timeout on a box this oversubscribed is
					// the client's impatience, not a server fault; refused or
					// reset connections would be.
					var ne net.Error
					timeout := errors.As(err, &ne) && ne.Timeout()
					if crowdCtx.Err() == nil && !timeout {
						transportErrs.Add(1)
					}
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					limited.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	// Let the crowd run while the flood completes, then wind down.
	floodStart := time.Now()
	waitFor(t, 120*time.Second, "ghost flood absorbed", func() bool {
		_, quarantined, _ := m.reg.GuardStats()
		return quarantined >= uint64(ghosts*9/10)
	})
	t.Logf("flood absorbed in %v", time.Since(floodStart))
	time.Sleep(200 * time.Millisecond) // a little steady-state crowd time
	crowdCancel()
	crowdWg.Wait()
	waitFor(t, 30*time.Second, "crowd slots drained", func() bool {
		return m.admission.Stats().Inflight == 0
	})

	// Deterministically exercise the shedding path: with the crowd gone,
	// pin every concurrency slot, then one more request must age out of
	// the queue and be shed.
	var rels []func(bool)
	for i := 0; i < cfg.APIMaxConcurrent+cfg.APIQueueDepth; i++ {
		if rel, err := m.admission.Acquire(context.Background()); err == nil {
			rels = append(rels, rel)
		}
	}
	if _, err := m.admission.Acquire(context.Background()); err == nil {
		t.Fatal("saturated admission still granted a slot")
	}
	for _, rel := range rels {
		rel(true)
	}
	probeCancel()

	// ---- Invariants while still live ----

	bound := ((cfg.MaxTags + numShards - 1) / numShards) * numShards
	if got := m.reg.Len(); got > bound {
		t.Fatalf("registry holds %d tags, bound %d", got, bound)
	}
	evicted, quarantined, qs := m.reg.GuardStats()
	if quarantined == 0 || qs.Held == 0 {
		t.Fatalf("quarantine counters flat: quarantined=%d held=%d", quarantined, qs.Held)
	}
	if evicted == 0 {
		t.Fatalf("eviction counter flat with %d real tags over a %d cap", realTags, cfg.MaxTags)
	}
	if qs.Size > cfg.QuarantineCap {
		t.Fatalf("quarantine ring %d over cap %d", qs.Size, cfg.QuarantineCap)
	}
	ast := m.admission.Stats()
	if ast.Shed == 0 {
		t.Fatalf("shed counter flat: %+v", ast)
	}
	if ast.RateLimited == 0 {
		t.Fatalf("rate-limited counter flat with %d clients on one IP: %+v (served=%d limited=%d)",
			clients, ast, served.Load(), limited.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no API request was ever served")
	}
	if healthProbes.Load() == 0 || healthFailures.Load() > 0 {
		t.Fatalf("health probe: %d/%d failed", healthFailures.Load(), healthProbes.Load())
	}
	if transportErrs.Load() > 0 {
		t.Fatalf("%d API requests failed at the transport (want clean 200/429/503)", transportErrs.Load())
	}

	// Memory proxy: after the flood, heap must reflect the bounded
	// structures, not the million ghosts that passed through.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 400<<20 {
		t.Fatalf("heap %d MiB after flood — bounds are leaking", ms.HeapAlloc>>20)
	}
	t.Logf("heap after flood: %d MiB; served=%d limited=%d shed=%d rate_limited=%d quarantined=%d evicted=%d",
		ms.HeapAlloc>>20, served.Load(), limited.Load(), ast.Shed, ast.RateLimited, quarantined, evicted)

	// ---- Durable state must be ghost-free ----

	cancel() // stops Serve and the manager's loops
	wg.Wait()
	<-serveDone
	if err := m.Stop(); err != nil { // final journal flush + snapshot
		t.Fatalf("final save failed: %v", err)
	}

	restored := New(Config{StateDir: cfg.StateDir})
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	if err := restored.Start(rctx); err != nil {
		t.Fatalf("restart on soak state: %v", err)
	}
	defer restored.Stop()
	snap := restored.Registry().Snapshot()
	if len(snap) == 0 {
		t.Fatal("restored registry is empty — durable state was lost")
	}
	if len(snap) > bound {
		t.Fatalf("restored registry holds %d tags, bound %d", len(snap), bound)
	}
	for _, st := range snap {
		if !legitSet[st.EPC] {
			t.Fatalf("ghost EPC %s survived into the snapshot/WAL", st.EPC)
		}
	}
	t.Logf("restored %d tags, all legitimate", len(snap))
}
