package fleet

import (
	"testing"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
)

// BenchmarkRegistryObserve measures the fleet's per-reading cost: the
// sharded merge every supervisor and ingest pays for every tag report.
// Steady-state shape (all tags already admitted), cycling through a
// 1024-tag population from two readers so the handoff path is exercised
// without dominating.
func BenchmarkRegistryObserve(b *testing.B) {
	reg := NewRegistry()
	pop, err := epc.SequentialPopulation([]byte{0x30, 0x1C, 0xA0}, 0, 1024, epc.StandardBits)
	if err != nil {
		b.Fatal(err)
	}
	at := time.Unix(0, 0).UTC()
	readings := make([]core.Reading, len(pop))
	for i, code := range pop {
		readings[i] = core.Reading{EPC: code, Antenna: 1 + i%4}
		reg.Observe("bench-a", readings[i], at)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reader := "bench-a"
		if i&0xFF == 0 {
			reader = "bench-b"
		}
		reg.Observe(reader, readings[i%len(readings)], at.Add(time.Duration(i)))
	}
}

// BenchmarkBusPublishFanout measures the sequenced bus's per-publish
// cost with live subscribers: sequence stamp, ring journal write, and
// non-blocking fan-out to 8 consumers — the hot path every registry
// mutation now rides. Subscribers drain concurrently so deliveries
// mostly succeed instead of degenerating into the shed path.
func BenchmarkBusPublishFanout(b *testing.B) {
	bus := NewBus()
	const fanout = 8
	stop := make(chan struct{})
	for i := 0; i < fanout; i++ {
		sub := bus.Subscribe(1024)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-sub.C():
				}
			}
		}()
	}
	ev := Event{Type: EventTag, Reader: "bench", EPC: "30f4ab12cd0045e100000001"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
	b.StopTimer()
	close(stop)
}

// BenchmarkRingReplay measures the cursor-resume path: a reconnecting
// SSE client replaying a 512-event hole out of a warm ring — the cost
// of healing one announced gap without a reset.
func BenchmarkRingReplay(b *testing.B) {
	bus := NewBus()
	bus.SetRingCap(DefaultRingCap)
	ev := Event{Type: EventTag, Reader: "bench", EPC: "30f4ab12cd0045e100000001"}
	for i := 0; i < DefaultRingCap+512; i++ {
		bus.Publish(ev)
	}
	after := bus.LastSeq() - 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs, ok := bus.ReplayFrom(after)
		if !ok || len(evs) != 512 {
			b.Fatalf("replay: ok=%v len=%d", ok, len(evs))
		}
	}
}
