package fleet

import (
	"testing"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
)

// BenchmarkRegistryObserve measures the fleet's per-reading cost: the
// sharded merge every supervisor and ingest pays for every tag report.
// Steady-state shape (all tags already admitted), cycling through a
// 1024-tag population from two readers so the handoff path is exercised
// without dominating.
func BenchmarkRegistryObserve(b *testing.B) {
	reg := NewRegistry()
	pop, err := epc.SequentialPopulation([]byte{0x30, 0x1C, 0xA0}, 0, 1024, epc.StandardBits)
	if err != nil {
		b.Fatal(err)
	}
	at := time.Unix(0, 0).UTC()
	readings := make([]core.Reading, len(pop))
	for i, code := range pop {
		readings[i] = core.Reading{EPC: code, Antenna: 1 + i%4}
		reg.Observe("bench-a", readings[i], at)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reader := "bench-a"
		if i&0xFF == 0 {
			reader = "bench-b"
		}
		reg.Observe(reader, readings[i%len(readings)], at.Add(time.Duration(i)))
	}
}
