package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ResetPayload is the data body of an EventReset SSE frame: a full
// registry snapshot plus the cursor it is anchored to. A client that
// applies Tags as its entire state and adopts Cursor (under Identity's
// sequence space) is exactly caught up — every event with Seq > Cursor
// builds on this snapshot.
type ResetPayload struct {
	Identity string     `json:"identity"`
	Cursor   uint64     `json:"cursor"`
	Tags     []TagState `json:"tags"`
}

// FormatCursor renders an SSE cursor as published in id: fields —
// "<bus identity>:<sequence>". The identity half is what makes cursors
// safe across failovers: a promoted standby or restarted primary mints
// a new identity, so a stale cursor can never resume into the wrong
// sequence space.
func FormatCursor(identity string, seq uint64) string {
	return identity + ":" + strconv.FormatUint(seq, 10)
}

// ParseCursor parses a Last-Event-ID cursor. ok is false for anything
// malformed — the caller treats that the same as no cursor (reset).
func ParseCursor(s string) (identity string, seq uint64, ok bool) {
	identity, rest, found := strings.Cut(s, ":")
	if !found || identity == "" {
		return "", 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return identity, n, true
}

// EventStreamer serves one bus over SSE with resumable cursors. It is
// the single delivery path shared by the fleet's /api/events and the
// edge tier's downstream /api/events, so both ends of the fan-out speak
// identical cursor/gap/reset semantics:
//
//   - every frame carries "id: <identity>:<seq>";
//   - a client reconnecting with Last-Event-ID replays the missed
//     events from the bus ring when the cursor is still covered;
//   - otherwise (no cursor, foreign identity, fell off the ring) the
//     stream opens with an explicit reset frame — full snapshot plus
//     fresh cursor — never a silent discontinuity;
//   - a shed subscriber's loss arrives as a gap frame naming the missed
//     range (synthesised by the bus);
//   - an idle stream carries ":keepalive" comment frames so
//     intermediaries don't sever quiet connections.
//
// Every write — snapshot, replay, live, heartbeat — goes through one
// deadline-armed send path: a stalled client is disconnected, never
// left pinning the handler.
type EventStreamer struct {
	// Bus is the event source; Snapshot produces the full-state anchor
	// for reset frames (must reflect every event already published — the
	// fleet registry's publish-under-shard-lock discipline guarantees
	// this).
	Bus      *Bus
	Snapshot func() []TagState
	// WriteTimeout bounds each frame write; Heartbeat spaces keepalives;
	// Buffer sizes the per-client subscriber channel.
	WriteTimeout time.Duration
	Heartbeat    time.Duration
	Buffer       int
}

// ServeHTTP streams events to one client until it disconnects, stalls
// past WriteTimeout, or the server shuts down.
func (es *EventStreamer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	// send writes one frame under the deadline and reports whether the
	// client is still worth keeping. SetWriteDeadline may be unsupported
	// by an exotic wrapped writer — then the write proceeds unbounded,
	// which is the legacy behaviour, not a new failure.
	send := func(format string, args ...any) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(es.WriteTimeout))
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	sub, ok := es.Bus.TrySubscribe(es.Buffer)
	if !ok {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "subscriber limit reached", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()

	identity := es.Bus.Identity()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if !send(": tagwatch event stream\n\n") {
		return
	}

	// delivered is the highest sequence this client is known to hold;
	// live events at or below it are replay overlap and are skipped.
	var delivered uint64
	resumed := false
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if ident, seq, ok := ParseCursor(lei); ok && ident == identity {
			// Replay after subscribing: anything published since the
			// subscription also sits in our channel, and the overlap is
			// deduplicated by the delivered watermark.
			if evs, ok := es.Bus.ReplayFrom(seq); ok {
				delivered = seq
				for _, ev := range evs {
					if !es.sendEvent(send, identity, ev) {
						return
					}
					delivered = ev.Seq
				}
				resumed = true
			}
		}
	}
	if !resumed {
		// No cursor, a foreign identity's cursor, or fallen off the ring:
		// anchor the client with an explicit reset. LastSeq is read BEFORE
		// the snapshot; because mutations publish before any later
		// snapshot can observe them, the snapshot reflects every event up
		// to (at least) that cursor.
		cursor := es.Bus.LastSeq()
		snap := es.Snapshot()
		data, err := json.Marshal(ResetPayload{Identity: identity, Cursor: cursor, Tags: snap})
		if err != nil {
			return
		}
		if !send("id: %s\nevent: %s\ndata: %s\n\n", FormatCursor(identity, cursor), EventReset, data) {
			return
		}
		delivered = cursor
	}

	hb := time.NewTicker(es.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			// A hole at the tail of a burst has no later publish to flush
			// its announcement; surface it now so the client learns of the
			// loss within one heartbeat instead of at the next event.
			sub.FlushGap()
			if !send(":keepalive dropped=%d gaps=%d\n\n", sub.Dropped(), sub.Gaps()) {
				return
			}
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if ev.Seq <= delivered {
				continue // replay overlap
			}
			if !es.sendEvent(send, identity, ev) {
				return
			}
			delivered = ev.Seq
		}
	}
}

func (es *EventStreamer) sendEvent(send func(string, ...any) bool, identity string, ev Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return true // unserialisable event: skip, keep the client
	}
	return send("id: %s\nevent: %s\ndata: %s\n\n", FormatCursor(identity, ev.Seq), ev.Type, data)
}
