package fleet

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"tagwatch/internal/core"
)

// regJSON canonicalises a registry for comparison: sorted snapshot,
// JSON-encoded (which also strips time.Time monotonic clocks, so a
// state that round-tripped through disk compares equal to the live one).
func regJSON(t *testing.T, r *Registry) string {
	t.Helper()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetStateRestartRoundTrip drives the full manager lifecycle: a
// fleet with a StateDir accumulates registry state, Stop writes the
// final snapshot, and a fresh manager over the same directory starts
// with the identical registry before any supervisor runs.
func TestFleetStateRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.StateDir = dir
	cfg.JournalFlush = 10 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m := New(cfg)
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	a := mustEPC(t, "30f4ab12cd0045e100000001")
	b := mustEPC(t, "30f4ab12cd0045e100000002")
	m.Registry().Observe("r0", core.Reading{EPC: a, Antenna: 1}, now)
	m.Registry().Observe("r0", core.Reading{EPC: b, Antenna: 2}, now)
	m.Registry().Observe("r1", core.Reading{EPC: b, Antenna: 1}, now.Add(time.Second)) // handoff
	m.Registry().UpdateAssessment("r1", b, true, 25)
	want := regJSON(t, m.Registry())
	if err := m.Stop(); err != nil {
		t.Fatal(err)
	}

	m2 := New(cfg)
	if err := m2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	if got := regJSON(t, m2.Registry()); got != want {
		t.Fatalf("restored registry differs:\n got %s\nwant %s", got, want)
	}
	st, ok := m2.Registry().Get(b)
	if !ok || !st.Mobile || st.IRR != 25 || st.Handoffs != 1 || st.Reader != "r1" {
		t.Fatalf("restored tag B: %+v", st)
	}
}

// TestFleetStateJournalSurvivesCrash exercises the machinery directly —
// no checkpoint goroutine, no timing: changes flushed to the journal
// but never snapshotted must survive a close-without-final-snapshot
// (the crash path), including drop tombstones and the drop-then-
// reobserve ordering where the fresh image must win on replay.
func TestFleetStateJournalSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.StateDir = dir

	a := mustEPC(t, "30f4ab12cd0045e100000010")
	b := mustEPC(t, "30f4ab12cd0045e100000011")
	old := time.Now().Add(-time.Hour)
	now := time.Now()

	// Incarnation 1: journal two tags, then crash (close with no
	// final flush or snapshot of anything still dirty).
	m := New(cfg)
	if err := m.openState(); err != nil {
		t.Fatal(err)
	}
	m.reg.Observe("r0", core.Reading{EPC: a, Antenna: 1}, old)
	m.reg.Observe("r0", core.Reading{EPC: b, Antenna: 2}, now)
	if err := m.flushJournal(); err != nil {
		t.Fatal(err)
	}
	m.reg.Observe("r0", core.Reading{EPC: b, Antenna: 3}, now) // dirty, never flushed
	if err := m.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: the flushed states are back, the unflushed update
	// is legitimately lost (it was never acked durable).
	m2 := New(cfg)
	if err := m2.openState(); err != nil {
		t.Fatal(err)
	}
	if m2.reg.Len() != 2 {
		t.Fatalf("recovered %d tags, want 2", m2.reg.Len())
	}
	if st, ok := m2.reg.Get(b); !ok || st.Antenna != 2 {
		t.Fatalf("tag B after crash: %+v (want flushed antenna 2)", st)
	}

	// Drop A, re-observe it fresh, flush: the batch carries the
	// tombstone before the new image.
	if n := m2.reg.Prune(now.Add(-30 * time.Minute)); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	m2.reg.Observe("r1", core.Reading{EPC: a, Antenna: 4}, now)
	if err := m2.flushJournal(); err != nil {
		t.Fatal(err)
	}
	if err := m2.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 3: replay lands on the fresh image — one read, new
	// reader — not the pre-drop history and not absence.
	m3 := New(cfg)
	if err := m3.openState(); err != nil {
		t.Fatal(err)
	}
	st, ok := m3.reg.Get(a)
	if !ok {
		t.Fatal("tag A vanished: drop tombstone replayed after its fresh image")
	}
	if st.Reads != 1 || st.Reader != "r1" || st.Antenna != 4 {
		t.Fatalf("tag A after drop+reobserve: %+v", st)
	}
	// A snapshot compacts the chain; a fourth incarnation restores from
	// it alone.
	if err := m3.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	want := regJSON(t, m3.reg)
	if err := m3.store.Close(); err != nil {
		t.Fatal(err)
	}

	m4 := New(cfg)
	if err := m4.openState(); err != nil {
		t.Fatal(err)
	}
	defer m4.store.Close()
	if got := regJSON(t, m4.reg); got != want {
		t.Fatalf("snapshot restore differs:\n got %s\nwant %s", got, want)
	}
}
