package fleet

// The fleet acceptance test: four emulated LLRP readers under one
// manager, one reader killed and restarted mid-run. The fleet must notice
// (supervisor leaves "up", observable over /api/readers), reconnect with
// backoff, and keep the merged registry consistent throughout — all under
// the race detector.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// startEmulator boots one reader emulator over a small stationary scene.
// addr may be "127.0.0.1:0" for an ephemeral port or a concrete address to
// rebind after a kill.
func startEmulator(t *testing.T, addr string, seed int64, codes []epc.EPC) (*llrp.Server, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i%8)*0.3, 0.5+float64(i/8)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 0
	srv := llrp.NewServer(reader.New(rcfg, scn), llrp.ServerConfig{})
	bound, err := srv.Listen(addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	return srv, bound.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func readerStatus(m *Manager, name string) ReaderStatus {
	for _, rs := range m.Readers() {
		if rs.Name == name {
			return rs
		}
	}
	return ReaderStatus{}
}

func TestFleetReconnectAndMergedRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration")
	}
	const perReader = 6
	rng := rand.New(rand.NewSource(42))

	// Distinct populations per reader, plus one shared tag visible to both
	// r0 and r1 so the registry records reader-to-reader handoffs.
	var pops [4][]epc.EPC
	for i := range pops {
		codes, err := epc.RandomPopulation(rng, perReader, 96)
		if err != nil {
			t.Fatal(err)
		}
		pops[i] = codes
	}
	shared, err := epc.RandomPopulation(rng, 1, 96)
	if err != nil {
		t.Fatal(err)
	}
	pops[0] = append(pops[0], shared[0])
	pops[1] = append(pops[1], shared[0])
	distinct := 4*perReader + 1

	var srvs [4]*llrp.Server
	var addrs [4]string
	for i := range srvs {
		srvs[i], addrs[i] = startEmulator(t, "127.0.0.1:0", int64(100+i), pops[i])
	}
	defer func() {
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}()

	cfg := DefaultConfig()
	cfg.Tagwatch.PhaseIIDwell = 300 * time.Millisecond
	cfg.DialTimeout = 2 * time.Second
	cfg.BackoffBase = 25 * time.Millisecond
	cfg.BackoffMax = 250 * time.Millisecond
	for i := range addrs {
		cfg.Readers = append(cfg.Readers, ReaderConfig{Name: fmt.Sprintf("r%d", i), Addr: addrs[i]})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(cfg)
	events := m.Bus().Subscribe(1024)
	defer events.Close()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	apiState := func(name string) (string, ReaderStatus) {
		resp, err := http.Get(ts.URL + "/api/readers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Readers []ReaderStatus `json:"readers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		for _, rs := range body.Readers {
			if rs.Name == name {
				return rs.State, rs
			}
		}
		return "", ReaderStatus{}
	}

	// Phase 1: everyone connects and the merged registry fills.
	waitFor(t, 15*time.Second, "all 4 readers up", func() bool {
		up := 0
		for _, rs := range m.Readers() {
			if rs.State == "up" {
				up++
			}
		}
		return up == 4
	})
	waitFor(t, 20*time.Second, "registry to merge every population", func() bool {
		return m.Registry().Len() == distinct
	})
	waitFor(t, 20*time.Second, "a handoff on the shared tag", func() bool {
		_, handoffs := m.Registry().Stats()
		return handoffs >= 1
	})
	if st, ok := m.Registry().Get(shared[0]); !ok || st.Handoffs < 1 ||
		(st.Readers["r0"] == 0 || st.Readers["r1"] == 0) {
		st, _ := m.Registry().Get(shared[0])
		t.Fatalf("shared tag state: %+v", st)
	}

	// Phase 2: kill r2 mid-run. The supervisor must leave "up" and start
	// dialing/backing off, observable over /api/readers.
	srvs[2].Close()
	srvs[2] = nil
	waitFor(t, 15*time.Second, "r2 to leave the up state over the API", func() bool {
		state, _ := apiState("r2")
		return state == "backoff" || state == "connecting"
	})
	attemptsWhileDown := readerStatus(m, "r2").Attempts
	waitFor(t, 15*time.Second, "r2 retry attempts to accumulate", func() bool {
		rs := readerStatus(m, "r2")
		return rs.Attempts > attemptsWhileDown && rs.LastError != ""
	})

	// The rest of the fleet keeps serving while r2 is down.
	for _, name := range []string{"r0", "r1", "r3"} {
		if rs := readerStatus(m, name); rs.State != "up" {
			t.Fatalf("%s degraded while r2 down: %+v", name, rs)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while partially up: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Phase 3: restart r2 on the same address; the supervisor reconnects
	// and the merged registry converges again (fresh sightings of r2's
	// population).
	restartAt := time.Now()
	srvs[2], _ = startEmulator(t, addrs[2], 300, pops[2])
	waitFor(t, 20*time.Second, "r2 to reconnect", func() bool {
		state, rs := apiState("r2")
		return state == "up" && rs.Reconnects >= 1
	})
	waitFor(t, 20*time.Second, "r2 tags fresh after restart", func() bool {
		st, ok := m.Registry().Get(pops[2][0])
		return ok && st.LastSeen.After(restartAt) && st.Reader == "r2"
	})
	if m.Registry().Len() != distinct {
		t.Fatalf("registry diverged across restart: %d tags, want %d", m.Registry().Len(), distinct)
	}

	// The bus saw the full story: r2 going up, leaving up, and coming back.
	var sawBackoff, sawReUp bool
	drain := time.After(5 * time.Second)
	for !(sawBackoff && sawReUp) {
		select {
		case ev := <-events.C():
			if ev.Type != EventReaderState || ev.Reader != "r2" {
				continue
			}
			if ev.State == "backoff" || ev.State == "connecting" && ev.Attempt > 1 {
				sawBackoff = true
			}
			if ev.State == "up" && sawBackoff {
				sawReUp = true
			}
		case <-drain:
			t.Fatalf("event stream incomplete: backoff=%v reUp=%v", sawBackoff, sawReUp)
		}
	}

	// Metrics reflect the reconnect.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`tagwatch_fleet_reader_up{reader="r2"} 1`,
		"tagwatch_fleet_registry_handoffs_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestSupervisorRetryBudget: a reader that never answers exhausts its
// capped retry budget and lands in the down state — and the failure is
// observable over every serving surface: /api/readers state, /healthz
// degradation, and /metrics counters.
func TestSupervisorRetryBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Readers = []ReaderConfig{{Name: "dead", Addr: "127.0.0.1:1"}}
	cfg.DialTimeout = 500 * time.Millisecond
	cfg.BackoffBase = 10 * time.Millisecond
	cfg.BackoffMax = 20 * time.Millisecond
	cfg.MaxFailures = 3

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(cfg)
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	waitFor(t, 10*time.Second, "supervisor to spend its retry budget", func() bool {
		rs := readerStatus(m, "dead")
		return rs.State == "down"
	})
	rs := readerStatus(m, "dead")
	if rs.Attempts != 3 || rs.ConsecutiveFailures != 3 || rs.LastError == "" {
		t.Fatalf("final status: %+v", rs)
	}
	if m.Healthy() {
		t.Fatal("fleet with only a dead reader must be unhealthy")
	}

	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	// /healthz must refuse with 503 and report itself degraded.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with every reader down: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(hbody), `"degraded"`) {
		t.Fatalf("healthz body missing degraded marker: %s", hbody)
	}

	// /metrics must expose the down state and the spent dial budget.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(mbody)
	for _, want := range []string{
		`tagwatch_fleet_reader_up{reader="dead"} 0`,
		`tagwatch_fleet_reader_state{reader="dead",state="down"} 1`,
		`tagwatch_fleet_reader_state{reader="dead",state="up"} 0`,
		`tagwatch_fleet_reader_dial_attempts_total{reader="dead"} 3`,
		`tagwatch_fleet_reader_failures_total{reader="dead"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
