package fleet

import (
	"context"
	"net"
	"testing"
)

func testStandby(t *testing.T) *Standby {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.QuarantineK = 0
	cfg.MaxTags = 0
	cfg.StateDir = t.TempDir()
	sb, err := NewStandby(cfg, lis)
	if err != nil {
		lis.Close()
		t.Fatal(err)
	}
	return sb
}

// TestStandbyPromoteWithoutStart: Promote on a standby that never
// started must first release the replication store NewStandby opened —
// otherwise the promoted Manager opens a second store over the same
// StateDir while the standby's handle still owns it.
func TestStandbyPromoteWithoutStart(t *testing.T) {
	sb := testStandby(t)
	m, err := sb.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote without start: %v", err)
	}
	if err := m.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Start(context.Background()); err == nil {
		t.Fatal("Start after Promote reported success over a released store")
	}
}

// TestStandbyStartAfterStopErrors: a Standby is single-shot. Before the
// fix, Start after Stop re-ran the replication loop over the closed
// listener and store — Accept failed instantly, the loop exited, and
// the node silently stopped replicating while Start returned nil.
func TestStandbyStartAfterStopErrors(t *testing.T) {
	sb := testStandby(t)
	ctx := context.Background()
	if err := sb.Start(ctx); err != nil {
		t.Fatal(err)
	}
	sb.Stop()
	if err := sb.Start(ctx); err == nil {
		t.Fatal("Start after Stop reported success while replication was dead")
	}
	sb.Stop() // terminal state: repeat Stops stay safe

	// Stop before any Start is equally terminal.
	sb2 := testStandby(t)
	sb2.Stop()
	if err := sb2.Start(ctx); err == nil {
		t.Fatal("Start after a never-started Stop reported success")
	}
}
