package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"tagwatch/internal/replication"
)

// Standby is a warm spare fleetd: it accepts a primary's replication
// stream into the configured StateDir and can be promoted into a live
// Manager at any moment. Until promotion it runs no supervisors, merges
// no readings, and serves only a minimal status surface; at promotion
// the replicated directory is restored through the exact same path a
// restarting primary uses.
type Standby struct {
	cfg Config

	mu       sync.Mutex
	repl     *replication.Standby
	cancel   context.CancelFunc
	done     chan struct{}
	started  time.Time
	stopped  bool
	promoted *Manager
}

// NewStandby builds a standby that applies replication into
// cfg.StateDir, listening for the primary on lis. The rest of cfg is
// held for promotion: Promote starts a Manager with exactly this
// configuration over the replicated state.
func NewStandby(cfg Config, lis net.Listener) (*Standby, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("fleet: standby requires StateDir (the replicated store is what gets promoted)")
	}
	repl, err := replication.NewStandby(lis, replication.StandbyConfig{
		Dir:            cfg.StateDir,
		Retain:         cfg.StateRetain,
		FrameTimeout:   cfg.ReplicationFrameTimeout,
		SessionTimeout: cfg.ReplicationSessionTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Standby{cfg: cfg, repl: repl}, nil
}

// Start begins accepting and applying the replication stream. The
// standby runs until ctx is cancelled, Stop, or Promote. A Standby is
// single-shot: Stop releases the listener and store, so a Start after
// Stop is an error rather than a silently dead replication loop.
func (s *Standby) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted != nil {
		return errors.New("fleet: standby already promoted")
	}
	if s.stopped {
		return errors.New("fleet: standby already stopped (the replication listener and store are released; build a new standby)")
	}
	if s.cancel != nil || s.done != nil {
		return errors.New("fleet: standby already started")
	}
	ctx, s.cancel = context.WithCancel(ctx)
	s.started = time.Now()
	s.done = make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		s.repl.Run(ctx)
	}(s.done)
	return nil
}

// Stop ends replication and releases the store directory — whether or
// not Start ever ran. The applied state stays on disk; a later
// NewStandby (or Promote on this one) picks it back up. Stop is
// terminal: this Standby cannot Start again afterwards.
func (s *Standby) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel = nil
	alreadyStopped := s.stopped
	s.stopped = true
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
		return
	}
	if !alreadyStopped && done == nil {
		// Never started: Run never ran, so nothing has released the
		// listener and store NewStandby opened. Do it here — otherwise
		// a Promote without a prior Start would open a second store
		// over the same StateDir while this one still holds it.
		_ = s.repl.Close() //tagwatch:allow-droppederr no session ever wrote through this store; the close error cannot affect promoted state
	}
}

// Promote turns the replicated directory into a live fleet: replication
// stops, the store closes, and a Manager starts over the same StateDir
// — restoring the registry through the identical snapshot+journal
// recovery a restarting primary uses. The returned Manager is started;
// the caller owns serving and stopping it. Everything the primary
// flushed-and-shipped before dying is present; at most the in-flight
// window (unflushed registry changes plus unacked frames) is lost.
func (s *Standby) Promote(ctx context.Context) (*Manager, error) {
	s.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted != nil {
		return s.promoted, nil
	}
	m := New(s.cfg)
	if err := m.Start(ctx); err != nil {
		return nil, fmt.Errorf("fleet: promote standby: %w", err)
	}
	s.promoted = m
	return m, nil
}

// Status reports the replication link state.
func (s *Standby) Status() replication.StandbyStatus {
	return s.repl.Status()
}

// Handler serves the standby's minimal HTTP surface:
//
//	GET /healthz     200 while the replication link is live, else 503
//	GET /api/status  role, link state, applied cursor, lag
//	GET /metrics     replication gauges in Prometheus text format
//
// It intentionally exposes no tag data: the standby's registry does not
// exist until promotion, and answering from half-applied state would be
// a lie.
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.repl.Status()
		code, state := http.StatusOK, "ok"
		if !st.Connected {
			code, state = http.StatusServiceUnavailable, "degraded"
		}
		writeJSON(w, code, struct {
			Status    string `json:"status"`
			Role      string `json:"role"`
			Connected bool   `json:"connected"`
		}{state, "standby", st.Connected})
	})
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		started := s.started
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, struct {
			Role        string                    `json:"role"`
			UptimeSecs  int64                     `json:"uptime_secs"`
			Replication replication.StandbyStatus `json:"replication"`
		}{"standby", int64(time.Since(started).Seconds()), s.repl.Status()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.repl.Status()
		var b []byte
		appendf := func(format string, args ...any) {
			b = fmt.Appendf(b, format, args...)
		}
		connected := 0
		if st.Connected {
			connected = 1
		}
		appendf("# HELP tagwatch_standby_connected Whether a primary's replication session is live.\n# TYPE tagwatch_standby_connected gauge\n")
		appendf("tagwatch_standby_connected %d\n", connected)
		appendf("# HELP tagwatch_standby_lag_bytes Primary committed-minus-applied journal bytes (-1 unknown).\n# TYPE tagwatch_standby_lag_bytes gauge\n")
		appendf("tagwatch_standby_lag_bytes %d\n", st.LagBytes)
		appendf("# HELP tagwatch_standby_records_applied_total Journal records applied from the stream.\n# TYPE tagwatch_standby_records_applied_total counter\n")
		appendf("tagwatch_standby_records_applied_total %d\n", st.Records)
		appendf("# HELP tagwatch_standby_snapshots_applied_total Snapshots applied from the stream.\n# TYPE tagwatch_standby_snapshots_applied_total counter\n")
		appendf("tagwatch_standby_snapshots_applied_total %d\n", st.Snapshots)
		appendf("# HELP tagwatch_standby_wipes_total Local stores discarded for a full resync.\n# TYPE tagwatch_standby_wipes_total counter\n")
		appendf("tagwatch_standby_wipes_total %d\n", st.Wipes)
		appendf("# HELP tagwatch_standby_sessions_total Replication sessions accepted.\n# TYPE tagwatch_standby_sessions_total counter\n")
		appendf("tagwatch_standby_sessions_total %d\n", st.Sessions)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	})
	return mux
}
