package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/core"
)

// testManager builds an unstarted manager and seeds its registry directly:
// the HTTP layer is exercised without any live reader.
func testManager(t *testing.T, readers ...ReaderConfig) *Manager {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Readers = readers
	m := New(cfg)
	return m
}

func TestHTTPTagsAndFilters(t *testing.T) {
	m := testManager(t)
	now := time.Now()
	a := mustEPC(t, "30f4ab12cd0045e100000010")
	b := mustEPC(t, "30f4ab12cd0045e100000011")
	m.Registry().Observe("r0", core.Reading{EPC: a, Antenna: 1}, now)
	m.Registry().Observe("r1", core.Reading{EPC: b, Antenna: 2}, now)
	m.Registry().UpdateAssessment("r1", b, true, 25)

	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	var got struct {
		Count int        `json:"count"`
		Tags  []TagState `json:"tags"`
	}
	fetchJSON(t, ts.URL+"/api/tags", &got)
	if got.Count != 2 || len(got.Tags) != 2 {
		t.Fatalf("tags: %+v", got)
	}
	if got.Tags[0].EPC >= got.Tags[1].EPC {
		t.Fatal("tags not sorted")
	}

	fetchJSON(t, ts.URL+"/api/tags?mobile=1", &got)
	if got.Count != 1 || got.Tags[0].EPC != b.String() || !got.Tags[0].Mobile {
		t.Fatalf("mobile filter: %+v", got)
	}
	fetchJSON(t, ts.URL+"/api/tags?reader=r0", &got)
	if got.Count != 1 || got.Tags[0].Reader != "r0" {
		t.Fatalf("reader filter: %+v", got)
	}

	var one TagState
	fetchJSON(t, ts.URL+"/api/tags/"+b.String(), &one)
	if one.IRR != 25 {
		t.Fatalf("single tag: %+v", one)
	}
	resp, err := http.Get(ts.URL + "/api/tags/30f4ab12cd0045e1000000ff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tag status %d", resp.StatusCode)
	}
}

func TestHTTPReadersAndHealth(t *testing.T) {
	// One configured reader that is never started: its supervisor reports
	// the zero state and the fleet is unhealthy.
	m := testManager(t, ReaderConfig{Name: "r0", Addr: "127.0.0.1:1"})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	var rs struct {
		Readers []ReaderStatus `json:"readers"`
	}
	fetchJSON(t, ts.URL+"/api/readers", &rs)
	if len(rs.Readers) != 1 || rs.Readers[0].Name != "r0" || rs.Readers[0].Addr != "127.0.0.1:1" {
		t.Fatalf("readers: %+v", rs)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no reader up: %d, want 503", resp.StatusCode)
	}
}

func TestHTTPMetricsFormat(t *testing.T) {
	m := testManager(t, ReaderConfig{Name: "r0", Addr: "127.0.0.1:1"})
	m.Registry().Observe("r0", core.Reading{EPC: mustEPC(t, "30f4ab12cd0045e100000020")}, time.Now())
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteString("\n")
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE tagwatch_fleet_reader_up gauge",
		`tagwatch_fleet_reader_up{reader="r0"} 0`,
		"tagwatch_fleet_registry_tags 1",
		"tagwatch_fleet_registry_observations_total 1",
		"tagwatch_fleet_bus_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestHTTPEventsSSE(t *testing.T) {
	m := testManager(t)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The subscription is registered before the handler writes its opening
	// comment; once we can read that, publishing is guaranteed to reach it.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	m.Bus().Publish(Event{Type: EventReaderState, Reader: "r9", At: time.Now(), State: "up"})

	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	// The stream must open with an explicit reset frame (the full-state
	// anchor a cursorless client needs), then carry the live event.
	var events []string
	var datas []string
	var id, event string
	for len(events) < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before events arrived")
			}
			if strings.HasPrefix(line, "id: ") {
				id = strings.TrimPrefix(line, "id: ")
			}
			if strings.HasPrefix(line, "event: ") {
				event = strings.TrimPrefix(line, "event: ")
			}
			if strings.HasPrefix(line, "data: ") {
				events = append(events, event)
				datas = append(datas, strings.TrimPrefix(line, "data: "))
			}
		case <-deadline:
			t.Fatal("no SSE event within deadline")
		}
	}
	if events[0] != string(EventReset) {
		t.Fatalf("first frame %q, want reset", events[0])
	}
	var reset ResetPayload
	if err := json.Unmarshal([]byte(datas[0]), &reset); err != nil {
		t.Fatalf("reset data %q: %v", datas[0], err)
	}
	if reset.Identity != m.Bus().Identity() {
		t.Fatalf("reset identity %q, want %q", reset.Identity, m.Bus().Identity())
	}
	if events[1] != string(EventReaderState) {
		t.Fatalf("event type %q", events[1])
	}
	var ev Event
	if err := json.Unmarshal([]byte(datas[1]), &ev); err != nil {
		t.Fatalf("data %q: %v", datas[1], err)
	}
	if ev.Reader != "r9" || ev.State != "up" {
		t.Fatalf("event payload: %+v", ev)
	}
	if wantID := FormatCursor(m.Bus().Identity(), ev.Seq); id != wantID {
		t.Fatalf("last id %q, want %q", id, wantID)
	}
}

// TestHTTPEventsSlowClientDisconnected is the regression test for SSE
// handler pinning: a client that connects and then never reads jams its
// TCP receive window, and without write deadlines the handler goroutine
// would block in Fprintf forever with its subscriber still registered.
// With SSEWriteTimeout set, the stalled write times out, the handler
// returns, and the subscriber count drops back to zero.
func TestHTTPEventsSlowClientDisconnected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SSEWriteTimeout = 200 * time.Millisecond
	m := New(cfg)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /api/events HTTP/1.1\r\nHost: fleet\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	// ...and never read a byte: the receive window fills and stays full.

	waitFor(t, 5*time.Second, "SSE subscriber to register", func() bool {
		_, _, subs := m.Bus().Stats()
		return subs == 1
	})

	// Flood with fat events until the handler's writes back up against
	// the dead window and the deadline fires. Socket buffers absorb the
	// first wave, so keep publishing until the handler gives up.
	payload := strings.Repeat("x", 1<<15)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, subs := m.Bus().Stats(); subs == 0 {
			return // handler exited and unsubscribed
		}
		for i := 0; i < 32; i++ {
			m.Bus().Publish(Event{Type: EventReaderState, Reader: "r0", At: time.Now(), State: "up", Error: payload})
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("stalled SSE client still pinning its handler after 15s")
}

func fetchJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
