package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/core"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// readFrames collects n SSE frames from an open stream, skipping
// comments, failing the test on timeout.
func readFrames(t *testing.T, br *bufio.Reader, n int) []sseFrame {
	t.Helper()
	type result struct {
		frames []sseFrame
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var out []sseFrame
		var f sseFrame
		for len(out) < n {
			line, err := br.ReadString('\n')
			if err != nil {
				done <- result{out, err}
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if f.Event != "" || f.Data != "" {
					out = append(out, f)
				}
				f = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				f.ID = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.Event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.Data = strings.TrimPrefix(line, "data: ")
			}
		}
		done <- result{out, nil}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("stream ended after %d/%d frames: %v", len(r.frames), n, r.err)
		}
		return r.frames
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %d SSE frames", n)
		return nil
	}
}

// openStream connects to /api/events with an optional Last-Event-ID and
// returns a reader positioned after the preamble comment.
func openStream(t *testing.T, url, lastEventID string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/api/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestSSEResumeMatrix is the resume-matrix acceptance test: every way a
// client can come back — cursor still covered, cursor fallen off the
// ring, cursor from a previous primary's identity, garbage cursor —
// must land on either a contiguous replay or an explicit reset. There
// is no silent path.
func TestSSEResumeMatrix(t *testing.T) {
	build := func(t *testing.T, ringCap int, publish int) (*Manager, *httptest.Server) {
		cfg := DefaultConfig()
		cfg.EventRingCap = ringCap
		m := New(cfg)
		for i := 0; i < publish; i++ {
			m.Bus().Publish(Event{Type: EventCycle, Reader: "r0", At: time.Unix(int64(i), 0)})
		}
		ts := httptest.NewServer(m.Handler())
		t.Cleanup(ts.Close)
		return m, ts
	}

	t.Run("within-ring-replays", func(t *testing.T) {
		m, ts := build(t, 64, 10)
		cursor := FormatCursor(m.Bus().Identity(), 7)
		br, closeBody := openStream(t, ts.URL, cursor)
		defer closeBody()
		frames := readFrames(t, br, 3)
		for i, f := range frames {
			wantID := FormatCursor(m.Bus().Identity(), uint64(8+i))
			if f.Event != string(EventCycle) || f.ID != wantID {
				t.Fatalf("frame %d = {%s %s}, want cycle %s", i, f.Event, f.ID, wantID)
			}
		}
	})

	t.Run("past-ring-resets", func(t *testing.T) {
		m, ts := build(t, 4, 20) // ring holds 17..20; cursor 7 fell off
		cursor := FormatCursor(m.Bus().Identity(), 7)
		br, closeBody := openStream(t, ts.URL, cursor)
		defer closeBody()
		f := readFrames(t, br, 1)[0]
		if f.Event != string(EventReset) {
			t.Fatalf("first frame %q, want reset", f.Event)
		}
		var payload ResetPayload
		if err := json.Unmarshal([]byte(f.Data), &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Identity != m.Bus().Identity() || payload.Cursor != 20 {
			t.Fatalf("reset anchor = %s:%d, want %s:20", payload.Identity, payload.Cursor, m.Bus().Identity())
		}
	})

	t.Run("previous-primary-identity-resets", func(t *testing.T) {
		m, ts := build(t, 64, 10)
		// A perfectly in-range seq under the WRONG identity must never
		// resume — it indexes a different sequence space.
		br, closeBody := openStream(t, ts.URL, "deadbeefdeadbeef:7")
		defer closeBody()
		f := readFrames(t, br, 1)[0]
		if f.Event != string(EventReset) {
			t.Fatalf("first frame %q, want reset", f.Event)
		}
		var payload ResetPayload
		if err := json.Unmarshal([]byte(f.Data), &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Identity != m.Bus().Identity() {
			t.Fatalf("reset identity %q, want the live bus's %q", payload.Identity, m.Bus().Identity())
		}
	})

	t.Run("malformed-cursor-resets", func(t *testing.T) {
		_, ts := build(t, 64, 10)
		br, closeBody := openStream(t, ts.URL, "not a cursor")
		defer closeBody()
		if f := readFrames(t, br, 1)[0]; f.Event != string(EventReset) {
			t.Fatalf("first frame %q, want reset", f.Event)
		}
	})

	t.Run("reset-snapshot-carries-registry", func(t *testing.T) {
		cfg := DefaultConfig()
		m := New(cfg)
		now := time.Now()
		m.Registry().Observe("r0", core.Reading{EPC: mustEPC(t, "30f4ab12cd0045e100000010"), Antenna: 1}, now)
		ts := httptest.NewServer(m.Handler())
		t.Cleanup(ts.Close)
		br, closeBody := openStream(t, ts.URL, "")
		defer closeBody()
		f := readFrames(t, br, 1)[0]
		if f.Event != string(EventReset) {
			t.Fatalf("first frame %q, want reset", f.Event)
		}
		var payload ResetPayload
		if err := json.Unmarshal([]byte(f.Data), &payload); err != nil {
			t.Fatal(err)
		}
		if len(payload.Tags) != 1 || payload.Tags[0].EPC != "30f4ab12cd0045e100000010" {
			t.Fatalf("reset snapshot = %+v, want the seeded tag", payload.Tags)
		}
		// The Observe published a tag event before the snapshot was cut,
		// so the anchor cursor must already cover it: live frames resume
		// after it with no duplicate delivery.
		if payload.Cursor != m.Bus().LastSeq() {
			t.Fatalf("reset cursor %d, want %d", payload.Cursor, m.Bus().LastSeq())
		}
	})

	t.Run("replay-then-live-is-contiguous", func(t *testing.T) {
		m, ts := build(t, 64, 10)
		cursor := FormatCursor(m.Bus().Identity(), 8)
		br, closeBody := openStream(t, ts.URL, cursor)
		defer closeBody()
		frames := readFrames(t, br, 2) // replayed 9, 10
		m.Bus().Publish(Event{Type: EventHandoff, EPC: "x"})
		frames = append(frames, readFrames(t, br, 1)...)
		for i, f := range frames {
			_, seq, ok := ParseCursor(f.ID)
			if !ok || seq != uint64(9+i) {
				t.Fatalf("frame %d id %q, want seq %d", i, f.ID, 9+i)
			}
		}
	})
}
