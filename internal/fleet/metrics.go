package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the fleet's operational counters in the
// Prometheus text exposition format (version 0.0.4) — hand-rolled so the
// repo stays standard-library only.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	readers := m.Readers()

	gauge("tagwatch_fleet_reader_up", "Whether the reader's LLRP session is established.")
	for _, rs := range readers {
		up := 0
		if rs.State == StateUp.String() {
			up = 1
		}
		fmt.Fprintf(&b, "tagwatch_fleet_reader_up{reader=%q} %d\n", rs.Name, up)
	}

	gauge("tagwatch_fleet_reader_state", "Supervisor state as a labelled 0/1 gauge.")
	states := []ReaderState{StateConnecting, StateUp, StateBackoff, StateDown}
	for _, rs := range readers {
		for _, st := range states {
			v := 0
			if rs.State == st.String() {
				v = 1
			}
			fmt.Fprintf(&b, "tagwatch_fleet_reader_state{reader=%q,state=%q} %d\n", rs.Name, st.String(), v)
		}
	}

	counter("tagwatch_fleet_reader_dial_attempts_total", "Connect attempts per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_dial_attempts_total{reader=%q} %d\n", rs.Name, rs.Attempts)
	}
	counter("tagwatch_fleet_reader_reconnects_total", "Successful re-established sessions per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_reconnects_total{reader=%q} %d\n", rs.Name, rs.Reconnects)
	}
	counter("tagwatch_fleet_reader_cycles_total", "Tagwatch cycles completed per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_cycles_total{reader=%q} %d\n", rs.Name, rs.Cycles)
	}
	counter("tagwatch_fleet_reader_cycle_errors_total", "Cycles that ended with a transport error per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_cycle_errors_total{reader=%q} %d\n", rs.Name, rs.CycleErrors)
	}
	counter("tagwatch_fleet_reader_failures_total", "Consecutive dial/session failures currently accumulated per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_failures_total{reader=%q} %d\n", rs.Name, rs.ConsecutiveFailures)
	}
	counter("tagwatch_fleet_reader_readings_total", "Tag readings delivered per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_readings_total{reader=%q} %d\n", rs.Name, rs.Readings)
	}

	tags := m.reg.Snapshot()
	mobile := 0
	perReader := make(map[string]int)
	for _, t := range tags {
		if t.Mobile {
			mobile++
		}
		perReader[t.Reader]++
	}
	gauge("tagwatch_fleet_registry_tags", "Distinct tags in the merged registry.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_tags %d\n", len(tags))
	gauge("tagwatch_fleet_registry_mobile_tags", "Tags currently assessed as mobile.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_mobile_tags %d\n", mobile)
	gauge("tagwatch_fleet_registry_owned_tags", "Tags last seen by each reader.")
	owners := make([]string, 0, len(perReader))
	for name := range perReader {
		owners = append(owners, name)
	}
	sort.Strings(owners)
	for _, name := range owners {
		fmt.Fprintf(&b, "tagwatch_fleet_registry_owned_tags{reader=%q} %d\n", name, perReader[name])
	}

	obs, handoffs := m.reg.Stats()
	counter("tagwatch_fleet_registry_observations_total", "Readings merged into the registry.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_observations_total %d\n", obs)
	counter("tagwatch_fleet_registry_handoffs_total", "Reader-to-reader tag transitions.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_handoffs_total %d\n", handoffs)

	published, dropped, subscribers := m.bus.Stats()
	counter("tagwatch_fleet_bus_events_total", "Events published on the fleet bus.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_events_total %d\n", published)
	counter("tagwatch_fleet_bus_dropped_total", "Events dropped across all slow subscribers.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_dropped_total %d\n", dropped)
	gauge("tagwatch_fleet_bus_subscribers", "Live bus subscribers.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_subscribers %d\n", subscribers)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
