package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the fleet's operational counters in the
// Prometheus text exposition format (version 0.0.4) — hand-rolled so the
// repo stays standard-library only.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	readers := m.Readers()

	gauge("tagwatch_fleet_reader_up", "Whether the reader's LLRP session is established.")
	for _, rs := range readers {
		up := 0
		if rs.State == StateUp.String() {
			up = 1
		}
		fmt.Fprintf(&b, "tagwatch_fleet_reader_up{reader=%q} %d\n", rs.Name, up)
	}

	gauge("tagwatch_fleet_reader_state", "Supervisor state as a labelled 0/1 gauge.")
	states := []ReaderState{StateConnecting, StateUp, StateBackoff, StateDown}
	for _, rs := range readers {
		for _, st := range states {
			v := 0
			if rs.State == st.String() {
				v = 1
			}
			fmt.Fprintf(&b, "tagwatch_fleet_reader_state{reader=%q,state=%q} %d\n", rs.Name, st.String(), v)
		}
	}

	counter("tagwatch_fleet_reader_dial_attempts_total", "Connect attempts per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_dial_attempts_total{reader=%q} %d\n", rs.Name, rs.Attempts)
	}
	counter("tagwatch_fleet_reader_reconnects_total", "Successful re-established sessions per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_reconnects_total{reader=%q} %d\n", rs.Name, rs.Reconnects)
	}
	counter("tagwatch_fleet_reader_cycles_total", "Tagwatch cycles completed per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_cycles_total{reader=%q} %d\n", rs.Name, rs.Cycles)
	}
	counter("tagwatch_fleet_reader_cycle_errors_total", "Cycles that ended with a transport error per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_cycle_errors_total{reader=%q} %d\n", rs.Name, rs.CycleErrors)
	}
	counter("tagwatch_fleet_reader_failures_total", "Consecutive dial/session failures currently accumulated per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_failures_total{reader=%q} %d\n", rs.Name, rs.ConsecutiveFailures)
	}
	counter("tagwatch_fleet_reader_readings_total", "Tag readings delivered per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_readings_total{reader=%q} %d\n", rs.Name, rs.Readings)
	}
	gauge("tagwatch_fleet_reader_tripped", "Whether the supervisor spent its panic-restart budget and is dead.")
	for _, rs := range readers {
		tripped := 0
		if rs.Tripped {
			tripped = 1
		}
		fmt.Fprintf(&b, "tagwatch_fleet_reader_tripped{reader=%q} %d\n", rs.Name, tripped)
	}
	gauge("tagwatch_fleet_reader_panic_restarts", "Panic restarts inside the current budget window per reader.")
	for _, rs := range readers {
		fmt.Fprintf(&b, "tagwatch_fleet_reader_panic_restarts{reader=%q} %d\n", rs.Name, rs.PanicRestarts)
	}

	tags := m.reg.Snapshot()
	mobile := 0
	perReader := make(map[string]int)
	for _, t := range tags {
		if t.Mobile {
			mobile++
		}
		perReader[t.Reader]++
	}
	gauge("tagwatch_fleet_registry_tags", "Distinct tags in the merged registry.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_tags %d\n", len(tags))
	gauge("tagwatch_fleet_registry_mobile_tags", "Tags currently assessed as mobile.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_mobile_tags %d\n", mobile)
	gauge("tagwatch_fleet_registry_owned_tags", "Tags last seen by each reader.")
	owners := make([]string, 0, len(perReader))
	for name := range perReader {
		owners = append(owners, name)
	}
	sort.Strings(owners)
	for _, name := range owners {
		fmt.Fprintf(&b, "tagwatch_fleet_registry_owned_tags{reader=%q} %d\n", name, perReader[name])
	}

	obs, handoffs := m.reg.Stats()
	counter("tagwatch_fleet_registry_observations_total", "Readings merged into the registry.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_observations_total %d\n", obs)
	counter("tagwatch_fleet_registry_handoffs_total", "Reader-to-reader tag transitions.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_handoffs_total %d\n", handoffs)

	evicted, quarantinedObs, qs := m.reg.GuardStats()
	counter("tagwatch_fleet_registry_evicted_total", "Tags evicted by the registry capacity bound.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_evicted_total %d\n", evicted)
	counter("tagwatch_fleet_registry_quarantined_total", "Observations refused while their EPC sat in quarantine.")
	fmt.Fprintf(&b, "tagwatch_fleet_registry_quarantined_total %d\n", quarantinedObs)
	counter("tagwatch_guard_quarantine_held_total", "Sightings held on probation by the ghost-tag quarantine.")
	fmt.Fprintf(&b, "tagwatch_guard_quarantine_held_total %d\n", qs.Held)
	counter("tagwatch_guard_quarantine_confirmed_total", "EPCs that cleared quarantine and were admitted.")
	fmt.Fprintf(&b, "tagwatch_guard_quarantine_confirmed_total %d\n", qs.Confirmed)
	counter("tagwatch_guard_quarantine_evicted_total", "Probationary EPCs displaced by quarantine ring overflow.")
	fmt.Fprintf(&b, "tagwatch_guard_quarantine_evicted_total %d\n", qs.Evicted)
	counter("tagwatch_guard_quarantine_expired_total", "Probation windows that lapsed and restarted.")
	fmt.Fprintf(&b, "tagwatch_guard_quarantine_expired_total %d\n", qs.Expired)
	gauge("tagwatch_guard_quarantine_size", "EPCs currently on probation.")
	fmt.Fprintf(&b, "tagwatch_guard_quarantine_size %d\n", qs.Size)

	published, dropped, subscribers := m.bus.Stats()
	counter("tagwatch_fleet_bus_events_total", "Events published on the fleet bus.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_events_total %d\n", published)
	counter("tagwatch_fleet_bus_dropped_total", "Events dropped across all slow subscribers.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_dropped_total %d\n", dropped)
	counter("tagwatch_fleet_bus_rejected_total", "Subscriptions refused by the subscriber limit.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_rejected_total %d\n", m.bus.Rejected())
	gauge("tagwatch_fleet_bus_subscribers", "Live bus subscribers.")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_subscribers %d\n", subscribers)
	counter("tagwatch_fleet_bus_gaps_total", "Synthetic gap events delivered across all subscribers (announced loss intervals).")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_gaps_total %d\n", m.bus.Gaps())
	gauge("tagwatch_fleet_bus_last_seq", "Newest published bus sequence number.")
	oldest, newest := m.bus.Coverage()
	fmt.Fprintf(&b, "tagwatch_fleet_bus_last_seq %d\n", newest)
	gauge("tagwatch_fleet_bus_ring_oldest_seq", "Oldest sequence still replayable from the ring (the resume floor).")
	fmt.Fprintf(&b, "tagwatch_fleet_bus_ring_oldest_seq %d\n", oldest)
	gauge("tagwatch_fleet_bus_ring_window", "Events currently retained for replay.")
	window := uint64(0)
	if newest >= oldest && oldest > 0 {
		window = newest - oldest + 1
	}
	fmt.Fprintf(&b, "tagwatch_fleet_bus_ring_window %d\n", window)
	counter("tagwatch_fleet_bus_subscriber_dropped_total", "Events dropped per live subscriber.")
	drops := m.bus.Drops()
	for _, sd := range drops {
		fmt.Fprintf(&b, "tagwatch_fleet_bus_subscriber_dropped_total{subscriber=\"%d\"} %d\n", sd.ID, sd.Dropped)
	}
	counter("tagwatch_fleet_bus_subscriber_gaps_total", "Gap events delivered per live subscriber.")
	for _, sd := range drops {
		fmt.Fprintf(&b, "tagwatch_fleet_bus_subscriber_gaps_total{subscriber=\"%d\"} %d\n", sd.ID, sd.Gaps)
	}

	ast := m.admission.Stats()
	counter("tagwatch_guard_api_admitted_total", "API requests that acquired a concurrency slot (or needed none).")
	fmt.Fprintf(&b, "tagwatch_guard_api_admitted_total %d\n", ast.Admitted)
	counter("tagwatch_guard_api_rate_limited_total", "API requests rejected 429 by the per-client token bucket.")
	fmt.Fprintf(&b, "tagwatch_guard_api_rate_limited_total %d\n", ast.RateLimited)
	counter("tagwatch_guard_api_shed_total", "API requests shed 503 by the concurrency limiter.")
	fmt.Fprintf(&b, "tagwatch_guard_api_shed_total %d\n", ast.Shed)
	counter("tagwatch_guard_api_panics_total", "HTTP handler panics contained into 500s.")
	fmt.Fprintf(&b, "tagwatch_guard_api_panics_total %d\n", ast.Panics)
	gauge("tagwatch_guard_api_concurrency_limit", "Current adaptive (AIMD) concurrency limit.")
	fmt.Fprintf(&b, "tagwatch_guard_api_concurrency_limit %d\n", ast.Limit)
	gauge("tagwatch_guard_api_inflight", "API requests currently holding slots.")
	fmt.Fprintf(&b, "tagwatch_guard_api_inflight %d\n", ast.Inflight)
	gauge("tagwatch_guard_api_clients", "Client token buckets currently tracked.")
	fmt.Fprintf(&b, "tagwatch_guard_api_clients %d\n", ast.Clients)

	counter("tagwatch_guard_panics_total", "Panics contained per supervised component.")
	for _, cc := range m.sentinel.Counts() {
		fmt.Fprintf(&b, "tagwatch_guard_panics_total{component=%q} %d\n", cc.Component, cc.Count)
	}

	if peers := m.ReplicationStatus(); len(peers) > 0 {
		gauge("tagwatch_replication_peer_connected", "Whether the replication session to the peer is live.")
		for _, p := range peers {
			v := 0
			if p.Connected {
				v = 1
			}
			fmt.Fprintf(&b, "tagwatch_replication_peer_connected{peer=%q} %d\n", p.Addr, v)
		}
		gauge("tagwatch_replication_peer_lag_bytes", "Committed-minus-acked journal bytes per peer (-1 when spanning generations).")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_lag_bytes{peer=%q} %d\n", p.Addr, p.LagBytes)
		}
		gauge("tagwatch_replication_peer_last_ack_age_ms", "Milliseconds since the peer's last ack (-1 before any).")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_last_ack_age_ms{peer=%q} %d\n", p.Addr, p.LastAckAgeMS)
		}
		counter("tagwatch_replication_peer_records_sent_total", "Journal records shipped per peer.")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_records_sent_total{peer=%q} %d\n", p.Addr, p.Records)
		}
		counter("tagwatch_replication_peer_snapshots_sent_total", "Snapshot re-anchors shipped per peer.")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_snapshots_sent_total{peer=%q} %d\n", p.Addr, p.Snapshots)
		}
		counter("tagwatch_replication_peer_resyncs_total", "Times the peer's cursor was re-anchored instead of resumed.")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_resyncs_total{peer=%q} %d\n", p.Addr, p.Resyncs)
		}
		counter("tagwatch_replication_peer_reconnects_total", "Replication sessions re-established per peer.")
		for _, p := range peers {
			fmt.Fprintf(&b, "tagwatch_replication_peer_reconnects_total{peer=%q} %d\n", p.Addr, p.Reconnects)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
