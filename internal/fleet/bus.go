package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType labels the kinds of events the fleet publishes.
type EventType string

const (
	// EventReaderState marks a supervisor state transition
	// (connecting/up/backoff/down).
	EventReaderState EventType = "reader_state"
	// EventCycle summarises one completed Tagwatch cycle on a reader.
	EventCycle EventType = "cycle"
	// EventHandoff marks a tag whose last-seen reader changed.
	EventHandoff EventType = "handoff"
	// EventStateStore reports a registry persistence failure (journal
	// flush, snapshot, or close); the fleet keeps serving from memory,
	// degraded to non-durable.
	EventStateStore EventType = "statestore"
	// EventPanic reports a contained panic: State is "contained" when the
	// component will be restarted under its budget, "tripped" when the
	// budget is spent and the component is dead for good.
	EventPanic EventType = "panic"
	// EventTag carries a full image of one tag's merged state, published
	// on every registry mutation (observation, assessment refresh).
	// Because images are absolute, applying them in sequence order — or
	// re-applying one already reflected in a snapshot — converges a
	// mirror to exactly the registry's state; this is the delta stream
	// the edge tier consumes.
	EventTag EventType = "tag"
	// EventTagDrop reports a tag removed from the registry (capacity
	// eviction or prune). Mirrors delete the EPC.
	EventTagDrop EventType = "tag_drop"
	// EventGap is synthetic, per-subscriber, and never enters the ring:
	// it tells ONE shed subscriber exactly which sequence range
	// [GapFrom, GapTo] it lost to a full buffer, instead of dropping
	// silently. Its Seq is GapTo, so a cursor that applies the gap lands
	// just past the hole. A consumer that cares about completeness
	// reconnects with its last contiguous cursor: the ring usually still
	// covers the hole (the subscriber's buffer overflowed, not the
	// ring), so the replay heals it; otherwise the server resets.
	EventGap EventType = "gap"
	// EventReset is the SSE-layer full-state anchor: a registry snapshot
	// plus the cursor it corresponds to (see ResetPayload). It is
	// synthesised per-connection by the streamer — never published on
	// the bus — when a client has no cursor, presents one from another
	// primary identity, or has fallen off the ring.
	EventReset EventType = "reset"
)

// Event is one fleet occurrence, shaped for direct JSON/SSE serialisation.
type Event struct {
	Type   EventType `json:"type"`
	Reader string    `json:"reader,omitempty"`
	At     time.Time `json:"at"`

	// Seq is the bus's monotonically increasing sequence number, stamped
	// by Publish. It is the SSE cursor: deliveries to one subscriber are
	// strictly increasing in Seq, and any hole is announced by a gap
	// event covering it.
	Seq uint64 `json:"seq,omitempty"`

	// reader_state fields.
	State   string `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// handoff fields.
	EPC  string `json:"epc,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// cycle payload.
	Cycle *CycleSummary `json:"cycle,omitempty"`

	// tag payload: the full merged image after the mutation. tag_drop
	// reuses EPC above.
	Tag *TagState `json:"tag,omitempty"`

	// gap payload: the inclusive sequence range this subscriber lost.
	GapFrom uint64 `json:"gap_from,omitempty"`
	GapTo   uint64 `json:"gap_to,omitempty"`
}

// CycleSummary is the per-cycle digest published on the bus.
type CycleSummary struct {
	Present       int   `json:"present"`
	Mobile        int   `json:"mobile"`
	Targets       int   `json:"targets"`
	Masks         int   `json:"masks"`
	FellBack      bool  `json:"fell_back"`
	PhaseIReads   int   `json:"phase1_reads"`
	PhaseIIReads  int   `json:"phase2_reads"`
	ScheduleCostU int64 `json:"schedule_cost_us"`
	// Err is set when the cycle's transport failed: its counts above are
	// partial (possibly zero) evidence, not an empty RF field.
	Err string `json:"err,omitempty"`
}

// DefaultRingCap is the journal depth a bus retains when the owner does
// not configure one: enough to ride out a reconnect plus a burst, small
// enough that a bus costs a few MiB at worst.
const DefaultRingCap = 4096

// Bus fans events out to subscribers over per-subscriber buffered
// channels. Publish never blocks: a subscriber whose buffer is full
// loses events, but never silently — the first delivery that fits again
// is preceded by a synthetic gap event naming the exact missed range.
//
// Every published event is stamped with a monotonically increasing
// sequence number and retained in a fixed-cap ring journal, so a
// consumer that lost events (shed buffer, dropped connection) can
// replay the hole from ReplayFrom as long as its cursor is still
// covered. The bus identity distinguishes sequence spaces across
// process restarts and failovers: a cursor minted against one identity
// is meaningless against another, and the SSE layer answers it with a
// reset instead of resuming into the wrong stream.
type Bus struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Subscriber
	// limit bounds TrySubscribe admissions; zero means unbounded.
	// Internal subscribers (checkpointing, tests) use Subscribe, which
	// ignores the limit — the bound exists for untrusted SSE clients.
	limit int

	// identity names this bus's sequence space (fresh per process).
	identity string
	// lastSeq is the newest stamped sequence number. ring is a circular
	// journal of the most recent events: the oldest retained event (seq
	// lastSeq-len(ring)+1) lives at ring[ringStart], ascending modulo
	// len(ring).
	lastSeq   uint64
	ring      []Event
	ringStart int
	ringCap   int

	published atomic.Uint64
	dropped   atomic.Uint64
	gaps      atomic.Uint64
	rejected  atomic.Uint64
}

// Subscriber is one registered event consumer.
type Subscriber struct {
	bus     *Bus
	id      int
	ch      chan Event
	dropped atomic.Uint64
	gapsOut atomic.Uint64
	closed  bool

	// gapFrom/gapTo (guarded by bus.mu) accumulate the range lost since
	// the last successful delivery; zero gapFrom means no pending gap.
	gapFrom uint64
	gapTo   uint64
}

// NewBus builds an empty event bus with a fresh identity and the
// default ring depth.
func NewBus() *Bus {
	var b [8]byte
	identity := "bus"
	if _, err := rand.Read(b[:]); err == nil {
		identity = hex.EncodeToString(b[:])
	}
	return &Bus{
		subs:     make(map[int]*Subscriber),
		identity: identity,
		ringCap:  DefaultRingCap,
	}
}

// Identity names this bus's sequence space. Cursors embed it; a cursor
// minted against a different identity (an earlier process, a demoted
// primary) must be answered with a reset, never a resume.
func (b *Bus) Identity() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.identity
}

// setIdentity overrides the identity (tests impersonating an old
// primary). Not for production use.
func (b *Bus) setIdentity(id string) {
	b.mu.Lock()
	b.identity = id
	b.mu.Unlock()
}

// SetRingCap resizes the replay ring (minimum 1). Call before serving;
// resizing discards retained events.
func (b *Bus) SetRingCap(n int) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	b.ringCap = n
	b.ring = nil
	b.ringStart = 0
	b.mu.Unlock()
}

// SetSubscriberLimit caps how many subscribers TrySubscribe will admit
// (zero = unbounded). Call before serving; not safe to change mid-flight
// semantics aside, it only gates future TrySubscribe calls.
func (b *Bus) SetSubscriberLimit(n int) {
	b.mu.Lock()
	b.limit = n
	b.mu.Unlock()
}

// Subscribe registers a consumer with the given channel buffer (minimum 1).
func (b *Bus) Subscribe(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s := &Subscriber{bus: b, id: b.nextID, ch: make(chan Event, buffer)}
	b.subs[s.id] = s
	return s
}

// TrySubscribe registers a consumer unless the subscriber limit is
// reached, in which case it returns (nil, false) and counts the
// rejection. This is the entry point for untrusted clients (SSE).
func (b *Bus) TrySubscribe(buffer int) (*Subscriber, bool) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	if b.limit > 0 && len(b.subs) >= b.limit {
		b.mu.Unlock()
		b.rejected.Add(1)
		return nil, false
	}
	b.nextID++
	s := &Subscriber{bus: b, id: b.nextID, ch: make(chan Event, buffer)}
	b.subs[s.id] = s
	b.mu.Unlock()
	return s, true
}

// Publish stamps the event with the next sequence number, journals it
// in the ring, and delivers it to every subscriber without blocking. A
// subscriber whose buffer is full starts (or extends) a pending gap;
// the next delivery that fits is preceded by a synthetic gap event
// carrying the exact missed range, so loss is always announced.
func (b *Bus) Publish(ev Event) {
	b.published.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastSeq++
	ev.Seq = b.lastSeq
	if b.ringCap > 0 {
		if len(b.ring) < b.ringCap {
			b.ring = append(b.ring, ev)
		} else {
			b.ring[b.ringStart] = ev
			b.ringStart = (b.ringStart + 1) % len(b.ring)
		}
	}
	for _, s := range b.subs {
		if s.gapFrom != 0 {
			gap := Event{
				Type: EventGap, At: ev.At,
				Seq: s.gapTo, GapFrom: s.gapFrom, GapTo: s.gapTo,
			}
			select {
			case s.ch <- gap:
				s.gapFrom, s.gapTo = 0, 0
				s.gapsOut.Add(1)
				b.gaps.Add(1)
			default:
				// Still wedged: this event joins the hole.
				s.gapTo = ev.Seq
				s.dropped.Add(1)
				b.dropped.Add(1)
				continue
			}
		}
		select {
		case s.ch <- ev:
		default:
			s.gapFrom, s.gapTo = ev.Seq, ev.Seq
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// LastSeq reports the newest stamped sequence number (0 before any
// publish).
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastSeq
}

// Coverage reports the ring's retained window: the oldest and newest
// sequence numbers replayable right now (both 0 when nothing has been
// published). A cursor c resumes cleanly iff c+1 >= oldest.
func (b *Bus) Coverage() (oldest, newest uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lastSeq == 0 || len(b.ring) == 0 {
		return 0, b.lastSeq
	}
	return b.lastSeq - uint64(len(b.ring)) + 1, b.lastSeq
}

// ReplayFrom copies every retained event with Seq > after, in sequence
// order. ok is false when the cursor has fallen off the ring — some
// event in (after, lastSeq] is no longer retained — in which case the
// caller must re-anchor (reset) instead of pretending the stream is
// contiguous. after >= lastSeq returns (nil, true): nothing to replay.
func (b *Bus) ReplayFrom(after uint64) (evs []Event, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if after >= b.lastSeq {
		return nil, true
	}
	if len(b.ring) == 0 {
		return nil, false
	}
	oldest := b.lastSeq - uint64(len(b.ring)) + 1
	if after+1 < oldest {
		return nil, false
	}
	evs = make([]Event, 0, b.lastSeq-after)
	for seq := after + 1; seq <= b.lastSeq; seq++ {
		idx := (b.ringStart + int(seq-oldest)) % len(b.ring)
		evs = append(evs, b.ring[idx])
	}
	return evs, true
}

// Stats reports lifetime publish/drop counts and the live subscriber count.
func (b *Bus) Stats() (published, dropped uint64, subscribers int) {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return b.published.Load(), b.dropped.Load(), n
}

// Gaps reports how many synthetic gap events the bus has delivered
// across all subscribers — each one an announced loss interval.
func (b *Bus) Gaps() uint64 { return b.gaps.Load() }

// Rejected reports how many TrySubscribe calls the limit turned away.
func (b *Bus) Rejected() uint64 { return b.rejected.Load() }

// SubscriberDrops is one live subscriber's loss accounting for /metrics.
type SubscriberDrops struct {
	ID      int
	Dropped uint64
	Gaps    uint64
}

// Drops snapshots the per-subscriber drop and gap counters, sorted by
// subscriber ID for deterministic metrics output.
func (b *Bus) Drops() []SubscriberDrops {
	b.mu.Lock()
	out := make([]SubscriberDrops, 0, len(b.subs))
	for _, s := range b.subs {
		out = append(out, SubscriberDrops{ID: s.id, Dropped: s.dropped.Load(), Gaps: s.gapsOut.Load()})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// C returns the subscriber's event channel. It is closed by Close.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped reports how many events this subscriber has lost to a full
// buffer.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Gaps reports how many gap events have been delivered to this
// subscriber — every one a loss interval it was told about.
func (s *Subscriber) Gaps() uint64 { return s.gapsOut.Load() }

// FlushGap delivers this subscriber's pending gap announcement now, if
// there is one and the buffer has room. Publish flushes pending gaps
// before the next delivery, but when the hole sits at the very tail of
// a burst there IS no next delivery — without a flush the loss would
// stay unannounced until the next event, which may be arbitrarily far
// away. Streamers call this on heartbeat ticks, bounding the
// announcement delay to one heartbeat. Ordering stays correct: every
// event already buffered precedes the hole, and any concurrent Publish
// serialises behind bus.mu.
func (s *Subscriber) FlushGap() bool {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed || s.gapFrom == 0 {
		return false
	}
	gap := Event{
		Type: EventGap, At: time.Now(),
		Seq: s.gapTo, GapFrom: s.gapFrom, GapTo: s.gapTo,
	}
	select {
	case s.ch <- gap:
		s.gapFrom, s.gapTo = 0, 0
		s.gapsOut.Add(1)
		b.gaps.Add(1)
		return true
	default:
		return false
	}
}

// Close unregisters the subscriber and closes its channel. Safe to call
// once per subscriber; pending buffered events are still readable.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s.id)
	close(s.ch)
}
