package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType labels the kinds of events the fleet publishes.
type EventType string

const (
	// EventReaderState marks a supervisor state transition
	// (connecting/up/backoff/down).
	EventReaderState EventType = "reader_state"
	// EventCycle summarises one completed Tagwatch cycle on a reader.
	EventCycle EventType = "cycle"
	// EventHandoff marks a tag whose last-seen reader changed.
	EventHandoff EventType = "handoff"
	// EventStateStore reports a registry persistence failure (journal
	// flush, snapshot, or close); the fleet keeps serving from memory,
	// degraded to non-durable.
	EventStateStore EventType = "statestore"
	// EventPanic reports a contained panic: State is "contained" when the
	// component will be restarted under its budget, "tripped" when the
	// budget is spent and the component is dead for good.
	EventPanic EventType = "panic"
)

// Event is one fleet occurrence, shaped for direct JSON/SSE serialisation.
type Event struct {
	Type   EventType `json:"type"`
	Reader string    `json:"reader,omitempty"`
	At     time.Time `json:"at"`

	// reader_state fields.
	State   string `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// handoff fields.
	EPC  string `json:"epc,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// cycle payload.
	Cycle *CycleSummary `json:"cycle,omitempty"`
}

// CycleSummary is the per-cycle digest published on the bus.
type CycleSummary struct {
	Present       int   `json:"present"`
	Mobile        int   `json:"mobile"`
	Targets       int   `json:"targets"`
	Masks         int   `json:"masks"`
	FellBack      bool  `json:"fell_back"`
	PhaseIReads   int   `json:"phase1_reads"`
	PhaseIIReads  int   `json:"phase2_reads"`
	ScheduleCostU int64 `json:"schedule_cost_us"`
	// Err is set when the cycle's transport failed: its counts above are
	// partial (possibly zero) evidence, not an empty RF field.
	Err string `json:"err,omitempty"`
}

// Bus fans events out to subscribers over per-subscriber buffered
// channels. Publish never blocks: a subscriber whose buffer is full loses
// the event and its drop counter increments, so one slow consumer cannot
// stall ingest.
type Bus struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Subscriber
	// limit bounds TrySubscribe admissions; zero means unbounded.
	// Internal subscribers (checkpointing, tests) use Subscribe, which
	// ignores the limit — the bound exists for untrusted SSE clients.
	limit int

	published atomic.Uint64
	dropped   atomic.Uint64
	rejected  atomic.Uint64
}

// Subscriber is one registered event consumer.
type Subscriber struct {
	bus     *Bus
	id      int
	ch      chan Event
	dropped atomic.Uint64
	closed  bool
}

// NewBus builds an empty event bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*Subscriber)}
}

// SetSubscriberLimit caps how many subscribers TrySubscribe will admit
// (zero = unbounded). Call before serving; not safe to change mid-flight
// semantics aside, it only gates future TrySubscribe calls.
func (b *Bus) SetSubscriberLimit(n int) {
	b.mu.Lock()
	b.limit = n
	b.mu.Unlock()
}

// Subscribe registers a consumer with the given channel buffer (minimum 1).
func (b *Bus) Subscribe(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s := &Subscriber{bus: b, id: b.nextID, ch: make(chan Event, buffer)}
	b.subs[s.id] = s
	return s
}

// TrySubscribe registers a consumer unless the subscriber limit is
// reached, in which case it returns (nil, false) and counts the
// rejection. This is the entry point for untrusted clients (SSE).
func (b *Bus) TrySubscribe(buffer int) (*Subscriber, bool) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	if b.limit > 0 && len(b.subs) >= b.limit {
		b.mu.Unlock()
		b.rejected.Add(1)
		return nil, false
	}
	b.nextID++
	s := &Subscriber{bus: b, id: b.nextID, ch: make(chan Event, buffer)}
	b.subs[s.id] = s
	b.mu.Unlock()
	return s, true
}

// Publish delivers an event to every subscriber without blocking.
func (b *Bus) Publish(ev Event) {
	b.published.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Stats reports lifetime publish/drop counts and the live subscriber count.
func (b *Bus) Stats() (published, dropped uint64, subscribers int) {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return b.published.Load(), b.dropped.Load(), n
}

// Rejected reports how many TrySubscribe calls the limit turned away.
func (b *Bus) Rejected() uint64 { return b.rejected.Load() }

// SubscriberDrops is one live subscriber's drop count for /metrics.
type SubscriberDrops struct {
	ID      int
	Dropped uint64
}

// Drops snapshots the per-subscriber drop counters, sorted by subscriber
// ID for deterministic metrics output.
func (b *Bus) Drops() []SubscriberDrops {
	b.mu.Lock()
	out := make([]SubscriberDrops, 0, len(b.subs))
	for _, s := range b.subs {
		out = append(out, SubscriberDrops{ID: s.id, Dropped: s.dropped.Load()})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// C returns the subscriber's event channel. It is closed by Close.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped reports how many events this subscriber has lost to a full
// buffer.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscriber and closes its channel. Safe to call
// once per subscriber; pending buffered events are still readable.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s.id)
	close(s.ch)
}
