package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
)

func mustEPC(t *testing.T, s string) epc.EPC {
	t.Helper()
	code, err := epc.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestRegistryMergeAndHandoff(t *testing.T) {
	reg := NewRegistry()
	code := mustEPC(t, "30f4ab12cd0045e100000001")
	t0 := time.Unix(1000, 0)

	if _, moved := reg.Observe("r0", core.Reading{EPC: code, Antenna: 1, Time: time.Second}, t0); moved {
		t.Fatal("first observation must not be a handoff")
	}
	if _, moved := reg.Observe("r0", core.Reading{EPC: code, Antenna: 2, Time: 2 * time.Second}, t0.Add(time.Second)); moved {
		t.Fatal("same-reader observation must not be a handoff")
	}
	ho, moved := reg.Observe("r1", core.Reading{EPC: code, Antenna: 1, Time: 3 * time.Second}, t0.Add(2*time.Second))
	if !moved || ho.From != "r0" || ho.To != "r1" {
		t.Fatalf("handoff: %+v moved=%v", ho, moved)
	}

	st, ok := reg.Get(code)
	if !ok {
		t.Fatal("tag missing")
	}
	if st.Reader != "r1" || st.Reads != 3 || st.Handoffs != 1 {
		t.Fatalf("state: %+v", st)
	}
	if st.Readers["r0"] != 2 || st.Readers["r1"] != 1 {
		t.Fatalf("per-reader counts: %+v", st.Readers)
	}
	if len(st.Transitions) != 1 || st.Transitions[0].From != "r0" {
		t.Fatalf("transitions: %+v", st.Transitions)
	}
	if obs, handoffs := reg.Stats(); obs != 3 || handoffs != 1 {
		t.Fatalf("stats: obs=%d handoffs=%d", obs, handoffs)
	}
}

func TestRegistryAssessmentOnlyFromOwner(t *testing.T) {
	reg := NewRegistry()
	code := mustEPC(t, "30f4ab12cd0045e100000002")
	now := time.Unix(2000, 0)
	reg.Observe("r0", core.Reading{EPC: code}, now)
	reg.Observe("r1", core.Reading{EPC: code}, now.Add(time.Second))

	reg.UpdateAssessment("r1", code, true, 30)
	reg.UpdateAssessment("r0", code, false, 1) // stale reader: ignored
	st, _ := reg.Get(code)
	if !st.Mobile || st.IRR != 30 {
		t.Fatalf("stale reader overwrote owner verdict: %+v", st)
	}
}

func TestRegistryTransitionTrailBounded(t *testing.T) {
	reg := NewRegistry()
	code := mustEPC(t, "30f4ab12cd0045e100000003")
	now := time.Unix(3000, 0)
	for i := 0; i < 3*maxTransitions; i++ {
		reg.Observe(fmt.Sprintf("r%d", i%2), core.Reading{EPC: code}, now.Add(time.Duration(i)*time.Second))
	}
	st, _ := reg.Get(code)
	if len(st.Transitions) != maxTransitions {
		t.Fatalf("trail length %d, want %d", len(st.Transitions), maxTransitions)
	}
	if st.Handoffs != uint64(3*maxTransitions-1) {
		t.Fatalf("handoff count %d", st.Handoffs)
	}
}

func TestRegistrySnapshotSortedAndPrune(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	codes, err := epc.RandomPopulation(rng, 50, 96)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(4000, 0)
	for i, c := range codes {
		reg.Observe("r0", core.Reading{EPC: c}, base.Add(time.Duration(i)*time.Minute))
	}
	snap := reg.Snapshot()
	if len(snap) != 50 {
		t.Fatalf("snapshot %d tags, want 50", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].EPC >= snap[i].EPC {
			t.Fatal("snapshot not sorted by EPC")
		}
	}
	if n := reg.Prune(base.Add(25 * time.Minute)); n != 25 {
		t.Fatalf("pruned %d, want 25", n)
	}
	if reg.Len() != 25 {
		t.Fatalf("len %d after prune, want 25", reg.Len())
	}
}

// TestRegistryConcurrent exercises the sharded locking under the race
// detector: many writers and readers over a shared population.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(11))
	codes, err := epc.RandomPopulation(rng, 64, 96)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("r%d", w)
			for i := 0; i < 500; i++ {
				c := codes[i%len(codes)]
				reg.Observe(name, core.Reading{EPC: c, Time: time.Duration(i)}, time.Unix(int64(i), 0))
				reg.UpdateAssessment(name, c, i%2 == 0, float64(i))
			}
		}(w)
	}
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				reg.Snapshot()
				reg.Len()
			}
		}
	}()
	wg.Wait()
	close(stopRead)
	rg.Wait()
	if obs, _ := reg.Stats(); obs != 4*500 {
		t.Fatalf("observations %d, want %d", obs, 4*500)
	}
	if reg.Len() != 64 {
		t.Fatalf("len %d, want 64", reg.Len())
	}
}
