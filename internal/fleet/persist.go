package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/statestore"
)

// Fleet state persistence: the merged tag registry survives restarts.
// The statestore snapshot is a versioned JSON envelope of every tag
// state; between snapshots a journal of incremental records keeps the
// durable view within one flush interval of live. Records are absolute
// (a full TagState image or a drop tombstone), so replay is last-wins.

// fleetStateVersion is the registry snapshot format version.
const fleetStateVersion = 1

type fleetEnvelope struct {
	Version int        `json:"version"`
	Tags    []TagState `json:"tags"`
}

// fleetRecord is one incremental journal entry: Type "tag" carries a
// full state image, "drop" a departure tombstone.
type fleetRecord struct {
	Type  string    `json:"type"`
	State *TagState `json:"state,omitempty"`
	EPC   string    `json:"epc,omitempty"`
}

// openState opens the statestore and replays the recovered registry.
// Called by Start before any supervisor runs, so restored state is in
// place before the first observation merges.
func (m *Manager) openState() error {
	st, err := statestore.Open(m.cfg.StateDir, statestore.Options{Retain: m.cfg.StateRetain, FS: m.cfg.StateFS})
	if err != nil {
		return fmt.Errorf("fleet: open state dir: %w", err)
	}
	rec := st.Recovery()
	if rec.HasSnapshot {
		var env fleetEnvelope
		if err := json.Unmarshal(rec.Snapshot, &env); err != nil {
			st.Close()
			return fmt.Errorf("fleet: decode state snapshot (gen %d): %w", rec.SnapshotGen, err)
		}
		if env.Version != fleetStateVersion {
			st.Close()
			return fmt.Errorf("fleet: state snapshot version %d, want %d", env.Version, fleetStateVersion)
		}
		for _, ts := range env.Tags {
			if err := m.reg.Restore(ts); err != nil {
				st.Close()
				return err
			}
		}
	}
	for i, raw := range rec.Records {
		if err := m.applyRecord(raw); err != nil {
			st.Close()
			return fmt.Errorf("fleet: replay journal record %d/%d: %w", i+1, len(rec.Records), err)
		}
	}
	// Restored state is durable already; don't re-journal it.
	m.reg.DrainDirty()
	m.store = st
	return nil
}

// applyRecord replays one journal record into the registry.
func (m *Manager) applyRecord(raw []byte) error {
	var rec fleetRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("fleet: decode journal record: %w", err)
	}
	switch rec.Type {
	case "tag":
		if rec.State == nil {
			return errors.New("fleet: tag record without state payload")
		}
		return m.reg.Restore(*rec.State)
	case "drop":
		code, err := epc.Parse(rec.EPC)
		if err != nil {
			return fmt.Errorf("fleet: drop record EPC %q: %w", rec.EPC, err)
		}
		m.reg.Drop(code)
		return nil
	default:
		return fmt.Errorf("fleet: unknown journal record type %q", rec.Type)
	}
}

// flushJournal drains the registry's dirty set into the journal. On
// return with nil every change up to the drain is on stable storage.
func (m *Manager) flushJournal() error {
	states, dropped := m.reg.DrainDirty()
	if len(states) == 0 && len(dropped) == 0 {
		return nil
	}
	recs := make([][]byte, 0, len(states)+len(dropped))
	// Drops first: a dropped-then-reobserved tag must replay as its
	// fresh image, not vanish.
	for _, code := range dropped {
		b, err := json.Marshal(fleetRecord{Type: "drop", EPC: code})
		if err != nil {
			return fmt.Errorf("fleet: marshal drop record: %w", err)
		}
		recs = append(recs, b)
	}
	for i := range states {
		b, err := json.Marshal(fleetRecord{Type: "tag", State: &states[i]})
		if err != nil {
			return fmt.Errorf("fleet: marshal tag record: %w", err)
		}
		recs = append(recs, b)
	}
	if err := m.store.AppendBatch(recs); err != nil {
		if errors.Is(err, statestore.ErrSnapshotNeeded) {
			// Re-anchor after a mid-chain recovery; the drained changes
			// are still live in the registry, so the snapshot covers them.
			return m.writeSnapshot()
		}
		return err
	}
	return nil
}

// writeSnapshot persists the full registry as a new snapshot generation.
func (m *Manager) writeSnapshot() error {
	env := fleetEnvelope{Version: fleetStateVersion, Tags: m.reg.Snapshot()}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("fleet: encode state snapshot: %w", err)
	}
	if err := m.store.WriteSnapshot(buf.Bytes()); err != nil {
		return err
	}
	// Anything drained-but-unappended or still dirty is covered by the
	// snapshot just written.
	m.reg.DrainDirty()
	return nil
}

// checkpointLoop periodically journals dirty registry entries and writes
// full snapshots until the fleet shuts down. Persistence failures are
// published on the bus (the statestore poisons itself on write failure,
// so after the first error the loop reports rather than retries).
func (m *Manager) checkpointLoop(ctx context.Context) {
	flush := time.NewTicker(m.cfg.JournalFlush)
	defer flush.Stop()
	snap := time.NewTicker(m.cfg.SnapshotInterval)
	defer snap.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-flush.C:
			if err := m.flushJournal(); err != nil {
				m.publishStateError("journal flush", err)
			}
		case <-snap.C:
			if err := m.writeSnapshot(); err != nil {
				m.publishStateError("snapshot", err)
			}
		}
	}
}

// publishStateError surfaces a persistence failure as a fleet event.
func (m *Manager) publishStateError(op string, err error) {
	m.bus.Publish(Event{
		Type:  EventStateStore,
		At:    time.Now(),
		State: op,
		Error: err.Error(),
	})
}

// closeState writes the final flush + snapshot and closes the store —
// the save-on-SIGTERM path, run by Stop after every supervisor exited.
// Failures are both published on the bus (for live observers) and
// returned joined (so the process exit code can go unclean).
func (m *Manager) closeState() error {
	var errs []error
	if err := m.flushJournal(); err != nil {
		m.publishStateError("final flush", err)
		errs = append(errs, fmt.Errorf("fleet: final flush: %w", err))
	}
	if err := m.writeSnapshot(); err != nil {
		m.publishStateError("final snapshot", err)
		errs = append(errs, fmt.Errorf("fleet: final snapshot: %w", err))
	}
	if err := m.store.Close(); err != nil {
		m.publishStateError("close", err)
		errs = append(errs, fmt.Errorf("fleet: close state: %w", err))
	}
	return errors.Join(errs...)
}
