package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/guard"
	"tagwatch/internal/llrp"
)

// ReaderState is the supervisor's connection state machine.
type ReaderState int32

const (
	// StateConnecting means a dial is in flight.
	StateConnecting ReaderState = iota
	// StateUp means the LLRP session is established and cycles are running.
	StateUp
	// StateBackoff means the last attempt or session failed and the
	// supervisor is waiting out a backoff delay before redialing.
	StateBackoff
	// StateDown means the retry budget is exhausted (or the fleet stopped)
	// and the supervisor has given up.
	StateDown
)

// String renders the state for APIs and logs.
func (s ReaderState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateUp:
		return "up"
	case StateBackoff:
		return "backoff"
	default:
		return "down"
	}
}

// ReaderStatus is the externally visible snapshot of one supervised
// reader.
type ReaderStatus struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Attempts counts every dial ever made; ConsecutiveFailures resets on a
	// successful session and drives the backoff exponent and retry budget.
	Attempts            int `json:"attempts"`
	ConsecutiveFailures int `json:"consecutive_failures"`
	Reconnects          int `json:"reconnects"`
	// CycleErrors counts cycles that ended with a transport error —
	// degraded operation even while the session nominally stays up.
	CycleErrors int    `json:"cycle_errors,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// Tripped means the supervisor spent its panic-restart budget and was
	// severed from the fleet; PanicRestarts counts how many panic
	// restarts are inside the current budget window.
	Tripped       bool `json:"tripped,omitempty"`
	PanicRestarts int  `json:"panic_restarts,omitempty"`
	// ConnectedAt is zero unless the reader is up.
	ConnectedAt time.Time `json:"connected_at,omitempty"`
	Cycles      int       `json:"cycles"`
	Readings    uint64    `json:"readings"`
}

// supervisor owns one reader connection for its whole lifetime: dial,
// run Tagwatch cycles, and on any failure reconnect with exponential
// backoff plus jitter under a capped retry budget.
type supervisor struct {
	name string
	addr string
	cfg  Config
	reg  *Registry
	bus  *Bus
	rng  *rand.Rand

	// breaker meters panic restarts (set by the Manager; nil in direct
	// unit-test construction, where containment is not in play).
	breaker *guard.Breaker
	// crash, when non-nil, runs at the top of every run() iteration. It
	// exists so tests can inject a deterministic panic into the supervisor
	// loop; production never sets it.
	crash func()

	mu          sync.Mutex
	state       ReaderState
	attempts    int
	consecFails int
	sessions    int // successful connects; reconnects = sessions - 1
	lastErr     error
	connectedAt time.Time
	cycles      int
	cycleErrors int
	tripped     bool

	readings atomic.Uint64
}

func newSupervisor(name, addr string, cfg Config, reg *Registry, bus *Bus, seed int64) *supervisor {
	return &supervisor{
		name: name,
		addr: addr,
		cfg:  cfg,
		reg:  reg,
		bus:  bus,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// status snapshots the supervisor state for the API layer.
func (s *supervisor) status() ReaderStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ReaderStatus{
		Name:                s.name,
		Addr:                s.addr,
		State:               s.state.String(),
		Attempts:            s.attempts,
		ConsecutiveFailures: s.consecFails,
		Cycles:              s.cycles,
		CycleErrors:         s.cycleErrors,
		Readings:            s.readings.Load(),
	}
	if s.sessions > 1 {
		st.Reconnects = s.sessions - 1
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	if s.state == StateUp {
		st.ConnectedAt = s.connectedAt
	}
	st.Tripped = s.tripped
	if s.breaker != nil {
		st.PanicRestarts, _ = s.breaker.Restarts()
	}
	return st
}

// trip marks the supervisor dead after its panic-restart budget is spent.
func (s *supervisor) trip(err error) {
	s.mu.Lock()
	s.tripped = true
	s.mu.Unlock()
	s.setState(StateDown, err)
}

// setState transitions the state machine and publishes the change.
func (s *supervisor) setState(state ReaderState, err error) {
	s.mu.Lock()
	s.state = state
	if err != nil {
		s.lastErr = err
	}
	attempt := s.attempts
	s.mu.Unlock()
	ev := Event{Type: EventReaderState, Reader: s.name, At: time.Now(), State: state.String(), Attempt: attempt}
	if err != nil {
		ev.Error = err.Error()
	}
	s.bus.Publish(ev)
}

// backoffDelay computes the next reconnect delay: exponential from the
// base, capped at the max, with ±20% jitter so a fleet of supervisors
// losing one switch does not redial in lockstep.
func (s *supervisor) backoffDelay() time.Duration {
	s.mu.Lock()
	n := s.consecFails
	s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	d := s.cfg.BackoffBase << uint(n-1)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	jitter := 0.8 + 0.4*s.rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// run is the supervisor main loop; it returns when ctx is cancelled or the
// retry budget is spent.
func (s *supervisor) run(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			s.setState(StateDown, nil)
			return
		}
		if s.crash != nil {
			s.crash()
		}
		s.mu.Lock()
		s.attempts++
		s.mu.Unlock()
		s.setState(StateConnecting, nil)

		dctx, cancel := context.WithTimeout(ctx, s.cfg.DialTimeout)
		conn, err := llrp.Dial(dctx, s.addr)
		cancel()
		if err == nil {
			s.mu.Lock()
			s.sessions++
			s.consecFails = 0
			s.connectedAt = time.Now()
			s.mu.Unlock()
			s.setState(StateUp, nil)

			serveErr := s.serve(ctx, conn)
			conn.Close()
			err = conn.Err()
			// A cycle-level failure (e.g. the cycle-error budget spent on a
			// link that never formally died) names the cause better than the
			// ErrClosed our own teardown produces.
			if serveErr != nil {
				err = serveErr
			}
		}

		if ctx.Err() != nil {
			s.setState(StateDown, nil)
			return
		}
		s.mu.Lock()
		s.consecFails++
		fails := s.consecFails
		s.mu.Unlock()
		if s.cfg.MaxFailures > 0 && fails >= s.cfg.MaxFailures {
			s.setState(StateDown, err)
			return
		}
		s.setState(StateBackoff, err)
		select {
		case <-time.After(s.backoffDelay()):
		case <-ctx.Done():
			s.setState(StateDown, nil)
			return
		}
	}
}

// serve runs Tagwatch cycles over an established connection until the
// session dies or the fleet stops, returning the reason the session was
// abandoned (nil on clean shutdown). Every reading is merged into the
// fleet registry as it is delivered; after each cycle the per-tag
// assessments (mobility verdict, IRR) are refreshed and a cycle summary
// is published.
//
// Cycle errors are consumed here rather than ignored: a cycle whose
// transport failed publishes its error on the bus, and a run of
// CycleErrorLimit consecutive failing cycles — or a formally dead
// connection — abandons the session so the reconnect loop takes over,
// instead of serving stale "empty field" data forever.
func (s *supervisor) serve(ctx context.Context, conn *llrp.Conn) error {
	// Closing the connection on cancel unblocks an in-flight RunCycle.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if s.cfg.OpTimeout > 0 {
		conn.SetOpTimeout(s.cfg.OpTimeout)
	}
	if s.cfg.KeepalivePeriod > 0 {
		kctx, cancel := context.WithTimeout(ctx, s.cfg.DialTimeout)
		err := conn.StartKeepalive(kctx, s.cfg.KeepalivePeriod, s.cfg.KeepaliveMisses)
		cancel()
		if err != nil {
			return fmt.Errorf("fleet: keepalive setup: %w", err)
		}
	}

	tw := core.New(s.cfg.Tagwatch, core.NewLLRPDevice(conn))
	tw.Subscribe(func(r core.Reading) {
		s.readings.Add(1)
		if ho, moved := s.reg.Observe(s.name, r, time.Now()); moved {
			s.bus.Publish(Event{
				Type: EventHandoff, Reader: s.name, At: ho.At,
				EPC: ho.EPC, From: ho.From, To: ho.To,
			})
		}
	})

	consecCycleErrs := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-conn.Done():
			return nil // conn.Err() names the cause
		default:
		}

		rep := tw.RunCycle()
		s.mu.Lock()
		s.cycles++
		if rep.Err != nil {
			s.cycleErrors++
			s.lastErr = rep.Err
		}
		s.mu.Unlock()

		mobile := make(map[string]bool, len(rep.Mobile))
		for _, code := range rep.Mobile {
			mobile[code.String()] = true
		}
		for _, code := range rep.Present {
			s.reg.UpdateAssessment(s.name, code, mobile[code.String()], tw.History().IRR(code))
		}
		summary := &CycleSummary{
			Present:       len(rep.Present),
			Mobile:        len(rep.Mobile),
			Targets:       len(rep.Targets),
			Masks:         len(rep.Plan.Masks),
			FellBack:      rep.FellBack,
			PhaseIReads:   len(rep.PhaseIReads),
			PhaseIIReads:  len(rep.PhaseIIReads),
			ScheduleCostU: rep.ScheduleCost.Microseconds(),
		}
		if rep.Err != nil {
			summary.Err = rep.Err.Error()
		}
		s.bus.Publish(Event{Type: EventCycle, Reader: s.name, At: time.Now(), Cycle: summary})

		if rep.Err != nil {
			consecCycleErrs++
			if err := conn.Err(); err != nil {
				return nil // formally dead; run() reports conn.Err()
			}
			if s.cfg.CycleErrorLimit > 0 && consecCycleErrs >= s.cfg.CycleErrorLimit {
				return fmt.Errorf("fleet: %d consecutive cycle errors, last: %w",
					consecCycleErrs, rep.Err)
			}
		} else {
			consecCycleErrs = 0
		}

		if s.cfg.CyclePause > 0 {
			select {
			case <-time.After(s.cfg.CyclePause):
			case <-ctx.Done():
				return nil
			case <-conn.Done():
				return nil
			}
		}
	}
}
