package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/guard"
)

// numShards spreads registry contention; readings from N cycle loops hash
// by EPC so unrelated tags rarely share a lock.
const numShards = 16

// maxTransitions bounds the per-tag handoff trail retained.
const maxTransitions = 8

// Handoff records a tag's last-seen reader changing — the physical
// interpretation is the tag moving between antenna fields.
type Handoff struct {
	EPC  string    `json:"epc"`
	From string    `json:"from"`
	To   string    `json:"to"`
	At   time.Time `json:"at"`
}

// TagState is the merged, fleet-wide view of one tag.
type TagState struct {
	EPC     string `json:"epc"`
	Reader  string `json:"reader"`
	Antenna int    `json:"antenna"`
	// LastSeen is the wall-clock time of the most recent observation from
	// any reader; DeviceTime is that reader's virtual timestamp.
	LastSeen   time.Time     `json:"last_seen"`
	DeviceTime time.Duration `json:"device_time_ns"`
	Reads      uint64        `json:"reads"`
	// Mobile and IRR carry the owning reader's most recent cycle
	// assessment: the Phase I mobility verdict and the individual reading
	// rate over the retained history.
	Mobile bool    `json:"mobile"`
	IRR    float64 `json:"irr_hz"`
	// Readers counts lifetime reads per reader; Handoffs counts
	// reader-to-reader transitions, with the most recent trail kept.
	Readers     map[string]uint64 `json:"readers"`
	Handoffs    uint64            `json:"handoffs"`
	Transitions []Handoff         `json:"transitions,omitempty"`
}

type tagEntry struct {
	code  epc.EPC
	state TagState
}

type regShard struct {
	mu   sync.RWMutex
	tags map[epc.EPC]*tagEntry
	// dirty and dropped accumulate changes since the last DrainDirty —
	// the incremental feed for the fleet's statestore journal.
	dirty   map[epc.EPC]bool
	dropped map[epc.EPC]bool
}

// Registry merges observations from every reader in the fleet into one
// view keyed by EPC. It is sharded for write concurrency: each cycle loop
// pushes readings as they arrive while the HTTP layer snapshots.
type Registry struct {
	shards [numShards]regShard

	// maxPerShard caps each shard (0 = unbounded): admitting a new tag to
	// a full shard evicts the shard's stalest tag with a journal
	// tombstone. quar, when set, gates admission of never-seen EPCs.
	maxPerShard int
	quar        *guard.Quarantine[epc.EPC]

	// onTag/onDrop, when set, are invoked under the owning shard's lock
	// after every mutation (full image) and removal (EPC). Holding the
	// lock across the call is deliberate: a consumer that later snapshots
	// the registry is guaranteed the snapshot already reflects any image
	// it has seen published, which is what lets the SSE layer anchor a
	// reset cursor without racing in-flight deltas. Callbacks must never
	// block (the bus's select-default publish qualifies).
	onTag  func(TagState)
	onDrop func(epcStr string)

	observations atomic.Uint64
	handoffs     atomic.Uint64
	evicted      atomic.Uint64
	quarantined  atomic.Uint64
}

// Notify registers change callbacks: onTag receives a full copied image
// after every merge/assessment, onDrop the EPC of every eviction or
// prune. Restore/Drop (recovery paths) are exempt — they reconstruct
// state that was already announced in a previous life. Call before the
// first Observe; not safe to change mid-flight.
func (g *Registry) Notify(onTag func(TagState), onDrop func(string)) {
	g.onTag = onTag
	g.onDrop = onDrop
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].tags = make(map[epc.EPC]*tagEntry)
		r.shards[i].dirty = make(map[epc.EPC]bool)
		r.shards[i].dropped = make(map[epc.EPC]bool)
	}
	return r
}

// Guard bounds the registry: maxTags caps the total population (rounded
// up to a per-shard cap; 0 = unbounded) and quar, when non-nil, holds
// never-seen EPCs on probation so ghost reads cannot allocate entries.
// Call before the first Observe; it is not safe to change mid-flight.
func (g *Registry) Guard(maxTags int, quar *guard.Quarantine[epc.EPC]) {
	if maxTags > 0 {
		g.maxPerShard = (maxTags + numShards - 1) / numShards
	} else {
		g.maxPerShard = 0
	}
	g.quar = quar
}

func (g *Registry) shard(code epc.EPC) *regShard {
	// FNV-1a over the raw EPC bytes.
	var h uint64 = 1469598103934665603
	for _, b := range code.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &g.shards[h%numShards]
}

// Observe merges one reading from a reader. It returns the handoff record
// and true when the tag's last-seen reader changed.
func (g *Registry) Observe(reader string, r core.Reading, at time.Time) (Handoff, bool) {
	sh := g.shard(r.EPC)
	var ho Handoff
	moved := false
	sh.mu.Lock()
	e, ok := sh.tags[r.EPC]
	if !ok {
		// A never-seen EPC must clear quarantine before it may allocate
		// anything: no entry, no dirty mark, no journal record. Ghost
		// reads die here. (The quarantine has its own lock but never
		// blocks, so holding the shard lock across it is safe.)
		if g.quar != nil && !g.quar.Observe(r.EPC, at) {
			sh.mu.Unlock()
			g.quarantined.Add(1)
			return Handoff{}, false
		}
		if g.maxPerShard > 0 && len(sh.tags) >= g.maxPerShard {
			g.evictStalestLocked(sh)
		}
		e = &tagEntry{code: r.EPC, state: TagState{
			EPC:     r.EPC.String(),
			Readers: make(map[string]uint64, 2),
		}}
		sh.tags[r.EPC] = e
	} else if e.state.Reader != reader {
		moved = true
		ho = Handoff{EPC: e.state.EPC, From: e.state.Reader, To: reader, At: at}
		e.state.Handoffs++
		e.state.Transitions = append(e.state.Transitions, ho)
		if len(e.state.Transitions) > maxTransitions {
			e.state.Transitions = e.state.Transitions[len(e.state.Transitions)-maxTransitions:]
		}
	}
	st := &e.state
	st.Reader = reader
	st.Antenna = r.Antenna
	st.LastSeen = at
	st.DeviceTime = r.Time
	st.Reads++
	st.Readers[reader]++
	sh.dirty[r.EPC] = true
	if g.onTag != nil {
		g.onTag(copyState(st))
	}
	sh.mu.Unlock()

	g.observations.Add(1)
	if moved {
		g.handoffs.Add(1)
	}
	return ho, moved
}

// evictStalestLocked removes the shard's least-recently-seen tag to make
// room, recording a journal tombstone so the durable state shrinks with
// the in-memory state. Ties break on EPC order for determinism. The scan
// is O(shard); with the quarantine in front, floods rarely confirm, so
// evictions stay rare enough that linear is the right trade against
// keeping a per-shard heap coherent on every observation.
func (g *Registry) evictStalestLocked(sh *regShard) {
	var victim epc.EPC
	var victimEPC string
	var oldest time.Time
	found := false
	for code, e := range sh.tags {
		if !found || e.state.LastSeen.Before(oldest) ||
			(e.state.LastSeen.Equal(oldest) && e.state.EPC < victimEPC) {
			victim, victimEPC, oldest = code, e.state.EPC, e.state.LastSeen
			found = true
		}
	}
	if !found {
		return
	}
	delete(sh.tags, victim)
	delete(sh.dirty, victim)
	sh.dropped[victim] = true
	g.evicted.Add(1)
	if g.onDrop != nil {
		g.onDrop(victimEPC)
	}
}

// UpdateAssessment records a reader's per-cycle verdict for a tag: the
// mobility classification and the reading-rate estimate. Only the reader
// that currently owns the tag (saw it last) may overwrite the verdict, so
// a stale reader cannot clobber a fresher assessment.
func (g *Registry) UpdateAssessment(reader string, code epc.EPC, mobile bool, irr float64) {
	sh := g.shard(code)
	sh.mu.Lock()
	if e, ok := sh.tags[code]; ok && e.state.Reader == reader {
		e.state.Mobile = mobile
		e.state.IRR = irr
		sh.dirty[code] = true
		if g.onTag != nil {
			g.onTag(copyState(&e.state))
		}
	}
	sh.mu.Unlock()
}

// Get returns a copy of one tag's merged state.
func (g *Registry) Get(code epc.EPC) (TagState, bool) {
	sh := g.shard(code)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.tags[code]
	if !ok {
		return TagState{}, false
	}
	return copyState(&e.state), true
}

// Len reports how many tags the registry holds.
func (g *Registry) Len() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.tags)
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot returns copies of every tag state, sorted by EPC for
// determinism.
func (g *Registry) Snapshot() []TagState {
	out := make([]TagState, 0, g.Len())
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for _, e := range sh.tags {
			out = append(out, copyState(&e.state))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EPC < out[j].EPC })
	return out
}

// Prune drops tags not seen since the cutoff, returning how many were
// removed.
func (g *Registry) Prune(cutoff time.Time) int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for code, e := range sh.tags {
			if e.state.LastSeen.Before(cutoff) {
				epcStr := e.state.EPC
				delete(sh.tags, code)
				delete(sh.dirty, code)
				sh.dropped[code] = true
				n++
				if g.onDrop != nil {
					g.onDrop(epcStr)
				}
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// DrainDirty returns a copy of every tag state changed since the
// previous drain plus the tags dropped in that window, clearing both
// sets. States are full images (absolute, last-wins on replay) and both
// slices are sorted for deterministic journal bytes. A tag dropped and
// re-observed since the last drain appears in BOTH — the journal writer
// must put the drop before the state so replay lands on the fresh image.
func (g *Registry) DrainDirty() (states []TagState, dropped []string) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for code := range sh.dirty {
			if e, ok := sh.tags[code]; ok {
				states = append(states, copyState(&e.state))
			}
		}
		for code := range sh.dropped {
			dropped = append(dropped, code.String())
		}
		if len(sh.dirty) > 0 {
			sh.dirty = make(map[epc.EPC]bool)
		}
		if len(sh.dropped) > 0 {
			sh.dropped = make(map[epc.EPC]bool)
		}
		sh.mu.Unlock()
	}
	sort.Slice(states, func(i, j int) bool { return states[i].EPC < states[j].EPC })
	sort.Strings(dropped)
	return states, dropped
}

// Restore installs one tag state (a recovered snapshot entry or journal
// record), replacing any existing entry for that EPC. Restored entries
// are not marked dirty — they are already durable. The state is
// validated before anything is touched.
func (g *Registry) Restore(st TagState) error {
	code, err := epc.Parse(st.EPC)
	if err != nil {
		return fmt.Errorf("fleet: restore tag %q: %w", st.EPC, err)
	}
	cp := copyState(&st)
	if cp.Readers == nil {
		cp.Readers = make(map[string]uint64, 1)
	}
	sh := g.shard(code)
	sh.mu.Lock()
	sh.tags[code] = &tagEntry{code: code, state: cp}
	sh.mu.Unlock()
	return nil
}

// Drop removes one tag (a recovered drop tombstone) without recording a
// new tombstone.
func (g *Registry) Drop(code epc.EPC) {
	sh := g.shard(code)
	sh.mu.Lock()
	delete(sh.tags, code)
	delete(sh.dirty, code)
	sh.mu.Unlock()
}

// Stats reports lifetime observation and handoff counts.
func (g *Registry) Stats() (observations, handoffs uint64) {
	return g.observations.Load(), g.handoffs.Load()
}

// GuardStats reports the overload counters: tags evicted by the capacity
// bound, observations refused while their EPC sat in quarantine, and the
// quarantine's own lifetime stats (zero when no quarantine is installed).
func (g *Registry) GuardStats() (evicted, quarantined uint64, qs guard.QuarantineStats) {
	if g.quar != nil {
		qs = g.quar.Stats()
	}
	return g.evicted.Load(), g.quarantined.Load(), qs
}

// copyState deep-copies the mutable maps/slices so callers can hold the
// result without racing the registry.
func copyState(st *TagState) TagState {
	out := *st
	out.Readers = make(map[string]uint64, len(st.Readers))
	for k, v := range st.Readers {
		out.Readers[k] = v
	}
	out.Transitions = append([]Handoff(nil), st.Transitions...)
	return out
}
