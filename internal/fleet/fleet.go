// Package fleet scales Tagwatch from one reader to many: a manager
// supervises N concurrent LLRP reader connections (dial, cycle, reconnect
// with exponential backoff and jitter), merges every reader's readings
// into one sharded registry keyed by EPC, fans fleet events out over a
// non-blocking bus, and serves the whole thing over HTTP — JSON APIs, an
// SSE event stream, a health probe, and Prometheus metrics.
//
// The paper's prototype drives a single ImpinJ R420; a deployment has
// aisles of them. The fleet layer is what turns the per-reader middleware
// into a service: no human restarts connections, no client talks LLRP,
// and a tag wandering between readers shows up as a handoff in a single
// merged view instead of two disagreeing ones.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/guard"
	"tagwatch/internal/replication"
	"tagwatch/internal/statestore"
)

// ReaderConfig names one reader to supervise. An empty Name defaults to
// the address.
type ReaderConfig struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Config tunes the fleet manager.
type Config struct {
	// Readers lists the LLRP readers to supervise.
	Readers []ReaderConfig
	// Tagwatch configures the per-reader middleware; every reader runs its
	// own instance over its own connection.
	Tagwatch core.Config
	// DialTimeout bounds each connect attempt.
	DialTimeout time.Duration
	// BackoffBase and BackoffMax bound the reconnect delay: the delay
	// doubles from the base on every consecutive failure, saturating at the
	// max, with ±20% jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFailures is the retry budget: a supervisor that fails this many
	// consecutive dials/sessions goes down for good. Zero retries forever.
	MaxFailures int
	// CyclePause idles each reader between cycles (duty cycling).
	CyclePause time.Duration
	// EventBuffer sizes per-subscriber bus buffers (SSE clients and the
	// like); a full buffer drops rather than blocks.
	EventBuffer int
	// KeepalivePeriod asks each reader for periodic KEEPALIVE messages
	// and arms the connection watchdog: KeepaliveMisses missed periods
	// kill the session with llrp.ErrKeepaliveTimeout and trigger a
	// reconnect. Zero disables the watchdog (a half-open link is then
	// only caught by per-operation deadlines).
	KeepalivePeriod time.Duration
	// KeepaliveMisses is the watchdog budget (minimum 2; default 3).
	KeepaliveMisses int
	// OpTimeout bounds each LLRP request/response exchange and socket
	// write; zero keeps llrp.DefaultOpTimeout.
	OpTimeout time.Duration
	// CycleErrorLimit forces a reconnect after this many consecutive
	// cycles ending in transport errors even if the connection has not
	// formally died — a session that cannot complete cycles is not
	// worth keeping. Zero means 3.
	CycleErrorLimit int
	// StateDir, when set, makes the merged tag registry durable: Start
	// restores it from the newest valid snapshot plus journal before any
	// supervisor runs, a background loop checkpoints it while the fleet
	// is up, and Stop writes a final snapshot.
	StateDir string
	// SnapshotInterval spaces full registry snapshots (default 60s).
	SnapshotInterval time.Duration
	// JournalFlush spaces incremental journal appends between snapshots
	// (default 2s) — the durability lag a crash can lose.
	JournalFlush time.Duration
	// StateRetain is how many snapshot generations to keep (default 2).
	StateRetain int
	// StateFS overrides the filesystem the durable store runs on; nil
	// uses the real one. The gauntlet injects a statestore.FaultFS here
	// to model full disks and failing media at runtime.
	StateFS statestore.FS
	// SSEWriteTimeout bounds each write to an /api/events client; a
	// client that cannot drain a frame within it is disconnected instead
	// of pinning the handler forever (default 10s).
	SSEWriteTimeout time.Duration
	// SSEHeartbeat spaces keepalive comment frames on an idle /api/events
	// stream so intermediaries don't sever quiet connections (default
	// 15s).
	SSEHeartbeat time.Duration
	// EventRingCap sizes the bus's replay ring — how many recent events a
	// reconnecting client can recover through Last-Event-ID before it is
	// answered with a reset instead (default 4096).
	EventRingCap int

	// ReplicateTo lists standby addresses to stream the durable registry
	// to (requires StateDir): the statestore journal is shipped over the
	// armored replication link so a standby can be promoted on this
	// node's death. Empty disables replication.
	ReplicateTo []string
	// ReplicationDial overrides the replication transport dial — the
	// hook chaos tests and the failover drill wrap with a fault
	// injector. Nil uses the default TCP dialer.
	ReplicationDial func(ctx context.Context, addr string) (net.Conn, error)
	// ReplicationHeartbeat spaces link heartbeats (zero keeps the
	// replication package default, 1s).
	ReplicationHeartbeat time.Duration
	// ReplicationBatchBytes bounds journal bytes per shipped frame (zero
	// keeps the replication package default, 1 MiB).
	ReplicationBatchBytes int64
	// ReplicationFrameTimeout bounds each replication frame I/O on both
	// ends of the link (zero keeps the replication package default, 5s).
	ReplicationFrameTimeout time.Duration
	// ReplicationBackoffBase and ReplicationBackoffMax shape the
	// shipper's reconnect backoff (zero keeps the replication package
	// defaults, 100ms and 5s).
	ReplicationBackoffBase time.Duration
	ReplicationBackoffMax  time.Duration
	// ReplicationSessionTimeout is how long a standby session survives
	// without any primary frame before it is dropped (zero keeps the
	// replication package default, 15s; must exceed the primary's
	// heartbeat interval).
	ReplicationSessionTimeout time.Duration

	// MaxTags caps the merged registry: when a shard is full, observing a
	// new tag evicts the stalest tag in that shard (with a journal
	// tombstone, so durable state shrinks too). Zero means unbounded —
	// the pre-guard behaviour, kept as the library default.
	MaxTags int
	// QuarantineK enables the ghost-tag quarantine: an EPC never seen
	// before must be sighted K times within QuarantineWindow (default
	// 10s) before it is admitted to the registry, motion models, or the
	// WAL. At most QuarantineCap EPCs (default 65536) sit on probation at
	// once; overflow evicts the oldest probe. K <= 1 disables quarantine.
	QuarantineK      int
	QuarantineWindow time.Duration
	QuarantineCap    int
	// APIRate enables per-client-IP rate limiting of the HTTP API at this
	// many requests/second with APIBurst depth (default 2×rate), tracking
	// at most APIMaxClients buckets (default 16384). Zero disables.
	APIRate       float64
	APIBurst      float64
	APIMaxClients int
	// APIMaxConcurrent enables the adaptive (AIMD) concurrency limit for
	// the HTTP API: at most this many requests run at once, shrinking
	// toward APIMinConcurrent (default 4) when requests blow the
	// APILatencyBudget (default 1s). Excess requests wait in a LIFO queue
	// of APIQueueDepth (default 64) for up to APIQueueTimeout (default
	// 200ms) before being shed with a 503. Zero disables.
	APIMaxConcurrent int
	APIMinConcurrent int
	APIQueueDepth    int
	APIQueueTimeout  time.Duration
	APILatencyBudget time.Duration
	// MaxSSEClients bounds concurrent /api/events subscribers (SSE
	// streams bypass the concurrency limit — they are long-lived by
	// design — so they need their own cap). Default 64.
	MaxSSEClients int
	// RestartBudget and RestartWindow meter supervisor panic restarts: a
	// supervisor that panics more than RestartBudget times (default 5)
	// within RestartWindow (default 1m) is tripped to dead instead of
	// restarted, so a crash loop cannot take the manager with it.
	RestartBudget int
	RestartWindow time.Duration
}

// DefaultConfig returns production-shaped fleet defaults (no readers).
func DefaultConfig() Config {
	return Config{
		Tagwatch:        core.DefaultConfig(),
		DialTimeout:     5 * time.Second,
		BackoffBase:     500 * time.Millisecond,
		BackoffMax:      30 * time.Second,
		MaxFailures:     0,
		EventBuffer:     256,
		KeepalivePeriod: 5 * time.Second,
		KeepaliveMisses: 3,
		CycleErrorLimit: 3,

		SnapshotInterval: 60 * time.Second,
		JournalFlush:     2 * time.Second,
		StateRetain:      2,
		SSEWriteTimeout:  10 * time.Second,
		SSEHeartbeat:     15 * time.Second,
		EventRingCap:     DefaultRingCap,

		QuarantineWindow: 10 * time.Second,
		QuarantineCap:    65536,
		APIMinConcurrent: 4,
		APIQueueDepth:    64,
		APIQueueTimeout:  200 * time.Millisecond,
		APILatencyBudget: time.Second,
		MaxSSEClients:    64,
		RestartBudget:    5,
		RestartWindow:    time.Minute,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = d.BackoffMax
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = d.EventBuffer
	}
	if c.KeepaliveMisses <= 0 {
		c.KeepaliveMisses = d.KeepaliveMisses
	}
	if c.CycleErrorLimit <= 0 {
		c.CycleErrorLimit = d.CycleErrorLimit
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = d.SnapshotInterval
	}
	if c.JournalFlush <= 0 {
		c.JournalFlush = d.JournalFlush
	}
	if c.StateRetain <= 0 {
		c.StateRetain = d.StateRetain
	}
	if c.SSEWriteTimeout <= 0 {
		c.SSEWriteTimeout = d.SSEWriteTimeout
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = d.SSEHeartbeat
	}
	if c.EventRingCap <= 0 {
		c.EventRingCap = d.EventRingCap
	}
	if c.QuarantineWindow <= 0 {
		c.QuarantineWindow = d.QuarantineWindow
	}
	if c.QuarantineCap <= 0 {
		c.QuarantineCap = d.QuarantineCap
	}
	if c.APIMinConcurrent <= 0 {
		c.APIMinConcurrent = d.APIMinConcurrent
	}
	if c.APIQueueTimeout <= 0 {
		c.APIQueueTimeout = d.APIQueueTimeout
	}
	if c.APILatencyBudget <= 0 {
		c.APILatencyBudget = d.APILatencyBudget
	}
	if c.MaxSSEClients <= 0 {
		c.MaxSSEClients = d.MaxSSEClients
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = d.RestartBudget
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = d.RestartWindow
	}
	return c
}

// Manager supervises the fleet: one supervisor goroutine per reader, a
// shared registry, and a shared event bus.
type Manager struct {
	cfg Config
	reg *Registry
	bus *Bus

	// sentinel contains panics in supervised components; admission guards
	// the HTTP API. Both are always present (zero config degrades them to
	// pass-through plus panic containment).
	sentinel  *guard.Sentinel
	admission *guard.Admission

	// store is the durable registry backing; nil when StateDir is unset.
	store *statestore.Store
	// shipper streams the store's journal to standbys; nil when
	// ReplicateTo is empty.
	shipper *replication.Shipper

	mu      sync.Mutex
	sups    []*supervisor
	ingests []*Ingest
	cancel  context.CancelFunc
	started time.Time
	wg      sync.WaitGroup
}

// New builds a manager. Call Start to begin supervising.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg: cfg,
		reg: NewRegistry(),
		bus: NewBus(),
	}
	m.bus.SetSubscriberLimit(cfg.MaxSSEClients)
	m.bus.SetRingCap(cfg.EventRingCap)
	// Every registry mutation becomes a bus event (full image / drop),
	// published under the owning shard lock: the delta stream the edge
	// tier mirrors. Publish never blocks, so holding the lock is safe.
	m.reg.Notify(
		func(st TagState) {
			m.bus.Publish(Event{Type: EventTag, Reader: st.Reader, At: st.LastSeen, EPC: st.EPC, Tag: &st})
		},
		func(epcStr string) {
			m.bus.Publish(Event{Type: EventTagDrop, At: time.Now(), EPC: epcStr})
		},
	)
	var quar *guard.Quarantine[epc.EPC]
	if cfg.QuarantineK > 1 {
		quar = guard.NewQuarantine[epc.EPC](cfg.QuarantineK, cfg.QuarantineWindow, cfg.QuarantineCap)
	}
	m.reg.Guard(cfg.MaxTags, quar)
	m.sentinel = guard.NewSentinel(func(component string, perr *guard.PanicError) {
		m.bus.Publish(Event{
			Type: EventPanic, Reader: component, At: time.Now(),
			State: "contained", Error: perr.Error(),
		})
	})
	m.admission = guard.NewAdmission(guard.AdmissionConfig{
		RatePerClient: cfg.APIRate,
		Burst:         cfg.APIBurst,
		MaxClients:    cfg.APIMaxClients,
		MaxConcurrent: cfg.APIMaxConcurrent,
		MinConcurrent: cfg.APIMinConcurrent,
		QueueDepth:    cfg.APIQueueDepth,
		QueueTimeout:  cfg.APIQueueTimeout,
		LatencyBudget: cfg.APILatencyBudget,
		// Health and metrics must answer during the exact overload this
		// layer manages; SSE streams are long-lived by design and bounded
		// by the subscriber cap instead of a concurrency slot.
		Bypass: func(r *http.Request) bool {
			return r.URL.Path == "/healthz" || r.URL.Path == "/metrics"
		},
		NoSlot: func(r *http.Request) bool { return r.URL.Path == "/api/events" },
	})
	for i, rc := range cfg.Readers {
		name := rc.Name
		if name == "" {
			name = rc.Addr
		}
		// Derive a stable per-supervisor jitter seed from the identity so
		// two supervisors never share a backoff schedule.
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s|%d", name, rc.Addr, i)
		s := newSupervisor(name, rc.Addr, cfg, m.reg, m.bus, int64(h.Sum64()))
		s.breaker = guard.NewBreaker(guard.BreakerConfig{
			Budget: cfg.RestartBudget,
			Window: cfg.RestartWindow,
		})
		m.sups = append(m.sups, s)
	}
	return m
}

// Start launches every supervisor. The fleet runs until ctx is cancelled
// or Stop is called. With a StateDir configured, the registry is
// restored from disk BEFORE the first supervisor runs (so recovered
// state never races live observations) and a checkpoint loop keeps it
// durable; a state directory that cannot be opened or restored fails
// Start outright rather than running amnesiac.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cancel != nil {
		return nil // already started
	}
	if m.cfg.StateDir != "" {
		if err := m.openState(); err != nil {
			return err
		}
	}
	if len(m.cfg.ReplicateTo) > 0 {
		if m.store == nil {
			return errors.New("fleet: ReplicateTo requires StateDir (replication ships the durable journal)")
		}
		m.shipper = replication.NewShipper(m.store, replication.Config{
			Peers:         m.cfg.ReplicateTo,
			Dial:          m.cfg.ReplicationDial,
			Heartbeat:     m.cfg.ReplicationHeartbeat,
			MaxBatchBytes: m.cfg.ReplicationBatchBytes,
			FrameTimeout:  m.cfg.ReplicationFrameTimeout,
			BackoffBase:   m.cfg.ReplicationBackoffBase,
			BackoffMax:    m.cfg.ReplicationBackoffMax,
		})
	}
	ctx, m.cancel = context.WithCancel(ctx)
	m.started = time.Now()
	if m.store != nil {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			// A checkpoint-loop panic degrades the fleet to non-durable; it
			// must not kill the process. The sentinel has already counted
			// and published it. //tagwatch:allow-droppederr containment only; no restart decision rides on this error
			_ = m.sentinel.Do("checkpoint", func() { m.checkpointLoop(ctx) })
		}()
	}
	if m.shipper != nil {
		shipper := m.shipper
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			// A replication panic degrades the fleet to unreplicated, not
			// dead: the registry and its durability are untouched.
			//tagwatch:allow-droppederr containment only; the sentinel counted and published the panic
			_ = m.sentinel.Do("replication", func() { shipper.Run(ctx) })
		}()
	}
	for _, s := range m.sups {
		s := s
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.runSupervised(ctx, s)
		}()
	}
	return nil
}

// runSupervised runs one supervisor under panic containment: a panic
// anywhere in its dial/cycle machinery is counted and published, then the
// supervisor restarts after the breaker's backoff — until the restart
// budget for the window is spent, at which point the supervisor trips to
// dead and stays there while the rest of the fleet keeps running.
func (m *Manager) runSupervised(ctx context.Context, s *supervisor) {
	for {
		err := m.sentinel.Do("supervisor."+s.name, func() { s.run(ctx) })
		if err == nil {
			return // clean exit: ctx cancelled or retry budget spent
		}
		delay, ok := s.breaker.Next(time.Now())
		if !ok {
			s.trip(err)
			m.bus.Publish(Event{
				Type: EventPanic, Reader: s.name, At: time.Now(),
				State: "tripped", Error: err.Error(),
			})
			return
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			s.setState(StateDown, nil)
			return
		}
	}
}

// Stop cancels every supervisor and waits for them to exit, then — when
// the registry is durable — writes the final flush and snapshot and
// closes the store. The returned error surfaces a failed final save: a
// node that could not persist its last state must exit unclean, not
// pretend the shutdown was safe (the failure is also published on the
// bus for live observers).
func (m *Manager) Stop() error {
	m.mu.Lock()
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.wg.Wait()
	m.mu.Lock()
	store := m.store
	m.mu.Unlock()
	var err error
	if store != nil {
		err = m.closeState()
		m.mu.Lock()
		m.store = nil
		m.shipper = nil
		m.mu.Unlock()
	}
	return err
}

// Kill simulates abrupt process death for failover drills: cancel
// everything and close the store WITHOUT the final flush and snapshot,
// so registry changes newer than the last checkpoint are lost exactly
// as a real crash would lose them.
func (m *Manager) Kill() {
	m.mu.Lock()
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.wg.Wait()
	m.mu.Lock()
	store := m.store
	m.store = nil
	m.shipper = nil
	m.mu.Unlock()
	if store != nil {
		store.Close()
	}
}

// SyncReplication flushes the dirty registry into the journal and waits
// until every replication peer has acked the committed cursor — the
// quiesce point a planned failover (and the drill) uses to make the
// in-flight window empty. Without replication it just flushes.
func (m *Manager) SyncReplication(ctx context.Context) error {
	m.mu.Lock()
	store, shipper := m.store, m.shipper
	m.mu.Unlock()
	if store == nil {
		return errors.New("fleet: no durable state to sync")
	}
	if err := m.flushJournal(); err != nil {
		return fmt.Errorf("fleet: sync flush: %w", err)
	}
	if shipper == nil {
		return nil
	}
	return shipper.WaitSynced(ctx)
}

// ReplicationStatus snapshots every replication peer's state; nil when
// replication is disabled.
func (m *Manager) ReplicationStatus() []replication.PeerStatus {
	m.mu.Lock()
	shipper := m.shipper
	m.mu.Unlock()
	if shipper == nil {
		return nil
	}
	return shipper.Status()
}

// Registry exposes the merged tag view.
func (m *Manager) Registry() *Registry { return m.reg }

// Bus exposes the fleet event bus.
func (m *Manager) Bus() *Bus { return m.bus }

// Readers snapshots the status of every supervised reader, in
// configuration order, followed by any synthetic ingests in registration
// order.
func (m *Manager) Readers() []ReaderStatus {
	m.mu.Lock()
	ingests := append([]*Ingest(nil), m.ingests...)
	m.mu.Unlock()
	out := make([]ReaderStatus, 0, len(m.sups)+len(ingests))
	for _, s := range m.sups {
		out = append(out, s.status())
	}
	for _, in := range ingests {
		out = append(out, in.status())
	}
	return out
}

// Healthy reports whether at least one reader is up (the /healthz
// predicate). A fleet with no readers configured is trivially healthy.
func (m *Manager) Healthy() bool {
	if len(m.sups) == 0 {
		return true
	}
	for _, s := range m.sups {
		if s.status().State == StateUp.String() {
			return true
		}
	}
	return false
}

// Started reports when Start was called (zero before then).
func (m *Manager) Started() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started
}
