package fleet

// The chaos regression suite: fleet + Tagwatch driven against an
// emulated LLRP reader behind the chaos fault injector, under the race
// detector. The scenarios pin the full degradation story end to end —
// a link going half-open is detected by the keepalive watchdog, cycles
// surface errors instead of empty fields, the supervisor reconnects,
// and the fleet recovers — plus sustained progress through a storm of
// probabilistic corruption and resets.

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// startChaosEmulator boots a reader emulator served through the given
// injector's listener.
func startChaosEmulator(t *testing.T, inj *chaos.Injector, seed int64, codes []epc.EPC) (*llrp.Server, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i%8)*0.3, 0.5+float64(i/8)*0.3, 0)})
	}
	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 0
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := llrp.NewServer(reader.New(rcfg, scn), llrp.ServerConfig{})
	srv.Serve(inj.Listener(lis))
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// eventLog collects bus events in the background for later assertions.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func collectEvents(sub *Subscriber) *eventLog {
	log := &eventLog{}
	go func() {
		for ev := range sub.C() {
			log.mu.Lock()
			log.evs = append(log.evs, ev)
			log.mu.Unlock()
		}
	}()
	return log
}

// scan runs fn over a snapshot of the collected events.
func (l *eventLog) scan(fn func(Event)) {
	l.mu.Lock()
	evs := append([]Event(nil), l.evs...)
	l.mu.Unlock()
	for _, ev := range evs {
		fn(ev)
	}
}

// TestFleetRecoversFromBlackhole is the headline chaos scenario: a
// healthy session whose link goes half-open mid-run — the socket stays
// open, writes vanish, reads never return. Before the watchdog existed
// this looked like an empty RF field forever; now it must be detected
// as a keepalive timeout, reported as cycle errors (never a silent
// healthy zero-tag cycle), and healed by a reconnect once the link
// comes back.
func TestFleetRecoversFromBlackhole(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration")
	}
	rng := rand.New(rand.NewSource(7))
	codes, err := epc.RandomPopulation(rng, 6, 96)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Config{Seed: 7}) // no probabilistic faults: the trip is scripted
	_, addr := startChaosEmulator(t, inj, 700, codes)

	cfg := DefaultConfig()
	cfg.Readers = []ReaderConfig{{Name: "c0", Addr: addr}}
	cfg.Tagwatch.PhaseIIDwell = 300 * time.Millisecond
	cfg.DialTimeout = 2 * time.Second
	cfg.BackoffBase = 25 * time.Millisecond
	cfg.BackoffMax = 250 * time.Millisecond
	cfg.CyclePause = 50 * time.Millisecond
	cfg.KeepalivePeriod = 100 * time.Millisecond
	cfg.KeepaliveMisses = 3
	cfg.OpTimeout = 500 * time.Millisecond
	cfg.CycleErrorLimit = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(cfg)
	sub := m.Bus().Subscribe(4096)
	defer sub.Close()
	log := collectEvents(sub)
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Phase 1: healthy operation — session up, cycles completing, tags in
	// the registry.
	waitFor(t, 15*time.Second, "reader up", func() bool {
		return readerStatus(m, "c0").State == "up"
	})
	waitFor(t, 20*time.Second, "healthy cycles and a populated registry", func() bool {
		return readerStatus(m, "c0").Cycles >= 2 && m.Registry().Len() == len(codes)
	})

	// Phase 2: the link goes half-open. The watchdog (3 × 100 ms window)
	// must kill the session with a distinguishable error and drive the
	// supervisor out of the up state.
	inj.SetBlackhole(true)
	waitFor(t, 15*time.Second, "supervisor to leave up after the blackhole", func() bool {
		return readerStatus(m, "c0").State != "up"
	})
	waitFor(t, 15*time.Second, "the keepalive watchdog to be named as the cause", func() bool {
		if strings.Contains(readerStatus(m, "c0").LastError, "keepalive watchdog") {
			return true
		}
		found := false
		log.scan(func(ev Event) {
			if ev.Reader == "c0" && strings.Contains(ev.Error, "keepalive watchdog") {
				found = true
			}
		})
		return found
	})
	// Redial attempts against the still-blackholed listener keep failing
	// (TCP connects, but the connection event never arrives).
	downAttempts := readerStatus(m, "c0").Attempts
	waitFor(t, 15*time.Second, "failed redials to accumulate", func() bool {
		return readerStatus(m, "c0").Attempts > downAttempts
	})

	// Phase 3: the link heals; the supervisor reconnects and healthy
	// cycles resume with fresh sightings.
	inj.SetBlackhole(false)
	healAt := time.Now()
	waitFor(t, 20*time.Second, "reconnect after the blackhole clears", func() bool {
		rs := readerStatus(m, "c0")
		return rs.State == "up" && rs.Reconnects >= 1
	})
	waitFor(t, 20*time.Second, "fresh readings after recovery", func() bool {
		st, ok := m.Registry().Get(codes[0])
		return ok && st.LastSeen.After(healAt)
	})

	// The degradation was reported, not swallowed: at least one cycle
	// carried an error, and — the contract this PR exists for — no cycle
	// ever reported a healthy empty field. A dead transport must never
	// masquerade as "0 tags present".
	sawCycleErr := false
	log.scan(func(ev Event) {
		if ev.Type != EventCycle || ev.Cycle == nil {
			return
		}
		if ev.Cycle.Err != "" {
			sawCycleErr = true
		}
		if ev.Cycle.Err == "" && ev.Cycle.Present == 0 && ev.Cycle.PhaseIReads == 0 {
			t.Errorf("silent empty-field cycle at %v: %+v", ev.At, ev.Cycle)
		}
	})
	if !sawCycleErr {
		t.Error("no cycle ever reported its transport error")
	}
	if rs := readerStatus(m, "c0"); rs.CycleErrors == 0 {
		t.Errorf("supervisor counted no cycle errors across a blackhole: %+v", rs)
	}
}

// TestFleetSurvivesCorruptionStorm: probabilistic wire corruption and
// mid-message resets, reproducible from the injector seed. Sessions die
// repeatedly (decode failures and severed sockets), but the fleet must
// keep reconnecting and making forward progress — a full registry and
// no deadlocks — rather than wedging on any single fault interleaving.
func TestFleetSurvivesCorruptionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration")
	}
	rng := rand.New(rand.NewSource(11))
	codes, err := epc.RandomPopulation(rng, 5, 96)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Config{
		Seed:        11,
		CorruptProb: 0.01,
		ResetProb:   0.005,
	})
	_, addr := startChaosEmulator(t, inj, 1100, codes)

	cfg := DefaultConfig()
	cfg.Readers = []ReaderConfig{{Name: "storm", Addr: addr}}
	cfg.Tagwatch.PhaseIIDwell = 200 * time.Millisecond
	cfg.DialTimeout = 2 * time.Second
	cfg.BackoffBase = 10 * time.Millisecond
	cfg.BackoffMax = 100 * time.Millisecond
	cfg.KeepalivePeriod = 200 * time.Millisecond
	cfg.OpTimeout = time.Second
	cfg.MaxFailures = 0 // retry forever; the storm is survivable by design

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(cfg)
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Forward progress through the storm: every tag observed, at least
	// one fault actually injected, and at least one session death healed
	// by a reconnect — survival proven against a real failure, not a
	// lucky clean run.
	waitFor(t, 60*time.Second, "full registry, an injected fault, and a reconnect", func() bool {
		st := inj.Stats()
		return m.Registry().Len() == len(codes) &&
			st.Corruptions+st.Resets >= 1 &&
			readerStatus(m, "storm").Reconnects >= 1
	})
	st := inj.Stats()
	t.Logf("storm stats: %+v, reader: %+v", st, readerStatus(m, "storm"))

	// Teardown under load must not deadlock: Stop has its own watchdog.
	stopped := make(chan struct{})
	go func() {
		if err := m.Stop(); err != nil {
			t.Error(err)
		}
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(15 * time.Second):
		t.Fatal("fleet Stop deadlocked under chaos")
	}
}
