package fleet

import (
	"testing"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
)

func ingestReading(t *testing.T, i int) core.Reading {
	t.Helper()
	pop, err := epc.SequentialPopulation([]byte{0x30, 0x1C, 0xA1}, uint32(i), 1, epc.StandardBits)
	if err != nil {
		t.Fatal(err)
	}
	return core.Reading{EPC: pop[0], Antenna: 1}
}

func TestIngestFeedsRegistryAndBus(t *testing.T) {
	m := New(Config{})
	sub := m.Bus().Subscribe(16)
	defer sub.Close()

	entry := m.NewIngest("entry")
	exit := m.NewIngest("exit")
	at := time.Unix(0, 0).UTC()
	r := ingestReading(t, 0)

	if _, moved := entry.Observe(r, at); moved {
		t.Fatal("first sighting cannot be a handoff")
	}
	ho, moved := exit.Observe(r, at.Add(time.Second))
	if !moved || ho.From != "entry" || ho.To != "exit" {
		t.Fatalf("expected entry->exit handoff, got %+v moved=%v", ho, moved)
	}
	// Every Observe also publishes a tag image (the edge tier's delta
	// stream); skim those to reach the handoff event.
	nextNonTag := func() (Event, bool) {
		for {
			select {
			case ev := <-sub.C():
				if ev.Type == EventTag || ev.Type == EventTagDrop {
					continue
				}
				return ev, true
			default:
				return Event{}, false
			}
		}
	}
	if ev, ok := nextNonTag(); !ok {
		t.Fatal("handoff not published on the bus")
	} else if ev.Type != EventHandoff || ev.From != "entry" || ev.To != "exit" {
		t.Fatalf("bus event = %+v", ev)
	}

	exit.UpdateAssessment(r.EPC, true, 12.5)
	st, ok := m.Registry().Get(r.EPC)
	if !ok || !st.Mobile || st.IRR != 12.5 {
		t.Fatalf("assessment not recorded: %+v ok=%v", st, ok)
	}
	// A stale reader's verdict must not clobber the owner's.
	entry.UpdateAssessment(r.EPC, false, 1)
	if st, _ := m.Registry().Get(r.EPC); !st.Mobile {
		t.Fatal("non-owner overwrote the assessment")
	}

	exit.PublishCycle(at.Add(2*time.Second), &CycleSummary{Present: 1})
	if ev, ok := nextNonTag(); !ok {
		t.Fatal("cycle summary not published")
	} else if ev.Type != EventCycle || ev.Reader != "exit" || ev.Cycle.Present != 1 {
		t.Fatalf("cycle event = %+v", ev)
	}
}

func TestIngestAppearsInReadersAndStaysHealthy(t *testing.T) {
	m := New(Config{})
	in := m.NewIngest("replay-gate")
	in.Observe(ingestReading(t, 1), time.Unix(0, 0).UTC())

	rs := m.Readers()
	if len(rs) != 1 {
		t.Fatalf("readers = %+v", rs)
	}
	st := rs[0]
	if st.Name != "replay-gate" || st.State != "up" || st.Readings != 1 {
		t.Fatalf("ingest status = %+v", st)
	}
	if !m.Healthy() {
		t.Fatal("a fleet of only ingests must be healthy")
	}
}
