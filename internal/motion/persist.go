package motion

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tagwatch/internal/epc"
)

// Snapshot is the serialisable state of a Detector: every learned
// immobility mode of every (tag, antenna, channel) link. Persisting it
// across restarts removes the cold start entirely — the middleware resumes
// with its Gaussian stacks intact (the paper's models take a cycle per
// link to learn; a warehouse deployment has thousands of links).
type Snapshot struct {
	// Version guards the format.
	Version int             `json:"version"`
	Stacks  []stackSnapshot `json:"stacks"`
}

type stackSnapshot struct {
	EPC      string         `json:"epc"`
	Antenna  int            `json:"antenna"`
	Channel  int            `json:"channel"`
	LastSeen int64          `json:"last_seen_us"`
	Modes    []modeSnapshot `json:"modes"`
}

type modeSnapshot struct {
	W     float64 `json:"w"`
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
	N     int     `json:"n"`
	M2    float64 `json:"m2"`
}

// snapshotVersion is the current format version.
const snapshotVersion = 1

// Save serialises the detector's learned state as JSON.
func (d *Detector) Save(w io.Writer) error {
	snap := Snapshot{Version: snapshotVersion}
	for k, st := range d.stacks {
		ss := stackSnapshot{
			EPC:      k.tag.String(),
			Antenna:  k.antenna,
			Channel:  k.channel,
			LastSeen: int64(d.lastSeen[k.tag] / time.Microsecond),
		}
		for _, g := range st.modes {
			ss.Modes = append(ss.Modes, modeSnapshot{
				W: g.w, Mu: g.mu, Sigma: g.sigma, N: g.n, M2: g.m2,
			})
		}
		snap.Stacks = append(snap.Stacks, ss)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Load restores learned state previously written by Save, replacing any
// existing state. Mode identities are reassigned (switch detection resets,
// which only costs one grace reading per link).
func (d *Detector) Load(r io.Reader) error {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("motion: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("motion: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	d.stacks = make(map[key]*Stack)
	d.tagStacks = make(map[epc.EPC][]*Stack)
	d.lastSeen = make(map[epc.EPC]time.Duration)
	for _, ss := range snap.Stacks {
		code, err := epc.Parse(ss.EPC)
		if err != nil {
			return fmt.Errorf("motion: snapshot EPC %q: %w", ss.EPC, err)
		}
		st := NewStack(d.cfg, d.dist)
		for _, m := range ss.Modes {
			if m.Sigma <= 0 || m.N < 1 {
				return fmt.Errorf("motion: snapshot mode for %s is corrupt", ss.EPC)
			}
			st.nextID++
			st.modes = append(st.modes, gaussian{
				id: st.nextID, w: m.W, mu: m.Mu, sigma: m.Sigma, n: m.N, m2: m.M2,
			})
		}
		k := key{tag: code, antenna: ss.Antenna, channel: ss.Channel}
		d.stacks[k] = st
		d.tagStacks[code] = append(d.tagStacks[code], st)
		if ls := time.Duration(ss.LastSeen) * time.Microsecond; ls > d.lastSeen[code] {
			d.lastSeen[code] = ls
		}
	}
	return nil
}
