package motion

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"tagwatch/internal/epc"
)

// Snapshot is the serialisable state of a Detector: every learned
// immobility mode of every (tag, antenna, channel) link. Persisting it
// across restarts removes the cold start entirely — the middleware resumes
// with its Gaussian stacks intact (the paper's models take a cycle per
// link to learn; a warehouse deployment has thousands of links).
type Snapshot struct {
	// Version guards the format.
	Version int         `json:"version"`
	Stacks  []LinkState `json:"stacks"`
}

// LinkState is the serialised immobility stack of one physical link —
// one tag seen over one (antenna, channel). It is both an element of
// the full Snapshot and the unit of incremental persistence: the
// statestore journal carries one LinkState per learned-mode update, and
// RestoreLink replays it.
type LinkState struct {
	EPC      string         `json:"epc"`
	Antenna  int            `json:"antenna"`
	Channel  int            `json:"channel"`
	LastSeen int64          `json:"last_seen_us"`
	Modes    []modeSnapshot `json:"modes"`
}

type modeSnapshot struct {
	W     float64 `json:"w"`
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
	N     int     `json:"n"`
	M2    float64 `json:"m2"`
}

// snapshotVersion is the current format version.
const snapshotVersion = 1

// encodeLink serialises one stack. Callers own k's presence in d.stacks.
func (d *Detector) encodeLink(k key, st *Stack) LinkState {
	ls := LinkState{
		EPC:      k.tag.String(),
		Antenna:  k.antenna,
		Channel:  k.channel,
		LastSeen: int64(d.lastSeen[k.tag] / time.Microsecond),
	}
	for _, g := range st.modes {
		ls.Modes = append(ls.Modes, modeSnapshot{
			W: g.w, Mu: g.mu, Sigma: g.sigma, N: g.n, M2: g.M2(),
		})
	}
	return ls
}

// M2 exposes the Welford accumulator for serialisation.
func (g gaussian) M2() float64 { return g.m2 }

// decodeLink validates one serialised link and rebuilds its stack
// without touching the detector. Mode identities are reassigned (switch
// detection resets, which only costs one grace reading per link).
func (d *Detector) decodeLink(ls LinkState) (key, *Stack, error) {
	code, err := epc.Parse(ls.EPC)
	if err != nil {
		return key{}, nil, fmt.Errorf("motion: snapshot EPC %q: %w", ls.EPC, err)
	}
	st := NewStack(d.cfg, d.dist)
	for _, m := range ls.Modes {
		if m.Sigma <= 0 || m.N < 1 {
			return key{}, nil, fmt.Errorf("motion: snapshot mode for %s is corrupt", ls.EPC)
		}
		for _, f := range [...]float64{m.W, m.Mu, m.Sigma, m.M2} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return key{}, nil, fmt.Errorf("motion: snapshot mode for %s is not finite", ls.EPC)
			}
		}
		st.nextID++
		st.modes = append(st.modes, gaussian{
			id: st.nextID, w: m.W, mu: m.Mu, sigma: m.Sigma, n: m.N, m2: m.M2,
		})
	}
	k := key{tag: code, antenna: ls.Antenna, channel: ls.Channel}
	return k, st, nil
}

// installLink puts a rebuilt stack into the detector, replacing any
// existing stack for the same link in both indexes.
func (d *Detector) installLink(k key, st *Stack, lastSeen time.Duration) {
	if old, ok := d.stacks[k]; ok {
		for i, s := range d.tagStacks[k.tag] {
			if s == old {
				d.tagStacks[k.tag][i] = st
				break
			}
		}
	} else {
		d.tagStacks[k.tag] = append(d.tagStacks[k.tag], st)
	}
	d.stacks[k] = st
	if lastSeen > d.lastSeen[k.tag] {
		d.lastSeen[k.tag] = lastSeen
	} else if _, ok := d.lastSeen[k.tag]; !ok {
		d.lastSeen[k.tag] = lastSeen
	}
}

// Save serialises the detector's learned state as JSON.
func (d *Detector) Save(w io.Writer) error {
	snap := Snapshot{Version: snapshotVersion}
	for k, st := range d.stacks {
		snap.Stacks = append(snap.Stacks, d.encodeLink(k, st))
	}
	// Deterministic order: map iteration must not leak into the bytes,
	// or two snapshots of identical state would differ.
	sort.Slice(snap.Stacks, func(i, j int) bool {
		a, b := snap.Stacks[i], snap.Stacks[j]
		if a.EPC != b.EPC {
			return a.EPC < b.EPC
		}
		if a.Antenna != b.Antenna {
			return a.Antenna < b.Antenna
		}
		return a.Channel < b.Channel
	})
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Load restores learned state previously written by Save, replacing any
// existing state. The snapshot is fully validated before the detector is
// touched: a decode error, version skew, corrupt mode, or duplicate link
// leaves the detector exactly as it was.
func (d *Detector) Load(r io.Reader) error {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("motion: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("motion: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}

	// Build the replacement state on the side; swap only on success.
	stacks := make(map[key]*Stack, len(snap.Stacks))
	tagStacks := make(map[epc.EPC][]*Stack)
	lastSeen := make(map[epc.EPC]time.Duration)
	for _, ls := range snap.Stacks {
		k, st, err := d.decodeLink(ls)
		if err != nil {
			return err
		}
		if _, dup := stacks[k]; dup {
			return fmt.Errorf("motion: snapshot has duplicate stack for %s antenna %d channel %d",
				ls.EPC, ls.Antenna, ls.Channel)
		}
		stacks[k] = st
		tagStacks[k.tag] = append(tagStacks[k.tag], st)
		if seen := time.Duration(ls.LastSeen) * time.Microsecond; seen > lastSeen[k.tag] {
			lastSeen[k.tag] = seen
		}
	}

	d.stacks = stacks
	d.tagStacks = tagStacks
	d.lastSeen = lastSeen
	d.dirty = make(map[key]bool)
	d.forgotten = make(map[epc.EPC]bool)
	return nil
}

// RestoreLink replays one incremental LinkState (a statestore journal
// record) into the detector, replacing that link's stack. Validation
// matches Load: a corrupt record is rejected without mutating anything.
// Restored links are not marked dirty — they are already durable.
func (d *Detector) RestoreLink(ls LinkState) error {
	k, st, err := d.decodeLink(ls)
	if err != nil {
		return err
	}
	d.installLink(k, st, time.Duration(ls.LastSeen)*time.Microsecond)
	return nil
}

// DirtyLinks reports how many links have changed since the last
// DrainChanges.
func (d *Detector) DirtyLinks() int { return len(d.dirty) }

// DrainChanges returns the serialised state of every link touched since
// the previous drain, plus every tag forgotten in that window, and
// clears both sets. Links are full-stack snapshots (absolute, last-wins)
// so a journal replay needs no ordering beyond append order; the slices
// are sorted for deterministic journal bytes. A tag both forgotten and
// re-observed since the last drain appears in BOTH lists — the journal
// writer must append the tombstone before the link records so replay
// drops the tag's stale pre-forget links and then reinstates the fresh
// one.
func (d *Detector) DrainChanges() (links []LinkState, forgotten []string) {
	for k := range d.dirty {
		st, ok := d.stacks[k]
		if !ok {
			continue // forgotten after the observation that dirtied it
		}
		links = append(links, d.encodeLink(k, st))
	}
	sort.Slice(links, func(i, j int) bool {
		a, b := links[i], links[j]
		if a.EPC != b.EPC {
			return a.EPC < b.EPC
		}
		if a.Antenna != b.Antenna {
			return a.Antenna < b.Antenna
		}
		return a.Channel < b.Channel
	})
	for tag := range d.forgotten {
		forgotten = append(forgotten, tag.String())
	}
	sort.Strings(forgotten)
	d.dirty = make(map[key]bool)
	d.forgotten = make(map[epc.EPC]bool)
	return links, forgotten
}
