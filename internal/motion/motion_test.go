package motion

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
)

var tagA = epc.MustParse("30f4ab12cd0045e100000001")
var tagB = epc.MustParse("30f4ab12cd0045e100000002")

// feedStationary trains a detector with n noisy readings around mu.
func feedStationary(d Assessor, tag epc.EPC, rng *rand.Rand, mu, sigma float64, n int) {
	for i := 0; i < n; i++ {
		d.Observe(tag, 0, 0, rf.WrapPhase(mu+rng.NormFloat64()*sigma), time.Duration(i)*10*time.Millisecond)
	}
}

func TestFirstContactIsMoving(t *testing.T) {
	d := NewPhaseMoG(Config{})
	res := d.Observe(tagA, 0, 0, 1.0, 0)
	if !res.Moving || !math.IsInf(res.Score, 1) {
		t.Fatalf("first contact must be 'moving' with infinite score: %+v", res)
	}
}

func TestStationaryTagLowFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewPhaseMoG(Config{})
	feedStationary(d, tagA, rng, 2.0, 0.1, 200)
	var fp int
	const trials = 500
	for i := 0; i < trials; i++ {
		res := d.Observe(tagA, 0, 0, rf.WrapPhase(2.0+rng.NormFloat64()*0.1), time.Duration(i)*time.Millisecond)
		if res.Moving {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.05 {
		t.Fatalf("stationary FPR = %.3f, want < 0.05", rate)
	}
}

func TestDisplacementDetected(t *testing.T) {
	// A 1 cm move shifts the phase by ≈0.39 rad at 920 MHz — far beyond
	// 3σ of a σ=0.1 mode.
	rng := rand.New(rand.NewSource(2))
	d := NewPhaseMoG(Config{})
	feedStationary(d, tagA, rng, 1.0, 0.08, 200)
	res := d.Observe(tagA, 0, 0, rf.WrapPhase(1.0+0.39), 0)
	if !res.Moving {
		t.Fatalf("0.39 rad jump undetected: %+v", res)
	}
	if res.Score < 3 {
		t.Fatalf("score %v should exceed ξ", res.Score)
	}
}

func TestPhaseWrapAroundNotFlagged(t *testing.T) {
	// §4.3 "phase jumps": a mode near 0 must accept readings near 2π.
	rng := rand.New(rand.NewSource(3))
	d := NewPhaseMoG(Config{})
	for i := 0; i < 300; i++ {
		d.Observe(tagA, 0, 0, rf.WrapPhase(rng.NormFloat64()*0.08), time.Duration(i)*time.Millisecond)
	}
	res := d.Observe(tagA, 0, 0, 2*math.Pi-0.02, 0)
	if res.Moving {
		t.Fatalf("wrap-around reading flagged as motion: %+v", res)
	}
}

func TestMeanStraddlesWrapPoint(t *testing.T) {
	// Readings alternating ±0.1 around 0 (i.e. 0.1 and 2π−0.1) must learn
	// a single mode near 0, not a mean near π.
	rng := rand.New(rand.NewSource(4))
	d := NewPhaseMoG(Config{})
	for i := 0; i < 400; i++ {
		x := 0.1
		if i%2 == 1 {
			x = 2*math.Pi - 0.1
		}
		d.Observe(tagA, 0, 0, rf.WrapPhase(x+rng.NormFloat64()*0.02), time.Duration(i)*time.Millisecond)
	}
	_, mu, _ := d.Stack(tagA, 0, 0).Modes()
	if len(mu) == 0 {
		t.Fatal("no modes learned")
	}
	if rf.PhaseDist(mu[0], 0) > 0.3 {
		t.Fatalf("top mode mean %v should hug the wrap point", mu[0])
	}
}

func TestMultipathModesAbsorbed(t *testing.T) {
	// A stationary tag whose environment alternates between two multipath
	// states (Fig. 7): after learning, neither state should flag motion —
	// the GMM's raison d'être.
	rng := rand.New(rand.NewSource(5))
	d := NewPhaseMoG(Config{})
	modes := []float64{1.0, 2.2}
	for i := 0; i < 600; i++ {
		m := modes[rng.Intn(2)]
		d.Observe(tagA, 0, 0, rf.WrapPhase(m+rng.NormFloat64()*0.08), time.Duration(i)*time.Millisecond)
	}
	var fp int
	const trials = 400
	for i := 0; i < trials; i++ {
		m := modes[rng.Intn(2)]
		if d.Observe(tagA, 0, 0, rf.WrapPhase(m+rng.NormFloat64()*0.08), 0).Moving {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.05 {
		t.Fatalf("two-mode FPR = %.3f, want < 0.05", rate)
	}
	// And the stack actually holds ≥ 2 meaningful modes.
	w, mu, _ := d.Stack(tagA, 0, 0).Modes()
	var strong int
	for i := range w {
		if w[i] > 0.1 {
			strong++
		}
		_ = mu
	}
	if strong < 2 {
		t.Fatalf("want ≥2 strong modes, got %d (weights %v)", strong, w)
	}
}

func TestDifferencingFlagsModeAlternation(t *testing.T) {
	// The same two-mode environment destroys the differencing baseline:
	// every alternation looks like motion (the paper's false positives).
	rng := rand.New(rand.NewSource(6))
	d := NewPhaseDiff()
	modes := []float64{1.0, 2.2}
	var fp, n int
	last := 0
	for i := 0; i < 400; i++ {
		m := rng.Intn(2)
		res := d.Observe(tagA, 0, 0, rf.WrapPhase(modes[m]+rng.NormFloat64()*0.05), 0)
		if i > 0 {
			n++
			if res.Moving {
				fp++
			}
		}
		last = m
		_ = last
	}
	if rate := float64(fp) / float64(n); rate < 0.3 {
		t.Fatalf("differencing FPR = %.3f — expected it to suffer in a two-mode environment", rate)
	}
}

func TestGMMBeatsDifferencingOnFPR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gmm := NewPhaseMoG(Config{})
	diff := NewPhaseDiff()
	modes := []float64{0.8, 2.0, 3.1}
	fpOf := func(a Assessor) float64 {
		var fp, n int
		for i := 0; i < 900; i++ {
			x := rf.WrapPhase(modes[rng.Intn(3)] + rng.NormFloat64()*0.06)
			res := a.Observe(tagA, 0, 0, x, time.Duration(i)*time.Millisecond)
			if i > 500 { // score only after learning
				n++
				if res.Moving {
					fp++
				}
			}
		}
		return float64(fp) / float64(n)
	}
	g := fpOf(gmm)
	rng = rand.New(rand.NewSource(7)) // same stream for fairness
	f := fpOf(diff)
	if g >= f {
		t.Fatalf("GMM FPR %.3f must beat differencing FPR %.3f", g, f)
	}
}

func TestStackEvictionKeepsK(t *testing.T) {
	cfg := Config{K: 3}
	s := NewStack(cfg, CircularDist)
	// Five phases ≥1.3 rad apart (beyond the ξ·InitStd ≈ 1.05 rad match
	// window): each pushes a fresh mode; only K survive.
	vals := []float64{0, 1.3, 2.6, 3.9, 5.2}
	for i := 0; i < 10; i++ {
		s.Observe(vals[i%len(vals)])
	}
	w, _, _ := s.Modes()
	if len(w) != 3 {
		t.Fatalf("stack holds %d modes, want K=3", len(w))
	}
}

func TestStateTransitionRelearns(t *testing.T) {
	// Tag moves to a new position and parks: first readings flag motion,
	// then the new immobility mode takes over (§4.3 "Why do we model
	// immobility?").
	rng := rand.New(rand.NewSource(8))
	d := NewPhaseMoG(Config{})
	feedStationary(d, tagA, rng, 1.0, 0.08, 300)
	// Park at a new phase.
	moved := 0
	for i := 0; i < 300; i++ {
		res := d.Observe(tagA, 0, 0, rf.WrapPhase(4.0+rng.NormFloat64()*0.08), time.Duration(i)*time.Millisecond)
		if res.Moving {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("the transition itself must be flagged")
	}
	// After settling, the new position is stationary.
	var fp int
	for i := 0; i < 200; i++ {
		if d.Observe(tagA, 0, 0, rf.WrapPhase(4.0+rng.NormFloat64()*0.08), 0).Moving {
			fp++
		}
	}
	if rate := float64(fp) / 200; rate > 0.05 {
		t.Fatalf("post-transition FPR = %.3f", rate)
	}
}

func TestPerChannelStacksIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewPhaseMoG(Config{})
	// Channel 0 sits at 1.0, channel 7 at 4.0 — per-channel offsets.
	for i := 0; i < 200; i++ {
		d.Observe(tagA, 0, 0, rf.WrapPhase(1.0+rng.NormFloat64()*0.05), 0)
		d.Observe(tagA, 0, 7, rf.WrapPhase(4.0+rng.NormFloat64()*0.05), 0)
	}
	if d.Observe(tagA, 0, 0, 1.0, 0).Moving || d.Observe(tagA, 0, 7, 4.0, 0).Moving {
		t.Fatal("per-channel readings must match their own stacks")
	}
	// Cross-channel phase must NOT pollute: a 4.0 on channel 0 is motion.
	if !d.Observe(tagA, 0, 0, 4.0, 0).Moving {
		t.Fatal("cross-channel value must flag on the wrong channel")
	}
	if d.Stack(tagA, 0, 0) == nil || d.Stack(tagA, 0, 7) == nil {
		t.Fatal("stacks must exist per channel")
	}
}

func TestSharedStackWhenPerChannelOff(t *testing.T) {
	d := NewDetector(Config{IgnoreChannel: true, K: 2}, CircularDist)
	d.Observe(tagA, 0, 3, 1.0, 0)
	if d.Stack(tagA, 0, 9) == nil {
		t.Fatal("channel must collapse to one stack")
	}
}

func TestForgetAndPrune(t *testing.T) {
	d := NewPhaseMoG(Config{})
	d.Observe(tagA, 0, 0, 1.0, 10*time.Second)
	d.Observe(tagB, 0, 0, 2.0, 20*time.Second)
	if d.TrackedTags() != 2 {
		t.Fatalf("tracked = %d", d.TrackedTags())
	}
	d.Forget(tagA)
	if d.TrackedTags() != 1 || d.Stack(tagA, 0, 0) != nil {
		t.Fatal("Forget must drop all of a tag's state")
	}
	if n := d.Prune(15 * time.Second); n != 0 {
		t.Fatalf("nothing is older than 15 s: pruned %d", n)
	}
	if n := d.Prune(25 * time.Second); n != 1 || d.TrackedTags() != 0 {
		t.Fatalf("prune must drop tagB: %d dropped, %d tracked", n, d.TrackedTags())
	}
}

func TestRSSInsensitiveToSmallDisplacement(t *testing.T) {
	// The Fig. 13 asymmetry, reproduced through the actual channel: a 2 cm
	// move swings the phase by ≈0.8 rad but barely moves RSS.
	rng := rand.New(rand.NewSource(10))
	p := rf.DefaultParams()
	ch := rf.NewChannel(p, rng)
	ant := rf.Pt(0, 0, 2)

	phase := NewPhaseMoG(Config{})
	rss := NewRSSMoG(Config{})
	pos := rf.Pt(2, 1, 0)
	for i := 0; i < 300; i++ {
		m := ch.Measure(rng, ant, pos, 0.5, 0, nil)
		phase.Observe(tagA, 0, 0, m.PhaseRad, time.Duration(i)*10*time.Millisecond)
		rss.Observe(tagA, 0, 0, m.RSSdBm, time.Duration(i)*10*time.Millisecond)
	}
	// One-shot displacement trials (the Fig. 13 protocol: move once, score
	// whether that movement event is detected). Repeated readings at the
	// new spot would legitimately become the new immobility, so each trial
	// scores only the first post-move reading via its ROC score.
	moved := rf.Pt(2.02, 1, 0) // 2 cm
	var phaseHits, rssHits int
	const trials = 50
	const xi = 3.0
	for i := 0; i < trials; i++ {
		m := ch.Measure(rng, ant, moved, 0.5, 0, nil)
		if phase.Peek(tagA, 0, 0, m.PhaseRad) > xi {
			phaseHits++
		}
		if rss.Peek(tagA, 0, 0, m.RSSdBm) > xi {
			rssHits++
		}
	}
	if phaseHits <= rssHits {
		t.Fatalf("phase hits (%d) must exceed RSS hits (%d) for a 2 cm move", phaseHits, rssHits)
	}
	if float64(phaseHits)/trials < 0.5 {
		t.Fatalf("phase detector caught only %d/%d 2 cm moves", phaseHits, trials)
	}
}

func TestScoreMonotonicWithDisplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewPhaseMoG(Config{})
	feedStationary(d, tagA, rng, 3.0, 0.08, 300)
	small := d.Observe(tagA, 0, 0, 3.05, 0).Score
	large := d.Observe(tagA, 0, 0, 3.9, 0).Score
	if large <= small {
		t.Fatalf("score must grow with deviation: %.2f vs %.2f", small, large)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	// Paper parameters K=8, ξ=3, α=0.001, w₀=1e-4; InitStd deviates from
	// the paper's 2π deliberately (see the Config doc comment).
	if c.K != 8 || c.Xi != 3.0 || c.Alpha != 0.001 || c.InitStd != 0.35 || c.InitWeight != 1e-4 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
	// Partial overrides survive.
	c2 := Config{K: 2, Xi: 2.5}.withDefaults()
	if c2.K != 2 || c2.Xi != 2.5 || c2.Alpha != 0.001 {
		t.Fatalf("override handling: %+v", c2)
	}
}

func TestWeightsBoundedAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewStack(Config{}, CircularDist)
	for i := 0; i < 500; i++ {
		// Three modes at 0, 2, 4 rad — pairwise beyond the ξ·InitStd ≈
		// 1.05 rad match window so they stay distinct.
		s.Observe(rf.WrapPhase(float64(2*(i%3)) + rng.NormFloat64()*0.05))
	}
	w, _, _ := s.Modes()
	// Raw weights stay in (0, 1]; the sustained modes out-earn the floor.
	var established int
	for _, x := range w {
		if x <= 0 || x > 1 {
			t.Fatalf("weight %v out of (0,1]", x)
		}
		if x >= 0.01 {
			established++
		}
	}
	if established < 3 {
		t.Fatalf("three sustained modes must cross the weight floor; got %d (weights %v)", established, w)
	}
	// Priority ordering is descending.
	ws, _, sig := s.Modes()
	for i := 1; i < len(ws); i++ {
		if ws[i]/sig[i] > ws[i-1]/sig[i-1]+1e-12 {
			t.Fatal("modes must be ordered by priority")
		}
	}
}

func TestDifferencingFirstContact(t *testing.T) {
	d := NewRSSDiff()
	res := d.Observe(tagA, 0, 0, -60, 0)
	if !res.Moving || !math.IsInf(res.Score, 1) {
		t.Fatalf("first contact: %+v", res)
	}
	res = d.Observe(tagA, 0, 0, -60.2, 0)
	if res.Moving {
		t.Fatalf("0.2 dB wiggle flagged: %+v", res)
	}
	res = d.Observe(tagA, 0, 0, -40, 0)
	if !res.Moving {
		t.Fatalf("20 dB jump missed: %+v", res)
	}
}

func TestLearningCurveQuickStart(t *testing.T) {
	// Fig. 14: ~70% detection accuracy with ≈67 readings, ~90% with ≈130.
	// "Accuracy" here: fraction of stationary test readings matching a
	// learned mode. Train on k readings, test on the next 30.
	rng := rand.New(rand.NewSource(13))
	accuracyAfter := func(k int) float64 {
		d := NewPhaseMoG(Config{})
		// Two-mode dynamic environment like the experiment's walker.
		sample := func() float64 {
			base := 1.2
			if rng.Intn(3) == 0 {
				base = 2.1
			}
			return rf.WrapPhase(base + rng.NormFloat64()*0.08)
		}
		for i := 0; i < k; i++ {
			d.Observe(tagA, 0, 0, sample(), 0)
		}
		var ok int
		const tests = 30
		for i := 0; i < tests; i++ {
			if !d.Observe(tagA, 0, 0, sample(), 0).Moving {
				ok++
			}
		}
		return float64(ok) / tests
	}
	a67 := accuracyAfter(67)
	a130 := accuracyAfter(130)
	if a67 < 0.6 {
		t.Fatalf("accuracy after 67 readings = %.2f, want ≥ 0.6", a67)
	}
	if a130 < 0.8 {
		t.Fatalf("accuracy after 130 readings = %.2f, want ≥ 0.8", a130)
	}
}

func TestFusionCombinesModalities(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := NewFusion(Config{})
	// Train both modalities on a parked tag.
	for i := 0; i < 250; i++ {
		f.Observe(tagA, 0, 0,
			rf.WrapPhase(1.5+rng.NormFloat64()*0.08),
			-60+rng.NormFloat64()*0.3,
			time.Duration(i)*10*time.Millisecond)
	}
	// Quiet on both → stationary.
	res := f.Observe(tagA, 0, 0, 1.5, -60, 0)
	if res.Restless() {
		t.Fatalf("parked reading restless: %+v", res)
	}
	// A phase jump alone must flag.
	if s := f.Peek(tagA, 0, 0, rf.WrapPhase(1.5+1.2), -60); s <= 3 {
		t.Fatalf("phase-only evidence score = %v", s)
	}
	// An RSS jump alone must flag too (phase unchanged).
	if s := f.Peek(tagA, 0, 0, 1.5, -40); s <= 3 {
		t.Fatalf("RSS-only evidence score = %v", s)
	}
	// Forget clears both.
	f.Forget(tagA)
	if f.Phase.Stack(tagA, 0, 0) != nil || f.RSS.Stack(tagA, 0, 0) != nil {
		t.Fatal("Forget must clear both modalities")
	}
}

func TestFusionPrune(t *testing.T) {
	f := NewFusion(Config{})
	f.Observe(tagA, 0, 0, 1.0, -60, 5*time.Second)
	f.Observe(tagB, 0, 0, 2.0, -55, 20*time.Second)
	if n := f.Prune(10 * time.Second); n != 1 {
		t.Fatalf("pruned %d", n)
	}
	if f.Phase.TrackedTags() != 1 || f.RSS.TrackedTags() != 1 {
		t.Fatal("prune must apply to both modalities")
	}
}

func TestMaxTagsEvictsStalest(t *testing.T) {
	d := NewPhaseMoG(Config{MaxTags: 4})
	pop, err := epc.RandomPopulation(rand.New(rand.NewSource(11)), 12, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range pop {
		d.Observe(tag, 0, 0, 1.0, time.Duration(i)*time.Second)
	}
	if n := d.TrackedTags(); n != 4 {
		t.Fatalf("tracked %d tags, cap is 4", n)
	}
	if ev := d.EvictedTags(); ev != 8 {
		t.Fatalf("evicted %d tags, want 8", ev)
	}
	// The survivors must be the most recently seen, i.e. the last four.
	for _, tag := range pop[:8] {
		if d.Stack(tag, 0, 0) != nil {
			t.Fatalf("stale tag %s survived the cap", tag)
		}
	}
	for _, tag := range pop[8:] {
		if d.Stack(tag, 0, 0) == nil {
			t.Fatalf("fresh tag %s was evicted", tag)
		}
	}
	// Eviction must tombstone, so checkpoints shrink too.
	_, forgotten := d.DrainChanges()
	if len(forgotten) != 8 {
		t.Fatalf("%d tombstones drained, want 8", len(forgotten))
	}
}

func TestMaxTagsReobservationIsNotEviction(t *testing.T) {
	// Re-observing an already-tracked tag at the cap must not evict
	// anyone — only first contact with a genuinely new tag does.
	d := NewPhaseMoG(Config{MaxTags: 2})
	d.Observe(tagA, 0, 0, 1.0, 0)
	d.Observe(tagB, 0, 0, 1.0, time.Second)
	d.Observe(tagA, 0, 0, 1.1, 2*time.Second)
	if ev := d.EvictedTags(); ev != 0 {
		t.Fatalf("re-observation evicted %d tags", ev)
	}
	if d.TrackedTags() != 2 {
		t.Fatal("both tags must remain tracked")
	}
}
