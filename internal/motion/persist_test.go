package motion

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/rf"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewPhaseMoG(Config{})
	// Train two tags across two channels.
	for i := 0; i < 200; i++ {
		d.Observe(tagA, 1, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
		d.Observe(tagA, 1, 5, rf.WrapPhase(4.0+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
		d.Observe(tagB, 2, 0, rf.WrapPhase(2.7+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewPhaseMoG(Config{})
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored detector recognises the trained tags immediately — no
	// cold start.
	if restored.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("restored detector must recognise tagA on (1,0)")
	}
	if restored.Observe(tagA, 1, 5, 4.0, 0).Moving {
		t.Fatal("restored detector must recognise tagA on (1,5)")
	}
	if restored.Observe(tagB, 2, 0, 2.7, 0).Moving {
		t.Fatal("restored detector must recognise tagB")
	}
	// And still detects displacement.
	if !restored.Observe(tagA, 1, 0, rf.WrapPhase(1.5+1.0), 0).Moving {
		t.Fatal("restored detector must still flag jumps")
	}
	// lastSeen survived (prune semantics intact).
	if restored.TrackedTags() != 2 {
		t.Fatalf("tracked = %d", restored.TrackedTags())
	}
	if n := restored.Prune(time.Hour); n != 2 {
		t.Fatalf("pruned %d", n)
	}
}

func TestLoadReplacesExistingState(t *testing.T) {
	d := NewPhaseMoG(Config{})
	d.Observe(tagA, 0, 0, 1.0, 0)
	empty := NewPhaseMoG(Config{})
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d.TrackedTags() != 0 || d.Stack(tagA, 0, 0) != nil {
		t.Fatal("Load must replace prior state")
	}
}

func TestLoadErrors(t *testing.T) {
	d := NewPhaseMoG(Config{})
	cases := map[string]string{
		"garbage":     "{not json",
		"bad version": `{"version": 99}`,
		"bad epc":     `{"version": 1, "stacks": [{"epc": "zz"}]}`,
		"bad mode":    `{"version": 1, "stacks": [{"epc": "01", "modes": [{"w": 1, "sigma": 0, "n": 0}]}]}`,
	}
	for name, content := range cases {
		if err := d.Load(strings.NewReader(content)); err == nil {
			t.Errorf("%s must error", name)
		}
	}
}
