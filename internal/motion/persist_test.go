package motion

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/rf"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewPhaseMoG(Config{})
	// Train two tags across two channels.
	for i := 0; i < 200; i++ {
		d.Observe(tagA, 1, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
		d.Observe(tagA, 1, 5, rf.WrapPhase(4.0+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
		d.Observe(tagB, 2, 0, rf.WrapPhase(2.7+rng.NormFloat64()*0.08), time.Duration(i)*10*time.Millisecond)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewPhaseMoG(Config{})
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored detector recognises the trained tags immediately — no
	// cold start.
	if restored.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("restored detector must recognise tagA on (1,0)")
	}
	if restored.Observe(tagA, 1, 5, 4.0, 0).Moving {
		t.Fatal("restored detector must recognise tagA on (1,5)")
	}
	if restored.Observe(tagB, 2, 0, 2.7, 0).Moving {
		t.Fatal("restored detector must recognise tagB")
	}
	// And still detects displacement.
	if !restored.Observe(tagA, 1, 0, rf.WrapPhase(1.5+1.0), 0).Moving {
		t.Fatal("restored detector must still flag jumps")
	}
	// lastSeen survived (prune semantics intact).
	if restored.TrackedTags() != 2 {
		t.Fatalf("tracked = %d", restored.TrackedTags())
	}
	if n := restored.Prune(time.Hour); n != 2 {
		t.Fatalf("pruned %d", n)
	}
}

func TestLoadReplacesExistingState(t *testing.T) {
	d := NewPhaseMoG(Config{})
	d.Observe(tagA, 0, 0, 1.0, 0)
	empty := NewPhaseMoG(Config{})
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d.TrackedTags() != 0 || d.Stack(tagA, 0, 0) != nil {
		t.Fatal("Load must replace prior state")
	}
}

func TestLoadErrors(t *testing.T) {
	d := NewPhaseMoG(Config{})
	cases := map[string]string{
		"garbage":     "{not json",
		"bad version": `{"version": 99}`,
		"bad epc":     `{"version": 1, "stacks": [{"epc": "zz"}]}`,
		"bad mode":    `{"version": 1, "stacks": [{"epc": "01", "modes": [{"w": 1, "sigma": 0, "n": 0}]}]}`,
	}
	for name, content := range cases {
		if err := d.Load(strings.NewReader(content)); err == nil {
			t.Errorf("%s must error", name)
		}
	}
}

// trainedDetector builds a detector with settled modes on three links
// and returns it with its serialised state.
func trainedDetector(t *testing.T) (*Detector, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	d := NewPhaseMoG(Config{})
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		d.Observe(tagA, 1, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.08), at)
		d.Observe(tagA, 1, 5, rf.WrapPhase(4.0+rng.NormFloat64()*0.08), at)
		d.Observe(tagB, 2, 0, rf.WrapPhase(2.7+rng.NormFloat64()*0.08), at)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return d, buf.Bytes()
}

// TestLoadHostileInputsNoPartialMutation feeds Load a battery of
// corrupt snapshots — each derived from a VALID image so it fails as
// deep into decoding as possible — and asserts the detector is left
// bit-for-bit untouched (Save output is deterministic, so byte equality
// of a re-Save proves it).
func TestLoadHostileInputsNoPartialMutation(t *testing.T) {
	d, valid := trainedDetector(t)
	before := append([]byte(nil), valid...)

	var snap Snapshot
	if err := json.Unmarshal(valid, &snap); err != nil {
		t.Fatal(err)
	}

	versionSkew, err := json.Marshal(Snapshot{Version: snapshotVersion + 1, Stacks: snap.Stacks})
	if err != nil {
		t.Fatal(err)
	}
	dupStacks, err := json.Marshal(Snapshot{
		Version: snapshotVersion,
		Stacks:  append(append([]LinkState(nil), snap.Stacks...), snap.Stacks[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	lastBad := append([]LinkState(nil), snap.Stacks...)
	lastBad[len(lastBad)-1].Modes = []modeSnapshot{{W: 1, Sigma: 0, N: 0}}
	tailCorrupt, err := json.Marshal(Snapshot{Version: snapshotVersion, Stacks: lastBad})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated JSON":      valid[:len(valid)/2],
		"version skew":        versionSkew,
		"duplicate stacks":    dupStacks,
		"corrupt final stack": tailCorrupt,
	}
	for name, payload := range cases {
		if err := d.Load(bytes.NewReader(payload)); err == nil {
			t.Fatalf("%s: Load accepted a corrupt snapshot", name)
		}
		var after bytes.Buffer
		if err := d.Save(&after); err != nil {
			t.Fatalf("%s: re-save: %v", name, err)
		}
		if !bytes.Equal(before, after.Bytes()) {
			t.Fatalf("%s: rejected Load mutated the detector", name)
		}
	}

	// Non-finite modes cannot ride in through JSON (Marshal rejects NaN,
	// null decodes to 0 and trips the Sigma check), but journal replay
	// hands Go structs straight to RestoreLink — guard that path.
	nan := snap.Stacks[0]
	nan.Modes = []modeSnapshot{{W: math.NaN(), Mu: 1, Sigma: 0.2, N: 5}}
	if err := d.RestoreLink(nan); err == nil {
		t.Fatal("RestoreLink accepted a non-finite mode")
	}
	var after bytes.Buffer
	if err := d.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after.Bytes()) {
		t.Fatal("rejected RestoreLink mutated the detector")
	}

	// The untouched detector still works, and the valid image still loads.
	if d.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("detector lost its trained state")
	}
	if err := d.Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot rejected after hostile attempts: %v", err)
	}
}

// TestDrainChangesRoundTrip replays the incremental journal feed into a
// fresh detector and expects full recognition — the same guarantee Save
// and Load give, arrived at one LinkState at a time.
func TestDrainChangesRoundTrip(t *testing.T) {
	d, _ := trainedDetector(t)
	links, forgotten := d.DrainChanges()
	if len(links) != 3 {
		t.Fatalf("drained %d links, want 3", len(links))
	}
	if len(forgotten) != 0 {
		t.Fatalf("unexpected tombstones %v", forgotten)
	}
	if n := d.DirtyLinks(); n != 0 {
		t.Fatalf("dirty after drain: %d", n)
	}
	if l, f := d.DrainChanges(); len(l) != 0 || len(f) != 0 {
		t.Fatal("second drain must be empty")
	}

	restored := NewPhaseMoG(Config{})
	for _, ls := range links {
		if err := restored.RestoreLink(ls); err != nil {
			t.Fatal(err)
		}
	}
	// RestoreLink must not feed the restored state back into the journal.
	if restored.DirtyLinks() != 0 {
		t.Fatal("RestoreLink marked links dirty")
	}
	if restored.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("restored detector must recognise tagA on (1,0)")
	}
	if restored.Observe(tagB, 2, 0, 2.7, 0).Moving {
		t.Fatal("restored detector must recognise tagB")
	}
	if restored.TrackedTags() != 2 {
		t.Fatalf("tracked = %d", restored.TrackedTags())
	}
}

// TestDrainChangesForgetTombstones checks the forget bookkeeping: a
// forgotten tag yields a tombstone, and a forget-then-reobserve yields
// BOTH (tombstone first in replay drops the stale links, the fresh
// LinkState reinstates the live one).
func TestDrainChangesForgetTombstones(t *testing.T) {
	d, _ := trainedDetector(t)
	d.DrainChanges()

	d.Forget(tagB)
	links, forgotten := d.DrainChanges()
	if len(links) != 0 || len(forgotten) != 1 || forgotten[0] != tagB.String() {
		t.Fatalf("after forget: links=%d forgotten=%v", len(links), forgotten)
	}

	d.Forget(tagA) // tagA had stacks on (1,0) and (1,5)
	d.Observe(tagA, 1, 0, 2.2, time.Hour)
	links, forgotten = d.DrainChanges()
	if len(forgotten) != 1 || forgotten[0] != tagA.String() {
		t.Fatalf("forget+reobserve tombstones = %v", forgotten)
	}
	if len(links) != 1 || links[0].Antenna != 1 || links[0].Channel != 0 {
		t.Fatalf("forget+reobserve links = %+v", links)
	}
}

// TestRestoreLinkReplacesExisting pins the last-wins replay semantics:
// a second LinkState for the same link replaces the first outright.
func TestRestoreLinkReplacesExisting(t *testing.T) {
	d, _ := trainedDetector(t)
	links, _ := d.DrainChanges()

	restored := NewPhaseMoG(Config{})
	for i := 0; i < 2; i++ { // replay the whole batch twice
		for _, ls := range links {
			if err := restored.RestoreLink(ls); err != nil {
				t.Fatal(err)
			}
		}
	}
	if restored.TrackedTags() != 2 {
		t.Fatalf("tracked = %d after double replay", restored.TrackedTags())
	}
	if got := len(restored.tagStacks[tagA]); got != 2 {
		t.Fatalf("tagA has %d stacks after double replay, want 2", got)
	}
	if restored.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("double replay broke recognition")
	}
	// A corrupt record is rejected without touching the live stack.
	bad := links[0]
	bad.Modes = []modeSnapshot{{W: 1, Sigma: -1, N: 3}}
	if err := restored.RestoreLink(bad); err == nil {
		t.Fatal("RestoreLink accepted a corrupt record")
	}
	if restored.Observe(tagA, 1, 0, 1.5, 0).Moving {
		t.Fatal("rejected RestoreLink damaged the live stack")
	}
}
