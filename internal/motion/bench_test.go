package motion

import (
	"math/rand"
	"testing"

	"tagwatch/internal/rf"
)

func BenchmarkObserveStationary(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewPhaseMoG(Config{})
	for i := 0; i < 200; i++ {
		d.Observe(tagA, 0, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.1), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(tagA, 0, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.1), 0)
	}
}

func BenchmarkObserveMoving(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := NewPhaseMoG(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(tagA, 0, 0, rng.Float64()*2*3.14159, 0)
	}
}

func BenchmarkPeek(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := NewPhaseMoG(Config{})
	for i := 0; i < 200; i++ {
		d.Observe(tagA, 0, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.1), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Peek(tagA, 0, 0, 1.5)
	}
}
