// Package motion implements Phase I of Tagwatch: per-tag motion assessment
// from backscatter measurements (§4).
//
// The core detector models each tag's *immobility* as a self-learning
// Gaussian mixture over its RF phase: every stable multipath configuration
// contributes one Gaussian mode (the Fresnel-zone argument of §4.1), a new
// reading that matches a mode marks the tag stationary and refines the
// mode (Eqn. 11), and a reading that matches nothing marks the tag moving
// and pushes a fresh wide mode onto the stack, evicting the
// lowest-priority (w/δ) mode when the stack is full.
//
// Baseline detectors used by the paper's Fig. 12 comparison — plain
// differencing, and RSS variants of both — live here too, behind the
// common Assessor interface.
package motion

import (
	"bytes"
	"math"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
)

// Result is one motion verdict for one reading.
type Result struct {
	// Moving is the thresholded verdict at the configured ξ.
	Moving bool
	// Switched reports that the reading matched a *different* mode than
	// the tag's previous reading on the same channel. A parked tag matches
	// the same immobility mode reading after reading; a tag whose phase
	// trajectory is periodic (a turntable, a circular track) eventually
	// accumulates established modes covering its whole phase range, and
	// then each reading lands on an essentially random one. Mode switching
	// is therefore the cycle-scale mobility signal that survives even
	// after a mover's stack saturates.
	Switched bool
	// Score is the normalised deviation min_k |x−µ_k|/δ_k used for the
	// verdict; sweeping a threshold over Score yields the ROC curve. A
	// first-contact reading has Score = +Inf.
	Score float64
}

// Restless is the combined per-reading mobility signal used by the
// middleware: fresh motion evidence or mode churn.
func (r Result) Restless() bool { return r.Moving || r.Switched }

// Assessor consumes per-tag readings and yields motion verdicts. The value
// is whatever physical metric the detector models (RF phase in radians, or
// RSS in dBm). Antenna and channel identify the physical link: phase is a
// function of the reader-antenna-to-tag geometry AND the hop frequency, so
// immobility models only cohere within one (antenna, channel) link.
type Assessor interface {
	Observe(tag epc.EPC, antenna, channel int, value float64, at time.Duration) Result
}

// Config tunes the GMM detector. Zero fields take the paper's defaults.
type Config struct {
	// K is the stack depth (number of Gaussian modes per tag); paper: 8.
	K int
	// Xi is the match threshold ξ in standard deviations; paper: 3.0.
	Xi float64
	// Alpha is the learning rate α; paper: 0.001.
	Alpha float64
	// InitStd is the δ of a freshly pushed mode. The paper quotes "a large
	// δ (e.g., 2π)", but in a circular metric whose maximum distance is π
	// a 2π-wide mode matches every subsequent reading and the stack
	// degenerates to one all-absorbing mode; we default to 0.35 rad
	// (≈3.5× the phase-noise floor), wide enough to capture a parked
	// tag's first readings and narrow enough that a tag moving at the
	// paper's 0.7 m/s (≥1 rad between readings) never settles.
	InitStd float64
	// InitWeight is the weight of a freshly pushed mode; paper: 1e-4.
	InitWeight float64
	// MinStd floors a learned δ so quantised or noiseless inputs cannot
	// collapse a mode to zero width and flag every later reading. It
	// should sit at the phase-noise floor (≈0.1 rad on COTS readers):
	// the ξδ match window censors the samples a mode learns from, so the
	// learned δ underestimates the true noise and the floor is what keeps
	// the matching window honest.
	MinStd float64
	// MaxStd caps a learned δ. Without a cap, a moving tag's scattered
	// readings inflate one mode's variance until its ξ·δ match window
	// exceeds π and the mode absorbs every subsequent phase — a physical
	// immobility mode can never be wider than a few times the noise
	// floor. Default 0.25 rad (2.5× the floor): tight enough that a
	// mover's phase range cannot hide inside a couple of stretched modes.
	MaxStd float64
	// WeightFloor is the minimum (raw, decayed) weight a matched mode must
	// have accrued before it can vouch for immobility. Weights grow by α
	// per match and decay by α per miss, so a parked tag's dominant mode
	// crosses the floor within ~WeightFloor/α matches, while a moving
	// tag's churning modes — each matched only in passing — never do.
	// This is the mixture-model equivalent of Stauffer–Grimson's
	// background-weight test.
	WeightFloor float64
	// Warmup is the per-mode sample count during which the mode uses exact
	// running moments (Eqn. 8) before switching to the exponential updates
	// of Eqn. 11; this gives the paper's "quick start" (§7.1, Fig. 14).
	Warmup int
	// IgnoreChannel collapses all hop channels into one stack per tag.
	// The default (false) keeps an independent stack per channel, because
	// COTS readers exhibit a distinct constant phase offset per hop
	// frequency, so phase modes only cohere within a channel.
	IgnoreChannel bool
	// MaxTags caps how many tags the detector models at once (0 =
	// unbounded, the paper's assumption). When full, first contact with a
	// new tag forgets the least-recently-seen tracked tag — with a
	// tombstone, so checkpoints shrink too. An EPC flood then recycles
	// model slots instead of growing the per-tag GMM maps without bound.
	MaxTags int
}

// DefaultConfig returns the paper's Phase I parameters.
func DefaultConfig() Config {
	return Config{
		K:           8,
		Xi:          3.0,
		Alpha:       0.001,
		InitStd:     0.35,
		InitWeight:  1e-4,
		MinStd:      0.1,
		MaxStd:      0.25,
		WeightFloor: 0.01,
		Warmup:      50,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.Xi <= 0 {
		c.Xi = d.Xi
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.InitStd <= 0 {
		c.InitStd = d.InitStd
	}
	if c.InitWeight <= 0 {
		c.InitWeight = d.InitWeight
	}
	if c.MinStd <= 0 {
		c.MinStd = d.MinStd
	}
	if c.MaxStd <= 0 {
		c.MaxStd = d.MaxStd
	}
	if c.WeightFloor <= 0 {
		c.WeightFloor = d.WeightFloor
	}
	if c.Warmup <= 0 {
		c.Warmup = d.Warmup
	}
	return c
}

// DistFunc measures the deviation between a reading and a mode mean.
type DistFunc func(a, b float64) float64

// CircularDist is the minimum base-2π distance — the paper's fix for phase
// wrap-around.
func CircularDist(a, b float64) float64 { return rf.PhaseDist(a, b) }

// AbsDist is plain absolute distance, used for RSS.
func AbsDist(a, b float64) float64 { return math.Abs(a - b) }

// gaussian is one immobility mode.
type gaussian struct {
	id           int64 // stable identity for switch detection
	w, mu, sigma float64
	n            int     // samples absorbed; drives the warmup schedule
	m2           float64 // Welford sum of squared deviations (warmup only)
}

// established reports whether the mode can vouch for immobility: it must
// have absorbed more than one sample AND accrued weight past the floor. A
// mode seen once is a hypothesis; a mode matched only in passing (a moving
// tag's phase sweeping through) never out-earns its decay. Weights are
// kept raw — they grow by α per match and decay by α per miss — so weight
// is an absolute measure of sustained support, not a share of the stack.
func (g gaussian) established(floor float64) bool {
	return g.n >= 2 && g.w >= floor
}

// priority is the paper's r_k = w_k / δ_k ordering key.
func (g gaussian) priority() float64 {
	if g.sigma <= 0 {
		return math.Inf(1)
	}
	return g.w / g.sigma
}

// Stack is the per-(tag, channel) mixture. Exported so tests and the Fig. 8
// experiment can inspect learned modes.
type Stack struct {
	cfg      Config
	dist     DistFunc
	circular bool
	modes    []gaussian
	nextID   int64
	lastMode int64 // id of the mode the previous reading matched (0 = none)
}

// NewStack builds an empty immobility stack.
func NewStack(cfg Config, dist DistFunc) *Stack {
	return &Stack{
		cfg:  cfg.withDefaults(),
		dist: dist,
		// Detect the circular metric by probing the wrap point.
		circular: dist(0.01, 2*math.Pi-0.01) < 1,
	}
}

// Modes returns the learned (weight, mean, std) triples ordered by
// priority, highest first.
func (s *Stack) Modes() (w, mu, sigma []float64) {
	for _, g := range s.sorted() {
		w = append(w, g.w)
		mu = append(mu, g.mu)
		sigma = append(sigma, g.sigma)
	}
	return
}

func (s *Stack) sorted() []gaussian {
	out := append([]gaussian(nil), s.modes...)
	for i := 1; i < len(out); i++ { // insertion sort: stacks hold ≤ K modes
		for j := i; j > 0 && out[j].priority() > out[j-1].priority(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// eta is the Gaussian pdf η(x; µ, δ) of Eqn. 9.
func eta(x, mu, sigma float64, dist DistFunc) float64 {
	if sigma <= 0 {
		return 0
	}
	d := dist(x, mu)
	return math.Exp(-d*d/(2*sigma*sigma)) / (sigma * math.Sqrt(2*math.Pi))
}

// circMean advances a mean toward x by fraction rho along the shortest
// circular arc when the metric is circular; for linear metrics it is plain
// interpolation.
func (s *Stack) advanceMean(mu, x, rho float64) float64 {
	d := x - mu
	if s.circular {
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		return rf.WrapPhase(mu + rho*d)
	}
	return mu + rho*d
}

// Observe runs one reading through the stack: match → stationary verdict
// plus Eqn. 11 updates; no match → moving verdict plus a fresh mode.
func (s *Stack) Observe(x float64) Result {
	cfg := s.cfg
	best := -1
	bestScore := math.Inf(1)
	// The ROC score is the minimum normalised deviation over *established*
	// modes: single-observation hypotheses say nothing about immobility
	// yet, so matching one must not look like evidence the tag parked.
	for _, g := range s.modes {
		if !g.established(cfg.WeightFloor) {
			continue
		}
		score := s.dist(x, g.mu) / math.Max(g.sigma, cfg.MinStd)
		if score < bestScore {
			bestScore = score
		}
	}
	for idx, g := range s.modes {
		if s.dist(x, g.mu) < cfg.Xi*math.Max(g.sigma, cfg.MinStd) {
			if best == -1 || g.priority() > s.modes[best].priority() {
				best = idx
			}
		}
	}

	if best == -1 {
		// Case 2: no match — the tag is (apparently) in motion. Push a new
		// mode, evicting the lowest-priority one if full.
		s.nextID++
		g := gaussian{id: s.nextID, w: cfg.InitWeight, mu: x, sigma: cfg.InitStd, n: 1}
		if len(s.modes) < cfg.K {
			s.modes = append(s.modes, g)
		} else {
			worst := 0
			for i := range s.modes {
				if s.modes[i].priority() < s.modes[worst].priority() {
					worst = i
				}
			}
			s.modes[worst] = g
		}
		return Result{Moving: true, Score: bestScore}
	}

	// Matched. The verdict is "stationary" only when the matched mode is
	// established — a mode born from the immediately preceding reading is
	// still just a motion hypothesis.
	moving := !s.modes[best].established(cfg.WeightFloor)
	switched := false
	if !moving {
		// Switch detection tracks only established-mode matches: a noise
		// outlier that spawns (or grazes) a hypothesis must not disturb
		// the memory of which immobility mode the tag lives in.
		switched = s.lastMode != 0 && s.lastMode != s.modes[best].id
		s.lastMode = s.modes[best].id
	}

	// Update the matched mode; decay the others (Eqn. 11).
	for i := range s.modes {
		if i == best {
			g := &s.modes[i]
			g.n++
			g.w = (1-cfg.Alpha)*g.w + cfg.Alpha
			if g.n <= cfg.Warmup {
				// Exact running moments while young (the Eqn. 8 estimator):
				// Welford's algorithm converges in tens of readings, giving
				// the paper's "quick start" (Fig. 14).
				dev := s.deviation(x, g.mu)
				g.mu = s.advanceMean(g.mu, x, 1/float64(g.n))
				dev2 := s.deviation(x, g.mu)
				g.m2 += dev * dev2
				if g.m2 < 0 {
					g.m2 = 0
				}
				g.sigma = math.Sqrt(g.m2 / float64(g.n))
			} else {
				rho := cfg.Alpha * eta(x, g.mu, g.sigma, s.dist)
				g.mu = s.advanceMean(g.mu, x, rho)
				d := s.dist(x, g.mu)
				g.sigma = math.Sqrt((1-rho)*g.sigma*g.sigma + rho*d*d)
			}
			if g.sigma < cfg.MinStd {
				g.sigma = cfg.MinStd
			}
			if g.sigma > cfg.MaxStd {
				g.sigma = cfg.MaxStd
			}
		} else {
			s.modes[i].w *= 1 - cfg.Alpha
		}
	}
	s.mergeOverlapping()
	return Result{Moving: moving, Switched: switched, Score: bestScore}
}

// mergeOverlapping folds modes whose means sit within one standard
// deviation of each other into the higher-priority one. Overlapping
// sibling modes are born when a tag's first readings arrive before either
// mode has tightened; left unmerged, later readings falling in the overlap
// alternate between them and masquerade as mode switches (phantom
// mobility).
func (s *Stack) mergeOverlapping() {
	for i := 0; i < len(s.modes); i++ {
		for j := i + 1; j < len(s.modes); j++ {
			a, b := &s.modes[i], &s.modes[j]
			if s.dist(a.mu, b.mu) >= math.Max(a.sigma, b.sigma) {
				continue
			}
			hi, lo := a, b
			if b.priority() > a.priority() {
				hi, lo = b, a
			}
			wSum := hi.w + lo.w
			if wSum > 0 {
				hi.mu = s.advanceMean(hi.mu, lo.mu, lo.w/wSum)
			}
			d := s.dist(hi.mu, lo.mu)
			pooled := (hi.w*hi.sigma*hi.sigma + lo.w*(lo.sigma*lo.sigma+d*d)) / math.Max(wSum, 1e-12)
			hi.sigma = math.Min(math.Max(math.Sqrt(pooled), s.cfg.MinStd), s.cfg.MaxStd)
			hi.w = wSum
			hi.n += lo.n
			hi.m2 += lo.m2
			if s.lastMode == lo.id {
				s.lastMode = hi.id
			}
			// Keep the survivor in slot i, drop slot j.
			if hi == b {
				s.modes[i] = *b
			}
			s.modes = append(s.modes[:j], s.modes[j+1:]...)
			j--
		}
	}
}

// Score evaluates a reading against the stack without mutating it: the
// minimum normalised deviation over established modes (+Inf when none
// exist). Experiments use it to probe detection without teaching the
// detector the probed value.
func (s *Stack) Score(x float64) float64 {
	best := math.Inf(1)
	for _, g := range s.modes {
		if !g.established(s.cfg.WeightFloor) {
			continue
		}
		if sc := s.dist(x, g.mu) / math.Max(g.sigma, s.cfg.MinStd); sc < best {
			best = sc
		}
	}
	return best
}

// deviation is the signed deviation of x from mu under the stack's metric
// (shortest arc for the circular case).
func (s *Stack) deviation(x, mu float64) float64 {
	d := x - mu
	if s.circular {
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
	}
	return d
}

// key identifies one immobility stack: one tag seen over one physical
// link.
type key struct {
	tag     epc.EPC
	antenna int
	channel int
}

// Detector is the production Assessor: a GMM stack per (tag, antenna[,
// channel]).
type Detector struct {
	cfg       Config
	dist      DistFunc
	stacks    map[key]*Stack
	tagStacks map[epc.EPC][]*Stack
	lastSeen  map[epc.EPC]time.Duration
	// dirty and forgotten accumulate the changes since the last
	// DrainChanges — the incremental feed for the statestore journal.
	dirty     map[key]bool
	forgotten map[epc.EPC]bool
	// evicted counts tags forgotten by the MaxTags capacity bound.
	evicted uint64
}

// NewDetector builds a GMM detector with the given metric.
func NewDetector(cfg Config, dist DistFunc) *Detector {
	return &Detector{
		cfg:       cfg.withDefaults(),
		dist:      dist,
		stacks:    make(map[key]*Stack),
		tagStacks: make(map[epc.EPC][]*Stack),
		lastSeen:  make(map[epc.EPC]time.Duration),
		dirty:     make(map[key]bool),
		forgotten: make(map[epc.EPC]bool),
	}
}

// vouchedElsewhere reports whether the tag has settled immobility models
// on at least two other links. A parked tag accumulates established modes
// on every link it is read over; a moving tag's modes never out-earn the
// weight floor anywhere. First contact on a yet-unseen link (a new hop
// channel, a new antenna) is therefore only treated as motion evidence
// when the tag has no such track record — otherwise every frequency hop
// would masquerade as mobility.
func (d *Detector) vouchedElsewhere(tag epc.EPC) bool {
	var established, mature int
	for _, st := range d.tagStacks[tag] {
		var obs int
		for _, g := range st.modes {
			obs += g.n
		}
		if obs < 10 {
			continue // too young to say anything either way
		}
		mature++
		if st.anyEstablished() {
			established++
		}
	}
	// Vouching demands a MAJORITY of mature links, not just two: a mover
	// can luck into a couple of established modes (pauses, tangential
	// stretches) but never into immobility on most of its links.
	return established >= 2 && 2*established > mature
}

// NewPhaseMoG is the paper's default detector: mixture-of-Gaussians over
// RF phase with circular distance.
func NewPhaseMoG(cfg Config) *Detector { return NewDetector(cfg, CircularDist) }

// NewRSSMoG is the RSS-MoG baseline of Fig. 12.
func NewRSSMoG(cfg Config) *Detector {
	if cfg.MinStd <= 0 {
		cfg.MinStd = 0.5 // half the ImpinJ RSS quantum
	}
	if cfg.InitStd <= 0 {
		cfg.InitStd = 2 // dB: a parked tag's RSS wanders within ~±2 dB
	}
	if cfg.MaxStd <= 0 {
		cfg.MaxStd = 6 // dB
	}
	return NewDetector(cfg.withDefaults(), AbsDist)
}

// Observe implements Assessor.
func (d *Detector) Observe(tag epc.EPC, antenna, channel int, value float64, at time.Duration) Result {
	if d.cfg.IgnoreChannel {
		channel = 0
	}
	if d.cfg.MaxTags > 0 {
		if _, known := d.lastSeen[tag]; !known && len(d.lastSeen) >= d.cfg.MaxTags {
			d.evictStalest()
		}
	}
	k := key{tag: tag, antenna: antenna, channel: channel}
	st, ok := d.stacks[k]
	if !ok {
		st = NewStack(d.cfg, d.dist)
		d.stacks[k] = st
		d.tagStacks[tag] = append(d.tagStacks[tag], st)
	}
	d.lastSeen[tag] = at
	d.dirty[k] = true
	// A stack still without any established mode is bootstrapping. While
	// the tag is vouched for on other links, bootstrap verdicts are muted:
	// otherwise every hop onto a fresh channel spends ~WeightFloor/α
	// readings masquerading as motion. (A genuine mover is never vouched
	// anywhere, so its verdicts are untouched.)
	bootstrapping := !st.anyEstablished() && d.vouchedElsewhere(tag)
	if len(st.modes) == 0 {
		// First contact on this link: the paper initialises every tag as
		// being in motion and immediately learns its immobility.
		st.Observe(value)
		if bootstrapping {
			return Result{Moving: false, Score: 0}
		}
		return Result{Moving: true, Score: math.Inf(1)}
	}
	res := st.Observe(value)
	if bootstrapping {
		res.Moving = false
		res.Switched = false
		res.Score = 0
	}
	return res
}

// anyEstablished reports whether the stack holds at least one established
// mode.
func (s *Stack) anyEstablished() bool {
	for _, g := range s.modes {
		if g.established(s.cfg.WeightFloor) {
			return true
		}
	}
	return false
}

// Peek evaluates a reading against a tag's learned immobility without
// mutating any state. It returns the ROC score (+Inf when the tag has no
// established modes on that channel).
func (d *Detector) Peek(tag epc.EPC, antenna, channel int, value float64) float64 {
	if d.cfg.IgnoreChannel {
		channel = 0
	}
	st, ok := d.stacks[key{tag: tag, antenna: antenna, channel: channel}]
	if !ok {
		return math.Inf(1)
	}
	return st.Score(value)
}

// Stack exposes a tag's stack for inspection (nil if never observed).
func (d *Detector) Stack(tag epc.EPC, antenna, channel int) *Stack {
	if d.cfg.IgnoreChannel {
		channel = 0
	}
	return d.stacks[key{tag: tag, antenna: antenna, channel: channel}]
}

// Forget drops all state for a tag — the §4.3 answer to departed tags.
// The drop is recorded as a tombstone for the next DrainChanges so the
// journal forgets the tag too.
func (d *Detector) Forget(tag epc.EPC) {
	for k := range d.stacks {
		if k.tag == tag {
			delete(d.stacks, k)
			delete(d.dirty, k)
		}
	}
	delete(d.tagStacks, tag)
	delete(d.lastSeen, tag)
	d.forgotten[tag] = true
}

// Prune forgets every tag not seen since the cutoff, returning how many
// were dropped.
func (d *Detector) Prune(cutoff time.Duration) int {
	var dropped int
	for tag, seen := range d.lastSeen {
		if seen < cutoff {
			d.Forget(tag)
			dropped++
		}
	}
	return dropped
}

// evictStalest forgets the least-recently-seen tracked tag to make room
// under MaxTags. Ties break on EPC byte order so eviction is a pure
// function of the observation stream (device time only — no wall clock).
func (d *Detector) evictStalest() {
	var victim epc.EPC
	var oldest time.Duration
	found := false
	for tag, seen := range d.lastSeen {
		if !found || seen < oldest ||
			(seen == oldest && bytes.Compare(tag.Bytes(), victim.Bytes()) < 0) {
			victim, oldest = tag, seen
			found = true
		}
	}
	if !found {
		return
	}
	d.Forget(victim)
	d.evicted++
}

// TrackedTags returns the number of tags with live state.
func (d *Detector) TrackedTags() int { return len(d.lastSeen) }

// EvictedTags reports how many tags the MaxTags bound has forgotten.
func (d *Detector) EvictedTags() uint64 { return d.evicted }

// Differencing is the naive baseline: compare each reading with the
// previous one (§4.1 "Challenges"). Norm scales the raw deviation into the
// same ξ-threshold units as the GMM detectors.
type Differencing struct {
	dist DistFunc
	Norm float64
	Xi   float64
	last map[key]float64
	has  map[key]bool
	perC bool
}

// NewPhaseDiff builds the phase-differencing baseline.
func NewPhaseDiff() *Differencing {
	return &Differencing{dist: CircularDist, Norm: 0.1, Xi: 3, last: map[key]float64{}, has: map[key]bool{}, perC: true}
}

// NewRSSDiff builds the RSS-differencing baseline.
func NewRSSDiff() *Differencing {
	return &Differencing{dist: AbsDist, Norm: 0.5, Xi: 3, last: map[key]float64{}, has: map[key]bool{}, perC: true}
}

// Observe implements Assessor.
func (d *Differencing) Observe(tag epc.EPC, antenna, channel int, value float64, _ time.Duration) Result {
	if !d.perC {
		channel = 0
	}
	k := key{tag: tag, antenna: antenna, channel: channel}
	if !d.has[k] {
		d.has[k] = true
		d.last[k] = value
		return Result{Moving: true, Score: math.Inf(1)}
	}
	score := d.dist(value, d.last[k]) / d.Norm
	d.last[k] = value
	return Result{Moving: score > d.Xi, Score: score}
}
