package motion_test

import (
	"fmt"
	"math/rand"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/rf"
)

// Example shows the self-learning immobility model in action: a parked
// tag's noisy phase readings settle into a Gaussian mode, a displacement
// is flagged, and the new resting position is absorbed.
func Example() {
	rng := rand.New(rand.NewSource(1))
	det := motion.NewPhaseMoG(motion.Config{})
	tag := epc.MustParse("30f4ab12cd0045e100000001")

	// A parked tag: readings scatter around 1.5 rad with reader noise.
	for i := 0; i < 100; i++ {
		det.Observe(tag, 1, 0, rf.WrapPhase(1.5+rng.NormFloat64()*0.1), 0)
	}
	parked := det.Observe(tag, 1, 0, 1.52, 0)
	fmt.Printf("parked reading:   moving=%v\n", parked.Moving)

	// The tag moves 2 cm → the round-trip phase shifts by ≈0.8 rad.
	moved := det.Observe(tag, 1, 0, rf.WrapPhase(1.5+0.78), 0)
	fmt.Printf("after a 2 cm move: moving=%v (score %.1f ≫ ξ=3)\n", moved.Moving, moved.Score)
	// Output:
	// parked reading:   moving=false
	// after a 2 cm move: moving=true (score 7.7 ≫ ξ=3)
}
