package motion

import (
	"time"

	"tagwatch/internal/epc"
)

// Fusion combines a phase detector and an RSS detector: a reading is
// restless when either modality says so, and the ROC score is the maximum
// of the two (each normalised in its own ξ units). The paper evaluates the
// modalities separately (Fig. 12) and observes phase dominates; fusion is
// the natural "regardless of which physical indicator" extension — RSS
// contributes exactly in the regime where it is informative (multi-
// centimetre displacements through standing-wave gradients, Fig. 13)
// while phase covers the rest.
type Fusion struct {
	Phase *Detector
	RSS   *Detector
}

// NewFusion builds a fusion detector from fresh phase and RSS detectors
// with the given config (RSS scaling applied automatically).
func NewFusion(cfg Config) *Fusion {
	return &Fusion{
		Phase: NewPhaseMoG(cfg),
		RSS:   NewRSSMoG(Config{IgnoreChannel: cfg.IgnoreChannel}),
	}
}

// Observe feeds one reading's phase and RSS through both detectors and
// fuses the verdicts.
func (f *Fusion) Observe(tag epc.EPC, antenna, channel int, phase, rss float64, at time.Duration) Result {
	p := f.Phase.Observe(tag, antenna, channel, phase, at)
	r := f.RSS.Observe(tag, antenna, channel, rss, at)
	out := Result{
		Moving:   p.Moving || r.Moving,
		Switched: p.Switched || r.Switched,
		Score:    p.Score,
	}
	if r.Score > out.Score {
		out.Score = r.Score
	}
	return out
}

// Peek evaluates both modalities without mutating state.
func (f *Fusion) Peek(tag epc.EPC, antenna, channel int, phase, rss float64) float64 {
	p := f.Phase.Peek(tag, antenna, channel, phase)
	r := f.RSS.Peek(tag, antenna, channel, rss)
	if r > p {
		return r
	}
	return p
}

// Forget drops both modalities' state for a tag.
func (f *Fusion) Forget(tag epc.EPC) {
	f.Phase.Forget(tag)
	f.RSS.Forget(tag)
}

// Prune forgets tags not seen since the cutoff in both modalities.
func (f *Fusion) Prune(cutoff time.Duration) int {
	n := f.Phase.Prune(cutoff)
	f.RSS.Prune(cutoff)
	return n
}
