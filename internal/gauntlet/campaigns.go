package gauntlet

import (
	"fmt"
	"sort"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/statestore"
)

// drillLink is the classic degraded-link profile the replay drill and
// its tests use: lossy enough to hurt, not so lossy the quiesce can't
// eventually push the backlog through.
func drillLink(seed int64) chaos.Config {
	return chaos.Config{
		Seed:           seed,
		Latency:        200 * time.Microsecond,
		Jitter:         time.Millisecond,
		TruncateProb:   0.03,
		CorruptProb:    0.06,
		ResetProb:      0.03,
		BlackholeAfter: 384 << 10,
	}
}

// smokeCampaign is the built-in matrix `make gauntlet` and the CI
// gauntlet-smoke job run: every fault kind at least once, five scenario
// packs shrunk to a few virtual minutes each, ten oracle families in
// play. Small enough to finish in well under a minute unthrottled;
// varied enough that breaking any of the robustness layers underneath
// (store poisoning, WAL shipping, resume re-anchor, SSE shedding) trips
// at least one oracle.
func smokeCampaign() Campaign {
	return Campaign{
		Name:        "smoke",
		Description: "every fault kind once over shrunk scenario packs; the CI determinism gate",
		Cases: []Case{
			{
				Name: "baseline-clean", Scenario: "trackpoint",
				Duration: 3 * time.Minute, Population: 120, TransitTime: 20 * time.Second,
				Seed:  101,
				Fault: Fault{Kind: FaultNone},
			},
			{
				Name: "link-chaos-rush", Scenario: "retail-rush",
				Duration: 3 * time.Minute, Population: 150, TransitTime: 20 * time.Second,
				Seed: 202, Speed: 400,
				Fault: Fault{Kind: FaultLinkChaos, Link: drillLink(7)},
			},
			{
				Name: "partition-rx-crossdock", Scenario: "warehouse-crossdock",
				Duration: 3 * time.Minute, Population: 140, TransitTime: 25 * time.Second,
				Seed: 303, Speed: 400,
				Fault: Fault{Kind: FaultLinkPartition,
					Link: chaos.Config{Seed: 11, PartitionDir: "rx", PartitionAfter: 8 << 10}},
			},
			{
				Name: "partition-tx-rush", Scenario: "retail-rush",
				Duration: 3 * time.Minute, Population: 130, TransitTime: 20 * time.Second,
				Seed: 404, Speed: 400,
				Fault: Fault{Kind: FaultLinkPartition,
					Link: chaos.Config{Seed: 13, PartitionDir: "tx", PartitionAfter: 8 << 10}},
			},
			{
				Name: "flap-storm-baggage", Scenario: "airport-baggage",
				Duration: 3 * time.Minute, Population: 160, TransitTime: 30 * time.Second,
				Seed: 505, Speed: 400,
				Fault: Fault{Kind: FaultLinkFlap,
					Link: chaos.Config{Seed: 17, FlapBytes: 48 << 10}},
			},
			{
				Name: "enospc-hospital", Scenario: "hospital-assets",
				Duration: 4 * time.Minute, Population: 120, TransitTime: 40 * time.Second,
				Seed: 606,
				Fault: Fault{Kind: FaultFSENOSPC,
					FS: statestore.FaultConfig{Seed: 19, WriteErrProb: 0.5, ShortWriteProb: 1}},
			},
			{
				Name: "eio-trackpoint", Scenario: "trackpoint",
				Duration: 3 * time.Minute, Population: 120, TransitTime: 20 * time.Second,
				Seed: 707,
				Fault: Fault{Kind: FaultFSEIO,
					FS: statestore.FaultConfig{Seed: 23, SyncErrProb: 1, DirSyncErrProb: 0.5}},
			},
			{
				Name: "skew-crossdock", Scenario: "warehouse-crossdock",
				Duration: 3 * time.Minute, Population: 140, TransitTime: 25 * time.Second,
				Seed: 808,
				Fault: Fault{Kind: FaultClockSkew,
					Link: chaos.Config{Seed: 29, SkewMax: 90 * time.Second}},
			},
			{
				Name: "stalled-sse-rush", Scenario: "retail-rush",
				Duration: 2 * time.Minute, Population: 120, TransitTime: 20 * time.Second,
				Seed: 909, Speed: 200,
				Fault: Fault{Kind: FaultSlowSSE, SSEClients: 6},
			},
			{
				Name: "edge-flap-rush", Scenario: "retail-rush",
				Duration: 2 * time.Minute, Population: 120, TransitTime: 20 * time.Second,
				Seed: 1010, Speed: 400,
				Fault: Fault{Kind: FaultEdgeFlap,
					Link: chaos.Config{Seed: 31, FlapBytes: 128 << 10}},
			},
		},
	}
}

// builtins maps campaign names to constructors, so each Lookup hands
// out a fresh value the caller may mutate.
var builtins = map[string]func() Campaign{
	"smoke": smokeCampaign,
}

// Lookup returns the named built-in campaign.
func Lookup(name string) (Campaign, error) {
	mk, ok := builtins[name]
	if !ok {
		return Campaign{}, fmt.Errorf("gauntlet: unknown campaign %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the built-in campaigns, sorted.
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
