package gauntlet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/edge"
	"tagwatch/internal/replication"
	"tagwatch/internal/statestore"
)

// OracleResult is one invariant's verdict on one case.
type OracleResult struct {
	// Name identifies the invariant (e.g. "registry-match",
	// "store-recoverable"); Passed is the verdict. Both are part of the
	// report fingerprint.
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	// Detail says why, for humans; excluded from the fingerprint (it
	// may quote wall timings or counters).
	Detail string `json:"detail,omitempty"`
}

// Measurements are the non-deterministic observations of a case: real
// fault counts, resource levels, probe latencies. Reported for humans
// and assertions-by-oracle, excluded from the fingerprint (several
// depend on wall-clock interleaving).
type Measurements struct {
	Chaos           chaos.Stats               `json:"chaos"`
	FS              statestore.FaultStats     `json:"fs"`
	Standby         replication.StandbyStatus `json:"standby"`
	Edge            edge.ClientStatus         `json:"edge"`
	Goroutines      int                       `json:"goroutines,omitempty"`
	HeapBytes       uint64                    `json:"heap_bytes,omitempty"`
	WorstHealthzMS  int64                     `json:"worst_healthz_ms,omitempty"`
	HealthzProbes   int                       `json:"healthz_probes,omitempty"`
	RecoveredTags   int                       `json:"recovered_tags,omitempty"`
	SkewMaxAppliedS float64                   `json:"skew_max_applied_s,omitempty"`
}

// CaseResult is one case's outcome.
type CaseResult struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// FaultSpec is the canonical fault-script rendering — fingerprinted,
	// so a silently changed campaign definition changes the verdict
	// fingerprint too.
	FaultSpec string `json:"fault_spec"`

	// ControlFingerprint and FaultedFingerprint are the differential
	// pair: the registry identity of the unfaulted control run and of
	// the run under fault (for the drill kinds, of the promoted
	// standby).
	ControlFingerprint string `json:"control_fingerprint"`
	FaultedFingerprint string `json:"faulted_fingerprint"`

	Oracles []OracleResult `json:"oracles"`
	Passed  bool           `json:"passed"`

	// Error is set when the case could not run to a verdict at all; the
	// case counts as failed. Excluded from the fingerprint (error text
	// often embeds addresses or timing).
	Error string `json:"error,omitempty"`

	Measure Measurements `json:"measurements"`
}

// Wall is the non-deterministic timing section, excluded from the
// fingerprint.
type Wall struct {
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	ElapsedMS int64     `json:"elapsed_ms"`
}

// Report is the campaign verdict cmd/gauntlet emits as JSON.
type Report struct {
	Campaign    string `json:"campaign"`
	Description string `json:"description"`
	Seed        int64  `json:"seed"`

	Cases  []CaseResult `json:"cases"`
	Passed int          `json:"passed"`
	Failed int          `json:"failed"`
	// AllPassed is the campaign verdict: every case ran and every
	// oracle held.
	AllPassed bool `json:"all_passed"`

	// Fingerprint hashes the deterministic portion of the report; two
	// runs of the same campaign and seed must agree on it.
	Fingerprint string `json:"fingerprint"`
	Wall        Wall   `json:"wall"`
}

// fingerprint hashes the deterministic portion: the JSON encoding with
// Fingerprint, Wall, every case's Error and Measurements, and every
// oracle's Detail zeroed. Everything that remains — case identity,
// fault scripts, control/faulted fingerprints, oracle verdicts — must
// reproduce run to run.
func (r *Report) fingerprint() (string, error) {
	cp := *r
	cp.Fingerprint = ""
	cp.Wall = Wall{}
	cp.Cases = make([]CaseResult, len(r.Cases))
	for i, c := range r.Cases {
		c.Error = ""
		c.Measure = Measurements{}
		c.Oracles = make([]OracleResult, len(r.Cases[i].Oracles))
		for j, o := range r.Cases[i].Oracles {
			o.Detail = ""
			c.Oracles[j] = o
		}
		cp.Cases[i] = c
	}
	b, err := json.Marshal(cp)
	if err != nil {
		return "", fmt.Errorf("gauntlet: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
