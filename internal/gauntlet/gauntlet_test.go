package gauntlet

import (
	"context"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/fleet"
	"tagwatch/internal/statestore"
)

// miniCampaign is a cheap in-process matrix: no failover drills (those
// get their own wall-clock budget in the CI gauntlet-smoke job), but
// still four fault kinds and seven oracle families — including the
// edge fan-out tier over a flapping link.
func miniCampaign() Campaign {
	return Campaign{
		Name:        "mini",
		Description: "test-sized campaign",
		Cases: []Case{
			{
				Name: "clean", Scenario: "trackpoint",
				Duration: 90 * time.Second, Population: 60, TransitTime: 15 * time.Second,
				Seed:  1,
				Fault: Fault{Kind: FaultNone},
			},
			{
				Name: "enospc", Scenario: "trackpoint",
				Duration: 90 * time.Second, Population: 60, TransitTime: 15 * time.Second,
				Seed: 2,
				Fault: Fault{Kind: FaultFSENOSPC,
					FS: statestore.FaultConfig{Seed: 5, WriteErrProb: 0.5, ShortWriteProb: 1}},
			},
			{
				Name: "skew", Scenario: "warehouse-crossdock",
				Duration: 90 * time.Second, Population: 60, TransitTime: 15 * time.Second,
				Seed: 3,
				Fault: Fault{Kind: FaultClockSkew,
					Link: chaos.Config{Seed: 7, SkewMax: time.Minute}},
			},
			{
				Name: "edge-flap", Scenario: "trackpoint",
				Duration: 90 * time.Second, Population: 60, TransitTime: 15 * time.Second,
				Seed: 4, Speed: 300,
				Fault: Fault{Kind: FaultEdgeFlap,
					Link: chaos.Config{Seed: 9, FlapBytes: 48 << 10}},
			},
		},
	}
}

func runCampaign(t *testing.T, c Campaign, seed int64) *Report {
	t.Helper()
	r := NewRunner(c, t.TempDir(), seed, t.Logf)
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign %q did not run: %v", c.Name, err)
	}
	return rep
}

// TestMiniCampaignPassesAndReproduces is the heart of the gauntlet
// contract: the same campaign and seed must pass every oracle twice
// over and hash to the same verdict fingerprint both times.
func TestMiniCampaignPassesAndReproduces(t *testing.T) {
	first := runCampaign(t, miniCampaign(), 42)
	if !first.AllPassed {
		for _, c := range first.Cases {
			for _, o := range c.Oracles {
				t.Logf("%s/%s passed=%v %s", c.Name, o.Name, o.Passed, o.Detail)
			}
			if c.Error != "" {
				t.Logf("%s error: %s", c.Name, c.Error)
			}
		}
		t.Fatalf("mini campaign failed: %d/%d cases passed", first.Passed, len(first.Cases))
	}
	if first.Fingerprint == "" {
		t.Fatal("report has no fingerprint")
	}

	second := runCampaign(t, miniCampaign(), 42)
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("same campaign, same seed, different fingerprints:\n  %s\n  %s",
			first.Fingerprint, second.Fingerprint)
	}

	reseeded := runCampaign(t, miniCampaign(), 43)
	if reseeded.Fingerprint == first.Fingerprint {
		t.Fatal("different seed produced an identical fingerprint; seed is not reaching the cases")
	}
	if !reseeded.AllPassed {
		t.Fatalf("reseeded campaign failed: %d/%d cases passed", reseeded.Passed, len(reseeded.Cases))
	}
}

// TestOraclesRejectDivergence: each comparison oracle must actually
// fail on the divergence it claims to detect — an oracle that cannot
// fail proves nothing.
func TestOraclesRejectDivergence(t *testing.T) {
	if o := matchOracle("abc", "abd"); o.Passed {
		t.Error("matchOracle passed on different fingerprints")
	}
	if o := matchOracle("", ""); o.Passed {
		t.Error("matchOracle passed on empty fingerprints")
	}
	if o := matchOracle("abc", "abc"); !o.Passed {
		t.Error("matchOracle failed on equal fingerprints")
	}

	a := []fleet.TagState{{EPC: "e1", Reads: 3}, {EPC: "e2", Reads: 5}}
	if o := tagSetOracle(a, a); !o.Passed {
		t.Errorf("tagSetOracle failed on identical sets: %s", o.Detail)
	}
	missing := []fleet.TagState{{EPC: "e1", Reads: 3}}
	if o := tagSetOracle(a, missing); o.Passed {
		t.Error("tagSetOracle passed with a missing tag")
	}
	miscount := []fleet.TagState{{EPC: "e1", Reads: 3}, {EPC: "e2", Reads: 6}}
	if o := tagSetOracle(a, miscount); o.Passed {
		t.Error("tagSetOracle passed with a diverged read count")
	}
	invented := []fleet.TagState{{EPC: "e1", Reads: 3}, {EPC: "e3", Reads: 5}}
	if o := tagSetOracle(a, invented); o.Passed {
		t.Error("tagSetOracle passed with an invented tag")
	}

	if o := subsetOracle(a, a[:1]); !o.Passed {
		t.Errorf("subsetOracle failed on a genuine subset: %s", o.Detail)
	}
	if o := subsetOracle(a, invented); o.Passed {
		t.Error("subsetOracle passed with an invented tag")
	}
	if o := subsetOracle(a, nil); o.Passed {
		t.Error("subsetOracle passed on empty recovery")
	}
}

// TestSmokeCampaignShape: the built-in smoke campaign must satisfy the
// gauntlet's own acceptance floor — enough cases, enough distinct
// oracle-relevant fault kinds, every scenario resolvable, names unique.
func TestSmokeCampaignShape(t *testing.T) {
	c, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cases) < 8 {
		t.Fatalf("smoke campaign has %d cases; the acceptance floor is 8", len(c.Cases))
	}
	kinds := map[string]bool{}
	names := map[string]bool{}
	for _, cs := range c.Cases {
		if names[cs.Name] {
			t.Errorf("duplicate case name %q", cs.Name)
		}
		names[cs.Name] = true
		kinds[cs.Fault.Kind] = true
		if _, err := caseSpec(cs); err != nil {
			t.Errorf("case %q: %v", cs.Name, err)
		}
		if cs.Fault.Spec() == "" {
			t.Errorf("case %q renders an empty fault spec", cs.Name)
		}
	}
	for _, k := range []string{FaultNone, FaultLinkChaos, FaultLinkPartition, FaultLinkFlap,
		FaultFSENOSPC, FaultFSEIO, FaultClockSkew, FaultSlowSSE, FaultEdgeFlap} {
		if !kinds[k] {
			t.Errorf("smoke campaign never exercises fault kind %q", k)
		}
	}

	if _, err := Lookup("no-such-campaign"); err == nil {
		t.Error("Lookup accepted an unknown campaign")
	}
	if got := Names(); len(got) == 0 || got[0] != "smoke" {
		t.Errorf("Names() = %v", got)
	}
}

// TestFaultSpecRendersEveryInjector: the fingerprinted fault script must
// mention whichever injector the fault parameterizes, so silently
// editing a campaign definition changes the verdict fingerprint.
func TestFaultSpecRendersEveryInjector(t *testing.T) {
	f := Fault{
		Kind:       FaultLinkFlap,
		Link:       chaos.Config{Seed: 3, FlapBytes: 1024},
		FS:         statestore.FaultConfig{Seed: 9, SyncErrProb: 1},
		SSEClients: 2,
	}
	s := f.Spec()
	for _, want := range []string{"link-flap", "link{", "flap=1024", "fs{", "sync=1", "sse{clients=2}"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fault.Spec() = %q; missing %q", s, want)
		}
	}
	if got := (Fault{Kind: FaultNone}).Spec(); got != "none" {
		t.Errorf("clean fault spec = %q, want %q", got, "none")
	}
}

// TestRunnerRefusesBadSetups: campaign-level misconfiguration is an
// error, not a report.
func TestRunnerRefusesBadSetups(t *testing.T) {
	if _, err := NewRunner(miniCampaign(), "", 1, nil).Run(context.Background()); err == nil {
		t.Error("Run accepted an empty scratch dir")
	}
	if _, err := NewRunner(Campaign{Name: "hollow"}, t.TempDir(), 1, nil).Run(context.Background()); err == nil {
		t.Error("Run accepted a campaign with no cases")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(miniCampaign(), t.TempDir(), 1, nil).Run(ctx); err == nil {
		t.Error("Run ignored a cancelled context")
	}

	// A case with an unknown fault kind fails its case, not the run.
	c := Campaign{Name: "bad-kind", Cases: []Case{{
		Name: "mystery", Scenario: "trackpoint",
		Duration: 90 * time.Second, Population: 40, TransitTime: 15 * time.Second,
		Fault: Fault{Kind: "gremlins"},
	}}}
	rep := runCampaign(t, c, 1)
	if rep.AllPassed || rep.Cases[0].Error == "" {
		t.Errorf("unknown fault kind should fail the case: %+v", rep.Cases[0])
	}
}
