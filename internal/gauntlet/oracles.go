package gauntlet

import (
	"fmt"
	"runtime"
	"time"

	"tagwatch/internal/fleet"
)

// Oracle names. Each is a distinct invariant family; a campaign's
// verdict is the conjunction of every oracle row it emits.
const (
	// OracleRegistryMatch: the faulted (or promoted) registry fingerprint
	// equals the no-fault control's — byte-identical tag state.
	OracleRegistryMatch = "registry-match"
	// OracleTagSetMatch: the faulted run observed exactly the control's
	// tag set with the same per-tag read counts (used where timestamps
	// legitimately differ, e.g. clock skew).
	OracleTagSetMatch = "tag-set-match"
	// OracleStoreRecoverable: reopening the faulted state directory on a
	// healthy filesystem recovers a clean, non-poisoned store whose tags
	// are a subset of the control's — no invented state, no refusal.
	OracleStoreRecoverable = "store-recoverable"
	// OracleDurabilityHonest: when the disk misbehaved, the durability
	// paths said so — the explicit sync and the final save returned
	// errors instead of acking lost data.
	OracleDurabilityHonest = "durability-honest"
	// OracleHealthzSLO: every /healthz probe during the faulted run
	// answered 200 within the SLO.
	OracleHealthzSLO = "healthz-slo"
	// OracleReplicationReanchored: the standby survived session deaths by
	// re-negotiating (≥ 2 sessions) and still converged — re-anchor, not
	// divergence.
	OracleReplicationReanchored = "replication-reanchored"
	// OracleFaultExercised: the injected fault actually fired — a
	// campaign that passes without injecting anything proves nothing.
	OracleFaultExercised = "fault-exercised"
	// OracleLossAccounted: the edge link's bounded-loss promise held —
	// zero unannounced sequence holes (contiguity violations), and every
	// announced gap resolved as either a ring-replay heal or an explicit
	// reset, so the gap ledger balances.
	OracleLossAccounted = "loss-accounted"
	// OracleGoroutinesBounded / OracleHeapBounded: after teardown the
	// process returned to its resource baseline (plus slack) — no leaked
	// goroutines, no unbounded heap.
	OracleGoroutinesBounded = "goroutines-bounded"
	OracleHeapBounded       = "heap-bounded"
)

// healthzSLO is how long a /healthz probe may take before the oracle
// fails. Deliberately generous: the oracle is part of the deterministic
// fingerprint, so it must hold on a loaded CI machine, not just a quiet
// laptop.
const healthzSLO = 2 * time.Second

// resource slack above the pre-case baseline that still counts as
// bounded. Goroutine slack covers the runtime's own pool variance; heap
// slack covers GC timing across identically-sized runs.
const (
	goroutineSlack = 32
	heapSlackBytes = 128 << 20
)

// oracle builds one verdict row.
func oracle(name string, passed bool, format string, args ...any) OracleResult {
	return OracleResult{Name: name, Passed: passed, Detail: fmt.Sprintf(format, args...)}
}

// matchOracle compares the differential fingerprint pair.
func matchOracle(control, faulted string) OracleResult {
	return oracle(OracleRegistryMatch, control != "" && control == faulted,
		"control %.12s vs faulted %.12s", control, faulted)
}

// tagSetOracle compares per-EPC read counts between two registry
// snapshots — identity of what was observed, ignoring when.
func tagSetOracle(control, faulted []fleet.TagState) OracleResult {
	if len(control) != len(faulted) {
		return oracle(OracleTagSetMatch, false, "%d control tags vs %d faulted", len(control), len(faulted))
	}
	reads := make(map[string]uint64, len(control))
	for _, st := range control {
		reads[st.EPC] = st.Reads
	}
	for _, st := range faulted {
		want, ok := reads[st.EPC]
		if !ok {
			return oracle(OracleTagSetMatch, false, "faulted run invented tag %s", st.EPC)
		}
		if st.Reads != want {
			return oracle(OracleTagSetMatch, false, "tag %s read %d times, control %d", st.EPC, st.Reads, want)
		}
	}
	return oracle(OracleTagSetMatch, true, "%d tags, identical read counts", len(control))
}

// subsetOracle checks the recovered registry against the control set:
// everything recovered must be a tag the control run saw (no invented
// state), and recovery must not come back empty when the fault struck
// after a durable anchor.
func subsetOracle(control, recovered []fleet.TagState) OracleResult {
	seen := make(map[string]bool, len(control))
	for _, st := range control {
		seen[st.EPC] = true
	}
	for _, st := range recovered {
		if !seen[st.EPC] {
			return oracle(OracleStoreRecoverable, false, "recovered tag %s the control never saw", st.EPC)
		}
	}
	if len(recovered) == 0 {
		return oracle(OracleStoreRecoverable, false, "recovery came back empty despite a durable anchor")
	}
	return oracle(OracleStoreRecoverable, true, "%d of %d control tags recovered, none invented",
		len(recovered), len(control))
}

// resourceBaseline snapshots the process before a case so the bounded
// oracles have something to compare against.
type resourceBaseline struct {
	goroutines int
	heap       uint64
}

func takeBaseline() resourceBaseline {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	return resourceBaseline{goroutines: runtime.NumGoroutine(), heap: ms.HeapAlloc}
}

// boundedOracles polls the process back toward the baseline after a
// case tears down. Goroutines get a settle window (Stop is synchronous
// but the runtime reaps asynchronously); heap is measured after a
// forced GC. Returns the two oracle rows plus the final measurements.
func boundedOracles(base resourceBaseline) (gor, heap OracleResult, finalG int, finalHeap uint64) {
	limit := base.goroutines + goroutineSlack
	deadline := time.Now().Add(5 * time.Second)
	finalG = runtime.NumGoroutine()
	for finalG > limit && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		finalG = runtime.NumGoroutine()
	}
	gor = oracle(OracleGoroutinesBounded, finalG <= limit,
		"%d goroutines after teardown, baseline %d (+%d slack)", finalG, base.goroutines, goroutineSlack)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	finalHeap = ms.HeapAlloc
	heap = oracle(OracleHeapBounded, finalHeap <= base.heap+heapSlackBytes,
		"%d MiB heap after teardown, baseline %d MiB (+%d MiB slack)",
		finalHeap>>20, base.heap>>20, heapSlackBytes>>20)
	return gor, heap, finalG, finalHeap
}
