package gauntlet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/edge"
	"tagwatch/internal/fleet"
	"tagwatch/internal/replay"
	"tagwatch/internal/scenario"
	"tagwatch/internal/statestore"
)

// caseFleetConfig is the fleet configuration every gauntlet node uses.
// Like the failover drill, quarantine and capacity bounds are off: both
// are node-local state that intentionally does not replicate or
// persist, so differential runs would diverge by design, not by bug.
func caseFleetConfig(stateDir string) fleet.Config {
	fc := fleet.DefaultConfig()
	fc.QuarantineK = 0
	fc.MaxTags = 0
	fc.StateDir = stateDir
	return fc
}

// Run executes every case in the campaign and returns the verdict
// report. A non-nil error means the campaign could not run at all
// (bad configuration, cancelled context); a campaign whose oracles
// failed returns AllPassed=false, not an error, so callers can emit the
// full differential evidence.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.dir == "" {
		return nil, errors.New("gauntlet: scratch dir is required")
	}
	if len(r.campaign.Cases) == 0 {
		return nil, fmt.Errorf("gauntlet: campaign %q has no cases", r.campaign.Name)
	}
	rep := &Report{
		Campaign:    r.campaign.Name,
		Description: r.campaign.Description,
		Seed:        r.seed,
	}
	start := time.Now()
	for i, c := range r.campaign.Cases {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gauntlet: aborted before case %q: %w", c.Name, err)
		}
		res := r.runCase(ctx, i, c)
		if res.Passed {
			rep.Passed++
		} else {
			rep.Failed++
		}
		verdict := "PASS"
		if !res.Passed {
			verdict = "FAIL"
		}
		r.logf("gauntlet: [%d/%d] %-28s %-40s %s", i+1, len(r.campaign.Cases), c.Name, res.FaultSpec, verdict)
		rep.Cases = append(rep.Cases, res)
	}
	rep.AllPassed = rep.Failed == 0
	fp, err := rep.fingerprint()
	if err != nil {
		return nil, err
	}
	rep.Fingerprint = fp
	end := time.Now()
	rep.Wall = Wall{Start: start, End: end, ElapsedMS: end.Sub(start).Milliseconds()}
	return rep, nil
}

// caseSpec resolves the case's scenario pack and applies its shrink
// overrides.
func caseSpec(c Case) (scenario.Spec, error) {
	spec, err := scenario.Lookup(c.Scenario)
	if err != nil {
		return scenario.Spec{}, err
	}
	if c.Duration > 0 {
		spec.Duration = c.Duration
	}
	if c.Population > 0 {
		spec.Population = c.Population
	}
	if c.TransitTime > 0 {
		spec.TransitTime = c.TransitTime
	}
	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, fmt.Errorf("case %q: shrunk spec invalid: %w", c.Name, err)
	}
	return spec, nil
}

// runCase executes one case end to end: fault script, oracles, resource
// bounds. Failures to even run land in res.Error; oracle verdicts land
// in res.Oracles. Either way the case reports rather than aborting the
// campaign.
func (r *Runner) runCase(ctx context.Context, idx int, c Case) CaseResult {
	seed := r.seed + c.Seed
	res := CaseResult{Name: c.Name, Scenario: c.Scenario, Seed: seed, FaultSpec: c.Fault.Spec()}
	base := takeBaseline()

	spec, err := caseSpec(c)
	if err == nil {
		caseDir := filepath.Join(r.dir, fmt.Sprintf("case-%02d", idx))
		switch c.Fault.Kind {
		case FaultNone:
			err = r.runNone(ctx, &res, spec, seed, caseDir)
		case FaultLinkChaos, FaultLinkPartition, FaultLinkFlap:
			err = r.runDrill(ctx, &res, spec, seed, c, caseDir)
		case FaultFSENOSPC, FaultFSEIO:
			err = r.runFS(ctx, &res, spec, seed, c, caseDir)
		case FaultClockSkew:
			err = r.runSkew(ctx, &res, spec, seed, c)
		case FaultSlowSSE:
			err = r.runSSE(ctx, &res, spec, seed, c)
		case FaultEdgeFlap:
			err = r.runEdge(ctx, &res, spec, seed, c)
		default:
			err = fmt.Errorf("case %q: unknown fault kind %q", c.Name, c.Fault.Kind)
		}
	}
	if err != nil {
		res.Error = err.Error()
	}

	gor, heap, g, h := boundedOracles(base)
	res.Oracles = append(res.Oracles, gor, heap)
	res.Measure.Goroutines = g
	res.Measure.HeapBytes = h

	res.Passed = res.Error == ""
	for _, o := range res.Oracles {
		if !o.Passed {
			res.Passed = false
		}
	}
	return res
}

// runControl feeds the whole timeline through an unfaulted in-memory
// fleet — the differential baseline every case compares against.
func runControl(ctx context.Context, compiled *scenario.Compiled) (string, []fleet.TagState, error) {
	m := fleet.New(caseFleetConfig(""))
	if err := m.Start(ctx); err != nil {
		return "", nil, fmt.Errorf("gauntlet: start control fleet: %w", err)
	}
	if err := replay.Feed(ctx, m, compiled, 0, len(compiled.Events), 0); err != nil {
		//tagwatch:allow-droppederr in-memory fleet; the feed error is what matters
		_ = m.Stop()
		return "", nil, err
	}
	fp, err := replay.RegistryFingerprint(m.Registry())
	snap := m.Registry().Snapshot()
	if serr := m.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return "", nil, err
	}
	return fp, snap, nil
}

// runNone is the no-fault durable case: the same timeline through a
// fleet with a real state directory must produce registry state
// identical to the in-memory control, and a reopen must restore exactly
// that state. This is the campaign's own control-of-controls — if it
// fails, the harness, not the system, is broken.
func (r *Runner) runNone(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, dir string) error {
	compiled, err := scenario.Compile(spec, seed)
	if err != nil {
		return err
	}
	controlFP, controlSnap, err := runControl(ctx, compiled)
	if err != nil {
		return err
	}
	res.ControlFingerprint = controlFP

	fc := caseFleetConfig(filepath.Join(dir, "state"))
	fc.JournalFlush = 50 * time.Millisecond
	fc.SnapshotInterval = time.Second
	m := fleet.New(fc)
	if err := m.Start(ctx); err != nil {
		return err
	}
	if err := replay.Feed(ctx, m, compiled, 0, len(compiled.Events), 0); err != nil {
		//tagwatch:allow-droppederr the feed error is what matters
		_ = m.Stop()
		return err
	}
	res.FaultedFingerprint, err = replay.RegistryFingerprint(m.Registry())
	if serr := m.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	res.Oracles = append(res.Oracles, matchOracle(res.ControlFingerprint, res.FaultedFingerprint))

	// Reopen the state directory: the final save must restore the same
	// tag set with the same read counts.
	m2 := fleet.New(caseFleetConfig(filepath.Join(dir, "state")))
	if err := m2.Start(ctx); err != nil {
		return fmt.Errorf("reopen saved state: %w", err)
	}
	recovered := m2.Registry().Snapshot()
	res.Measure.RecoveredTags = len(recovered)
	if err := m2.Stop(); err != nil {
		return err
	}
	set := tagSetOracle(controlSnap, recovered)
	set.Name = OracleStoreRecoverable
	res.Oracles = append(res.Oracles, set)
	return nil
}

// runDrill routes the link-* kinds through the failover drill: the
// replication transport carries the configured fault while the primary
// is killed mid-run and the standby promoted.
func (r *Runner) runDrill(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, c Case, dir string) error {
	drep, err := replay.RunFailoverDrill(ctx, replay.DrillConfig{
		Spec:         spec,
		Seed:         seed,
		Speed:        c.Speed,
		KillFraction: c.Fault.KillFraction,
		Link:         c.Fault.Link,
		Dir:          dir,
	})
	if err != nil {
		return err
	}
	res.ControlFingerprint = drep.ControlFingerprint
	res.FaultedFingerprint = drep.PromotedFingerprint
	res.Measure.Chaos = drep.Chaos
	res.Measure.Standby = drep.Standby

	res.Oracles = append(res.Oracles, matchOracle(drep.ControlFingerprint, drep.PromotedFingerprint))

	var fired uint64
	var what string
	switch c.Fault.Kind {
	case FaultLinkPartition:
		fired, what = drep.Chaos.Partitions, "partitions"
	case FaultLinkFlap:
		fired, what = drep.Chaos.Flaps, "flaps"
	default:
		fired = drep.Chaos.Truncations + drep.Chaos.Corruptions + drep.Chaos.Resets +
			drep.Chaos.Stalls + drep.Chaos.Blackholes + drep.Chaos.Refusals
		what = "link faults"
	}
	res.Oracles = append(res.Oracles,
		oracle(OracleFaultExercised, fired > 0, "%d %s injected over %d conns", fired, what, drep.Chaos.Conns),
		oracle(OracleReplicationReanchored,
			drep.Standby.Sessions >= 2 && drep.Standby.Records > 0,
			"%d sessions, %d records, %d resync wipes", drep.Standby.Sessions, drep.Standby.Records, drep.Standby.Wipes))
	return nil
}

// runFS scripts a disk that goes bad mid-run: boot clean, feed half the
// timeline, anchor it durably, then arm the filesystem injector and
// finish the run on a failing disk. The in-memory pipeline must not
// notice; the durability paths must refuse honestly; a reopen on a
// healthy disk must recover the anchored state.
func (r *Runner) runFS(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, c Case, dir string) error {
	compiled, err := scenario.Compile(spec, seed)
	if err != nil {
		return err
	}
	controlFP, controlSnap, err := runControl(ctx, compiled)
	if err != nil {
		return err
	}
	res.ControlFingerprint = controlFP

	ffs := statestore.NewFaultFS(nil, c.Fault.FS)
	ffs.Arm(false)
	stateDir := filepath.Join(dir, "state")
	fc := caseFleetConfig(stateDir)
	fc.StateFS = ffs
	// The poisoning points are scripted (the explicit sync below and the
	// final save), not raced against a background checkpoint cadence.
	fc.JournalFlush = time.Hour
	fc.SnapshotInterval = time.Hour
	m := fleet.New(fc)
	if err := m.Start(ctx); err != nil {
		return err
	}
	half := len(compiled.Events) / 2
	if err := replay.Feed(ctx, m, compiled, 0, half, 0); err != nil {
		m.Kill()
		return err
	}
	if err := m.SyncReplication(ctx); err != nil {
		m.Kill()
		return fmt.Errorf("durable anchor before fault: %w", err)
	}

	ffs.Arm(true)
	if err := replay.Feed(ctx, m, compiled, half, len(compiled.Events), 0); err != nil {
		m.Kill()
		return err
	}
	res.FaultedFingerprint, err = replay.RegistryFingerprint(m.Registry())
	if err != nil {
		m.Kill()
		return err
	}
	syncErr := m.SyncReplication(ctx)
	stopErr := m.Stop()
	res.Measure.FS = ffs.Stats()

	res.Oracles = append(res.Oracles,
		matchOracle(res.ControlFingerprint, res.FaultedFingerprint),
		oracle(OracleDurabilityHonest, syncErr != nil && stopErr != nil,
			"sync said %v; final save said %v", syncErr, stopErr),
		oracle(OracleFaultExercised,
			res.Measure.FS.WriteFaults+res.Measure.FS.ShortWrites+res.Measure.FS.SyncFaults > 0,
			"fs faults: %+v", res.Measure.FS))

	// Recovery on a healthy filesystem: the anchored prefix comes back,
	// nothing invented, store not poisoned.
	m2 := fleet.New(caseFleetConfig(stateDir))
	if err := m2.Start(ctx); err != nil {
		res.Oracles = append(res.Oracles,
			oracle(OracleStoreRecoverable, false, "reopen failed: %v", err))
		return nil
	}
	recovered := m2.Registry().Snapshot()
	res.Measure.RecoveredTags = len(recovered)
	if err := m2.Stop(); err != nil {
		res.Oracles = append(res.Oracles,
			oracle(OracleStoreRecoverable, false, "reopened store could not save: %v", err))
		return nil
	}
	res.Oracles = append(res.Oracles, subsetOracle(controlSnap, recovered))
	return nil
}

// runSkew feeds the timeline through readers whose clocks disagree by
// deterministic per-gate offsets. The set of tags observed — and how
// often — must not change; only timestamps may.
func (r *Runner) runSkew(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, c Case) error {
	compiled, err := scenario.Compile(spec, seed)
	if err != nil {
		return err
	}
	controlFP, controlSnap, err := runControl(ctx, compiled)
	if err != nil {
		return err
	}
	res.ControlFingerprint = controlFP

	inj := chaos.New(c.Fault.Link)
	skews := make([]time.Duration, len(spec.Gates))
	var maxAbs time.Duration
	for i, g := range spec.Gates {
		skews[i] = inj.Skew(g.Reader)
		if d := skews[i]; d > maxAbs {
			maxAbs = d
		} else if -d > maxAbs {
			maxAbs = -d
		}
	}
	res.Measure.SkewMaxAppliedS = maxAbs.Seconds()

	m := fleet.New(caseFleetConfig(""))
	if err := m.Start(ctx); err != nil {
		return err
	}
	if err := replay.FeedSkewed(ctx, m, compiled, 0, len(compiled.Events), 0, skews); err != nil {
		//tagwatch:allow-droppederr the feed error is what matters
		_ = m.Stop()
		return err
	}
	res.FaultedFingerprint, err = replay.RegistryFingerprint(m.Registry())
	faulted := m.Registry().Snapshot()
	if serr := m.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	res.Oracles = append(res.Oracles,
		tagSetOracle(controlSnap, faulted),
		oracle(OracleFaultExercised, maxAbs > 0, "largest per-gate offset %v", maxAbs))
	return nil
}

// runEdge routes the workload's event stream through the fan-out tier
// over a flapping link: the fleet serves /api/events through a chaos
// listener that severs the TCP session every Link.FlapBytes while an
// edge client mirrors the registry on the far side. The mirror must
// converge to the control's registry fingerprint, every loss interval
// must be covered by an announced gap or an explicit reset (zero
// unannounced holes), and the flap must actually have fired.
func (r *Runner) runEdge(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, c Case) error {
	compiled, err := scenario.Compile(spec, seed)
	if err != nil {
		return err
	}
	controlFP, _, err := runControl(ctx, compiled)
	if err != nil {
		return err
	}
	res.ControlFingerprint = controlFP

	fc := caseFleetConfig("")
	// Fast heartbeats bound tail-gap announcement delay; a ring deeper
	// than the whole timeline keeps every flap resumable via replay, so
	// the only reset the client should ever need is its initial anchor.
	fc.SSEHeartbeat = 100 * time.Millisecond
	fc.SSEWriteTimeout = 2 * time.Second
	fc.EventRingCap = 1 << 17
	m := fleet.New(fc)
	if err := m.Start(ctx); err != nil {
		return err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		//tagwatch:allow-droppederr the listen error is what matters
		_ = m.Stop()
		return err
	}
	link := c.Fault.Link
	if link.Seed == 0 {
		link.Seed = seed
	}
	inj := chaos.New(link)
	sctx, scancel := context.WithCancel(ctx)
	serveDone := make(chan error, 1)
	go func() { serveDone <- m.Serve(sctx, inj.Listener(lis)) }()

	client := edge.NewClient(edge.Config{
		Upstream:    lis.Addr().String(),
		ReadTimeout: 2 * time.Second,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		Seed:        seed,
	})
	cctx, ccancel := context.WithCancel(ctx)
	clientDone := make(chan struct{})
	go func() { defer close(clientDone); _ = client.Run(cctx) }()

	// Let the client anchor on the still-empty registry first, so the
	// entire event volume crosses the flapping link instead of racing
	// the feed for its initial snapshot.
	anchorBy := time.Now().Add(5 * time.Second)
	for time.Now().Before(anchorBy) && client.Status().Resets == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	err = replay.Feed(ctx, m, compiled, 0, len(compiled.Events), c.Speed)
	if err == nil {
		// Quiesce: the link keeps flapping, but every reconnect resumes
		// at the cursor — wait for the mirror to walk all the way up to
		// the bus head.
		target := m.Bus().LastSeq()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			ident, cur := client.Cursor()
			if ident == m.Bus().Identity() && cur >= target {
				break
			}
			if err = ctx.Err(); err != nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	st := client.Status()
	mirrorFP, fpErr := replay.SnapshotFingerprint(client.Snapshot())
	ccancel()
	<-clientDone
	scancel()
	if serr := <-serveDone; serr != nil && err == nil {
		err = serr
	}
	if serr := m.Stop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	if fpErr != nil {
		return fpErr
	}
	res.FaultedFingerprint = mirrorFP
	res.Measure.Chaos = inj.Stats()
	res.Measure.Edge = st

	res.Oracles = append(res.Oracles,
		matchOracle(res.ControlFingerprint, res.FaultedFingerprint),
		oracle(OracleLossAccounted,
			st.ContiguityViolations == 0 && st.Gaps == st.GapsHealed+st.GapsReset,
			"%d gaps (%d healed, %d reset), %d resets, %d unannounced holes over %d sessions",
			st.Gaps, st.GapsHealed, st.GapsReset, st.Resets, st.ContiguityViolations, st.Sessions),
		oracle(OracleFaultExercised, inj.Stats().Flaps > 0,
			"%d flaps over %d conns", inj.Stats().Flaps, inj.Stats().Conns))
	return nil
}

// probeOutcome is what the healthz prober saw during a faulted run.
type probeOutcome struct {
	probes   int
	failures int
	worst    time.Duration
}

// probeHealthz polls /healthz until ctx is cancelled. Each probe gets
// the full SLO as its client timeout; anything slower (or any non-200)
// counts as a failure.
func probeHealthz(ctx context.Context, addr string) <-chan probeOutcome {
	out := make(chan probeOutcome, 1)
	go func() {
		var po probeOutcome
		client := &http.Client{Timeout: healthzSLO}
		url := "http://" + addr + "/healthz"
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				out <- po
				return
			case <-tick.C:
				start := time.Now()
				resp, err := client.Get(url)
				took := time.Since(start)
				po.probes++
				if took > po.worst {
					po.worst = took
				}
				if err != nil || resp.StatusCode != http.StatusOK {
					po.failures++
				}
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()
	return out
}

// runSSE attaches stalled event-stream consumers to a live fleet API
// while the workload runs. The consumers must be shed by the per-write
// deadlines, not pin the pipeline: registry state must match the
// control and /healthz must keep answering within the SLO throughout.
func (r *Runner) runSSE(ctx context.Context, res *CaseResult, spec scenario.Spec, seed int64, c Case) error {
	compiled, err := scenario.Compile(spec, seed)
	if err != nil {
		return err
	}
	controlFP, _, err := runControl(ctx, compiled)
	if err != nil {
		return err
	}
	res.ControlFingerprint = controlFP

	fc := caseFleetConfig("")
	fc.MaxSSEClients = 8
	fc.SSEWriteTimeout = 250 * time.Millisecond
	m := fleet.New(fc)
	if err := m.Start(ctx); err != nil {
		return err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		//tagwatch:allow-droppederr the listen error is what matters
		_ = m.Stop()
		return err
	}
	sctx, scancel := context.WithCancel(ctx)
	serveDone := make(chan error, 1)
	go func() { serveDone <- m.Serve(sctx, lis) }()
	addr := lis.Addr().String()

	clients := c.Fault.SSEClients
	if clients <= 0 {
		clients = 4
	}
	var conns []net.Conn
	for i := 0; i < clients; i++ {
		nc, derr := net.Dial("tcp", addr)
		if derr != nil {
			continue
		}
		// A subscriber that never reads: the request goes out, then the
		// client side goes silent while the server's frames pile up.
		fmt.Fprintf(nc, "GET /api/events HTTP/1.1\r\nHost: gauntlet\r\nAccept: text/event-stream\r\n\r\n")
		conns = append(conns, nc)
	}

	pctx, pcancel := context.WithCancel(ctx)
	probed := probeHealthz(pctx, addr)

	err = replay.Feed(ctx, m, compiled, 0, len(compiled.Events), c.Speed)
	pcancel()
	po := <-probed
	for _, nc := range conns {
		nc.Close()
	}
	if err != nil {
		scancel()
		<-serveDone
		//tagwatch:allow-droppederr the feed error is what matters
		_ = m.Stop()
		return err
	}
	res.FaultedFingerprint, err = replay.RegistryFingerprint(m.Registry())
	scancel()
	if serr := <-serveDone; serr != nil && err == nil {
		err = serr
	}
	if serr := m.Stop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}

	res.Measure.HealthzProbes = po.probes
	res.Measure.WorstHealthzMS = po.worst.Milliseconds()
	res.Oracles = append(res.Oracles,
		matchOracle(res.ControlFingerprint, res.FaultedFingerprint),
		oracle(OracleHealthzSLO, po.probes > 0 && po.failures == 0 && po.worst <= healthzSLO,
			"%d probes, %d failures, worst %v (SLO %v)", po.probes, po.failures, po.worst, healthzSLO),
		oracle(OracleFaultExercised, len(conns) == clients && clients > 0,
			"%d stalled event-stream consumers attached", len(conns)))
	return nil
}
