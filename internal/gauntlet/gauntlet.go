// Package gauntlet is the declarative fault-campaign orchestrator: the
// layer that turns the repo's scattered robustness artifacts — chaos-
// injected links, replay through a real fleet, statestore durability,
// replication failover — into named, rerunnable campaigns with a
// verdict.
//
// A Campaign is a matrix of cases; each Case is one scenario workload
// crossed with one fault script and judged by invariant oracles. Every
// case runs seed-deterministically and carries its own differential
// control: the same compiled timeline through an unfaulted in-memory
// fleet. The oracles assert what the layers underneath promise —
// registry state identical to the control, stores poisoned honestly and
// recoverable on reopen, replication re-anchoring instead of diverging,
// /healthz answering within an SLO, goroutine and heap counts bounded
// after teardown.
//
// The outcome is a Report whose deterministic portion (case names,
// fault scripts, fingerprints, oracle verdicts) hashes to a stable
// fingerprint: two runs of the same campaign and seed must agree on it,
// which is what the CI gauntlet-smoke job asserts. Wall timings, fault
// counters, and failure detail ride along for humans but stay outside
// the hash.
//
// cmd/gauntlet and `make gauntlet` drive the built-in campaigns; tests
// compose ad-hoc ones.
package gauntlet

import (
	"fmt"
	"time"

	"tagwatch/internal/chaos"
	"tagwatch/internal/statestore"
)

// Fault kinds a Case can select. Each kind scripts a different path
// through the stack; the Fault's other fields parameterize it.
const (
	// FaultNone runs the workload through a durable fleet with no fault
	// at all — the oracle here is that durability itself does not
	// perturb registry state.
	FaultNone = "none"
	// FaultLinkChaos degrades the replication link with the classic
	// injector faults (latency, truncation, corruption, resets,
	// blackhole) during a kill-and-promote failover drill.
	FaultLinkChaos = "link-chaos"
	// FaultLinkPartition runs the drill over an asymmetric partition:
	// Link.PartitionDir picks which direction goes silently dead.
	FaultLinkPartition = "link-partition"
	// FaultLinkFlap runs the drill over a flap storm: the link dies
	// every Link.FlapBytes, forcing resume/re-anchor negotiation over
	// and over.
	FaultLinkFlap = "link-flap"
	// FaultFSENOSPC fills the disk under the primary's statestore
	// mid-run (FS.WriteErrProb / FS.ShortWriteProb).
	FaultFSENOSPC = "fs-enospc"
	// FaultFSEIO fails the statestore's durability barriers mid-run
	// (FS.SyncErrProb / FS.DirSyncErrProb).
	FaultFSEIO = "fs-eio"
	// FaultClockSkew feeds the workload through readers whose clocks
	// disagree by per-gate offsets drawn from Link.SkewMax.
	FaultClockSkew = "clock-skew"
	// FaultSlowSSE attaches stalled /api/events consumers to the fleet
	// while the workload runs; the pipeline and /healthz must not care.
	FaultSlowSSE = "slow-sse"
	// FaultEdgeFlap routes the workload's event stream through the edge
	// fan-out tier over a chaos link that severs the TCP session every
	// Link.FlapBytes: the edge mirror must still converge to the
	// control's registry fingerprint, with every loss interval covered
	// by an announced gap or an explicit reset — never a silent hole.
	FaultEdgeFlap = "edge-flap"
)

// Fault is one fault script, interpreted per Kind.
type Fault struct {
	Kind string `json:"kind"`
	// Link parameterizes the chaos injector for the link-* kinds, the
	// skew draw for clock-skew (SkewMax plus Seed).
	Link chaos.Config `json:"-"`
	// FS parameterizes the filesystem injector for the fs-* kinds.
	FS statestore.FaultConfig `json:"-"`
	// SSEClients is how many stalled event-stream consumers slow-sse
	// attaches (default 4).
	SSEClients int `json:"sse_clients,omitempty"`
	// KillFraction positions the drill's kill point for the link-*
	// kinds (default 0.5).
	KillFraction float64 `json:"kill_fraction,omitempty"`
}

// Spec renders the fault script canonically for the report — the same
// role chaos.Config.Spec plays for the -chaos flag, covering whichever
// injector the kind uses.
func (f Fault) Spec() string {
	s := f.Kind
	if ls := f.Link.Spec(); ls != "" {
		s += " link{" + ls + "}"
	}
	if f.FS.Seed != 0 || f.FS.WriteErrProb > 0 || f.FS.ShortWriteProb > 0 || f.FS.SyncErrProb > 0 || f.FS.DirSyncErrProb > 0 {
		s += fmt.Sprintf(" fs{seed=%d,write=%g,short=%g,sync=%g,dirsync=%g}",
			f.FS.Seed, f.FS.WriteErrProb, f.FS.ShortWriteProb, f.FS.SyncErrProb, f.FS.DirSyncErrProb)
	}
	if f.SSEClients > 0 {
		s += fmt.Sprintf(" sse{clients=%d}", f.SSEClients)
	}
	return s
}

// Case is one scenario × fault combination.
type Case struct {
	// Name labels the case in the report; unique within a campaign.
	Name string `json:"name"`
	// Scenario is a scenario-factory pack name (scenario.Lookup).
	Scenario string `json:"scenario"`
	// Duration, Population, and TransitTime shrink the pack to gauntlet
	// scale when nonzero — campaigns run many cases, so each one is a
	// few virtual minutes, not the pack's full shift.
	Duration    time.Duration `json:"duration_ns,omitempty"`
	Population  int           `json:"population,omitempty"`
	TransitTime time.Duration `json:"transit_time_ns,omitempty"`
	// Seed drives the compiled timeline and every injector draw.
	Seed int64 `json:"seed"`
	// Speed paces delivery (virtual seconds per wall second; 0 =
	// unthrottled). Link cases want pacing so the chaos injector sees
	// live traffic; in-memory cases run unthrottled.
	Speed float64 `json:"speed"`
	// Fault is the script this case runs under.
	Fault Fault `json:"fault"`
}

// Campaign is a named list of cases run as one unit.
type Campaign struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Cases       []Case `json:"-"`
}

// Runner executes one campaign. The zero value is not usable: construct
// with NewRunner.
type Runner struct {
	campaign Campaign
	dir      string
	seed     int64
	logf     func(format string, args ...any)
}

// NewRunner prepares a campaign run. dir is the scratch root for the
// state directories the cases create (required). seed offsets every
// case seed, so one campaign definition yields fresh-but-reproducible
// workloads per seed. logf, when non-nil, receives one progress line
// per case.
func NewRunner(c Campaign, dir string, seed int64, logf func(format string, args ...any)) *Runner {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Runner{campaign: c, dir: dir, seed: seed, logf: logf}
}
