package tracking

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// fourAntennas places the paper's (±5, ±5) m rig.
func fourAntennas() []scene.Antenna {
	return []scene.Antenna{
		{ID: 1, Pos: rf.Pt(5, 5, 0)},
		{ID: 2, Pos: rf.Pt(-5, 5, 0)},
		{ID: 3, Pos: rf.Pt(-5, -5, 0)},
		{ID: 4, Pos: rf.Pt(5, -5, 0)},
	}
}

// synthObs generates phase observations of a trajectory at the given IRR
// (readings per second, spread round-robin over the four antennas) with
// the given phase noise, pinned to one hop channel.
func synthObs(rng *rand.Rand, traj scene.Trajectory, plan rf.FrequencyPlan, irrHz float64, noise float64, dur time.Duration) []Observation {
	ants := fourAntennas()
	var obs []Observation
	period := time.Duration(float64(time.Second) / irrHz)
	i := 0
	tagOffset := 1.234 // constant θ0: must cancel in the differential
	for ts := time.Duration(0); ts < dur; ts += period {
		a := ants[i%len(ants)]
		i++
		d := a.Pos.Dist(traj.Pos(ts))
		phase := rf.WrapPhase(4*math.Pi*d/plan.Wavelength(0) + tagOffset + rng.NormFloat64()*noise)
		obs = append(obs, Observation{Time: ts, Antenna: a.ID, Channel: 0, Phase: phase})
	}
	return obs
}

func trainTrack() scene.Trajectory {
	return scene.Circle{Center: rf.Pt(0, 0, 0), Radius: 0.2, Speed: 0.7}
}

func TestHighRateTrackingAccurate(t *testing.T) {
	// 68 Hz (the paper's uncontended rate): mean error ~1–3 cm.
	rng := rand.New(rand.NewSource(1))
	plan := rf.DefaultFrequencyPlan()
	traj := trainTrack()
	obs := synthObs(rng, traj, plan, 68, 0.1, 10*time.Second)
	tr := New(DefaultConfig(), plan, fourAntennas())
	tr.SetInitial(traj.Pos(0))
	ests := tr.Track(obs)
	if len(ests) < 50 {
		t.Fatalf("only %d estimates from 10 s at 68 Hz", len(ests))
	}
	err := MeanError(ests, traj)
	if err > 0.05 {
		t.Fatalf("mean error at 68 Hz = %.3f m, want < 0.05", err)
	}
}

func TestLowRateTrackingDegrades(t *testing.T) {
	// The Fig. 1 phenomenon: reading-rate collapse corrupts the recovered
	// trajectory. At 12 Hz over 4 antennas the per-link sampling is ≈3 Hz:
	// the train moves ≈23 cm ≫ λ/4 between readings, so the differential
	// phase aliases.
	plan := rf.DefaultFrequencyPlan()
	traj := trainTrack()
	run := func(irr float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		obs := synthObs(rng, traj, plan, irr, 0.1, 10*time.Second)
		tr := New(DefaultConfig(), plan, fourAntennas())
		tr.SetInitial(traj.Pos(0))
		return MeanError(tr.Track(obs), traj)
	}
	var hi, lo float64
	for s := int64(0); s < 3; s++ {
		hi += run(68, s)
		lo += run(12, 100+s)
	}
	hi /= 3
	lo /= 3
	if lo < 2*hi {
		t.Fatalf("low-rate error (%.3f m) must be well above high-rate (%.3f m)", lo, hi)
	}
	if lo < 0.05 {
		t.Fatalf("12 Hz tracking error = %.3f m — aliasing should corrupt it", lo)
	}
}

func TestDifferentialCancelsOffsets(t *testing.T) {
	// Two synthetic runs differing only in tag/channel constant offsets
	// must produce identical estimates (differencing removes them).
	plan := rf.DefaultFrequencyPlan()
	traj := trainTrack()
	gen := func(offset float64) []Observation {
		ants := fourAntennas()
		var obs []Observation
		i := 0
		for ts := time.Duration(0); ts < 5*time.Second; ts += 15 * time.Millisecond {
			a := ants[i%len(ants)]
			i++
			d := a.Pos.Dist(traj.Pos(ts))
			obs = append(obs, Observation{
				Time: ts, Antenna: a.ID, Channel: 0,
				Phase: rf.WrapPhase(4*math.Pi*d/plan.Wavelength(0) + offset),
			})
		}
		return obs
	}
	track := func(obs []Observation) []Estimate {
		tr := New(DefaultConfig(), plan, fourAntennas())
		tr.SetInitial(traj.Pos(0))
		return tr.Track(obs)
	}
	a := track(gen(0.1))
	b := track(gen(5.9))
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("estimate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pos.Dist(b[i].Pos) > 1e-9 {
			t.Fatalf("offset changed estimate %d: %v vs %v", i, a[i].Pos, b[i].Pos)
		}
	}
}

func TestStationaryTagStaysPut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plan := rf.DefaultFrequencyPlan()
	traj := scene.Stationary{P: rf.Pt(0.3, -0.2, 0)}
	obs := synthObs(rng, traj, plan, 40, 0.1, 5*time.Second)
	tr := New(DefaultConfig(), plan, fourAntennas())
	tr.SetInitial(rf.Pt(0.3, -0.2, 0))
	ests := tr.Track(obs)
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}
	if err := MeanError(ests, traj); err > 0.04 {
		t.Fatalf("stationary drift = %.3f m", err)
	}
}

func TestMinLinksDefersEstimate(t *testing.T) {
	plan := rf.DefaultFrequencyPlan()
	tr := New(DefaultConfig(), plan, fourAntennas())
	tr.SetInitial(rf.Pt(0, 0, 0))
	// Readings from a single antenna only: never ≥3 links, never a fix.
	for i := 0; i < 100; i++ {
		e := tr.Feed(Observation{
			Time:    time.Duration(i) * 20 * time.Millisecond,
			Antenna: 1, Channel: 0, Phase: 1.0,
		})
		if e != nil {
			t.Fatal("single-antenna data must not produce a fix")
		}
	}
}

func TestUnknownAntennaIgnored(t *testing.T) {
	plan := rf.DefaultFrequencyPlan()
	tr := New(DefaultConfig(), plan, fourAntennas())
	tr.SetInitial(rf.Pt(0, 0, 0))
	if tr.Feed(Observation{Antenna: 99, Phase: 1}) != nil {
		t.Fatal("unknown antenna must be ignored")
	}
}

func TestNoInitialNoFix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plan := rf.DefaultFrequencyPlan()
	obs := synthObs(rng, trainTrack(), plan, 60, 0.05, 2*time.Second)
	tr := New(DefaultConfig(), plan, fourAntennas())
	if ests := tr.Track(obs); len(ests) != 0 {
		t.Fatal("tracker without an initial position must not emit estimates")
	}
	if _, ok := tr.Position(); ok {
		t.Fatal("Position must report unseeded state")
	}
}

func TestMaxLinkGapDropsStaleLinks(t *testing.T) {
	plan := rf.DefaultFrequencyPlan()
	cfg := DefaultConfig()
	cfg.MaxLinkGap = 100 * time.Millisecond
	tr := New(cfg, plan, fourAntennas())
	tr.SetInitial(rf.Pt(0, 0, 0))
	tr.Feed(Observation{Time: 0, Antenna: 1, Channel: 0, Phase: 1})
	// 10 s later: the stale phase must not form a delta.
	tr.Feed(Observation{Time: 10 * time.Second, Antenna: 1, Channel: 0, Phase: 2})
	if len(tr.pending) != 0 {
		t.Fatal("stale link produced a delta")
	}
}

func TestMeanErrorEmpty(t *testing.T) {
	if !math.IsNaN(MeanError(nil, trainTrack())) {
		t.Fatal("empty estimate list must be NaN")
	}
}

func TestEstimateScoreInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	plan := rf.DefaultFrequencyPlan()
	traj := trainTrack()
	obs := synthObs(rng, traj, plan, 60, 0.05, 3*time.Second)
	tr := New(DefaultConfig(), plan, fourAntennas())
	tr.SetInitial(traj.Pos(0))
	for _, e := range tr.Track(obs) {
		if e.Score < -1-1e-9 || e.Score > 1+1e-9 {
			t.Fatalf("score %v out of [-1,1]", e.Score)
		}
		if e.Links < 3 {
			t.Fatalf("estimate with %d links", e.Links)
		}
	}
	if tr.String() == "" {
		t.Fatal("String must render")
	}
}
