// Package tracking reimplements the Differential Augmented Hologram (DAH)
// localizer of Tagoram (the paper's reference [30]), which the evaluation
// uses to turn tag readings into trajectories (Fig. 1).
//
// DAH is a sequential grid search: starting from a known initial position,
// each step collects the phase *differences* of consecutive readings on
// the same (antenna, channel) link — differencing cancels the unknown tag
// and reader phase offsets — and scores candidate positions p around the
// previous estimate by how well the expected round-trip phase advances
// 4π(d_a(p) − d_a(p_prev))/λ explain the measured differences:
//
//	L(p) = Σ_links cos(Δθ_meas − Δθ_expected(p))
//
// The dependence on reading rate is physical and is exactly Fig. 1's
// phenomenon: between consecutive readings the tag must move less than
// ~λ/4 per link or the differential phase aliases, so a mobile tag whose
// IRR collapses under channel contention yields a corrupted trajectory.
package tracking

import (
	"fmt"
	"math"
	"time"

	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// Observation is one phase reading of the tracked tag.
type Observation struct {
	Time    time.Duration
	Antenna int // 1-based antenna port
	Channel int
	Phase   float64 // rad
}

// Estimate is one recovered trajectory point.
type Estimate struct {
	Time  time.Duration
	Pos   rf.Point
	Score float64 // mean cosine agreement in [-1, 1]
	Links int     // differential links that contributed
}

// Config tunes the tracker.
type Config struct {
	// StepEvery is the estimation cadence; each step consumes the phase
	// differences accumulated since the last one.
	StepEvery time.Duration
	// SearchRadius bounds the per-step displacement hypothesis (metres).
	SearchRadius float64
	// GridStep is the search resolution (metres).
	GridStep float64
	// MinLinks is the minimum number of differential links required to
	// attempt a fix; with fewer the step is deferred.
	MinLinks int
	// Z fixes the tag plane height (the rigs move tags in a plane).
	Z float64
	// MaxLinkGap drops a link's remembered phase when its two readings
	// are further apart than this (the tag has moved too far for the
	// difference to carry usable information).
	MaxLinkGap time.Duration
	// MaxSpeed, when positive, caps the per-step search radius at
	// MaxSpeed × window-span: the solver never considers displacements
	// faster than the tag could physically move, which removes distant
	// alias maxima outright and keeps a borderline-aliased track from
	// escaping.
	MaxSpeed float64
	// MotionPrior penalises large per-step displacements. Differential
	// phase constraints alias every λ/2 of path difference, and symmetric
	// antenna rigs (the paper's ±5 m square) make the alias maxima exact;
	// the prior selects the physically smallest displacement among them.
	// The penalty is MotionPrior · displacement / (λ/2) subtracted from
	// the cosine score.
	MotionPrior float64
}

// DefaultConfig returns parameters suited to the paper's toy-train rig.
func DefaultConfig() Config {
	return Config{
		StepEvery:    50 * time.Millisecond,
		SearchRadius: 0.30,
		GridStep:     0.005,
		MinLinks:     3,
		Z:            0,
		MaxLinkGap:   time.Second,
		MotionPrior:  0.1,
	}
}

type linkKey struct {
	antenna int
	channel int
}

type linkState struct {
	phase float64
	at    time.Duration
}

type delta struct {
	key    linkKey
	dPhase float64 // measured phase advance, wrapped
	t1, t2 time.Duration
}

// Tracker is a sequential DAH estimator for one tag.
type Tracker struct {
	cfg      Config
	plan     rf.FrequencyPlan
	antennas map[int]rf.Point

	pos     rf.Point
	havePos bool
	last    map[linkKey]linkState
	pending []delta
	stepAt  time.Duration
	started bool
	// history holds recent (time, position) estimates so each delta can be
	// anchored at its actual reading times.
	history []Estimate
}

// New builds a tracker over the given antenna placement and frequency
// plan.
func New(cfg Config, plan rf.FrequencyPlan, antennas []scene.Antenna) *Tracker {
	if cfg.StepEvery <= 0 {
		cfg.StepEvery = 50 * time.Millisecond
	}
	if cfg.SearchRadius <= 0 {
		cfg.SearchRadius = 0.30
	}
	if cfg.GridStep <= 0 {
		cfg.GridStep = 0.005
	}
	if cfg.MinLinks <= 0 {
		cfg.MinLinks = 3
	}
	if cfg.MaxLinkGap <= 0 {
		cfg.MaxLinkGap = time.Second
	}
	if cfg.MotionPrior <= 0 {
		cfg.MotionPrior = 0.1
	}
	t := &Tracker{
		cfg:      cfg,
		plan:     plan,
		antennas: make(map[int]rf.Point, len(antennas)),
		last:     make(map[linkKey]linkState),
	}
	for _, a := range antennas {
		t.antennas[a.ID] = a.Pos
	}
	return t
}

// SetInitial seeds the tracker with a known starting position (the paper
// fixes the initial position at a known point).
func (t *Tracker) SetInitial(p rf.Point) {
	t.pos = p
	t.pos.Z = t.cfg.Z
	t.havePos = true
	t.history = append(t.history[:0], Estimate{Time: 0, Pos: t.pos})
}

// Position returns the current estimate.
func (t *Tracker) Position() (rf.Point, bool) { return t.pos, t.havePos }

// wrapSigned wraps a phase difference to (−π, π].
func wrapSigned(d float64) float64 {
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Feed consumes one observation; when a step boundary passes and enough
// links have accumulated it returns a new estimate, otherwise nil.
func (t *Tracker) Feed(o Observation) *Estimate {
	if _, ok := t.antennas[o.Antenna]; !ok {
		return nil
	}
	k := linkKey{antenna: o.Antenna, channel: o.Channel}
	if prev, ok := t.last[k]; ok && o.Time-prev.at <= t.cfg.MaxLinkGap {
		t.pending = append(t.pending, delta{
			key:    k,
			dPhase: wrapSigned(o.Phase - prev.phase),
			t1:     prev.at,
			t2:     o.Time,
		})
	}
	t.last[k] = linkState{phase: o.Phase, at: o.Time}
	if !t.started {
		t.started = true
		t.stepAt = o.Time + t.cfg.StepEvery
		return nil
	}
	if o.Time < t.stepAt || !t.havePos {
		return nil
	}
	links := make(map[linkKey]struct{})
	for _, d := range t.pending {
		links[d.key] = struct{}{}
	}
	if len(links) < t.cfg.MinLinks {
		// Not enough geometry yet; extend the window.
		t.stepAt = o.Time + t.cfg.StepEvery
		return nil
	}
	est := t.solve(t.pending, len(links), o.Time)
	t.pending = t.pending[:0]
	t.stepAt = o.Time + t.cfg.StepEvery
	return est
}

// posAt interpolates the tag position at time ts under the hypothesis that
// the tag moves linearly from the last estimate to cand at time t1. Times
// before the recorded history clamp to its start.
func (t *Tracker) posAt(ts time.Duration, cand rf.Point, t1 time.Duration) rf.Point {
	h := t.history
	if ts >= t1 {
		return cand
	}
	// Walk history backwards: segments [h[i], h[i+1]], final segment
	// [h[last], cand@t1].
	if len(h) == 0 {
		return cand
	}
	lastKnown := h[len(h)-1]
	if ts >= lastKnown.Time {
		span := t1 - lastKnown.Time
		if span <= 0 {
			return cand
		}
		frac := float64(ts-lastKnown.Time) / float64(span)
		return lastKnown.Pos.Add(cand.Sub(lastKnown.Pos).Scale(frac))
	}
	for i := len(h) - 1; i > 0; i-- {
		if ts >= h[i-1].Time {
			span := h[i].Time - h[i-1].Time
			if span <= 0 {
				return h[i].Pos
			}
			frac := float64(ts-h[i-1].Time) / float64(span)
			return h[i-1].Pos.Add(h[i].Pos.Sub(h[i-1].Pos).Scale(frac))
		}
	}
	return h[0].Pos
}

// solve grid-searches the position at time `at` around the previous
// estimate, scoring each candidate by how well a linear move to it
// explains every pending differential constraint at its own pair of
// reading times.
func (t *Tracker) solve(deltas []delta, links int, at time.Duration) *Estimate {
	best := t.pos
	bestScore := math.Inf(-1)
	bestRaw := 0.0
	r := t.cfg.SearchRadius
	if t.cfg.MaxSpeed > 0 && len(t.history) > 0 {
		span := at - t.history[len(t.history)-1].Time
		if cap := t.cfg.MaxSpeed * span.Seconds(); cap < r {
			r = math.Max(cap, 2*t.cfg.GridStep)
		}
	}
	step := t.cfg.GridStep
	halfLambda := t.plan.Wavelength(0) / 2
	for dx := -r; dx <= r; dx += step {
		for dy := -r; dy <= r; dy += step {
			cand := rf.Pt(t.pos.X+dx, t.pos.Y+dy, t.cfg.Z)
			var raw float64
			for _, d := range deltas {
				ant := t.antennas[d.key.antenna]
				lambda := t.plan.Wavelength(d.key.channel)
				p1 := t.posAt(d.t1, cand, at)
				p2 := t.posAt(d.t2, cand, at)
				exp := 4 * math.Pi * (ant.Dist(p2) - ant.Dist(p1)) / lambda
				raw += math.Cos(d.dPhase - exp)
			}
			score := raw/float64(len(deltas)) - t.cfg.MotionPrior*math.Hypot(dx, dy)/halfLambda
			if score > bestScore {
				bestScore = score
				bestRaw = raw / float64(len(deltas))
				best = cand
			}
		}
	}
	t.pos = best
	est := Estimate{Time: at, Pos: best, Score: bestRaw, Links: links}
	t.history = append(t.history, est)
	if len(t.history) > 32 {
		t.history = t.history[len(t.history)-32:]
	}
	return &est
}

// Track runs a whole observation sequence (time-ordered) through a fresh
// window state and collects the estimates.
func (t *Tracker) Track(obs []Observation) []Estimate {
	var out []Estimate
	for _, o := range obs {
		if e := t.Feed(o); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// MeanError computes the mean Euclidean distance between estimates and a
// ground-truth trajectory evaluated at the estimate times, in metres.
func MeanError(ests []Estimate, truth scene.Trajectory) float64 {
	if len(ests) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, e := range ests {
		p := truth.Pos(e.Time)
		p.Z = e.Pos.Z // planar comparison
		sum += e.Pos.Dist(p)
	}
	return sum / float64(len(ests))
}

// String renders the tracker state.
func (t *Tracker) String() string {
	return fmt.Sprintf("tracking.Tracker{pos=%v links=%d}", t.pos, len(t.last))
}
