package llrp

// Robustness regression tests for the transport layer: the keepalive
// watchdog, pending-waiter cleanup on cancelled round trips, and the
// proxy's obligation to sever live copy pairs on Close. These are the
// failure modes the chaos harness provokes at scale; here each one is
// pinned in isolation.

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeReader is the silent half of a net.Pipe speaking raw LLRP frames on
// demand — a reader whose behaviour the test scripts byte by byte.
type fakeReader struct {
	t    *testing.T
	conn net.Conn
}

// newFakeReaderConn wires a Conn to a scripted peer over an in-memory
// pipe. The peer's inbound bytes (keepalive acks, requests) are drained
// continuously so the synchronous pipe never wedges the client's writes.
func newFakeReaderConn(t *testing.T) (*Conn, *fakeReader) {
	t.Helper()
	cli, srv := net.Pipe()
	c := newConn(cli)
	t.Cleanup(func() { c.Close(); srv.Close() })
	return c, &fakeReader{t: t, conn: srv}
}

// drain discards everything the client writes in the background.
func (f *fakeReader) drain() {
	go io.Copy(io.Discard, f.conn)
}

// sendFrame pushes one encoded message at the client.
func (f *fakeReader) sendFrame(m Message) error {
	_, err := f.conn.Write(m.EncodeFrame())
	return err
}

// readFrame blocks for one complete frame from the client.
func (f *fakeReader) readFrame() (Message, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f.conn, hdr); err != nil {
		return Message{}, err
	}
	length := int(uint32(hdr[2])<<24 | uint32(hdr[3])<<16 | uint32(hdr[4])<<8 | uint32(hdr[5]))
	frame := make([]byte, length)
	copy(frame, hdr)
	if _, err := io.ReadFull(f.conn, frame[headerSize:]); err != nil {
		return Message{}, err
	}
	m, _, err := DecodeFrame(frame)
	return m, err
}

func TestWatchdogDetectsSilentReader(t *testing.T) {
	c, f := newFakeReaderConn(t)
	f.drain()

	const window = 300 * time.Millisecond
	c.Watchdog(window)

	// Phase 1: a chatty reader keeps the watchdog fed — any inbound frame
	// counts as liveness, keepalive or not.
	stopFeeding := time.After(2 * window)
feed:
	for i := uint32(1); ; i++ {
		select {
		case <-stopFeeding:
			break feed
		case <-time.After(50 * time.Millisecond):
			if err := f.sendFrame(Message{Type: MsgKeepalive, ID: i}); err != nil {
				t.Fatalf("feeding keepalive: %v", err)
			}
		}
	}
	if c.Err() != nil {
		t.Fatalf("watchdog fired on a chatty reader: %v", c.Err())
	}

	// Phase 2: the reader goes silent with the socket still open — a
	// half-open link. The watchdog must kill the session with a
	// distinguishable error instead of letting it look idle forever.
	if !c.WaitClosed(5 * window) {
		t.Fatal("watchdog never fired on a silent reader")
	}
	if err := c.Err(); !errors.Is(err, ErrKeepaliveTimeout) {
		t.Fatalf("Err = %v, want ErrKeepaliveTimeout", err)
	}
}

func TestRoundTripCancelCleansPendingWaiter(t *testing.T) {
	c, f := newFakeReaderConn(t)

	// The scripted reader swallows the first request without answering,
	// remembering its ID so it can reply late.
	var mu sync.Mutex
	var firstID uint32
	swallowed := make(chan struct{})
	go func() {
		m, err := f.readFrame()
		if err != nil {
			return
		}
		mu.Lock()
		firstID = m.ID
		mu.Unlock()
		close(swallowed)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.roundTrip(ctx, Message{Type: MsgGetReaderCapabilities}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned round trip: err = %v, want deadline exceeded", err)
	}
	<-swallowed

	// The waiter must be unregistered the moment the caller gives up —
	// an abandoned ID left in the pending map would match the late reply
	// below against whichever caller registers next.
	c.mu.Lock()
	leaked := len(c.pending)
	c.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d pending waiters leaked after cancel", leaked)
	}

	// The reader answers the dead request late, then serves the live one.
	done := make(chan error, 1)
	go func() {
		mu.Lock()
		late := firstID
		mu.Unlock()
		if err := f.sendFrame(Message{Type: MsgGetReaderCapabilitiesResponse, ID: late}); err != nil {
			done <- err
			return
		}
		m, err := f.readFrame()
		if err != nil {
			done <- err
			return
		}
		done <- f.sendFrame(Message{Type: MsgGetReaderCapabilitiesResponse, ID: m.ID})
	}()

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	resp, err := c.roundTrip(ctx2, Message{Type: MsgGetReaderCapabilities})
	if err != nil {
		t.Fatalf("round trip after a late stray reply: %v", err)
	}
	if resp.Type != MsgGetReaderCapabilitiesResponse {
		t.Fatalf("response type %d leaked across waiters", resp.Type)
	}
	if err := <-done; err != nil {
		t.Fatalf("scripted reader: %v", err)
	}
}

func TestProxyCloseSeversLivePairs(t *testing.T) {
	// An upstream that accepts and then holds the socket open in silence:
	// both proxy pumps park in ReadFull with nothing to copy.
	upstream, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()
	var held []net.Conn
	var heldMu sync.Mutex
	go func() {
		for {
			nc, err := upstream.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, nc)
			heldMu.Unlock()
		}
	}()
	defer func() {
		heldMu.Lock()
		for _, nc := range held {
			nc.Close()
		}
		heldMu.Unlock()
	}()

	p := NewProxy(upstream.Addr().String(), nil)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Push one valid frame through so the client→upstream pump is known to
	// be live (not still dialing) before the Close races it.
	if _, err := client.Write(Message{Type: MsgKeepalive, ID: 1}.EncodeFrame()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		heldMu.Lock()
		n := len(held)
		heldMu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never dialed upstream")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Close must sever the idle pair and return: before the fix it blocked
	// in wg.Wait forever because neither parked pump could exit on its own.
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Proxy.Close hung on a live client↔upstream pair")
	}

	// The severed client observes EOF rather than hanging.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("client read succeeded on a severed pair")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("client still connected after Proxy.Close")
	}
}
