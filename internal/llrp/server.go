package llrp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
	"tagwatch/internal/reader"
)

// ServerConfig tunes the reader emulator.
type ServerConfig struct {
	// TimeScale converts virtual reader time into wall-clock pacing: 1.0
	// emulates real time, 0 free-runs as fast as the simulator can go
	// (the default for experiments).
	TimeScale float64
	// KeepaliveEvery sends periodic KEEPALIVE messages when positive.
	KeepaliveEvery time.Duration
}

// Server is the LLRP reader emulator: the stand-in for the ImpinJ R420.
// It accepts one LLRP client at a time, executes ROSpecs against the
// embedded reader-simulator engine, and streams RO_ACCESS_REPORTs with
// ImpinJ-style phase reporting.
type Server struct {
	cfg    ServerConfig
	engine *reader.Reader
	lis    net.Listener

	mu          sync.Mutex
	rospecs     map[uint32]*rospecEntry
	accessSpecs map[uint32]*accessEntry
	baseUTC     time.Time

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup

	// connMu/conns track live client sockets so Close can sever them; a
	// client mid-session would otherwise keep serve() alive forever and
	// deadlock Close's wg.Wait.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// clientMu guards the single-controller rule: LLRP readers accept one
	// controlling client; later connections are refused with
	// ConnFailedReaderInUse.
	clientMu  sync.Mutex
	hasClient bool

	// engineMu serialises touches of the single-threaded simulator engine:
	// the ROSpec runner advances the virtual clock while serve goroutines
	// (including refused second clients) stamp event timestamps from it.
	engineMu sync.Mutex
}

type rospecEntry struct {
	spec    ROSpec
	enabled bool
	stop    chan struct{} // nilled when a stopper claims the close
	done    chan struct{} // non-nil while the runner is alive; runner closes it
}

type accessEntry struct {
	spec    AccessSpec
	enabled bool
}

// NewServer builds a reader emulator over a simulator engine.
func NewServer(engine *reader.Reader, cfg ServerConfig) *Server {
	return &Server{
		cfg:         cfg,
		engine:      engine,
		rospecs:     make(map[uint32]*rospecEntry),
		accessSpecs: make(map[uint32]*accessEntry),
		conns:       make(map[net.Conn]struct{}),
		baseUTC:     time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC),
		closed:      make(chan struct{}),
	}
}

// Engine exposes the embedded simulator (tests inspect its stats and
// virtual clock).
func (s *Server) Engine() *reader.Reader { return s.engine }

// Listen binds the given address ("127.0.0.1:0" for an ephemeral port) and
// starts accepting connections. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: listen %s: %w", addr, err)
	}
	return s.Serve(lis), nil
}

// Serve starts accepting connections from an already-bound listener —
// the seam where cmd/readersim and the chaos suite interpose a fault
// injector between the emulator and its clients. It returns the
// listener's address.
func (s *Server) Serve(lis net.Listener) net.Addr {
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr()
}

// Close shuts the server down — severing any live client session, the
// way a reader losing power would — and waits for its goroutines.
func (s *Server) Close() error {
	s.closeMu.Do(func() { close(s.closed) })
	if s.lis != nil {
		s.lis.Close()
	}
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	s.stopAll()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(nc)
		}()
	}
}

// serverConn serialises writes from the message handler and the ROSpec
// runner, and carries the per-connection keepalive control.
type serverConn struct {
	nc   net.Conn
	mu   sync.Mutex
	kaCh chan time.Duration
}

func (c *serverConn) send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// tagwatchvet(locksend): a client that stops reading used to be able
	// to wedge the emulator behind a full kernel buffer forever; the
	// deadline bounds the serialised write like llrp.Conn.send does.
	c.nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
	defer c.nc.SetWriteDeadline(time.Time{})
	_, err := c.nc.Write(m.EncodeFrame()) //tagwatch:allow-locked-send serialised frame write, bounded by the deadline above
	return err
}

func (s *Server) nowUTC() uint64 {
	return uint64(s.baseUTC.UnixMicro()) + uint64(s.engineNow()/time.Microsecond)
}

// engineNow reads the engine's virtual clock under engineMu.
func (s *Server) engineNow() time.Duration {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	return s.engine.Now()
}

func (s *Server) serve(nc net.Conn) {
	defer nc.Close()
	s.connMu.Lock()
	s.conns[nc] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
	}()
	conn := &serverConn{nc: nc, kaCh: make(chan time.Duration, 1)}

	s.clientMu.Lock()
	if s.hasClient {
		s.clientMu.Unlock()
		st := ConnFailedReaderInUse
		conn.send(NewReaderEventNotification(0, UTCTimestamp{Microseconds: s.nowUTC()}, &st))
		return
	}
	s.hasClient = true
	s.clientMu.Unlock()
	defer func() {
		s.clientMu.Lock()
		s.hasClient = false
		s.clientMu.Unlock()
	}()
	defer s.stopAll()

	st := ConnSuccess
	if err := conn.send(NewReaderEventNotification(0, UTCTimestamp{Microseconds: s.nowUTC()}, &st)); err != nil {
		return
	}

	// Keepalive manager: the period starts from the server default and is
	// reconfigurable at runtime via SET_READER_CONFIG's KeepaliveSpec.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		period := s.cfg.KeepaliveEvery
		var tick <-chan time.Time
		var ticker *time.Ticker
		restart := func() {
			if ticker != nil {
				ticker.Stop()
				ticker = nil
				tick = nil
			}
			if period > 0 {
				ticker = time.NewTicker(period)
				tick = ticker.C
			}
		}
		restart()
		defer restart() // stops any live ticker on exit (period forced 0)
		var id uint32 = 1 << 24
		for {
			select {
			case p := <-conn.kaCh:
				period = p
				restart()
			case <-tick:
				id++
				if conn.send(NewKeepalive(id)) != nil {
					return
				}
			case <-stop:
				period = 0
				return
			case <-s.closed:
				period = 0
				return
			}
		}
	}()

	hdr := make([]byte, headerSize)
	for {
		// The emulated reader waits for the next client message for as
		// long as the client stays connected — that is the LLRP contract.
		// Stop() and client disconnect both close nc, which unblocks.
		if _, err := io.ReadFull(nc, hdr); err != nil { //tagwatch:allow-conndeadline wait-forever message pump; Stop/close severs nc
			return
		}
		length := int(binary.BigEndian.Uint32(hdr[2:]))
		if length < headerSize || length > maxFrameLen {
			return
		}
		frame := make([]byte, length)
		copy(frame, hdr)
		if _, err := io.ReadFull(nc, frame[headerSize:]); err != nil { //tagwatch:allow-conndeadline wait-forever message pump; Stop/close severs nc
			return
		}
		msg, _, err := DecodeFrame(frame)
		if err != nil {
			return
		}
		if closeAfter := s.handle(conn, msg); closeAfter {
			return
		}
	}
}

// handle processes one client message; it returns true when the connection
// should close.
func (s *Server) handle(conn *serverConn, msg Message) bool {
	ok := LLRPStatus{Code: StatusSuccess}
	switch msg.Type {
	case MsgAddROSpec:
		spec, err := DecodeAddROSpec(msg)
		status := ok
		if err != nil {
			status = LLRPStatus{Code: StatusParamError, Description: err.Error()}
		} else {
			s.mu.Lock()
			if _, dup := s.rospecs[spec.ID]; dup {
				status = LLRPStatus{Code: StatusFieldError, Description: fmt.Sprintf("ROSpec %d exists", spec.ID)}
			} else {
				s.rospecs[spec.ID] = &rospecEntry{spec: spec}
			}
			s.mu.Unlock()
		}
		conn.send(NewStatusResponse(MsgAddROSpecResponse, msg.ID, status))

	case MsgEnableROSpec:
		id, _ := ROSpecIDOf(msg)
		status := ok
		s.mu.Lock()
		e, exists := s.rospecs[id]
		if !exists {
			status = LLRPStatus{Code: StatusFieldError, Description: fmt.Sprintf("no ROSpec %d", id)}
		} else {
			e.enabled = true
		}
		s.mu.Unlock()
		// tagwatchvet(deverr): an immediate-start failure used to vanish —
		// the client saw a success status and then silence. Starting before
		// responding lets the status carry the real outcome.
		if exists && status.OK() && e.spec.Boundary.StartTrigger == StartTriggerImmediate {
			if err := s.startROSpec(conn, id); err != nil {
				status = LLRPStatus{Code: StatusFieldError, Description: fmt.Sprintf("immediate start: %s", err)}
			}
		}
		conn.send(NewStatusResponse(MsgEnableROSpecResponse, msg.ID, status))

	case MsgStartROSpec:
		id, _ := ROSpecIDOf(msg)
		status := ok
		if err := s.startROSpec(conn, id); err != nil {
			status = LLRPStatus{Code: StatusFieldError, Description: err.Error()}
		}
		conn.send(NewStatusResponse(MsgStartROSpecResponse, msg.ID, status))

	case MsgStopROSpec:
		id, _ := ROSpecIDOf(msg)
		s.stopROSpec(id)
		conn.send(NewStatusResponse(MsgStopROSpecResponse, msg.ID, ok))

	case MsgDisableROSpec:
		id, _ := ROSpecIDOf(msg)
		s.stopROSpec(id)
		s.mu.Lock()
		if e, exists := s.rospecs[id]; exists {
			e.enabled = false
		}
		s.mu.Unlock()
		conn.send(NewStatusResponse(MsgDisableROSpecResponse, msg.ID, ok))

	case MsgDeleteROSpec:
		id, _ := ROSpecIDOf(msg)
		if id == 0 {
			s.stopAll()
			s.mu.Lock()
			s.rospecs = make(map[uint32]*rospecEntry)
			s.mu.Unlock()
		} else {
			s.stopROSpec(id)
			s.mu.Lock()
			delete(s.rospecs, id)
			s.mu.Unlock()
		}
		conn.send(NewStatusResponse(MsgDeleteROSpecResponse, msg.ID, ok))

	case MsgSetReaderConfig:
		status := ok
		if ka, err := DecodeSetReaderConfig(msg); err != nil {
			status = LLRPStatus{Code: StatusParamError, Description: err.Error()}
		} else if ka != nil {
			period := time.Duration(0)
			if ka.Periodic {
				period = ka.Period
			}
			select {
			case conn.kaCh <- period:
			default:
			}
		}
		conn.send(NewStatusResponse(MsgSetReaderConfigResponse, msg.ID, status))

	case MsgGetReaderCapabilities:
		caps := Capabilities{
			MaxAntennas:              uint16(len(s.engine.Scene().Antennas)),
			ManufacturerPEN:          ImpinjPEN,
			Model:                    420, // Speedway R420 stand-in
			MaxSelectFiltersPerQuery: 8,
			SupportsPhaseReporting:   true,
		}
		conn.send(NewGetReaderCapabilitiesResponse(msg.ID, ok, caps))

	case MsgAddAccessSpec:
		spec, err := DecodeAddAccessSpec(msg)
		status := ok
		if err != nil {
			status = LLRPStatus{Code: StatusParamError, Description: err.Error()}
		} else {
			s.mu.Lock()
			if _, dup := s.accessSpecs[spec.ID]; dup {
				status = LLRPStatus{Code: StatusFieldError, Description: fmt.Sprintf("AccessSpec %d exists", spec.ID)}
			} else {
				s.accessSpecs[spec.ID] = &accessEntry{spec: spec}
			}
			s.mu.Unlock()
		}
		conn.send(NewStatusResponse(MsgAddAccessSpecResponse, msg.ID, status))

	case MsgEnableAccessSpec, MsgDisableAccessSpec:
		id, _ := ROSpecIDOf(msg)
		status := ok
		respType := MsgEnableAccessSpecResponse
		enable := msg.Type == MsgEnableAccessSpec
		if !enable {
			respType = MsgDisableAccessSpecResponse
		}
		s.mu.Lock()
		if e, exists := s.accessSpecs[id]; exists {
			e.enabled = enable
		} else {
			status = LLRPStatus{Code: StatusFieldError, Description: fmt.Sprintf("no AccessSpec %d", id)}
		}
		s.mu.Unlock()
		conn.send(NewStatusResponse(respType, msg.ID, status))

	case MsgDeleteAccessSpec:
		id, _ := ROSpecIDOf(msg)
		s.mu.Lock()
		if id == 0 {
			s.accessSpecs = make(map[uint32]*accessEntry)
		} else {
			delete(s.accessSpecs, id)
		}
		s.mu.Unlock()
		conn.send(NewStatusResponse(MsgDeleteAccessSpecResponse, msg.ID, ok))

	case MsgKeepaliveAck:
		// nothing to do

	case MsgCloseConnection:
		conn.send(NewStatusResponse(MsgCloseConnectionResponse, msg.ID, ok))
		return true

	default:
		conn.send(NewStatusResponse(MsgErrorMessage, msg.ID,
			LLRPStatus{Code: StatusUnsupported, Description: fmt.Sprintf("message type %d", msg.Type)}))
	}
	return false
}

// startROSpec launches the runner goroutine for an enabled ROSpec.
func (s *Server) startROSpec(conn *serverConn, id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.rospecs[id]
	if !exists {
		return fmt.Errorf("no ROSpec %d", id)
	}
	if !e.enabled {
		return fmt.Errorf("ROSpec %d is disabled", id)
	}
	if e.done != nil {
		return nil // already running
	}
	for _, other := range s.rospecs {
		if other != e && other.done != nil {
			return errors.New("another ROSpec is active")
		}
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	s.wg.Add(1)
	go s.runROSpec(conn, e, e.stop, e.done)
	return nil
}

// stopROSpec signals a running ROSpec to stop and waits for it.
func (s *Server) stopROSpec(id uint32) {
	s.mu.Lock()
	e, exists := s.rospecs[id]
	var stop, done chan struct{}
	if exists && e.done != nil {
		done = e.done
		if e.stop != nil {
			stop = e.stop
			e.stop = nil // claim the close; the runner owns closing done
		}
	}
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if done != nil {
		<-done
	}
}

// stopAll stops every running ROSpec.
func (s *Server) stopAll() {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.rospecs))
	for id := range s.rospecs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.stopROSpec(id)
	}
}

// filterToSelect converts an LLRP C1G2Filter into the reader engine's
// Select command.
func filterToSelect(f C1G2Filter) gen2.SelectCmd {
	return gen2.SelectCmd{
		MemBank: f.Mask.MemBank,
		Pointer: int(f.Mask.Pointer),
		Mask:    f.Mask.Mask,
	}
}

// runROSpec executes the ROSpec until its stop trigger fires or it is
// stopped. AISpecs run in order and the list repeats (the LLRP execution
// model); each round's reads stream out as one RO_ACCESS_REPORT.
func (s *Server) runROSpec(conn *serverConn, e *rospecEntry, stop, done chan struct{}) {
	defer s.wg.Done()
	// The runner is the sole closer of done, whether it exits on its own
	// (duration trigger, dead socket) or because a stopper claimed and
	// closed e.stop. Stoppers wait on done; closing it last means they
	// observe the entry fully reset.
	defer func() {
		s.mu.Lock()
		e.stop, e.done = nil, nil
		s.mu.Unlock()
		close(done)
	}()
	spec := e.spec
	var evID uint32 = 1 << 20
	evID += spec.ID
	conn.send(NewROSpecEventNotification(evID, UTCTimestamp{Microseconds: s.nowUTC()},
		ROSpecEvent{Type: ROSpecStarted, ROSpecID: spec.ID}))
	defer func() {
		conn.send(NewROSpecEventNotification(evID+1, UTCTimestamp{Microseconds: s.nowUTC()},
			ROSpecEvent{Type: ROSpecEnded, ROSpecID: spec.ID}))
	}()

	var specDeadline time.Duration
	if spec.Boundary.StopTrigger == StopTriggerDuration {
		specDeadline = s.engineNow() + time.Duration(spec.Boundary.DurationMS)*time.Millisecond
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		case <-s.closed:
			return true
		default:
			return false
		}
	}

	var reportID uint32
	var pending []TagReportData
	batchN := 0
	if spec.Report != nil && spec.Report.Trigger == ReportEveryN && spec.Report.N > 0 {
		batchN = int(spec.Report.N)
	}
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		reportID++
		err := conn.send(NewROAccessReport(reportID, pending))
		pending = pending[:0]
		return err == nil
	}
	defer flush()
	for {
		if stopped() {
			return
		}
		if specDeadline > 0 && s.engineNow() >= specDeadline {
			return
		}
		progressed := false
		for _, ai := range spec.AISpecs {
			if stopped() {
				return
			}
			aiDeadline := s.engineNow()
			if ai.StopTrigger.Type == AIStopDuration {
				aiDeadline += time.Duration(ai.StopTrigger.DurationMS) * time.Millisecond
			}
			var filters []gen2.SelectCmd
			for _, inv := range ai.Inventories {
				for _, cmd := range inv.Commands {
					for _, f := range cmd.Filters {
						filters = append(filters, filterToSelect(f))
					}
				}
			}
			antennas := ai.AntennaIDs
			if len(antennas) == 0 || (len(antennas) == 1 && antennas[0] == 0) {
				antennas = nil
				for _, a := range s.engine.Scene().Antennas {
					antennas = append(antennas, uint16(a.ID))
				}
			}
			// Run at least one pass; with a duration trigger keep cycling
			// rounds until the virtual deadline.
			for pass := 0; ; pass++ {
				if stopped() {
					return
				}
				if specDeadline > 0 && s.engineNow() >= specDeadline {
					return
				}
				if ai.StopTrigger.Type == AIStopDuration && pass > 0 && s.engineNow() >= aiDeadline {
					break
				}
				for _, ant := range antennas {
					budget := time.Duration(0)
					if ai.StopTrigger.Type == AIStopDuration {
						budget = aiDeadline - s.engineNow()
						if budget <= 0 {
							break
						}
					}
					accessOps, accessFilter := s.accessOpsFor(spec.ID, ant)
					s.engineMu.Lock()
					reads, d := s.engine.RunRound(reader.RoundOpts{
						Antenna:      int(ant),
						Filters:      filters,
						Budget:       budget,
						Access:       accessOps,
						AccessFilter: accessFilter,
					})
					s.engineMu.Unlock()
					progressed = true
					if len(reads) > 0 {
						pending = append(pending, s.toReports(spec.ID, reads)...)
						if batchN == 0 || len(pending) >= batchN {
							if !flush() {
								return
							}
						}
					}
					if s.cfg.TimeScale > 0 {
						time.Sleep(time.Duration(float64(d) * s.cfg.TimeScale))
					}
				}
				if ai.StopTrigger.Type != AIStopDuration {
					break // null trigger: one pass, then next AISpec
				}
			}
		}
		if !progressed {
			// A spec with no executable AISpecs would spin; bail out.
			return
		}
	}
}

// accessOpsFor collects the enabled AccessSpecs bound to this ROSpec and
// antenna, compiled into reader operations plus a tag filter. LLRP allows
// several AccessSpecs; the emulator applies the first matching one per
// round (the common deployment shape).
func (s *Server) accessOpsFor(rospecID uint32, antenna uint16) ([]reader.AccessOp, func(*epc.Memory) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.accessSpecs {
		if !e.enabled {
			continue
		}
		if e.spec.ROSpecID != 0 && e.spec.ROSpecID != rospecID {
			continue
		}
		if e.spec.Antenna != 0 && e.spec.Antenna != antenna {
			continue
		}
		ops := make([]reader.AccessOp, 0, len(e.spec.Ops))
		for _, op := range e.spec.Ops {
			kind := reader.AccessRead
			if op.Write {
				kind = reader.AccessWrite
			}
			ops = append(ops, reader.AccessOp{
				OpSpecID:  op.OpSpecID,
				Kind:      kind,
				Bank:      op.Bank,
				WordPtr:   int(op.WordPtr),
				WordCount: int(op.WordCount),
				Data:      op.Data,
			})
		}
		target := e.spec.Target
		var filter func(*epc.Memory) bool
		if !target.IsZero() {
			filter = func(m *epc.Memory) bool {
				return m.Match(target.Bank, int(target.Pointer), target.Mask)
			}
		}
		return ops, filter
	}
	return nil, nil
}

// toReports converts simulator reads into wire tag reports.
func (s *Server) toReports(rospecID uint32, reads []reader.TagRead) []TagReportData {
	out := make([]TagReportData, len(reads))
	base := uint64(s.baseUTC.UnixMicro())
	for i, rd := range reads {
		tr := TagReportData{
			EPC:          rd.EPC,
			ROSpecID:     rospecID,
			AntennaID:    uint16(rd.Antenna),
			ChannelIndex: uint16(rd.Channel + 1), // LLRP channel indices are 1-based
			FirstSeenUTC: base + uint64(rd.Time/time.Microsecond),
			TagSeenCount: 1,
		}
		rssi := rd.RSSdBm
		if rssi < -128 {
			rssi = -128
		}
		if rssi > 127 {
			rssi = 127
		}
		tr.PeakRSSIdBm = int8(rssi)
		tr.SetPhaseRadians(rd.PhaseRad)
		for _, a := range rd.Access {
			res := OpResult{OpSpecID: a.OpSpecID, Write: a.Write}
			if !a.OK {
				res.Result = 1 // non-specific error
			}
			res.Data = a.Data
			res.WordsWritten = uint16(a.WordsWritten)
			tr.OpResults = append(tr.OpResults, res)
		}
		out[i] = tr
	}
	return out
}
