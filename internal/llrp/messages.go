package llrp

import (
	"encoding/binary"
	"fmt"
)

// MessageType identifies an LLRP message (10-bit field).
type MessageType uint16

// Message types (LLRP 1.0.1 §14).
const (
	MsgGetReaderCapabilities         MessageType = 1
	MsgSetReaderConfig               MessageType = 3
	MsgCloseConnectionResponse       MessageType = 4
	MsgGetReaderCapabilitiesResponse MessageType = 11
	MsgSetReaderConfigResponse       MessageType = 13
	MsgCloseConnection               MessageType = 14
	MsgAddROSpec                     MessageType = 20
	MsgDeleteROSpec                  MessageType = 21
	MsgStartROSpec                   MessageType = 22
	MsgStopROSpec                    MessageType = 23
	MsgEnableROSpec                  MessageType = 24
	MsgDisableROSpec                 MessageType = 25
	MsgAddROSpecResponse             MessageType = 30
	MsgDeleteROSpecResponse          MessageType = 31
	MsgStartROSpecResponse           MessageType = 32
	MsgStopROSpecResponse            MessageType = 33
	MsgEnableROSpecResponse          MessageType = 34
	MsgDisableROSpecResponse         MessageType = 35
	MsgROAccessReport                MessageType = 61
	MsgKeepalive                     MessageType = 62
	MsgReaderEventNotification       MessageType = 63
	MsgKeepaliveAck                  MessageType = 72
	MsgErrorMessage                  MessageType = 100
)

// protocolVersion is LLRP version 1 (the 3-bit Ver field).
const protocolVersion = 1

// headerSize is the LLRP message header length in bytes.
const headerSize = 10

// maxFrameLen caps one LLRP frame. The spec puts no ceiling on message
// length, but a decoded length field is attacker input the moment the
// peer is hostile or the link corrupts: every frame reader in this
// package checks against this cap before allocating.
const maxFrameLen = 64 << 20

// Message is one framed LLRP message: a typed header plus the raw encoded
// body. Typed accessors decode the body on demand (lazy, in the gopacket
// style), and constructors encode typed payloads.
type Message struct {
	Type MessageType
	ID   uint32
	Body []byte
}

// EncodeFrame renders the complete wire frame (header + body).
func (m Message) EncodeFrame() []byte {
	out := make([]byte, headerSize+len(m.Body))
	binary.BigEndian.PutUint16(out, uint16(protocolVersion)<<10|uint16(m.Type)&0x03FF)
	binary.BigEndian.PutUint32(out[2:], uint32(headerSize+len(m.Body)))
	binary.BigEndian.PutUint32(out[6:], m.ID)
	copy(out[headerSize:], m.Body)
	return out
}

// DecodeFrame parses one complete frame. It returns the message and the
// number of bytes consumed; a short buffer returns ErrTruncated.
func DecodeFrame(b []byte) (Message, int, error) {
	if len(b) < headerSize {
		return Message{}, 0, fmt.Errorf("%w: message header", ErrTruncated)
	}
	verType := binary.BigEndian.Uint16(b)
	if ver := verType >> 10 & 0x7; ver != protocolVersion {
		return Message{}, 0, fmt.Errorf("llrp: unsupported protocol version %d", ver)
	}
	length := int(binary.BigEndian.Uint32(b[2:]))
	if length < headerSize {
		return Message{}, 0, fmt.Errorf("llrp: invalid message length %d", length)
	}
	if len(b) < length {
		return Message{}, 0, fmt.Errorf("%w: message body (%d of %d bytes)", ErrTruncated, len(b), length)
	}
	return Message{
		Type: MessageType(verType & 0x03FF),
		ID:   binary.BigEndian.Uint32(b[6:]),
		Body: b[headerSize:length],
	}, length, nil
}

// ---- Request constructors (client side) ----

// NewAddROSpec builds an ADD_ROSPEC message.
func NewAddROSpec(id uint32, spec ROSpec) Message {
	w := NewWriter(256)
	spec.encode(w)
	return Message{Type: MsgAddROSpec, ID: id, Body: w.Bytes()}
}

// NewROSpecOp builds the single-ROSpecID operations: ENABLE, START, STOP,
// DELETE, DISABLE.
func NewROSpecOp(typ MessageType, id, rospecID uint32) Message {
	w := NewWriter(4)
	w.U32(rospecID)
	return Message{Type: typ, ID: id, Body: w.Bytes()}
}

// ROSpecIDOf decodes the body of a single-ROSpecID operation.
func ROSpecIDOf(m Message) (uint32, error) {
	r := NewReader(m.Body)
	v := r.U32()
	return v, r.Err()
}

// DecodeAddROSpec extracts the ROSpec of an ADD_ROSPEC message.
func DecodeAddROSpec(m Message) (ROSpec, error) {
	r := NewReader(m.Body)
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamROSpec {
			return decodeROSpec(h.body)
		}
	}
	if err := r.Err(); err != nil {
		return ROSpec{}, err
	}
	return ROSpec{}, fmt.Errorf("llrp: ADD_ROSPEC carries no ROSpec parameter")
}

// NewKeepalive builds a KEEPALIVE message (reader → client).
func NewKeepalive(id uint32) Message { return Message{Type: MsgKeepalive, ID: id} }

// NewKeepaliveAck builds the client's KEEPALIVE_ACK.
func NewKeepaliveAck(id uint32) Message { return Message{Type: MsgKeepaliveAck, ID: id} }

// NewSetReaderConfig builds a SET_READER_CONFIG carrying an optional
// KeepaliveSpec.
func NewSetReaderConfig(id uint32, keepalive *KeepaliveSpec) Message {
	w := NewWriter(16)
	w.U8(0) // ResetToFactoryDefault = false
	if keepalive != nil {
		keepalive.encode(w)
	}
	return Message{Type: MsgSetReaderConfig, ID: id, Body: w.Bytes()}
}

// DecodeSetReaderConfig extracts the KeepaliveSpec of a SET_READER_CONFIG
// (nil when absent).
func DecodeSetReaderConfig(m Message) (*KeepaliveSpec, error) {
	r := NewReader(m.Body)
	r.U8() // reset bit
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamKeepaliveSpec {
			k, err := decodeKeepaliveSpec(h.body)
			if err != nil {
				return nil, err
			}
			return &k, nil
		}
	}
	return nil, r.Err()
}

// NewCloseConnection builds a CLOSE_CONNECTION request.
func NewCloseConnection(id uint32) Message { return Message{Type: MsgCloseConnection, ID: id} }

// ---- Response constructors (reader side) ----

// NewStatusResponse builds a response message carrying only an LLRPStatus
// (the shape of all the *_RESPONSE messages Tagwatch consumes).
func NewStatusResponse(typ MessageType, id uint32, status LLRPStatus) Message {
	w := NewWriter(32)
	status.encode(w)
	return Message{Type: typ, ID: id, Body: w.Bytes()}
}

// DecodeStatus extracts the LLRPStatus from a response message.
func DecodeStatus(m Message) (LLRPStatus, error) {
	r := NewReader(m.Body)
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamLLRPStatus {
			return decodeLLRPStatus(h.body)
		}
	}
	if err := r.Err(); err != nil {
		return LLRPStatus{}, err
	}
	return LLRPStatus{}, fmt.Errorf("llrp: message %d carries no LLRPStatus", m.Type)
}

// NewROAccessReport builds an RO_ACCESS_REPORT carrying tag reports.
func NewROAccessReport(id uint32, reports []TagReportData) Message {
	w := NewWriter(64 * (1 + len(reports)))
	for _, t := range reports {
		t.encode(w)
	}
	return Message{Type: MsgROAccessReport, ID: id, Body: w.Bytes()}
}

// DecodeROAccessReport extracts the tag reports of an RO_ACCESS_REPORT.
func DecodeROAccessReport(m Message) ([]TagReportData, error) {
	r := NewReader(m.Body)
	var out []TagReportData
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamTagReportData {
			t, err := decodeTagReportData(h.body)
			if err != nil {
				return out, err
			}
			out = append(out, t)
		}
	}
	return out, r.Err()
}

// ConnectionAttemptStatus is the outcome field of a ConnectionAttemptEvent.
type ConnectionAttemptStatus uint16

// Connection attempt outcomes.
const (
	ConnSuccess              ConnectionAttemptStatus = 0
	ConnFailedReaderInUse    ConnectionAttemptStatus = 1
	ConnFailedAnotherAttempt ConnectionAttemptStatus = 4
)

// NewReaderEventNotification builds a READER_EVENT_NOTIFICATION carrying a
// timestamp and (optionally) a connection-attempt event.
func NewReaderEventNotification(id uint32, ts UTCTimestamp, conn *ConnectionAttemptStatus) Message {
	w := NewWriter(48)
	off := w.tlv(ParamReaderEventNotificationData)
	ts.encode(w)
	if conn != nil {
		co := w.tlv(ParamConnectionAttemptEvent)
		w.U16(uint16(*conn))
		w.closeTLV(co)
	}
	w.closeTLV(off)
	return Message{Type: MsgReaderEventNotification, ID: id, Body: w.Bytes()}
}

// ReaderEvent is the decoded content of a READER_EVENT_NOTIFICATION.
type ReaderEvent struct {
	Timestamp   UTCTimestamp
	ConnAttempt *ConnectionAttemptStatus
	ROSpec      *ROSpecEvent
}

// NewROSpecEventNotification builds a READER_EVENT_NOTIFICATION carrying
// an ROSpec start/end event.
func NewROSpecEventNotification(id uint32, ts UTCTimestamp, ev ROSpecEvent) Message {
	w := NewWriter(48)
	off := w.tlv(ParamReaderEventNotificationData)
	ts.encode(w)
	ev.encode(w)
	w.closeTLV(off)
	return Message{Type: MsgReaderEventNotification, ID: id, Body: w.Bytes()}
}

// NewGetReaderCapabilitiesResponse builds the capabilities response.
func NewGetReaderCapabilitiesResponse(id uint32, status LLRPStatus, caps Capabilities) Message {
	w := NewWriter(64)
	status.encode(w)
	caps.encode(w)
	return Message{Type: MsgGetReaderCapabilitiesResponse, ID: id, Body: w.Bytes()}
}

// DecodeGetReaderCapabilitiesResponse extracts the capabilities.
func DecodeGetReaderCapabilitiesResponse(m Message) (Capabilities, error) {
	return decodeCapabilities(m.Body)
}

// DecodeReaderEventNotification parses a READER_EVENT_NOTIFICATION.
func DecodeReaderEventNotification(m Message) (ReaderEvent, error) {
	var ev ReaderEvent
	r := NewReader(m.Body)
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ != ParamReaderEventNotificationData {
			continue
		}
		inner := NewReader(h.body)
		for inner.Remaining() > 0 {
			ih, ok := inner.nextParam()
			if !ok {
				break
			}
			pr := NewReader(ih.body)
			switch ih.typ {
			case ParamUTCTimestamp:
				ev.Timestamp = UTCTimestamp{Microseconds: pr.U64()}
			case ParamConnectionAttemptEvent:
				s := ConnectionAttemptStatus(pr.U16())
				ev.ConnAttempt = &s
			case ParamROSpecEvent:
				re, err := decodeROSpecEvent(ih.body)
				if err != nil {
					return ev, err
				}
				ev.ROSpec = &re
			}
			if err := pr.Err(); err != nil {
				return ev, err
			}
		}
		if err := inner.Err(); err != nil {
			return ev, err
		}
	}
	return ev, r.Err()
}

// responseTypeFor maps a request type to its response type; ok is false
// for one-way messages.
func responseTypeFor(t MessageType) (MessageType, bool) {
	switch t {
	case MsgGetReaderCapabilities:
		return MsgGetReaderCapabilitiesResponse, true
	case MsgSetReaderConfig:
		return MsgSetReaderConfigResponse, true
	case MsgAddROSpec:
		return MsgAddROSpecResponse, true
	case MsgDeleteROSpec:
		return MsgDeleteROSpecResponse, true
	case MsgStartROSpec:
		return MsgStartROSpecResponse, true
	case MsgStopROSpec:
		return MsgStopROSpecResponse, true
	case MsgEnableROSpec:
		return MsgEnableROSpecResponse, true
	case MsgDisableROSpec:
		return MsgDisableROSpecResponse, true
	case MsgCloseConnection:
		return MsgCloseConnectionResponse, true
	case MsgAddAccessSpec:
		return MsgAddAccessSpecResponse, true
	case MsgDeleteAccessSpec:
		return MsgDeleteAccessSpecResponse, true
	case MsgEnableAccessSpec:
		return MsgEnableAccessSpecResponse, true
	case MsgDisableAccessSpec:
		return MsgDisableAccessSpecResponse, true
	default:
		return 0, false
	}
}
