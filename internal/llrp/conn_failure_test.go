package llrp

// Failure-path coverage for the LLRP client connection: dialing dead
// readers, readers dying mid-session, and the contract that the report and
// event channels close cleanly — what fleet supervisors depend on for
// reconnect decisions.

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// deadAddr returns an address that was listening a moment ago and is not
// any more, so dialing it fails fast with a refusal.
func deadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

func TestDialClosedPort(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, deadAddr(t))
	if err == nil {
		conn.Close()
		t.Fatal("Dial against a closed port must fail")
	}
}

func TestDialContextCancelled(t *testing.T) {
	// A listener that accepts but never speaks LLRP: Dial must give up
	// when its context does, not hang waiting for the connection event.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	conn, err := Dial(ctx, lis.Addr().String())
	if err == nil {
		conn.Close()
		t.Fatal("Dial must fail when the reader never sends its connection event")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("Dial took %v to honor its context", time.Since(start))
	}
}

func TestMidSessionReaderShutdown(t *testing.T) {
	conn, srv, _ := startTestServer(t, 51, 4)

	// The session works before the kill.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := conn.GetCapabilities(ctx); err != nil {
		t.Fatalf("pre-kill capabilities: %v", err)
	}
	if conn.Err() != nil {
		t.Fatalf("live connection reports Err %v", conn.Err())
	}
	select {
	case <-conn.Done():
		t.Fatal("live connection reports Done")
	default:
	}

	// Kill the reader mid-session.
	srv.Close()

	if !conn.WaitClosed(5 * time.Second) {
		t.Fatal("connection did not observe the reader dying")
	}
	select {
	case <-conn.Done():
	default:
		t.Fatal("Done channel not closed after reader shutdown")
	}
	if conn.Err() == nil {
		t.Fatal("Err must be non-nil after the reader dies")
	}

	// Both fan-out channels must close cleanly so consumers don't leak.
	assertClosed := func(name string, closed func() bool) {
		deadline := time.After(5 * time.Second)
		for {
			if closed() {
				return
			}
			select {
			case <-deadline:
				t.Fatalf("%s channel did not close", name)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	assertClosed("reports", func() bool {
		select {
		case _, ok := <-conn.Reports():
			return !ok
		default:
			return false
		}
	})
	assertClosed("events", func() bool {
		select {
		case _, ok := <-conn.Events():
			return !ok
		default:
			return false
		}
	})

	// Requests on the dead session fail instead of hanging.
	rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer rcancel()
	if err := conn.EnableROSpec(rctx, 1); err == nil {
		t.Fatal("request on a dead connection must error")
	}
}

func TestClientDisconnectMidROSpecFreesReader(t *testing.T) {
	// A client that vanishes mid-ROSpec (a crashed daemon, a fleet
	// supervisor cutting a stuck session) must not wedge the reader: the
	// serve loop's stopAll has to win against the running ROSpec so the
	// next client isn't refused with ConnFailedReaderInUse forever.
	rng := rand.New(rand.NewSource(60))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, 4, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i)*0.3, 0.5, 0)})
	}
	// Real-time pacing keeps the long ROSpec genuinely running when the
	// client disappears; free-run would finish it before the disconnect.
	srv := NewServer(reader.New(reader.DefaultConfig(), scn), ServerConfig{TimeScale: 1.0})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	spec := basicROSpec(9, 30000)
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableROSpec(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if err := conn.StartROSpec(ctx, 9); err != nil {
		t.Fatal(err)
	}
	// Hard disconnect while the 30 s spec is mid-flight. The server needs
	// a moment to notice the EOF and reap the runner, so poll the dial.
	conn.Close()

	var conn2 *Conn
	deadline := time.Now().Add(8 * time.Second)
	for {
		conn2, err = Dial(ctx, addr.String())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader still busy after client disconnect: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := conn2.GetCapabilities(ctx); err != nil {
		t.Fatalf("post-reconnect capabilities: %v", err)
	}
	conn2.Close()
}

func TestLocalCloseReportsErrClosed(t *testing.T) {
	conn, _, _ := startTestServer(t, 52, 2)
	conn.Close()
	if !conn.WaitClosed(5 * time.Second) {
		t.Fatal("closed connection did not settle")
	}
	// Drain until closed: the read loop shuts both channels on exit.
	for range conn.Reports() {
	}
	for range conn.Events() {
	}
	if err := conn.Err(); err == nil {
		t.Fatal("Err after Close must be non-nil")
	}
}
