package llrp

import (
	"math/rand"
	"testing"

	"tagwatch/internal/epc"
)

func benchReports(n int) []TagReportData {
	rng := rand.New(rand.NewSource(1))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		panic(err)
	}
	out := make([]TagReportData, n)
	for i, c := range codes {
		out[i] = TagReportData{
			EPC: c, ROSpecID: 1, AntennaID: uint16(i%4 + 1),
			PeakRSSIdBm: -60, ChannelIndex: uint16(i%16 + 1),
			FirstSeenUTC: 1_700_000_000_000_000 + uint64(i),
			TagSeenCount: 1,
		}
		out[i].SetPhaseRadians(float64(i) * 0.1)
	}
	return out
}

func BenchmarkROAccessReportEncode(b *testing.B) {
	reports := benchReports(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewROAccessReport(uint32(i), reports)
		if len(m.Body) == 0 {
			b.Fatal("empty body")
		}
	}
}

func BenchmarkROAccessReportDecode(b *testing.B) {
	frame := NewROAccessReport(1, benchReports(64)).EncodeFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		reports, err := DecodeROAccessReport(m)
		if err != nil || len(reports) != 64 {
			b.Fatalf("decode: %v (%d)", err, len(reports))
		}
	}
}

func BenchmarkROSpecRoundTrip(b *testing.B) {
	spec := makeROSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewAddROSpec(uint32(i), spec)
		if _, err := DecodeAddROSpec(m); err != nil {
			b.Fatal(err)
		}
	}
}
