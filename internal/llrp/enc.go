// Package llrp implements the subset of the EPCglobal Low Level Reader
// Protocol (LLRP 1.0.1) that Tagwatch uses to drive a reader: ROSpec
// delivery (ADD/ENABLE/START/STOP/DELETE), AISpecs carrying C1G2Filter
// bitmasks (the Select parameters of §5–6), RO_ACCESS_REPORT tag report
// streaming with the ImpinJ custom RF-phase extension, reader event
// notifications, and keepalives.
//
// The package provides both halves of the wire: a Client (what Tagwatch
// runs) and a reader-emulator Server (the stand-in for the ImpinJ R420,
// backed by the reader simulator). Both speak the real binary protocol
// over TCP, so the middleware is exercised end-to-end exactly as it would
// be against hardware.
//
// Encoding follows the LLRP binary framing: big-endian, 10-bit message
// types with a 32-bit length, TLV parameters (6 reserved bits + 10-bit
// type, 16-bit length) and TV parameters (1 set bit + 7-bit type, fixed
// length). Decoding is allocation-light in the style of gopacket's
// DecodingLayer: messages decode into caller-owned structs and report
// precise errors.
package llrp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer accumulates a big-endian LLRP byte stream. The zero value is
// ready to use; Bytes returns the accumulated frame.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated bytes (not a copy).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Raw appends raw bytes.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// tlv opens a TLV parameter of the given type, returning the offset of the
// length field; closeTLV backpatches the length.
func (w *Writer) tlv(typ ParamType) int {
	w.U16(uint16(typ) & 0x03FF)
	off := len(w.buf)
	w.U16(0) // patched by closeTLV
	return off
}

// closeTLV backpatches a TLV length to cover [off-2, end).
func (w *Writer) closeTLV(off int) {
	binary.BigEndian.PutUint16(w.buf[off:], uint16(len(w.buf)-off+2))
}

// ErrTruncated is returned when a frame ends before a field completes.
var ErrTruncated = errors.New("llrp: truncated frame")

// Reader consumes a big-endian LLRP byte stream with sticky error
// semantics: after the first failure every subsequent read returns zero
// values, and Err reports the first failure. This keeps decode paths free
// of per-field error plumbing.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a frame for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf)))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Raw reads n raw bytes (referencing the underlying frame, not copying).
func (r *Reader) Raw(n int) []byte {
	if n < 0 {
		r.fail(fmt.Errorf("llrp: negative raw length %d", n))
		return nil
	}
	if !r.need(n) {
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Skip discards n bytes.
func (r *Reader) Skip(n int) { r.Raw(n) }

// paramHeader is the decoded header of one parameter.
type paramHeader struct {
	typ ParamType
	// body is the parameter payload (excluding the header) for TLV
	// parameters; for TV parameters it is the fixed-size value region.
	body []byte
	tv   bool
}

// peekParam decodes the parameter at the cursor without consuming it,
// returning its header and total wire size.
func (r *Reader) peekParam() (paramHeader, int, bool) {
	if r.err != nil || r.Remaining() == 0 {
		return paramHeader{}, 0, false
	}
	first := r.buf[r.off]
	if first&0x80 != 0 {
		// TV parameter: 7-bit type, fixed length from the registry.
		typ := ParamType(first & 0x7F)
		size, ok := tvSizes[typ]
		if !ok {
			r.fail(fmt.Errorf("llrp: unknown TV parameter type %d", typ))
			return paramHeader{}, 0, false
		}
		if r.off+1+size > len(r.buf) {
			r.fail(fmt.Errorf("%w: TV parameter %d", ErrTruncated, typ))
			return paramHeader{}, 0, false
		}
		return paramHeader{typ: typ, body: r.buf[r.off+1 : r.off+1+size], tv: true}, 1 + size, true
	}
	if r.Remaining() < 4 {
		r.fail(fmt.Errorf("%w: TLV header", ErrTruncated))
		return paramHeader{}, 0, false
	}
	typ := ParamType(binary.BigEndian.Uint16(r.buf[r.off:]) & 0x03FF)
	length := int(binary.BigEndian.Uint16(r.buf[r.off+2:]))
	if length < 4 || r.off+length > len(r.buf) {
		r.fail(fmt.Errorf("%w: TLV parameter %d claims %d bytes, %d remain", ErrTruncated, typ, length, r.Remaining()))
		return paramHeader{}, 0, false
	}
	return paramHeader{typ: typ, body: r.buf[r.off+4 : r.off+length]}, length, true
}

// nextParam consumes and returns the parameter at the cursor.
func (r *Reader) nextParam() (paramHeader, bool) {
	h, size, ok := r.peekParam()
	if !ok {
		return paramHeader{}, false
	}
	r.off += size
	return h, true
}
