package llrp

import "testing"

// FuzzDecodeFrame exercises the whole decode surface with arbitrary bytes:
// no decoder may panic, and any frame that round-trips must re-encode to a
// parseable frame.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(Message{Type: MsgKeepalive, ID: 1}.EncodeFrame())
	f.Add(NewAddROSpec(7, makeROSpec()).EncodeFrame())
	f.Add(NewROAccessReport(1, benchReports(3)).EncodeFrame())
	s := ConnSuccess
	f.Add(NewReaderEventNotification(1, UTCTimestamp{Microseconds: 1}, &s).EncodeFrame())
	f.Add(NewGetReaderCapabilitiesResponse(1, LLRPStatus{}, Capabilities{MaxAntennas: 4}).EncodeFrame())
	f.Add([]byte{0x04, 0x3d, 0x00, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// None of the typed decoders may panic on arbitrary bodies.
		DecodeROAccessReport(m)
		DecodeAddROSpec(m)
		DecodeStatus(m)
		DecodeReaderEventNotification(m)
		DecodeGetReaderCapabilitiesResponse(m)
		ROSpecIDOf(m)
		// Re-encoding the header+body must parse back identically.
		m2, _, err := DecodeFrame(m.EncodeFrame())
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if m2.Type != m.Type || m2.ID != m.ID || len(m2.Body) != len(m.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", m2, m)
		}
	})
}
