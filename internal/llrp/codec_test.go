package llrp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tagwatch/internal/epc"
)

func TestWriterReaderPrimitives(t *testing.T) {
	w := NewWriter(16)
	w.U8(0xAB)
	w.U16(0x1234)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.Raw([]byte{9, 9})
	r := NewReader(w.Bytes())
	if r.U8() != 0xAB || r.U16() != 0x1234 || r.U32() != 0xDEADBEEF || r.U64() != 0x0102030405060708 {
		t.Fatal("primitive round trip failed")
	}
	if got := r.Raw(2); got[0] != 9 || got[1] != 9 {
		t.Fatal("raw round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails
	if r.Err() == nil {
		t.Fatal("short read must error")
	}
	// Subsequent reads return zero without panicking.
	if r.U8() != 0 || r.U16() != 0 || r.U64() != 0 || r.Raw(3) != nil {
		t.Fatal("post-error reads must be zero")
	}
	r.Skip(5)
	if r.Raw(-1) != nil {
		t.Fatal("negative raw must be nil")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.U32(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset must clear")
	}
}

func TestMessageFrameRoundTrip(t *testing.T) {
	m := Message{Type: MsgKeepalive, ID: 77, Body: []byte{1, 2, 3}}
	frame := m.EncodeFrame()
	got, n, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d", n, len(frame))
	}
	if got.Type != MsgKeepalive || got.ID != 77 || len(got.Body) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{1, 2}); err == nil {
		t.Fatal("short header must error")
	}
	m := Message{Type: MsgKeepalive, ID: 1}
	frame := m.EncodeFrame()
	// Corrupt version.
	bad := append([]byte(nil), frame...)
	bad[0] = 0x80 // version 2? actually sets rsvd bit; version bits 10-12
	bad[0] = byte(2 << 2)
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("wrong version must error")
	}
	// Truncated body.
	long := Message{Type: MsgKeepalive, ID: 1, Body: make([]byte, 10)}.EncodeFrame()
	if _, _, err := DecodeFrame(long[:12]); err == nil {
		t.Fatal("truncated body must error")
	}
	// Invalid length field.
	badLen := append([]byte(nil), frame...)
	badLen[2], badLen[3], badLen[4], badLen[5] = 0, 0, 0, 3
	if _, _, err := DecodeFrame(badLen); err == nil {
		t.Fatal("undersized length must error")
	}
}

func TestLLRPStatusRoundTrip(t *testing.T) {
	resp := NewStatusResponse(MsgAddROSpecResponse, 5, LLRPStatus{Code: StatusParamError, Description: "bad mask"})
	st, err := DecodeStatus(resp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Code != StatusParamError || st.Description != "bad mask" || st.OK() {
		t.Fatalf("status round trip: %+v", st)
	}
	if st.Error() == "" {
		t.Fatal("Error() must render")
	}
	ok := LLRPStatus{Code: StatusSuccess}
	if !ok.OK() {
		t.Fatal("success must be OK")
	}
	// A message without a status parameter errors.
	if _, err := DecodeStatus(Message{Type: MsgAddROSpecResponse}); err == nil {
		t.Fatal("missing status must error")
	}
}

func makeROSpec() ROSpec {
	mask, _ := epc.NewBits([]byte{0xA5, 0xC0}, 10)
	return ROSpec{
		ID:       42,
		Priority: 1,
		State:    ROSpecDisabled,
		Boundary: ROBoundarySpec{
			StartTrigger: StartTriggerImmediate,
			StopTrigger:  StopTriggerDuration,
			DurationMS:   5000,
		},
		AISpecs: []AISpec{
			{
				AntennaIDs:  []uint16{1, 2},
				StopTrigger: AISpecStopTrigger{Type: AIStopDuration, DurationMS: 1200},
				Inventories: []InventoryParameterSpec{{
					ID: 9,
					Commands: []C1G2InventoryCommand{{
						Session:  1,
						InitialQ: 4,
						Filters: []C1G2Filter{{
							Mask: C1G2TagInventoryMask{MemBank: epc.BankEPC, Pointer: 32, Mask: mask},
						}},
					}},
				}},
			},
			{
				AntennaIDs:  []uint16{3},
				StopTrigger: AISpecStopTrigger{Type: AIStopNull},
				Inventories: []InventoryParameterSpec{{ID: 10}},
			},
		},
	}
}

func TestROSpecRoundTrip(t *testing.T) {
	spec := makeROSpec()
	msg := NewAddROSpec(7, spec)
	got, err := DecodeAddROSpec(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Priority != 1 {
		t.Fatalf("header: %+v", got)
	}
	if got.Boundary != spec.Boundary {
		t.Fatalf("boundary: %+v vs %+v", got.Boundary, spec.Boundary)
	}
	if len(got.AISpecs) != 2 {
		t.Fatalf("AISpecs: %d", len(got.AISpecs))
	}
	a := got.AISpecs[0]
	if len(a.AntennaIDs) != 2 || a.AntennaIDs[0] != 1 || a.AntennaIDs[1] != 2 {
		t.Fatalf("antennas: %v", a.AntennaIDs)
	}
	if a.StopTrigger != (AISpecStopTrigger{Type: AIStopDuration, DurationMS: 1200}) {
		t.Fatalf("stop trigger: %+v", a.StopTrigger)
	}
	inv := a.Inventories[0]
	if inv.ID != 9 || len(inv.Commands) != 1 {
		t.Fatalf("inventory: %+v", inv)
	}
	cmd := inv.Commands[0]
	if cmd.Session != 1 || cmd.InitialQ != 4 || len(cmd.Filters) != 1 {
		t.Fatalf("command: %+v", cmd)
	}
	f := cmd.Filters[0]
	if f.Mask.MemBank != epc.BankEPC || f.Mask.Pointer != 32 || f.Mask.Mask.Bits() != 10 {
		t.Fatalf("filter: %+v", f)
	}
	wantMask, _ := epc.NewBits([]byte{0xA5, 0xC0}, 10)
	if f.Mask.Mask != wantMask {
		t.Fatalf("mask bits: %s", f.Mask.Mask)
	}
}

func TestAddROSpecMissingParam(t *testing.T) {
	if _, err := DecodeAddROSpec(Message{Type: MsgAddROSpec}); err == nil {
		t.Fatal("empty ADD_ROSPEC must error")
	}
}

func TestROSpecOpRoundTrip(t *testing.T) {
	m := NewROSpecOp(MsgEnableROSpec, 3, 42)
	if m.Type != MsgEnableROSpec {
		t.Fatal("type")
	}
	id, err := ROSpecIDOf(m)
	if err != nil || id != 42 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	if _, err := ROSpecIDOf(Message{Body: []byte{1}}); err == nil {
		t.Fatal("short body must error")
	}
}

func TestTagReportRoundTrip96(t *testing.T) {
	tr := TagReportData{
		EPC:          epc.MustParse("30f4ab12cd0045e100000001"),
		ROSpecID:     42,
		AntennaID:    3,
		PeakRSSIdBm:  -61,
		ChannelIndex: 11,
		FirstSeenUTC: 1_700_000_000_000_000,
		TagSeenCount: 2,
	}
	tr.SetPhaseRadians(1.234)
	msg := NewROAccessReport(9, []TagReportData{tr})
	got, err := DecodeROAccessReport(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("reports: %d", len(got))
	}
	g := got[0]
	if g.EPC != tr.EPC || g.ROSpecID != 42 || g.AntennaID != 3 || g.PeakRSSIdBm != -61 ||
		g.ChannelIndex != 11 || g.FirstSeenUTC != tr.FirstSeenUTC || g.TagSeenCount != 2 {
		t.Fatalf("round trip: %+v", g)
	}
	if !g.HasPhase {
		t.Fatal("phase must survive")
	}
	if math.Abs(g.PhaseRadians()-1.234) > 0.001 {
		t.Fatalf("phase = %v, want ≈1.234", g.PhaseRadians())
	}
}

func TestTagReportRoundTripOddLength(t *testing.T) {
	// Non-96-bit EPCs ride in an EPCData TLV instead of the EPC-96 TV.
	code := epc.FromUint64(0b1011_0110_1, 9)
	tr := TagReportData{EPC: code, AntennaID: 1}
	got, err := DecodeROAccessReport(NewROAccessReport(1, []TagReportData{tr}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].EPC != code {
		t.Fatalf("odd-length EPC: %s vs %s", got[0].EPC, code)
	}
	if got[0].HasPhase {
		t.Fatal("no phase was encoded")
	}
}

func TestROAccessReportMany(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes, _ := epc.RandomPopulation(rng, 64, 96)
	in := make([]TagReportData, len(codes))
	for i, c := range codes {
		in[i] = TagReportData{EPC: c, AntennaID: uint16(i%4 + 1), ChannelIndex: uint16(i % 16)}
		in[i].SetPhaseRadians(float64(i) * 0.1)
	}
	out, err := DecodeROAccessReport(NewROAccessReport(2, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("reports: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].EPC != in[i].EPC || out[i].AntennaID != in[i].AntennaID {
			t.Fatalf("report %d mismatch", i)
		}
	}
}

func TestPhaseRadiansProperty(t *testing.T) {
	f := func(rad float64) bool {
		if math.IsNaN(rad) || math.IsInf(rad, 0) || math.Abs(rad) > 1e6 {
			return true
		}
		var tr TagReportData
		tr.SetPhaseRadians(rad)
		got := tr.PhaseRadians()
		// got must equal rad mod 2π within quantisation (2π/65536).
		diff := math.Mod(rad-got, 2*math.Pi)
		if diff < 0 {
			diff += 2 * math.Pi
		}
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		return diff < 2*math.Pi/65536+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderEventNotificationRoundTrip(t *testing.T) {
	s := ConnSuccess
	m := NewReaderEventNotification(1, UTCTimestamp{Microseconds: 123456}, &s)
	ev, err := DecodeReaderEventNotification(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Timestamp.Microseconds != 123456 {
		t.Fatalf("timestamp: %+v", ev.Timestamp)
	}
	if ev.ConnAttempt == nil || *ev.ConnAttempt != ConnSuccess {
		t.Fatalf("conn attempt: %+v", ev.ConnAttempt)
	}
	if ev.Timestamp.Time().UnixMicro() != 123456 {
		t.Fatal("Time() conversion")
	}
	// Without the connection event.
	m2 := NewReaderEventNotification(2, UTCTimestamp{Microseconds: 1}, nil)
	ev2, err := DecodeReaderEventNotification(m2)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.ConnAttempt != nil {
		t.Fatal("no conn attempt expected")
	}
}

func TestUnknownTVParameterRejected(t *testing.T) {
	// A TV parameter type outside the registry must fail cleanly.
	r := NewReader([]byte{0x80 | 0x55, 1, 2, 3})
	if _, ok := r.nextParam(); ok {
		t.Fatal("unknown TV type must not parse")
	}
	if r.Err() == nil {
		t.Fatal("error must be recorded")
	}
}

func TestMalformedTLVLength(t *testing.T) {
	// TLV claiming more bytes than remain.
	w := NewWriter(8)
	w.U16(uint16(ParamLLRPStatus))
	w.U16(60) // bogus length
	w.U32(0)
	r := NewReader(w.Bytes())
	if _, ok := r.nextParam(); ok {
		t.Fatal("overlong TLV must not parse")
	}
	// TLV with length < 4.
	w2 := NewWriter(8)
	w2.U16(uint16(ParamLLRPStatus))
	w2.U16(2)
	r2 := NewReader(w2.Bytes())
	if _, ok := r2.nextParam(); ok {
		t.Fatal("undersized TLV must not parse")
	}
}

func TestResponseTypeFor(t *testing.T) {
	cases := map[MessageType]MessageType{
		MsgAddROSpec:             MsgAddROSpecResponse,
		MsgEnableROSpec:          MsgEnableROSpecResponse,
		MsgStartROSpec:           MsgStartROSpecResponse,
		MsgStopROSpec:            MsgStopROSpecResponse,
		MsgDeleteROSpec:          MsgDeleteROSpecResponse,
		MsgDisableROSpec:         MsgDisableROSpecResponse,
		MsgCloseConnection:       MsgCloseConnectionResponse,
		MsgSetReaderConfig:       MsgSetReaderConfigResponse,
		MsgGetReaderCapabilities: MsgGetReaderCapabilitiesResponse,
	}
	for req, want := range cases {
		got, ok := responseTypeFor(req)
		if !ok || got != want {
			t.Errorf("responseTypeFor(%d) = %d/%v", req, got, ok)
		}
	}
	if _, ok := responseTypeFor(MsgKeepalive); ok {
		t.Fatal("keepalive has no response type (ack is separate)")
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	// Random bytes must never panic the decoders.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if m, _, err := DecodeFrame(b); err == nil {
			DecodeROAccessReport(m)
			DecodeAddROSpec(m)
			DecodeStatus(m)
			DecodeReaderEventNotification(m)
		}
	}
}

func TestROSpecEventRoundTrip(t *testing.T) {
	m := NewROSpecEventNotification(9, UTCTimestamp{Microseconds: 777}, ROSpecEvent{
		Type: ROSpecEnded, ROSpecID: 42, Preempting: 7,
	})
	ev, err := DecodeReaderEventNotification(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ROSpec == nil {
		t.Fatal("ROSpec event lost")
	}
	if ev.ROSpec.Type != ROSpecEnded || ev.ROSpec.ROSpecID != 42 || ev.ROSpec.Preempting != 7 {
		t.Fatalf("round trip: %+v", ev.ROSpec)
	}
	if ev.Timestamp.Microseconds != 777 {
		t.Fatal("timestamp lost")
	}
	if ev.ConnAttempt != nil {
		t.Fatal("no connection event expected")
	}
}

func TestCapabilitiesRoundTrip(t *testing.T) {
	caps := Capabilities{
		MaxAntennas:              4,
		ManufacturerPEN:          ImpinjPEN,
		Model:                    420,
		MaxSelectFiltersPerQuery: 8,
		SupportsPhaseReporting:   true,
	}
	m := NewGetReaderCapabilitiesResponse(3, LLRPStatus{Code: StatusSuccess}, caps)
	got, err := DecodeGetReaderCapabilitiesResponse(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != caps {
		t.Fatalf("round trip: %+v vs %+v", got, caps)
	}
	// Status still decodable from the same message.
	st, err := DecodeStatus(m)
	if err != nil || !st.OK() {
		t.Fatalf("status: %+v %v", st, err)
	}
	// Phase-reporting flag independent.
	caps.SupportsPhaseReporting = false
	got2, err := DecodeGetReaderCapabilitiesResponse(NewGetReaderCapabilitiesResponse(4, LLRPStatus{}, caps))
	if err != nil || got2.SupportsPhaseReporting {
		t.Fatalf("flag handling: %+v %v", got2, err)
	}
}

func TestAllMessageNames(t *testing.T) {
	types := []MessageType{
		MsgGetReaderCapabilities, MsgGetReaderCapabilitiesResponse,
		MsgSetReaderConfig, MsgSetReaderConfigResponse,
		MsgCloseConnection, MsgCloseConnectionResponse,
		MsgAddROSpec, MsgAddROSpecResponse,
		MsgDeleteROSpec, MsgDeleteROSpecResponse,
		MsgStartROSpec, MsgStartROSpecResponse,
		MsgStopROSpec, MsgStopROSpecResponse,
		MsgEnableROSpec, MsgEnableROSpecResponse,
		MsgDisableROSpec, MsgDisableROSpecResponse,
		MsgROAccessReport, MsgKeepalive, MsgKeepaliveAck,
		MsgReaderEventNotification, MsgErrorMessage,
		MsgAddAccessSpec, MsgAddAccessSpecResponse,
		MsgDeleteAccessSpec, MsgDeleteAccessSpecResponse,
		MsgEnableAccessSpec, MsgEnableAccessSpecResponse,
		MsgDisableAccessSpec, MsgDisableAccessSpecResponse,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		name := typ.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate name for %d: %q", typ, name)
		}
		if name[0] == 'M' && name[1] == 'E' { // MESSAGE_TYPE_n fallback
			t.Fatalf("named constant %d fell through to %q", typ, name)
		}
		seen[name] = true
	}
}
