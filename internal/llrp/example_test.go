package llrp_test

import (
	"fmt"

	"tagwatch/internal/epc"
	"tagwatch/internal/llrp"
)

// Example shows the codec round-trip of a selective-reading ROSpec — the
// message Tagwatch sends to schedule one Phase II bitmask.
func Example() {
	mask, _ := epc.MustParse("30f4ab12cd0045e100000001").Slice(0, 16)
	spec := llrp.ROSpec{
		ID: 7,
		Boundary: llrp.ROBoundarySpec{
			StopTrigger: llrp.StopTriggerDuration,
			DurationMS:  5000,
		},
		AISpecs: []llrp.AISpec{{
			AntennaIDs:  []uint16{0}, // all antennas
			StopTrigger: llrp.AISpecStopTrigger{Type: llrp.AIStopDuration, DurationMS: 100},
			Inventories: []llrp.InventoryParameterSpec{{
				ID: 1,
				Commands: []llrp.C1G2InventoryCommand{{
					Session: 1,
					Filters: []llrp.C1G2Filter{{Mask: llrp.C1G2TagInventoryMask{
						MemBank: epc.BankEPC,
						Pointer: epc.EPCWordOffset,
						Mask:    mask,
					}}},
				}},
			}},
		}},
	}
	msg := llrp.NewAddROSpec(1, spec)
	fmt.Println(msg.Summarize())
	fmt.Printf("frame: %d bytes on the wire\n", len(msg.EncodeFrame()))
	// Output:
	// ADD_ROSPEC id=1 rospec=7 aispecs=1 filter=30f4@32/16b
	// frame: 99 bytes on the wire
}
