package llrp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("llrp: connection closed")

// ErrKeepaliveTimeout is the watchdog's terminal error: the reader went
// silent for longer than the armed window. Supervisors match it with
// errors.Is to distinguish a half-open link from a clean close or a
// decode failure.
var ErrKeepaliveTimeout = errors.New("llrp: keepalive watchdog expired")

// DefaultOpTimeout bounds each request/response exchange when the
// caller's context carries no tighter deadline. LLRP control operations
// complete in milliseconds on a healthy link; anything near this bound
// means the link is gone, not slow.
const DefaultOpTimeout = 10 * time.Second

// Conn is the client side of an LLRP connection — what Tagwatch uses in
// place of the ImpinJ LTK. It owns the socket: a background goroutine
// reads frames, matches responses to requests by message ID, auto-acks
// keepalives, and fans tag reports and reader events out to channels.
type Conn struct {
	conn net.Conn
	br   *bufio.Reader

	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Message
	err     error
	closed  chan struct{}
	once    sync.Once

	reports chan []TagReportData
	events  chan ReaderEvent

	// opTimeout is the per-operation deadline (nanoseconds; atomic so
	// SetOpTimeout races cleanly with in-flight operations).
	opTimeout atomic.Int64
	// lastRx is the UnixNano stamp of the last complete inbound frame —
	// the watchdog's evidence of life. Any frame counts, not just
	// keepalives: a reader streaming reports is alive even if its
	// keepalive ticker falls behind.
	lastRx atomic.Int64
}

// Dial connects to an LLRP reader (real or emulated) and waits for the
// mandatory connection-attempt event that opens every LLRP session.
func Dial(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: dial %s: %w", addr, err)
	}
	c := newConn(nc)
	select {
	case ev := <-c.events:
		if ev.ConnAttempt == nil || *ev.ConnAttempt != ConnSuccess {
			c.Close()
			return nil, fmt.Errorf("llrp: reader refused connection: %+v", ev.ConnAttempt)
		}
	case <-ctx.Done():
		c.Close()
		return nil, ctx.Err()
	case <-c.closed:
		return nil, c.readError()
	}
	return c, nil
}

// newConn wraps an established socket and starts the read loop. Exported
// via Dial; the server uses its own loop.
func newConn(nc net.Conn) *Conn {
	c := &Conn{
		conn:    nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		pending: make(map[uint32]chan Message),
		closed:  make(chan struct{}),
		reports: make(chan []TagReportData, 256),
		events:  make(chan ReaderEvent, 16),
	}
	c.opTimeout.Store(int64(DefaultOpTimeout))
	c.lastRx.Store(time.Now().UnixNano())
	go c.readLoop()
	return c
}

// SetOpTimeout overrides the per-operation deadline applied to every
// request/response exchange (and to socket writes, so a blackholed link
// with a full kernel buffer cannot wedge a sender). Non-positive
// disables the bound.
func (c *Conn) SetOpTimeout(d time.Duration) { c.opTimeout.Store(int64(d)) }

// Watchdog arms a liveness monitor: if no complete frame arrives within
// the window, the connection dies with ErrKeepaliveTimeout — Done fires
// and Err reports the distinguishable cause. Pair it with SetKeepalive
// so a quiet-but-healthy reader still produces inbound traffic; see
// StartKeepalive for the combined call.
func (c *Conn) Watchdog(window time.Duration) {
	if window <= 0 {
		return
	}
	c.lastRx.Store(time.Now().UnixNano())
	go func() {
		tick := window / 4
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-c.closed:
				return
			case <-t.C:
				silent := time.Since(time.Unix(0, c.lastRx.Load()))
				if silent > window {
					c.setErr(fmt.Errorf("%w: reader silent %v (window %v)",
						ErrKeepaliveTimeout, silent.Round(time.Millisecond), window))
					c.Close()
					return
				}
			}
		}
	}()
}

// StartKeepalive asks the reader for periodic KEEPALIVE messages and
// arms the watchdog to fire after `misses` missed periods (minimum 2).
// This is the production liveness contract: a dead or half-open link is
// detected within misses×period instead of looking like an empty RF
// field forever.
func (c *Conn) StartKeepalive(ctx context.Context, period time.Duration, misses int) error {
	if period <= 0 {
		return fmt.Errorf("llrp: keepalive period %v must be positive", period)
	}
	if err := c.SetKeepalive(ctx, period); err != nil {
		return err
	}
	if misses < 2 {
		misses = 2
	}
	c.Watchdog(time.Duration(misses) * period)
	return nil
}

// Reports returns the stream of tag reports from RO_ACCESS_REPORT
// messages. The channel is closed when the connection dies.
func (c *Conn) Reports() <-chan []TagReportData { return c.reports }

// Events returns reader event notifications (after the initial connection
// event consumed by Dial).
func (c *Conn) Events() <-chan ReaderEvent { return c.events }

// Done returns a channel that is closed when the connection dies, whether
// by Close, a read error, or the peer going away. Supervisors select on it
// to trigger reconnects.
func (c *Conn) Done() <-chan struct{} { return c.closed }

// Err reports why the connection died: nil while it is still alive, the
// terminating read/decode error after a failure, or ErrClosed after a
// clean local Close.
func (c *Conn) Err() error {
	select {
	case <-c.closed:
		return c.readError()
	default:
		return nil
	}
}

// Close tears the connection down. It is safe to call multiple times.
func (c *Conn) Close() error {
	c.once.Do(func() {
		close(c.closed)
		c.conn.Close()
	})
	return nil
}

func (c *Conn) readError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

// readLoop pulls frames off the socket until it dies.
func (c *Conn) readLoop() {
	defer func() {
		c.mu.Lock()
		for id, ch := range c.pending {
			close(ch)
			delete(c.pending, id)
		}
		c.mu.Unlock()
		close(c.reports)
		close(c.events)
		c.Close()
	}()
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(c.br, hdr); err != nil {
			c.setErr(err)
			return
		}
		length := int(binary.BigEndian.Uint32(hdr[2:]))
		if length < headerSize || length > maxFrameLen {
			c.setErr(fmt.Errorf("llrp: insane frame length %d", length))
			return
		}
		frame := make([]byte, length)
		copy(frame, hdr)
		if _, err := io.ReadFull(c.br, frame[headerSize:]); err != nil {
			c.setErr(err)
			return
		}
		msg, _, err := DecodeFrame(frame)
		if err != nil {
			c.setErr(err)
			return
		}
		c.lastRx.Store(time.Now().UnixNano())
		c.dispatch(msg)
	}
}

func (c *Conn) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *Conn) dispatch(msg Message) {
	switch msg.Type {
	case MsgROAccessReport:
		reports, err := DecodeROAccessReport(msg)
		if err != nil || len(reports) == 0 {
			return
		}
		select {
		case c.reports <- reports:
		case <-c.closed:
		}
	case MsgKeepalive:
		// Auto-acknowledge; failure here will surface on the next write.
		_ = c.send(NewKeepaliveAck(msg.ID))
	case MsgReaderEventNotification:
		ev, err := DecodeReaderEventNotification(msg)
		if err != nil {
			return
		}
		select {
		case c.events <- ev:
		case <-c.closed:
		default: // drop events rather than block the read loop
		}
	default:
		c.mu.Lock()
		ch, ok := c.pending[msg.ID]
		if ok {
			delete(c.pending, msg.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
			close(ch)
		}
	}
}

// send writes one frame under the per-operation write deadline, so a
// blackholed socket with a full kernel buffer fails the operation
// instead of wedging every sender behind writeMu.
func (c *Conn) send(m Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	select {
	case <-c.closed:
		return c.readError()
	default:
	}
	// Arm the deadline unconditionally: the zero time means "no
	// deadline" and clears whatever a previous operation left armed, so
	// the no-timeout configuration can never inherit a stale deadline.
	var dl time.Time
	if d := time.Duration(c.opTimeout.Load()); d > 0 {
		dl = time.Now().Add(d)
	}
	if err := c.conn.SetWriteDeadline(dl); err != nil {
		return err
	}
	// Holding writeMu across the socket write is the point of this
	// mutex — frames must not interleave — and the block is bounded by
	// the write deadline armed above.
	_, err := c.conn.Write(m.EncodeFrame()) //tagwatch:allow-locked-send serialised frame write, bounded by SetWriteDeadline
	return err
}

// roundTrip sends a request and waits for its matching response, under
// the per-operation deadline in addition to any deadline ctx carries.
func (c *Conn) roundTrip(ctx context.Context, m Message) (Message, error) {
	if d := time.Duration(c.opTimeout.Load()); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	wantType, hasResp := responseTypeFor(m.Type)
	c.mu.Lock()
	c.nextID++
	m.ID = c.nextID
	ch := make(chan Message, 1)
	if hasResp {
		c.pending[m.ID] = ch
	}
	c.mu.Unlock()

	// unregister removes the waiter; every exit path that did not consume
	// the response runs it, so an abandoned ID can never match a late
	// reply against a different caller.
	unregister := func() {
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
	}

	if err := c.send(m); err != nil {
		unregister()
		return Message{}, fmt.Errorf("llrp: send type %d: %w", m.Type, err)
	}
	if !hasResp {
		return Message{}, nil
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return Message{}, c.readError()
		}
		if resp.Type != wantType && resp.Type != MsgErrorMessage {
			return resp, fmt.Errorf("llrp: response type %d to request %d, want %d", resp.Type, m.Type, wantType)
		}
		return resp, nil
	case <-ctx.Done():
		unregister()
		return Message{}, ctx.Err()
	case <-c.closed:
		return Message{}, c.readError()
	}
}

// statusOp performs a request whose response carries only an LLRPStatus,
// converting failure statuses into errors.
func (c *Conn) statusOp(ctx context.Context, m Message) error {
	resp, err := c.roundTrip(ctx, m)
	if err != nil {
		return err
	}
	st, err := DecodeStatus(resp)
	if err != nil {
		return err
	}
	if !st.OK() {
		return st
	}
	return nil
}

// GetCapabilities queries the reader's capabilities.
func (c *Conn) GetCapabilities(ctx context.Context) (Capabilities, error) {
	resp, err := c.roundTrip(ctx, Message{Type: MsgGetReaderCapabilities})
	if err != nil {
		return Capabilities{}, err
	}
	if st, err := DecodeStatus(resp); err == nil && !st.OK() {
		return Capabilities{}, st
	}
	return DecodeGetReaderCapabilitiesResponse(resp)
}

// SetKeepalive asks the reader to send periodic KEEPALIVE messages (the
// connection auto-acks them); a non-positive period disables them.
func (c *Conn) SetKeepalive(ctx context.Context, period time.Duration) error {
	spec := &KeepaliveSpec{Periodic: period > 0, Period: period}
	return c.statusOp(ctx, NewSetReaderConfig(0, spec))
}

// AddROSpec installs an ROSpec on the reader.
func (c *Conn) AddROSpec(ctx context.Context, spec ROSpec) error {
	return c.statusOp(ctx, NewAddROSpec(0, spec))
}

// EnableROSpec enables an installed ROSpec.
func (c *Conn) EnableROSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgEnableROSpec, 0, id))
}

// StartROSpec starts an enabled ROSpec.
func (c *Conn) StartROSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgStartROSpec, 0, id))
}

// StopROSpec stops a running ROSpec.
func (c *Conn) StopROSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgStopROSpec, 0, id))
}

// DeleteROSpec removes an ROSpec (0 deletes all).
func (c *Conn) DeleteROSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgDeleteROSpec, 0, id))
}

// CloseConnection performs the orderly LLRP shutdown and closes the
// socket.
func (c *Conn) CloseConnection(ctx context.Context) error {
	err := c.statusOp(ctx, NewCloseConnection(0))
	c.Close()
	return err
}

// WaitClosed blocks until the connection dies or the timeout elapses.
func (c *Conn) WaitClosed(d time.Duration) bool {
	select {
	case <-c.closed:
		return true
	case <-time.After(d):
		return false
	}
}
