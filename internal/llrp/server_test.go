package llrp

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// startTestServer spins up a reader emulator over a small scene and
// returns a connected client.
func startTestServer(t *testing.T, seed int64, n int) (*Conn, *Server, []epc.EPC) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i%8)*0.3, 0.5+float64(i/8)*0.3, 0)})
	}
	eng := reader.New(reader.DefaultConfig(), scn)
	srv := NewServer(eng, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	conn, err := Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, srv, codes
}

// collectReports drains tag reports until idle for the given window or the
// deadline passes.
func collectReports(conn *Conn, idle, deadline time.Duration) []TagReportData {
	var out []TagReportData
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for {
		select {
		case batch, ok := <-conn.Reports():
			if !ok {
				return out
			}
			out = append(out, batch...)
		case <-time.After(idle):
			return out
		case <-timer.C:
			return out
		}
	}
}

func basicROSpec(id uint32, durMS uint32) ROSpec {
	return ROSpec{
		ID: id,
		Boundary: ROBoundarySpec{
			StartTrigger: StartTriggerNull,
			StopTrigger:  StopTriggerDuration,
			DurationMS:   durMS,
		},
		AISpecs: []AISpec{{
			AntennaIDs:  []uint16{1},
			StopTrigger: AISpecStopTrigger{Type: AIStopDuration, DurationMS: durMS},
			Inventories: []InventoryParameterSpec{{ID: 1, Commands: []C1G2InventoryCommand{{Session: 1, InitialQ: 4}}}},
		}},
	}
}

func TestEndToEndInventoryOverTCP(t *testing.T) {
	conn, _, codes := startTestServer(t, 1, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	spec := basicROSpec(1, 500) // 500 ms of virtual inventory
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableROSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := conn.StartROSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if err := conn.StopROSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}

	seen := map[epc.EPC]int{}
	for _, r := range reports {
		seen[r.EPC]++
		if r.AntennaID != 1 {
			t.Fatalf("report from antenna %d", r.AntennaID)
		}
		if !r.HasPhase {
			t.Fatal("phase reporting must be on")
		}
		if r.ChannelIndex < 1 || r.ChannelIndex > 16 {
			t.Fatalf("channel index %d out of 1..16", r.ChannelIndex)
		}
		if r.PeakRSSIdBm >= 0 || r.PeakRSSIdBm < -100 {
			t.Fatalf("implausible RSSI %d", r.PeakRSSIdBm)
		}
	}
	for _, c := range codes {
		// 500 ms at ≈20+ rounds/s of 8 tags: every tag read several times.
		if seen[c] < 3 {
			t.Fatalf("tag %s read %d times over 500 virtual ms", c, seen[c])
		}
	}
}

func TestSelectiveReadingOverTCP(t *testing.T) {
	conn, _, codes := startTestServer(t, 2, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	target := codes[3]
	spec := basicROSpec(2, 300)
	spec.AISpecs[0].Inventories[0].Commands[0].Filters = []C1G2Filter{{
		Mask: C1G2TagInventoryMask{
			MemBank: epc.BankEPC,
			Pointer: epc.EPCWordOffset,
			Mask:    target,
		},
	}}
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableROSpec(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := conn.StartROSpec(ctx, 2); err != nil {
		t.Fatal(err)
	}
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) == 0 {
		t.Fatal("no reports for selective reading")
	}
	for _, r := range reports {
		if r.EPC != target {
			t.Fatalf("selective reading leaked tag %s", r.EPC)
		}
	}
}

func TestImmediateStartTrigger(t *testing.T) {
	conn, _, _ := startTestServer(t, 3, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spec := basicROSpec(3, 200)
	spec.Boundary.StartTrigger = StartTriggerImmediate
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// Enable alone must start it.
	if err := conn.EnableROSpec(ctx, 3); err != nil {
		t.Fatal(err)
	}
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) == 0 {
		t.Fatal("immediate trigger did not start inventory")
	}
}

func TestROSpecLifecycleErrors(t *testing.T) {
	conn, _, _ := startTestServer(t, 4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Start before add.
	if err := conn.StartROSpec(ctx, 9); err == nil {
		t.Fatal("starting an unknown ROSpec must fail")
	}
	// Enable unknown.
	if err := conn.EnableROSpec(ctx, 9); err == nil {
		t.Fatal("enabling an unknown ROSpec must fail")
	}
	spec := basicROSpec(9, 100)
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// Duplicate add.
	if err := conn.AddROSpec(ctx, spec); err == nil {
		t.Fatal("duplicate ADD_ROSPEC must fail")
	}
	// Start while disabled.
	if err := conn.StartROSpec(ctx, 9); err == nil {
		t.Fatal("starting a disabled ROSpec must fail")
	}
	// Delete clears it; re-add succeeds.
	if err := conn.DeleteROSpec(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// DeleteROSpec(0) wipes everything.
	if err := conn.DeleteROSpec(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableROSpec(ctx, 9); err == nil {
		t.Fatal("ROSpec must be gone after delete-all")
	}
}

func TestStopROSpecHaltsReports(t *testing.T) {
	conn, _, _ := startTestServer(t, 5, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spec := basicROSpec(4, 60_000) // long-running
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableROSpec(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if err := conn.StartROSpec(ctx, 4); err != nil {
		t.Fatal(err)
	}
	// Let it produce something, then stop.
	collectReports(conn, 50*time.Millisecond, 500*time.Millisecond)
	if err := conn.StopROSpec(ctx, 4); err != nil {
		t.Fatal(err)
	}
	// Drain anything in flight, then confirm silence.
	collectReports(conn, 100*time.Millisecond, 500*time.Millisecond)
	after := collectReports(conn, 150*time.Millisecond, 300*time.Millisecond)
	if len(after) != 0 {
		t.Fatalf("reports continued after STOP_ROSPEC: %d", len(after))
	}
}

func TestKeepaliveAutoAck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	eng := reader.New(reader.DefaultConfig(), scn)
	srv := NewServer(eng, ServerConfig{KeepaliveEvery: 30 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Survive several keepalive cycles: the connection stays healthy only
	// if the client acks (a real reader would disconnect otherwise; here we
	// just verify no error surfaces and requests still work).
	time.Sleep(150 * time.Millisecond)
	if err := conn.AddROSpec(ctx, basicROSpec(1, 10)); err != nil {
		t.Fatalf("connection unhealthy after keepalives: %v", err)
	}
}

func TestCloseConnection(t *testing.T) {
	conn, _, _ := startTestServer(t, 7, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := conn.CloseConnection(ctx); err != nil {
		t.Fatal(err)
	}
	if !conn.WaitClosed(time.Second) {
		t.Fatal("connection must close after CLOSE_CONNECTION")
	}
	// Post-close operations fail cleanly.
	if err := conn.AddROSpec(ctx, basicROSpec(8, 10)); err == nil {
		t.Fatal("operations on a closed connection must fail")
	}
}

func TestUnsupportedMessage(t *testing.T) {
	conn, _, _ := startTestServer(t, 8, 2)
	// Hand-roll an unsupported message type and check the server answers
	// with ERROR_MESSAGE rather than dying.
	raw := Message{Type: MessageType(999), ID: 1234}
	if err := conn.send(raw); err != nil {
		t.Fatal(err)
	}
	// The connection must still be usable.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := conn.AddROSpec(ctx, basicROSpec(5, 10)); err != nil {
		t.Fatalf("connection broken after unsupported message: %v", err)
	}
}

func TestVirtualTimestampsAdvance(t *testing.T) {
	conn, srv, _ := startTestServer(t, 9, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := conn.AddROSpec(ctx, basicROSpec(1, 400)); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 1)
	conn.StartROSpec(ctx, 1)
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) < 2 {
		t.Fatalf("want several reports, got %d", len(reports))
	}
	var minTS, maxTS uint64
	for i, r := range reports {
		if i == 0 || r.FirstSeenUTC < minTS {
			minTS = r.FirstSeenUTC
		}
		if r.FirstSeenUTC > maxTS {
			maxTS = r.FirstSeenUTC
		}
	}
	span := time.Duration(maxTS-minTS) * time.Microsecond
	if span <= 0 || span > time.Second {
		t.Fatalf("virtual span = %v, want within the 400 ms spec duration", span)
	}
	if srv.Engine().Now() < 300*time.Millisecond {
		t.Fatalf("engine clock advanced only %v", srv.Engine().Now())
	}
}

func TestGetCapabilitiesOverTCP(t *testing.T) {
	conn, _, _ := startTestServer(t, 20, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	caps, err := conn.GetCapabilities(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if caps.MaxAntennas != 1 {
		t.Fatalf("antennas = %d", caps.MaxAntennas)
	}
	if caps.ManufacturerPEN != ImpinjPEN || !caps.SupportsPhaseReporting {
		t.Fatalf("capabilities: %+v", caps)
	}
	if caps.MaxSelectFiltersPerQuery < 1 {
		t.Fatal("filter capability missing")
	}
}

func TestROSpecEndEventDelivered(t *testing.T) {
	conn, _, _ := startTestServer(t, 21, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spec := basicROSpec(6, 100) // ends itself after 100 virtual ms
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 6)
	conn.StartROSpec(ctx, 6)
	var started, ended bool
	deadline := time.After(3 * time.Second)
	for !ended {
		select {
		case ev, ok := <-conn.Events():
			if !ok {
				t.Fatal("event stream died")
			}
			if ev.ROSpec == nil || ev.ROSpec.ROSpecID != 6 {
				continue
			}
			switch ev.ROSpec.Type {
			case ROSpecStarted:
				started = true
			case ROSpecEnded:
				ended = true
			}
		case <-conn.Reports():
			// drain
		case <-deadline:
			t.Fatal("no ROSpec end event within 3 s")
		}
	}
	if !started {
		t.Fatal("start event missing")
	}
}

func TestMultiFilterIntersectionOverTCP(t *testing.T) {
	// Two filters in one inventory command intersect: only tags matching
	// BOTH windows are read.
	conn, srv, codes := startTestServer(t, 22, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	target := codes[5]
	maskA, err := target.Slice(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	maskB, err := target.Slice(40, 16)
	if err != nil {
		t.Fatal(err)
	}
	spec := basicROSpec(7, 300)
	spec.AISpecs[0].Inventories[0].Commands[0].Filters = []C1G2Filter{
		{Mask: C1G2TagInventoryMask{MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset + 0, Mask: maskA}},
		{Mask: C1G2TagInventoryMask{MemBank: epc.BankEPC, Pointer: epc.EPCWordOffset + 40, Mask: maskB}},
	}
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 7)
	conn.StartROSpec(ctx, 7)
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) == 0 {
		t.Fatal("intersection read nothing")
	}
	for _, r := range reports {
		if !r.EPC.MatchBits(0, maskA) || !r.EPC.MatchBits(40, maskB) {
			t.Fatalf("tag %s fails the intersection", r.EPC)
		}
	}
	_ = srv
}

func TestAccessSpecRoundTrip(t *testing.T) {
	mask, _ := epc.NewBits([]byte{0x30}, 8)
	spec := AccessSpec{
		ID:       5,
		Antenna:  2,
		ROSpecID: 7,
		Target:   TargetTag{Bank: epc.BankEPC, Pointer: 32, Mask: mask},
		Ops: []OpSpec{
			{OpSpecID: 1, Bank: epc.BankTID, WordPtr: 0, WordCount: 2},
			{OpSpecID: 2, Write: true, Bank: epc.BankUser, WordPtr: 1, Data: []uint16{0xAA55, 0x1234}},
		},
	}
	got, err := DecodeAddAccessSpec(NewAddAccessSpec(1, spec))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 5 || got.Antenna != 2 || got.ROSpecID != 7 {
		t.Fatalf("header: %+v", got)
	}
	if got.Target.Bank != epc.BankEPC || got.Target.Pointer != 32 || got.Target.Mask != mask {
		t.Fatalf("target: %+v", got.Target)
	}
	if len(got.Ops) != 2 {
		t.Fatalf("ops: %d", len(got.Ops))
	}
	if got.Ops[0].Write || got.Ops[0].WordCount != 2 || got.Ops[0].Bank != epc.BankTID {
		t.Fatalf("read op: %+v", got.Ops[0])
	}
	w := got.Ops[1]
	if !w.Write || w.WordPtr != 1 || len(w.Data) != 2 || w.Data[0] != 0xAA55 {
		t.Fatalf("write op: %+v", w)
	}
	if _, err := DecodeAddAccessSpec(Message{Type: MsgAddAccessSpec}); err == nil {
		t.Fatal("empty message must error")
	}
}

func TestOpResultsInTagReport(t *testing.T) {
	tr := TagReportData{EPC: epc.MustParse("30f4ab12cd0045e100000001"), AntennaID: 1}
	tr.OpResults = []OpResult{
		{OpSpecID: 1, Data: []uint16{0xE280, 0x1160}},
		{OpSpecID: 2, Write: true, WordsWritten: 2},
		{OpSpecID: 3, Result: 1},
	}
	got, err := DecodeROAccessReport(NewROAccessReport(1, []TagReportData{tr}))
	if err != nil {
		t.Fatal(err)
	}
	ops := got[0].OpResults
	if len(ops) != 3 {
		t.Fatalf("op results: %d", len(ops))
	}
	if !ops[0].OK() || ops[0].Data[0] != 0xE280 {
		t.Fatalf("read result: %+v", ops[0])
	}
	if !ops[1].Write || ops[1].WordsWritten != 2 || !ops[1].OK() {
		t.Fatalf("write result: %+v", ops[1])
	}
	if ops[2].OK() {
		t.Fatal("failed op must not report OK")
	}
}

func TestAccessSpecOverTCP(t *testing.T) {
	conn, srv, codes := startTestServer(t, 30, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Access: read 2 TID words and write a word into User memory, for
	// every tag the inventory singulates.
	access := AccessSpec{
		ID: 1,
		Ops: []OpSpec{
			{OpSpecID: 11, Bank: epc.BankTID, WordPtr: 0, WordCount: 2},
			{OpSpecID: 12, Write: true, Bank: epc.BankUser, WordPtr: 0, Data: []uint16{0xBEEF}},
		},
	}
	if err := conn.AddAccessSpec(ctx, access); err != nil {
		t.Fatal(err)
	}
	if err := conn.EnableAccessSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := conn.AddROSpec(ctx, basicROSpec(1, 200)); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 1)
	conn.StartROSpec(ctx, 1)
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	seenOps := 0
	for _, r := range reports {
		if len(r.OpResults) == 0 {
			continue
		}
		seenOps++
		if len(r.OpResults) != 2 {
			t.Fatalf("op results: %+v", r.OpResults)
		}
		rd := r.OpResults[0]
		if !rd.OK() || rd.OpSpecID != 11 || len(rd.Data) != 2 || rd.Data[0]>>8 != 0xE2 {
			t.Fatalf("TID read over the wire: %+v", rd)
		}
		wr := r.OpResults[1]
		if !wr.OK() || wr.OpSpecID != 12 || !wr.Write || wr.WordsWritten != 1 {
			t.Fatalf("write over the wire: %+v", wr)
		}
	}
	if seenOps == 0 {
		t.Fatal("no reports carried op results")
	}
	// The write really landed in the simulated tags.
	for _, c := range codes {
		st := srv.Engine().Scene().FindTag(c)
		words, err := st.Memory.ReadWords(epc.BankUser, 0, 1)
		if err != nil || words[0] != 0xBEEF {
			t.Fatalf("tag %s user bank: %04x %v", c, words, err)
		}
	}
	// Disable stops execution.
	if err := conn.DisableAccessSpec(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := conn.DeleteAccessSpec(ctx, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAccessSpecTargetFilterOverTCP(t *testing.T) {
	conn, srv, codes := startTestServer(t, 31, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	target := codes[2]
	mask, err := target.Slice(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	access := AccessSpec{
		ID:     2,
		Target: TargetTag{Bank: epc.BankEPC, Pointer: epc.EPCWordOffset, Mask: mask},
		Ops: []OpSpec{
			{OpSpecID: 21, Write: true, Bank: epc.BankUser, WordPtr: 0, Data: []uint16{0x5151}},
		},
	}
	if err := conn.AddAccessSpec(ctx, access); err != nil {
		t.Fatal(err)
	}
	conn.EnableAccessSpec(ctx, 2)
	if err := conn.AddROSpec(ctx, basicROSpec(2, 200)); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 2)
	conn.StartROSpec(ctx, 2)
	collectReports(conn, 300*time.Millisecond, 3*time.Second)

	for _, c := range codes {
		st := srv.Engine().Scene().FindTag(c)
		words, _ := st.Memory.ReadWords(epc.BankUser, 0, 1)
		wrote := len(words) == 1 && words[0] == 0x5151
		want := c.MatchBits(0, mask)
		if wrote != want {
			t.Fatalf("tag %s written=%v want=%v", c, wrote, want)
		}
	}
}

func TestAccessSpecLifecycleErrors(t *testing.T) {
	conn, _, _ := startTestServer(t, 32, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := conn.EnableAccessSpec(ctx, 9); err == nil {
		t.Fatal("enabling unknown AccessSpec must fail")
	}
	spec := AccessSpec{ID: 9, Ops: []OpSpec{{OpSpecID: 1, Bank: epc.BankTID, WordCount: 1}}}
	if err := conn.AddAccessSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := conn.AddAccessSpec(ctx, spec); err == nil {
		t.Fatal("duplicate AccessSpec must fail")
	}
	if err := conn.DeleteAccessSpec(ctx, 9); err != nil {
		t.Fatal(err)
	}
	if err := conn.AddAccessSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
}

func TestProxyForwardsAndLogs(t *testing.T) {
	// reader emulator ← proxy ← client: the full chain must work and the
	// proxy must observe decoded traffic in both directions.
	rng := rand.New(rand.NewSource(40))
	scn := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, _ := epc.RandomPopulation(rng, 3, 96)
	for i, c := range codes {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.5+float64(i)*0.3, 0.5, 0)})
	}
	srv := NewServer(reader.New(reader.DefaultConfig(), scn), ServerConfig{})
	upstreamAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	seen := map[string]int{}
	proxy := NewProxy(upstreamAddr.String(), func(dir string, m Message) {
		mu.Lock()
		seen[dir+" "+m.Type.Name()]++
		mu.Unlock()
	})
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, proxyAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.AddROSpec(ctx, basicROSpec(1, 150)); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 1)
	conn.StartROSpec(ctx, 1)
	reports := collectReports(conn, 300*time.Millisecond, 3*time.Second)
	if len(reports) == 0 {
		t.Fatal("no reports through the proxy")
	}

	mu.Lock()
	defer mu.Unlock()
	for _, want := range []string{
		"→reader ADD_ROSPEC",
		"←reader ADD_ROSPEC_RESPONSE",
		"←reader RO_ACCESS_REPORT",
		"←reader READER_EVENT_NOTIFICATION",
	} {
		if seen[want] == 0 {
			t.Fatalf("proxy never logged %q (saw %v)", want, seen)
		}
	}
}

func TestMessageSummaries(t *testing.T) {
	tr := TagReportData{EPC: epc.MustParse("30f4ab12cd0045e100000001"), AntennaID: 1, PeakRSSIdBm: -60}
	tr.SetPhaseRadians(1.0)
	cases := []Message{
		NewROAccessReport(1, []TagReportData{tr, tr, tr, tr, tr}),
		NewAddROSpec(2, makeROSpec()),
		NewROSpecOp(MsgStartROSpec, 3, 42),
		NewStatusResponse(MsgAddROSpecResponse, 4, LLRPStatus{Code: StatusSuccess}),
		NewStatusResponse(MsgAddROSpecResponse, 5, LLRPStatus{Code: StatusParamError, Description: "bad"}),
		NewKeepalive(6),
		NewROSpecEventNotification(7, UTCTimestamp{}, ROSpecEvent{Type: ROSpecEnded, ROSpecID: 9}),
		NewAddAccessSpec(8, AccessSpec{ID: 1, Ops: []OpSpec{{OpSpecID: 1, WordCount: 1}}}),
	}
	for _, m := range cases {
		s := m.Summarize()
		if s == "" {
			t.Fatalf("empty summary for %s", m.Type.Name())
		}
	}
	if MessageType(999).Name() != "MESSAGE_TYPE_999" {
		t.Fatal("unknown message name")
	}
	// The big report notes the overflow.
	if s := cases[0].Summarize(); !strings.Contains(s, "…+2") {
		t.Fatalf("truncation marker missing: %s", s)
	}
	if !strings.Contains(cases[6].Summarize(), "ended") {
		t.Fatal("rospec event summary")
	}
}

func TestROReportSpecRoundTrip(t *testing.T) {
	spec := makeROSpec()
	spec.Report = &ROReportSpec{Trigger: ReportEveryN, N: 32}
	got, err := DecodeAddROSpec(NewAddROSpec(1, spec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Report == nil || got.Report.Trigger != ReportEveryN || got.Report.N != 32 {
		t.Fatalf("report spec: %+v", got.Report)
	}
	// Absent by default.
	plain, err := DecodeAddROSpec(NewAddROSpec(2, makeROSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report != nil {
		t.Fatal("no report spec expected")
	}
}

func TestReportBatchingOverTCP(t *testing.T) {
	conn, _, _ := startTestServer(t, 41, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spec := basicROSpec(1, 400)
	spec.Report = &ROReportSpec{Trigger: ReportEveryN, N: 24}
	if err := conn.AddROSpec(ctx, spec); err != nil {
		t.Fatal(err)
	}
	conn.EnableROSpec(ctx, 1)
	conn.StartROSpec(ctx, 1)

	var batches []int
	deadline := time.After(3 * time.Second)
collect:
	for {
		select {
		case batch, ok := <-conn.Reports():
			if !ok {
				break collect
			}
			batches = append(batches, len(batch))
		case ev := <-conn.Events():
			if ev.ROSpec != nil && ev.ROSpec.Type == ROSpecEnded {
				// Drain everything in flight, then stop.
				for {
					select {
					case batch := <-conn.Reports():
						batches = append(batches, len(batch))
						continue
					case <-time.After(150 * time.Millisecond):
					}
					break
				}
				break collect
			}
		case <-deadline:
			break collect
		}
	}
	if len(batches) < 2 {
		t.Fatalf("batches = %v", batches)
	}
	// All but the final flush must carry at least N reports (6 tags/round
	// → 4 rounds per batch).
	for _, n := range batches[:len(batches)-1] {
		if n < 24 {
			t.Fatalf("mid-stream batch of %d < N=24 (%v)", n, batches)
		}
	}
}

func TestSetKeepaliveOverTCP(t *testing.T) {
	conn, _, _ := startTestServer(t, 42, 2) // server default: no keepalives
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// No keepalives yet.
	time.Sleep(80 * time.Millisecond)
	// Enable 25 ms keepalives; the connection must keep auto-acking and
	// stay healthy through several periods.
	if err := conn.SetKeepalive(ctx, 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := conn.AddROSpec(ctx, basicROSpec(1, 10)); err != nil {
		t.Fatalf("connection unhealthy after keepalives: %v", err)
	}
	// Disable again.
	if err := conn.SetKeepalive(ctx, 0); err != nil {
		t.Fatal(err)
	}
}

func TestKeepaliveSpecRoundTrip(t *testing.T) {
	m := NewSetReaderConfig(1, &KeepaliveSpec{Periodic: true, Period: 1500 * time.Millisecond})
	ka, err := DecodeSetReaderConfig(m)
	if err != nil {
		t.Fatal(err)
	}
	if ka == nil || !ka.Periodic || ka.Period != 1500*time.Millisecond {
		t.Fatalf("round trip: %+v", ka)
	}
	none, err := DecodeSetReaderConfig(NewSetReaderConfig(2, nil))
	if err != nil || none != nil {
		t.Fatalf("absent spec: %+v %v", none, err)
	}
}

func TestSecondClientRefused(t *testing.T) {
	conn, srv, _ := startTestServer(t, 43, 2)
	_ = conn // first client holds the reader
	addr := srv.lis.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := Dial(ctx, addr); err == nil {
		t.Fatal("second controlling client must be refused")
	}
	// After the first client leaves, a new one succeeds.
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
		c2, err := Dial(ctx2, addr)
		cancel2()
		if err == nil {
			c2.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconnect after release failed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDialFailures(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// Nothing listening.
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("dial to a dead port must fail")
	}
	// A listener that never sends the connection event: Dial must respect
	// the context deadline.
	lis, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		c, err := lis.Accept()
		if err == nil {
			defer c.Close()
			time.Sleep(2 * time.Second)
		}
	}()
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel2()
	if _, err := Dial(shortCtx, lis.Addr().String()); err == nil {
		t.Fatal("dial without a connection event must time out")
	}
}

func TestProxyUpstreamUnreachable(t *testing.T) {
	proxy := NewProxy("127.0.0.1:1", nil) // dead upstream
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := Dial(ctx, addr.String()); err == nil {
		t.Fatal("proxy with dead upstream must not complete the LLRP handshake")
	}
}

func TestWaitClosedTimesOut(t *testing.T) {
	conn, _, _ := startTestServer(t, 44, 1)
	if conn.WaitClosed(50 * time.Millisecond) {
		t.Fatal("healthy connection must not report closed")
	}
	conn.Close()
	if !conn.WaitClosed(time.Second) {
		t.Fatal("closed connection must report closed")
	}
}

// netListen opens an ephemeral TCP listener for handshake tests.
func netListen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}
