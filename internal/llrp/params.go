package llrp

import (
	"fmt"
	"time"

	"tagwatch/internal/epc"
)

// ParamType identifies an LLRP parameter.
type ParamType uint16

// TLV parameter types (LLRP 1.0.1 §17) used by this implementation.
const (
	ParamUTCTimestamp                             ParamType = 128
	ParamGeneralDeviceCapabilities                ParamType = 137
	ParamROSpec                                   ParamType = 177
	ParamROBoundarySpec                           ParamType = 178
	ParamROSpecStartTrigger                       ParamType = 179
	ParamROSpecStopTrigger                        ParamType = 182
	ParamAISpec                                   ParamType = 183
	ParamAISpecStopTrigger                        ParamType = 184
	ParamInventoryParameterSpec                   ParamType = 186
	ParamROReportSpec                             ParamType = 237
	ParamTagReportContentSelector                 ParamType = 238
	ParamTagReportData                            ParamType = 240
	ParamEPCData                                  ParamType = 241
	ParamReaderEventNotificationData              ParamType = 246
	ParamROSpecEvent                              ParamType = 249
	ParamConnectionAttemptEvent                   ParamType = 256
	ParamLLRPStatus                               ParamType = 287
	ParamKeepaliveSpec                            ParamType = 220
	ParamC1G2LLRPCapabilities                     ParamType = 327
	ParamC1G2InventoryCommand                     ParamType = 330
	ParamC1G2Filter                               ParamType = 331
	ParamC1G2TagInventoryMask                     ParamType = 332
	ParamC1G2TagInventoryStateUnawareFilterAction ParamType = 334
	ParamC1G2RFControl                            ParamType = 335
	ParamC1G2SingulationControl                   ParamType = 336
	ParamCustom                                   ParamType = 1023
)

// TV parameter types (1-byte header).
const (
	ParamAntennaID             ParamType = 1
	ParamFirstSeenTimestampUTC ParamType = 2
	ParamLastSeenTimestampUTC  ParamType = 4
	ParamPeakRSSI              ParamType = 6
	ParamChannelIndex          ParamType = 7
	ParamTagSeenCount          ParamType = 8
	ParamROSpecID              ParamType = 9
	ParamEPC96                 ParamType = 13
)

// tvSizes maps TV parameter types to their fixed value sizes in bytes.
var tvSizes = map[ParamType]int{
	ParamAntennaID:             2,
	ParamFirstSeenTimestampUTC: 8,
	ParamLastSeenTimestampUTC:  8,
	ParamPeakRSSI:              1,
	ParamChannelIndex:          2,
	ParamTagSeenCount:          2,
	ParamROSpecID:              4,
	ParamEPC96:                 12,
}

// ImpinJ custom-parameter identity. The ImpinJ PEN (private enterprise
// number) is 25882; the RF phase subtype follows the Octane LTK extension
// that reports the backscatter phase angle as a 16-bit fraction of 2π.
const (
	ImpinjPEN                 uint32 = 25882
	ImpinjSubtypeRFPhaseAngle uint32 = 1005
)

// StatusCode is an LLRPStatus code.
type StatusCode uint16

// Status codes (subset).
const (
	StatusSuccess     StatusCode = 0
	StatusParamError  StatusCode = 200
	StatusFieldError  StatusCode = 300
	StatusDeviceError StatusCode = 401
	StatusUnsupported StatusCode = 409
)

// LLRPStatus reports the outcome of a request.
type LLRPStatus struct {
	Code        StatusCode
	Description string
}

// OK reports whether the status is success.
func (s LLRPStatus) OK() bool { return s.Code == StatusSuccess }

// Error makes a failed status usable as an error value.
func (s LLRPStatus) Error() string {
	return fmt.Sprintf("llrp: status %d: %s", s.Code, s.Description)
}

func (s LLRPStatus) encode(w *Writer) {
	off := w.tlv(ParamLLRPStatus)
	w.U16(uint16(s.Code))
	desc := []byte(s.Description)
	w.U16(uint16(len(desc)))
	w.Raw(desc)
	w.closeTLV(off)
}

func decodeLLRPStatus(body []byte) (LLRPStatus, error) {
	r := NewReader(body)
	var s LLRPStatus
	s.Code = StatusCode(r.U16())
	n := int(r.U16())
	s.Description = string(r.Raw(n))
	return s, r.Err()
}

// UTCTimestamp carries microseconds since the Unix epoch.
type UTCTimestamp struct {
	Microseconds uint64
}

// Time converts the timestamp to a time.Time.
func (u UTCTimestamp) Time() time.Time {
	return time.UnixMicro(int64(u.Microseconds)).UTC()
}

func (u UTCTimestamp) encode(w *Writer) {
	off := w.tlv(ParamUTCTimestamp)
	w.U64(u.Microseconds)
	w.closeTLV(off)
}

// ROSpecEventType distinguishes start from end notifications.
type ROSpecEventType uint8

// ROSpec event types.
const (
	ROSpecStarted ROSpecEventType = 0
	ROSpecEnded   ROSpecEventType = 1
)

// ROSpecEvent notifies the client that an ROSpec started or ended — the
// end event is how a client learns a duration-triggered ROSpec finished
// without polling.
type ROSpecEvent struct {
	Type       ROSpecEventType
	ROSpecID   uint32
	Preempting uint32
}

func (e ROSpecEvent) encode(w *Writer) {
	off := w.tlv(ParamROSpecEvent)
	w.U8(uint8(e.Type))
	w.U32(e.ROSpecID)
	w.U32(e.Preempting)
	w.closeTLV(off)
}

func decodeROSpecEvent(body []byte) (ROSpecEvent, error) {
	r := NewReader(body)
	var e ROSpecEvent
	e.Type = ROSpecEventType(r.U8())
	e.ROSpecID = r.U32()
	e.Preempting = r.U32()
	return e, r.Err()
}

// Capabilities summarises what a reader reports in response to
// GET_READER_CAPABILITIES: the subset Tagwatch needs.
type Capabilities struct {
	// MaxAntennas is the number of antenna ports.
	MaxAntennas uint16
	// ManufacturerPEN is the device manufacturer's private enterprise
	// number (ImpinJ: 25882).
	ManufacturerPEN uint32
	// Model is the device model number.
	Model uint32
	// MaxSelectFiltersPerQuery bounds C1G2Filters per inventory command.
	MaxSelectFiltersPerQuery uint16
	// SupportsPhaseReporting reports the ImpinJ RF-phase extension.
	SupportsPhaseReporting bool
}

func (c Capabilities) encode(w *Writer) {
	off := w.tlv(ParamGeneralDeviceCapabilities)
	w.U16(c.MaxAntennas)
	flags := uint16(0)
	if c.SupportsPhaseReporting {
		flags |= 1 << 15
	}
	w.U16(flags)
	w.U32(c.ManufacturerPEN)
	w.U32(c.Model)
	w.closeTLV(off)
	co := w.tlv(ParamC1G2LLRPCapabilities)
	w.U8(0)
	w.U16(c.MaxSelectFiltersPerQuery)
	w.closeTLV(co)
}

// decodeCapabilities walks the response body's parameters.
func decodeCapabilities(body []byte) (Capabilities, error) {
	var c Capabilities
	r := NewReader(body)
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		pr := NewReader(h.body)
		switch h.typ {
		case ParamGeneralDeviceCapabilities:
			c.MaxAntennas = pr.U16()
			flags := pr.U16()
			c.SupportsPhaseReporting = flags&(1<<15) != 0
			c.ManufacturerPEN = pr.U32()
			c.Model = pr.U32()
		case ParamC1G2LLRPCapabilities:
			pr.U8()
			c.MaxSelectFiltersPerQuery = pr.U16()
		}
		if err := pr.Err(); err != nil {
			return c, err
		}
	}
	return c, r.Err()
}

// ROSpecState is the lifecycle state of an ROSpec on the reader.
type ROSpecState uint8

// ROSpec states.
const (
	ROSpecDisabled ROSpecState = 0
	ROSpecInactive ROSpecState = 1
	ROSpecActive   ROSpecState = 2
)

// ROSpecStartTriggerType selects how an ROSpec starts.
type ROSpecStartTriggerType uint8

// Start trigger types.
const (
	StartTriggerNull      ROSpecStartTriggerType = 0
	StartTriggerImmediate ROSpecStartTriggerType = 1
	StartTriggerPeriodic  ROSpecStartTriggerType = 2
)

// ROSpecStopTriggerType selects how an ROSpec stops.
type ROSpecStopTriggerType uint8

// Stop trigger types.
const (
	StopTriggerNull     ROSpecStopTriggerType = 0
	StopTriggerDuration ROSpecStopTriggerType = 1
)

// ROBoundarySpec bounds an ROSpec's execution.
type ROBoundarySpec struct {
	StartTrigger ROSpecStartTriggerType
	StopTrigger  ROSpecStopTriggerType
	DurationMS   uint32 // for StopTriggerDuration
}

func (b ROBoundarySpec) encode(w *Writer) {
	off := w.tlv(ParamROBoundarySpec)
	so := w.tlv(ParamROSpecStartTrigger)
	w.U8(uint8(b.StartTrigger))
	w.closeTLV(so)
	eo := w.tlv(ParamROSpecStopTrigger)
	w.U8(uint8(b.StopTrigger))
	w.U32(b.DurationMS)
	w.closeTLV(eo)
	w.closeTLV(off)
}

func decodeROBoundarySpec(body []byte) (ROBoundarySpec, error) {
	r := NewReader(body)
	var b ROBoundarySpec
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		pr := NewReader(h.body)
		switch h.typ {
		case ParamROSpecStartTrigger:
			b.StartTrigger = ROSpecStartTriggerType(pr.U8())
		case ParamROSpecStopTrigger:
			b.StopTrigger = ROSpecStopTriggerType(pr.U8())
			b.DurationMS = pr.U32()
		}
		if err := pr.Err(); err != nil {
			return b, err
		}
	}
	return b, r.Err()
}

// AISpecStopTriggerType selects how an AISpec stops.
type AISpecStopTriggerType uint8

// AISpec stop trigger types.
const (
	AIStopNull     AISpecStopTriggerType = 0
	AIStopDuration AISpecStopTriggerType = 1
)

// AISpecStopTrigger bounds one AISpec.
type AISpecStopTrigger struct {
	Type       AISpecStopTriggerType
	DurationMS uint32
}

// C1G2TagInventoryMask is the (MB, Pointer, Mask) triple of a Select — the
// paper's bitmask S(m, p, l).
type C1G2TagInventoryMask struct {
	MemBank epc.MemoryBank
	Pointer uint16
	Mask    epc.EPC
}

func (m C1G2TagInventoryMask) encode(w *Writer) {
	off := w.tlv(ParamC1G2TagInventoryMask)
	w.U8(uint8(m.MemBank) << 6)
	w.U16(m.Pointer)
	w.U16(uint16(m.Mask.Bits()))
	w.Raw(m.Mask.Bytes())
	w.closeTLV(off)
}

func decodeC1G2TagInventoryMask(body []byte) (C1G2TagInventoryMask, error) {
	r := NewReader(body)
	var m C1G2TagInventoryMask
	m.MemBank = epc.MemoryBank(r.U8() >> 6)
	m.Pointer = r.U16()
	bits := int(r.U16())
	raw := r.Raw((bits + 7) / 8)
	if err := r.Err(); err != nil {
		return m, err
	}
	mask, err := epc.NewBits(raw, bits)
	if err != nil {
		return m, fmt.Errorf("llrp: inventory mask: %w", err)
	}
	m.Mask = mask
	return m, nil
}

// C1G2Filter is one LLRP filter — it compiles to one Gen2 Select command.
type C1G2Filter struct {
	Mask C1G2TagInventoryMask
	// UnawareAction is the state-unaware filter action (0 = select
	// matching / unselect non-matching), the only action Tagwatch needs.
	UnawareAction uint8
}

func (f C1G2Filter) encode(w *Writer) {
	off := w.tlv(ParamC1G2Filter)
	w.U8(1 << 6) // T: state-unaware
	f.Mask.encode(w)
	ao := w.tlv(ParamC1G2TagInventoryStateUnawareFilterAction)
	w.U8(f.UnawareAction)
	w.closeTLV(ao)
	w.closeTLV(off)
}

func decodeC1G2Filter(body []byte) (C1G2Filter, error) {
	r := NewReader(body)
	var f C1G2Filter
	r.U8() // T bit
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		switch h.typ {
		case ParamC1G2TagInventoryMask:
			m, err := decodeC1G2TagInventoryMask(h.body)
			if err != nil {
				return f, err
			}
			f.Mask = m
		case ParamC1G2TagInventoryStateUnawareFilterAction:
			f.UnawareAction = h.body[0]
		}
	}
	return f, r.Err()
}

// C1G2InventoryCommand wraps the filters and singulation parameters of one
// inventory.
type C1G2InventoryCommand struct {
	Filters []C1G2Filter
	// Session is carried in C1G2SingulationControl (we fold the session
	// field in directly for simplicity of the emulator).
	Session uint8
	// InitialQ rides in C1G2SingulationControl's slot field.
	InitialQ uint8
}

func (c C1G2InventoryCommand) encode(w *Writer) {
	off := w.tlv(ParamC1G2InventoryCommand)
	w.U8(0) // TagInventoryStateAware = false
	for _, f := range c.Filters {
		f.encode(w)
	}
	so := w.tlv(ParamC1G2SingulationControl)
	w.U8(c.Session << 6)
	w.U16(uint16(c.InitialQ)) // tag population hint repurposed as initial Q
	w.U32(0)                  // tag transit time
	w.closeTLV(so)
	w.closeTLV(off)
}

func decodeC1G2InventoryCommand(body []byte) (C1G2InventoryCommand, error) {
	r := NewReader(body)
	var c C1G2InventoryCommand
	r.U8()
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		switch h.typ {
		case ParamC1G2Filter:
			f, err := decodeC1G2Filter(h.body)
			if err != nil {
				return c, err
			}
			c.Filters = append(c.Filters, f)
		case ParamC1G2SingulationControl:
			pr := NewReader(h.body)
			c.Session = pr.U8() >> 6
			c.InitialQ = uint8(pr.U16())
			if err := pr.Err(); err != nil {
				return c, err
			}
		}
	}
	return c, r.Err()
}

// InventoryParameterSpec names one air-protocol inventory configuration.
type InventoryParameterSpec struct {
	ID       uint16
	Commands []C1G2InventoryCommand
}

func (s InventoryParameterSpec) encode(w *Writer) {
	off := w.tlv(ParamInventoryParameterSpec)
	w.U16(s.ID)
	w.U8(1) // protocol: EPCGlobal C1G2
	for _, c := range s.Commands {
		c.encode(w)
	}
	w.closeTLV(off)
}

func decodeInventoryParameterSpec(body []byte) (InventoryParameterSpec, error) {
	r := NewReader(body)
	var s InventoryParameterSpec
	s.ID = r.U16()
	r.U8() // protocol
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamC1G2InventoryCommand {
			c, err := decodeC1G2InventoryCommand(h.body)
			if err != nil {
				return s, err
			}
			s.Commands = append(s.Commands, c)
		}
	}
	return s, r.Err()
}

// AISpec is one antenna-inventory step of an ROSpec. Tagwatch configures
// "multiple bitmasks by adding multiple AISpecs" (§6): each AISpec carries
// one C1G2Filter and runs as its own inventory round.
type AISpec struct {
	AntennaIDs  []uint16 // 0 means "all antennas"
	StopTrigger AISpecStopTrigger
	Inventories []InventoryParameterSpec
}

func (a AISpec) encode(w *Writer) {
	off := w.tlv(ParamAISpec)
	w.U16(uint16(len(a.AntennaIDs)))
	for _, id := range a.AntennaIDs {
		w.U16(id)
	}
	so := w.tlv(ParamAISpecStopTrigger)
	w.U8(uint8(a.StopTrigger.Type))
	w.U32(a.StopTrigger.DurationMS)
	w.closeTLV(so)
	for _, inv := range a.Inventories {
		inv.encode(w)
	}
	w.closeTLV(off)
}

func decodeAISpec(body []byte) (AISpec, error) {
	r := NewReader(body)
	var a AISpec
	n := int(r.U16())
	for i := 0; i < n; i++ {
		a.AntennaIDs = append(a.AntennaIDs, r.U16())
	}
	if err := r.Err(); err != nil {
		return a, err
	}
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		switch h.typ {
		case ParamAISpecStopTrigger:
			pr := NewReader(h.body)
			a.StopTrigger.Type = AISpecStopTriggerType(pr.U8())
			a.StopTrigger.DurationMS = pr.U32()
			if err := pr.Err(); err != nil {
				return a, err
			}
		case ParamInventoryParameterSpec:
			s, err := decodeInventoryParameterSpec(h.body)
			if err != nil {
				return a, err
			}
			a.Inventories = append(a.Inventories, s)
		}
	}
	return a, r.Err()
}

// KeepaliveSpec configures the reader's periodic KEEPALIVE messages.
type KeepaliveSpec struct {
	// Periodic enables keepalives every Period; false disables them.
	Periodic bool
	Period   time.Duration
}

func (k KeepaliveSpec) encode(w *Writer) {
	off := w.tlv(ParamKeepaliveSpec)
	if k.Periodic {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(uint32(k.Period / time.Millisecond))
	w.closeTLV(off)
}

func decodeKeepaliveSpec(body []byte) (KeepaliveSpec, error) {
	r := NewReader(body)
	var k KeepaliveSpec
	k.Periodic = r.U8() == 1
	k.Period = time.Duration(r.U32()) * time.Millisecond
	return k, r.Err()
}

// ROReportTrigger selects when the reader flushes accumulated tag
// reports.
type ROReportTrigger uint8

// Report triggers.
const (
	// ReportNone keeps the reader's default (one report per inventory
	// round in this emulator).
	ReportNone ROReportTrigger = 0
	// ReportEveryN flushes whenever N tag reports have accumulated (and at
	// the end of the ROSpec).
	ReportEveryN ROReportTrigger = 1
)

// ROReportSpec controls report batching — LLRP's knob for trading report
// latency against message overhead.
type ROReportSpec struct {
	Trigger ROReportTrigger
	N       uint16
}

func (r ROReportSpec) encode(w *Writer) {
	off := w.tlv(ParamROReportSpec)
	w.U8(uint8(r.Trigger))
	w.U16(r.N)
	w.closeTLV(off)
}

// ROSpec is a complete reader operation: boundary triggers plus an ordered
// list of AISpecs the reader cycles through.
type ROSpec struct {
	ID       uint32
	Priority uint8
	State    ROSpecState
	Boundary ROBoundarySpec
	AISpecs  []AISpec
	// Report, when non-nil, overrides the reader's default report
	// batching.
	Report *ROReportSpec
}

func (s ROSpec) encode(w *Writer) {
	off := w.tlv(ParamROSpec)
	w.U32(s.ID)
	w.U8(s.Priority)
	w.U8(uint8(s.State))
	s.Boundary.encode(w)
	for _, a := range s.AISpecs {
		a.encode(w)
	}
	if s.Report != nil {
		s.Report.encode(w)
	}
	w.closeTLV(off)
}

func decodeROSpec(body []byte) (ROSpec, error) {
	r := NewReader(body)
	var s ROSpec
	s.ID = r.U32()
	s.Priority = r.U8()
	s.State = ROSpecState(r.U8())
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		switch h.typ {
		case ParamROBoundarySpec:
			b, err := decodeROBoundarySpec(h.body)
			if err != nil {
				return s, err
			}
			s.Boundary = b
		case ParamAISpec:
			a, err := decodeAISpec(h.body)
			if err != nil {
				return s, err
			}
			s.AISpecs = append(s.AISpecs, a)
		case ParamROReportSpec:
			pr := NewReader(h.body)
			rs := ROReportSpec{Trigger: ROReportTrigger(pr.U8()), N: pr.U16()}
			if err := pr.Err(); err != nil {
				return s, err
			}
			s.Report = &rs
		}
	}
	return s, r.Err()
}

// TagReportData is one tag observation inside an RO_ACCESS_REPORT. Fields
// mirror what the R420 reports with phase reporting enabled.
type TagReportData struct {
	EPC          epc.EPC
	ROSpecID     uint32
	AntennaID    uint16
	PeakRSSIdBm  int8
	ChannelIndex uint16
	FirstSeenUTC uint64 // microseconds
	TagSeenCount uint16
	HasPhase     bool
	PhaseAngle16 uint16 // ImpinJ: phase in units of 2π/4096 (we use /65536)
	// OpResults carries access-operation outcomes (AccessSpec execution).
	OpResults []OpResult
}

// PhaseRadians converts the 16-bit phase fraction to radians.
func (t TagReportData) PhaseRadians() float64 {
	return float64(t.PhaseAngle16) / 65536 * 2 * 3.141592653589793
}

// SetPhaseRadians stores a phase in radians as the 16-bit wire fraction.
func (t *TagReportData) SetPhaseRadians(rad float64) {
	const twoPi = 2 * 3.141592653589793
	frac := rad / twoPi
	frac -= float64(int(frac))
	if frac < 0 {
		frac++
	}
	t.HasPhase = true
	t.PhaseAngle16 = uint16(frac * 65536)
}

func (t TagReportData) encode(w *Writer) {
	off := w.tlv(ParamTagReportData)
	if t.EPC.Bits() == 96 {
		w.U8(0x80 | uint8(ParamEPC96))
		w.Raw(t.EPC.Bytes())
	} else {
		eo := w.tlv(ParamEPCData)
		w.U16(uint16(t.EPC.Bits()))
		w.Raw(t.EPC.Bytes())
		w.closeTLV(eo)
	}
	w.U8(0x80 | uint8(ParamROSpecID))
	w.U32(t.ROSpecID)
	w.U8(0x80 | uint8(ParamAntennaID))
	w.U16(t.AntennaID)
	w.U8(0x80 | uint8(ParamPeakRSSI))
	w.U8(uint8(t.PeakRSSIdBm))
	w.U8(0x80 | uint8(ParamChannelIndex))
	w.U16(t.ChannelIndex)
	w.U8(0x80 | uint8(ParamFirstSeenTimestampUTC))
	w.U64(t.FirstSeenUTC)
	w.U8(0x80 | uint8(ParamTagSeenCount))
	w.U16(t.TagSeenCount)
	if t.HasPhase {
		co := w.tlv(ParamCustom)
		w.U32(ImpinjPEN)
		w.U32(ImpinjSubtypeRFPhaseAngle)
		w.U16(t.PhaseAngle16)
		w.closeTLV(co)
	}
	for _, o := range t.OpResults {
		o.encode(w)
	}
	w.closeTLV(off)
}

func decodeTagReportData(body []byte) (TagReportData, error) {
	r := NewReader(body)
	var t TagReportData
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		pr := NewReader(h.body)
		switch h.typ {
		case ParamEPC96:
			t.EPC = epc.New(h.body)
		case ParamEPCData:
			bits := int(pr.U16())
			raw := pr.Raw((bits + 7) / 8)
			if err := pr.Err(); err != nil {
				return t, err
			}
			e, err := epc.NewBits(raw, bits)
			if err != nil {
				return t, fmt.Errorf("llrp: EPCData: %w", err)
			}
			t.EPC = e
		case ParamROSpecID:
			t.ROSpecID = pr.U32()
		case ParamAntennaID:
			t.AntennaID = pr.U16()
		case ParamPeakRSSI:
			t.PeakRSSIdBm = int8(pr.U8())
		case ParamChannelIndex:
			t.ChannelIndex = pr.U16()
		case ParamFirstSeenTimestampUTC:
			t.FirstSeenUTC = pr.U64()
		case ParamTagSeenCount:
			t.TagSeenCount = pr.U16()
		case ParamCustom:
			pen := pr.U32()
			sub := pr.U32()
			if pen == ImpinjPEN && sub == ImpinjSubtypeRFPhaseAngle {
				t.HasPhase = true
				t.PhaseAngle16 = pr.U16()
			}
		case ParamC1G2ReadOpSpecResult:
			var o OpResult
			o.Result = pr.U8()
			o.OpSpecID = pr.U16()
			n := int(pr.U16())
			for i := 0; i < n; i++ {
				o.Data = append(o.Data, pr.U16())
			}
			t.OpResults = append(t.OpResults, o)
		case ParamC1G2WriteOpSpecResult:
			var o OpResult
			o.Write = true
			o.Result = pr.U8()
			o.OpSpecID = pr.U16()
			o.WordsWritten = pr.U16()
			t.OpResults = append(t.OpResults, o)
		}
		if err := pr.Err(); err != nil {
			return t, err
		}
	}
	return t, r.Err()
}
