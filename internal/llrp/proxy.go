package llrp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a transparent LLRP man-in-the-middle for wire debugging: it
// accepts client connections, forwards every frame to the upstream reader
// and back, and emits a decoded one-line summary per frame — the
// equivalent of a protocol-aware tcpdump for LLRP. cmd/llrpsniff wraps it.
type Proxy struct {
	// Upstream is the real reader's address.
	Upstream string
	// Log receives one line per frame; defaults to discarding.
	Log func(direction string, m Message)
	// Wrap, when set, wraps each accepted client connection — the fault
	// injection point for the chaos package. Set before Listen.
	Wrap func(net.Conn) net.Conn

	lis    net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once

	// connMu/conns track every live socket (client and upstream sides)
	// so Close severs in-flight copy pairs instead of waiting for them
	// to die of natural causes — the same bug class as Server.Close.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewProxy builds a proxy toward the upstream reader.
func NewProxy(upstream string, logFn func(direction string, m Message)) *Proxy {
	return &Proxy{
		Upstream: upstream,
		Log:      logFn,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Listen binds addr and starts accepting clients.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: proxy listen %s: %w", addr, err)
	}
	p.lis = lis
	p.wg.Add(1)
	go p.acceptLoop()
	return lis.Addr(), nil
}

// Close stops the proxy, severs every live client↔upstream pair, and
// waits for all of its goroutines (accept loop, serve, and both pumps
// of every pair).
func (p *Proxy) Close() error {
	p.once.Do(func() { close(p.closed) })
	if p.lis != nil {
		p.lis.Close()
	}
	p.connMu.Lock()
	for nc := range p.conns {
		nc.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	return nil
}

// track registers a live socket for Close to sever; if the proxy is
// already closing, the socket is refused immediately.
func (p *Proxy) track(nc net.Conn) bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	select {
	case <-p.closed:
		nc.Close()
		return false
	default:
	}
	p.conns[nc] = struct{}{}
	return true
}

func (p *Proxy) untrack(nc net.Conn) {
	p.connMu.Lock()
	delete(p.conns, nc)
	p.connMu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		if p.Wrap != nil {
			client = p.Wrap(client)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(client)
		}()
	}
}

// serve bridges one client to a fresh upstream connection. Either pump
// exiting (or Close severing the tracked sockets) tears the whole pair
// down; serve returns only after both pumps have.
func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	upstream, err := net.DialTimeout("tcp", p.Upstream, 10*time.Second)
	if err != nil {
		return
	}
	defer upstream.Close()
	if !p.track(upstream) {
		return
	}
	defer p.untrack(upstream)

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(client, upstream, "→reader")
		// One direction died: sever both sockets so the other pump
		// unblocks instead of lingering on a half-open pair.
		client.Close()
		upstream.Close()
	}()
	go func() {
		defer pumps.Done()
		p.pump(upstream, client, "←reader")
		client.Close()
		upstream.Close()
	}()
	pumps.Wait()
}

// pump copies frames from src to dst, logging each.
func (p *Proxy) pump(src, dst net.Conn, direction string) {
	hdr := make([]byte, headerSize)
	for {
		// The pump relays at the pace of its peers by design: it blocks
		// until a frame arrives and until the other side accepts it.
		// Close() severs both sockets, which unblocks every pump.
		if _, err := io.ReadFull(src, hdr); err != nil { //tagwatch:allow-conndeadline relay paces to its peers; Close severs both sockets
			return
		}
		length := int(binary.BigEndian.Uint32(hdr[2:]))
		if length < headerSize || length > maxFrameLen {
			return
		}
		frame := make([]byte, length)
		copy(frame, hdr)
		if _, err := io.ReadFull(src, frame[headerSize:]); err != nil { //tagwatch:allow-conndeadline relay paces to its peers; Close severs both sockets
			return
		}
		if p.Log != nil {
			if m, _, err := DecodeFrame(frame); err == nil {
				p.Log(direction, m)
			}
		}
		if _, err := dst.Write(frame); err != nil { //tagwatch:allow-conndeadline relay paces to its peers; Close severs both sockets
			return
		}
	}
}
