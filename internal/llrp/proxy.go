package llrp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a transparent LLRP man-in-the-middle for wire debugging: it
// accepts client connections, forwards every frame to the upstream reader
// and back, and emits a decoded one-line summary per frame — the
// equivalent of a protocol-aware tcpdump for LLRP. cmd/llrpsniff wraps it.
type Proxy struct {
	// Upstream is the real reader's address.
	Upstream string
	// Log receives one line per frame; defaults to discarding.
	Log func(direction string, m Message)

	lis    net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewProxy builds a proxy toward the upstream reader.
func NewProxy(upstream string, logFn func(direction string, m Message)) *Proxy {
	return &Proxy{Upstream: upstream, Log: logFn, closed: make(chan struct{})}
}

// Listen binds addr and starts accepting clients.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: proxy listen %s: %w", addr, err)
	}
	p.lis = lis
	p.wg.Add(1)
	go p.acceptLoop()
	return lis.Addr(), nil
}

// Close stops the proxy and waits for its goroutines.
func (p *Proxy) Close() error {
	p.once.Do(func() { close(p.closed) })
	if p.lis != nil {
		p.lis.Close()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(client)
		}()
	}
}

// serve bridges one client to a fresh upstream connection.
func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	upstream, err := net.DialTimeout("tcp", p.Upstream, 10*time.Second)
	if err != nil {
		return
	}
	defer upstream.Close()

	done := make(chan struct{}, 2)
	go func() {
		p.pump(client, upstream, "→reader")
		done <- struct{}{}
	}()
	go func() {
		p.pump(upstream, client, "←reader")
		done <- struct{}{}
	}()
	select {
	case <-done:
	case <-p.closed:
	}
}

// pump copies frames from src to dst, logging each.
func (p *Proxy) pump(src, dst net.Conn, direction string) {
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(src, hdr); err != nil {
			return
		}
		length := int(binary.BigEndian.Uint32(hdr[2:]))
		if length < headerSize || length > 64<<20 {
			return
		}
		frame := make([]byte, length)
		copy(frame, hdr)
		if _, err := io.ReadFull(src, frame[headerSize:]); err != nil {
			return
		}
		if p.Log != nil {
			if m, _, err := DecodeFrame(frame); err == nil {
				p.Log(direction, m)
			}
		}
		if _, err := dst.Write(frame); err != nil {
			return
		}
	}
}
