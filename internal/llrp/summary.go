package llrp

import (
	"fmt"
	"strings"
)

// Name returns the LLRP name of a message type.
func (t MessageType) Name() string {
	switch t {
	case MsgGetReaderCapabilities:
		return "GET_READER_CAPABILITIES"
	case MsgGetReaderCapabilitiesResponse:
		return "GET_READER_CAPABILITIES_RESPONSE"
	case MsgSetReaderConfig:
		return "SET_READER_CONFIG"
	case MsgSetReaderConfigResponse:
		return "SET_READER_CONFIG_RESPONSE"
	case MsgCloseConnection:
		return "CLOSE_CONNECTION"
	case MsgCloseConnectionResponse:
		return "CLOSE_CONNECTION_RESPONSE"
	case MsgAddROSpec:
		return "ADD_ROSPEC"
	case MsgAddROSpecResponse:
		return "ADD_ROSPEC_RESPONSE"
	case MsgDeleteROSpec:
		return "DELETE_ROSPEC"
	case MsgDeleteROSpecResponse:
		return "DELETE_ROSPEC_RESPONSE"
	case MsgStartROSpec:
		return "START_ROSPEC"
	case MsgStartROSpecResponse:
		return "START_ROSPEC_RESPONSE"
	case MsgStopROSpec:
		return "STOP_ROSPEC"
	case MsgStopROSpecResponse:
		return "STOP_ROSPEC_RESPONSE"
	case MsgEnableROSpec:
		return "ENABLE_ROSPEC"
	case MsgEnableROSpecResponse:
		return "ENABLE_ROSPEC_RESPONSE"
	case MsgDisableROSpec:
		return "DISABLE_ROSPEC"
	case MsgDisableROSpecResponse:
		return "DISABLE_ROSPEC_RESPONSE"
	case MsgROAccessReport:
		return "RO_ACCESS_REPORT"
	case MsgKeepalive:
		return "KEEPALIVE"
	case MsgKeepaliveAck:
		return "KEEPALIVE_ACK"
	case MsgReaderEventNotification:
		return "READER_EVENT_NOTIFICATION"
	case MsgErrorMessage:
		return "ERROR_MESSAGE"
	case MsgAddAccessSpec:
		return "ADD_ACCESSSPEC"
	case MsgAddAccessSpecResponse:
		return "ADD_ACCESSSPEC_RESPONSE"
	case MsgDeleteAccessSpec:
		return "DELETE_ACCESSSPEC"
	case MsgDeleteAccessSpecResponse:
		return "DELETE_ACCESSSPEC_RESPONSE"
	case MsgEnableAccessSpec:
		return "ENABLE_ACCESSSPEC"
	case MsgEnableAccessSpecResponse:
		return "ENABLE_ACCESSSPEC_RESPONSE"
	case MsgDisableAccessSpec:
		return "DISABLE_ACCESSSPEC"
	case MsgDisableAccessSpecResponse:
		return "DISABLE_ACCESSSPEC_RESPONSE"
	default:
		return fmt.Sprintf("MESSAGE_TYPE_%d", uint16(t))
	}
}

// Summarize renders a one-line human-readable description of a message —
// what an LLRP wire sniffer prints per frame.
func (m Message) Summarize() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s id=%d", m.Type.Name(), m.ID)
	switch m.Type {
	case MsgROAccessReport:
		reports, err := DecodeROAccessReport(m)
		if err != nil {
			fmt.Fprintf(&b, " <decode error: %v>", err)
			break
		}
		fmt.Fprintf(&b, " tags=%d", len(reports))
		max := len(reports)
		const show = 3
		if max > show {
			max = show
		}
		for _, r := range reports[:max] {
			fmt.Fprintf(&b, " [%s ant=%d rssi=%d", r.EPC, r.AntennaID, r.PeakRSSIdBm)
			if r.HasPhase {
				fmt.Fprintf(&b, " φ=%.2f", r.PhaseRadians())
			}
			if len(r.OpResults) > 0 {
				fmt.Fprintf(&b, " ops=%d", len(r.OpResults))
			}
			b.WriteString("]")
		}
		if len(reports) > show {
			fmt.Fprintf(&b, " …+%d", len(reports)-show)
		}
	case MsgAddROSpec:
		if spec, err := DecodeAddROSpec(m); err == nil {
			fmt.Fprintf(&b, " rospec=%d aispecs=%d", spec.ID, len(spec.AISpecs))
			for _, ai := range spec.AISpecs {
				for _, inv := range ai.Inventories {
					for _, cmd := range inv.Commands {
						for _, f := range cmd.Filters {
							fmt.Fprintf(&b, " filter=%s@%d/%db",
								f.Mask.Mask, f.Mask.Pointer, f.Mask.Mask.Bits())
						}
					}
				}
			}
		}
	case MsgAddAccessSpec:
		if spec, err := DecodeAddAccessSpec(m); err == nil {
			fmt.Fprintf(&b, " accessspec=%d ops=%d", spec.ID, len(spec.Ops))
		}
	case MsgEnableROSpec, MsgStartROSpec, MsgStopROSpec, MsgDeleteROSpec, MsgDisableROSpec,
		MsgEnableAccessSpec, MsgDeleteAccessSpec, MsgDisableAccessSpec:
		if id, err := ROSpecIDOf(m); err == nil {
			fmt.Fprintf(&b, " target=%d", id)
		}
	case MsgReaderEventNotification:
		if ev, err := DecodeReaderEventNotification(m); err == nil {
			if ev.ConnAttempt != nil {
				fmt.Fprintf(&b, " connection=%d", *ev.ConnAttempt)
			}
			if ev.ROSpec != nil {
				kind := "started"
				if ev.ROSpec.Type == ROSpecEnded {
					kind = "ended"
				}
				fmt.Fprintf(&b, " rospec=%d %s", ev.ROSpec.ROSpecID, kind)
			}
		}
	default:
		if st, err := DecodeStatus(m); err == nil {
			if st.OK() {
				b.WriteString(" status=OK")
			} else {
				fmt.Fprintf(&b, " status=%d %q", st.Code, st.Description)
			}
		}
	}
	return b.String()
}
