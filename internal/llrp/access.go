package llrp

import (
	"context"
	"fmt"

	"tagwatch/internal/epc"
)

// Access-layer message types (LLRP 1.0.1 §14).
const (
	MsgAddAccessSpec             MessageType = 40
	MsgDeleteAccessSpec          MessageType = 41
	MsgEnableAccessSpec          MessageType = 42
	MsgDisableAccessSpec         MessageType = 43
	MsgAddAccessSpecResponse     MessageType = 50
	MsgDeleteAccessSpecResponse  MessageType = 51
	MsgEnableAccessSpecResponse  MessageType = 52
	MsgDisableAccessSpecResponse MessageType = 53
)

// Access-layer parameter types.
const (
	ParamAccessSpec            ParamType = 207
	ParamAccessSpecStopTrigger ParamType = 208
	ParamAccessCommand         ParamType = 209
	ParamC1G2TagSpec           ParamType = 338
	ParamC1G2TargetTag         ParamType = 339
	ParamC1G2Read              ParamType = 341
	ParamC1G2Write             ParamType = 342
	ParamC1G2ReadOpSpecResult  ParamType = 349
	ParamC1G2WriteOpSpecResult ParamType = 350
)

// OpSpec is one access operation inside an AccessSpec: a C1G2 Read or
// Write.
type OpSpec struct {
	OpSpecID uint16
	// Write selects C1G2Write; otherwise C1G2Read.
	Write   bool
	Bank    epc.MemoryBank
	WordPtr uint16
	// WordCount is the read length.
	WordCount uint16
	// Data is the write payload.
	Data []uint16
}

// TargetTag restricts an AccessSpec to tags whose memory matches the mask
// (the C1G2TagSpec). A zero TargetTag matches every tag.
type TargetTag struct {
	Bank    epc.MemoryBank
	Pointer uint16
	Mask    epc.EPC
}

// IsZero reports whether the target matches everything.
func (t TargetTag) IsZero() bool { return t.Mask.Bits() == 0 }

// AccessSpec binds access operations to inventory: whenever the bound
// ROSpec (0 = any) singulates a matching tag, the operations execute and
// their results ride in the tag report.
type AccessSpec struct {
	ID       uint32
	Antenna  uint16 // 0 = any antenna
	ROSpecID uint32 // 0 = any ROSpec
	Target   TargetTag
	Ops      []OpSpec
}

func (s AccessSpec) encode(w *Writer) {
	off := w.tlv(ParamAccessSpec)
	w.U32(s.ID)
	w.U16(s.Antenna)
	w.U8(1) // protocol: C1G2
	w.U8(0) // current state: disabled on add
	w.U32(s.ROSpecID)
	// Stop trigger: null (operate until deleted).
	so := w.tlv(ParamAccessSpecStopTrigger)
	w.U8(0)
	w.U16(0)
	w.closeTLV(so)
	co := w.tlv(ParamAccessCommand)
	// C1G2TagSpec with one target pattern.
	ts := w.tlv(ParamC1G2TagSpec)
	tt := w.tlv(ParamC1G2TargetTag)
	w.U8(uint8(s.Target.Bank)<<6 | 1<<5) // MB + match bit
	w.U16(s.Target.Pointer)
	w.U16(uint16(s.Target.Mask.Bits()))
	w.Raw(s.Target.Mask.Bytes())
	w.closeTLV(tt)
	w.closeTLV(ts)
	for _, op := range s.Ops {
		if op.Write {
			wo := w.tlv(ParamC1G2Write)
			w.U16(op.OpSpecID)
			w.U32(0) // access password
			w.U8(uint8(op.Bank) << 6)
			w.U16(op.WordPtr)
			w.U16(uint16(len(op.Data)))
			for _, d := range op.Data {
				w.U16(d)
			}
			w.closeTLV(wo)
		} else {
			ro := w.tlv(ParamC1G2Read)
			w.U16(op.OpSpecID)
			w.U32(0)
			w.U8(uint8(op.Bank) << 6)
			w.U16(op.WordPtr)
			w.U16(op.WordCount)
			w.closeTLV(ro)
		}
	}
	w.closeTLV(co)
	w.closeTLV(off)
}

// decodeAccessSpec parses an AccessSpec parameter body.
func decodeAccessSpec(body []byte) (AccessSpec, error) {
	r := NewReader(body)
	var s AccessSpec
	s.ID = r.U32()
	s.Antenna = r.U16()
	r.U8() // protocol
	r.U8() // state
	s.ROSpecID = r.U32()
	if err := r.Err(); err != nil {
		return s, err
	}
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ != ParamAccessCommand {
			continue
		}
		cr := NewReader(h.body)
		for cr.Remaining() > 0 {
			ch, ok := cr.nextParam()
			if !ok {
				break
			}
			pr := NewReader(ch.body)
			switch ch.typ {
			case ParamC1G2TagSpec:
				for pr.Remaining() > 0 {
					th, ok := pr.nextParam()
					if !ok {
						break
					}
					if th.typ != ParamC1G2TargetTag {
						continue
					}
					tr := NewReader(th.body)
					mb := tr.U8()
					s.Target.Bank = epc.MemoryBank(mb >> 6)
					s.Target.Pointer = tr.U16()
					bits := int(tr.U16())
					raw := tr.Raw((bits + 7) / 8)
					if err := tr.Err(); err != nil {
						return s, err
					}
					mask, err := epc.NewBits(raw, bits)
					if err != nil {
						return s, fmt.Errorf("llrp: target tag mask: %w", err)
					}
					s.Target.Mask = mask
				}
			case ParamC1G2Read:
				var op OpSpec
				op.OpSpecID = pr.U16()
				pr.U32()
				op.Bank = epc.MemoryBank(pr.U8() >> 6)
				op.WordPtr = pr.U16()
				op.WordCount = pr.U16()
				if err := pr.Err(); err != nil {
					return s, err
				}
				s.Ops = append(s.Ops, op)
			case ParamC1G2Write:
				var op OpSpec
				op.Write = true
				op.OpSpecID = pr.U16()
				pr.U32()
				op.Bank = epc.MemoryBank(pr.U8() >> 6)
				op.WordPtr = pr.U16()
				n := int(pr.U16())
				for i := 0; i < n; i++ {
					op.Data = append(op.Data, pr.U16())
				}
				if err := pr.Err(); err != nil {
					return s, err
				}
				s.Ops = append(s.Ops, op)
			}
			if err := pr.Err(); err != nil {
				return s, err
			}
		}
	}
	return s, r.Err()
}

// NewAddAccessSpec builds an ADD_ACCESSSPEC message.
func NewAddAccessSpec(id uint32, spec AccessSpec) Message {
	w := NewWriter(128)
	spec.encode(w)
	return Message{Type: MsgAddAccessSpec, ID: id, Body: w.Bytes()}
}

// DecodeAddAccessSpec extracts the AccessSpec of an ADD_ACCESSSPEC.
func DecodeAddAccessSpec(m Message) (AccessSpec, error) {
	r := NewReader(m.Body)
	for r.Remaining() > 0 {
		h, ok := r.nextParam()
		if !ok {
			break
		}
		if h.typ == ParamAccessSpec {
			return decodeAccessSpec(h.body)
		}
	}
	if err := r.Err(); err != nil {
		return AccessSpec{}, err
	}
	return AccessSpec{}, fmt.Errorf("llrp: ADD_ACCESSSPEC carries no AccessSpec parameter")
}

// OpResult is one access-operation outcome inside a tag report.
type OpResult struct {
	OpSpecID uint16
	Write    bool
	// Result is 0 for success (the C1G2 op-spec result codes).
	Result       uint8
	Data         []uint16
	WordsWritten uint16
}

// OK reports success.
func (o OpResult) OK() bool { return o.Result == 0 }

// encodeOpResult appends the result parameter to a tag report body.
func (o OpResult) encode(w *Writer) {
	if o.Write {
		off := w.tlv(ParamC1G2WriteOpSpecResult)
		w.U8(o.Result)
		w.U16(o.OpSpecID)
		w.U16(o.WordsWritten)
		w.closeTLV(off)
		return
	}
	off := w.tlv(ParamC1G2ReadOpSpecResult)
	w.U8(o.Result)
	w.U16(o.OpSpecID)
	w.U16(uint16(len(o.Data)))
	for _, d := range o.Data {
		w.U16(d)
	}
	w.closeTLV(off)
}

// AddAccessSpec installs an AccessSpec on the reader.
func (c *Conn) AddAccessSpec(ctx context.Context, spec AccessSpec) error {
	return c.statusOp(ctx, NewAddAccessSpec(0, spec))
}

// EnableAccessSpec enables an installed AccessSpec.
func (c *Conn) EnableAccessSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgEnableAccessSpec, 0, id))
}

// DisableAccessSpec disables an AccessSpec.
func (c *Conn) DisableAccessSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgDisableAccessSpec, 0, id))
}

// DeleteAccessSpec removes an AccessSpec (0 deletes all).
func (c *Conn) DeleteAccessSpec(ctx context.Context, id uint32) error {
	return c.statusOp(ctx, NewROSpecOp(MsgDeleteAccessSpec, 0, id))
}
