// Package statestore is a crash-safe durable store for learned engine
// state: periodic atomic snapshots plus an append-only write-ahead
// journal of incremental records.
//
// Tagwatch's value is its *learned* state — per-link Gaussian immobility
// models that take minutes to converge, the pinned set, the fleet's
// merged tag registry — and a process crash must not send the system
// back to a cold start. The store offers exactly two durability
// primitives:
//
//   - WriteSnapshot(payload): a full-state checkpoint written atomically
//     (tmp file → fsync → rename → directory fsync), CRC32C-checksummed
//     and versioned, opening a new generation;
//   - Append(record): an incremental record appended to the current
//     generation's journal and fsynced before the call returns. A nil
//     return is the durability ack: the record survives any crash after
//     that point.
//
// Recovery (performed by Open) loads the newest snapshot that validates,
// falling back generation by generation when a snapshot is corrupt, then
// replays the journals from that generation forward, tolerating a torn
// or truncated tail: a record whose framing or checksum fails ends the
// replay and is never surfaced to the caller. Old generations are
// retained by count and garbage-collected on snapshot.
//
// On-disk layout (one directory per store):
//
//	snap-00000003.tws   snapshot for generation 3
//	wal-00000003.twj    records appended since snapshot 3
//	snap-*.tws.tmp      in-flight snapshot (ignored and removed on open)
//
// A snapshot file is MAGIC ("TWSNAP01"), format version (uint32 LE),
// CRC32C of the payload (uint32 LE), payload length (uint64 LE), then
// the payload. A journal is a sequence of records, each payload length
// (uint32 LE), CRC32C of the payload (uint32 LE), then the payload.
// Payloads are opaque to the store; the engine layers define their own
// record grammar on top (see core.Record and fleet's registry records).
package statestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// snapMagic brands snapshot files; snapVersion guards the header format.
const (
	snapMagic   = "TWSNAP01"
	snapVersion = 1

	snapSuffix = ".tws"
	walSuffix  = ".twj"
	tmpSuffix  = ".tmp"

	snapHeaderLen = 8 + 4 + 4 + 8 // magic + version + crc + length
	recHeaderLen  = 4 + 4         // length + crc

	// maxRecordLen bounds a single journal record; a length field beyond
	// it is treated as corruption, not an allocation request.
	maxRecordLen = 1 << 28
)

// castagnoli is the CRC32C table used for every checksum in the store.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrPoisoned marks a store whose journal tail is in an unknown state
// after a failed write: further appends would land after a torn record
// and be unreachable on replay. Reopen the directory to recover.
var ErrPoisoned = errors.New("statestore: poisoned by earlier write failure; reopen to recover")

// ErrSnapshotNeeded is returned by Append when recovery stopped replay
// before reaching the current journal (Recovery.ReplayStopped): records
// appended now would land beyond the replay horizon and be lost on the
// next open. A successful WriteSnapshot re-anchors the chain and clears
// the condition.
var ErrSnapshotNeeded = errors.New("statestore: replay stopped mid-chain; write a snapshot before appending")

// Options tunes a store.
type Options struct {
	// Retain is how many snapshot generations to keep (minimum 1,
	// default 2). Older snapshots and their journals are removed when a
	// new snapshot commits.
	Retain int
	// FS overrides the filesystem; nil uses the real one. The crash
	// harness injects CrashFS here.
	FS FS
}

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// HasSnapshot is false when no validating snapshot was found (a
	// fresh directory, or every snapshot was corrupt); Snapshot is the
	// payload of the one restored otherwise.
	HasSnapshot bool
	Snapshot    []byte
	// SnapshotGen is the generation of the restored snapshot.
	SnapshotGen uint64
	// Records are the journal records to replay on top of the snapshot,
	// oldest first. Every record's framing and checksum validated; a
	// corrupt record and everything after it are never surfaced.
	Records [][]byte
	// CorruptSnapshots counts newer snapshot generations that failed
	// validation and were skipped to reach the restored one.
	CorruptSnapshots int
	// TornTailBytes counts journal bytes discarded because framing or a
	// checksum broke — the torn tail of an interrupted append.
	TornTailBytes int64
	// ReplayStopped is true when the framing break was NOT at the end of
	// the newest journal, i.e. framing-valid data after the break was
	// discarded too (replay order would otherwise be violated).
	ReplayStopped bool
}

// Store is a single-writer durable state store. Methods are safe for
// concurrent use, but the intended shape is one owner checkpointing one
// engine.
type Store struct {
	dir    string
	fs     FS
	retain int

	mu           sync.Mutex
	gen          uint64
	wal          File
	walOff       int64 // committed byte length of the current journal
	hasSnap      bool  // a validating snapshot exists on disk
	snapGen      uint64
	firstGen     uint64 // oldest generation whose journal starts replay
	poisoned     error
	needSnapshot bool
	recovery     Recovery

	// watchers are commit-notification channels registered by tailing
	// JournalReaders; each gets a non-blocking signal per commit.
	watchers    map[uint64]chan struct{}
	nextWatcher uint64
}

// Open opens (creating if needed) the store rooted at dir and performs
// recovery: leftover tmp files are removed, the newest valid snapshot
// and the replayable journal suffix are loaded (see Recovery), and the
// current journal's torn tail, if any, is truncated so new appends
// extend a clean record boundary.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	retain := opts.Retain
	if retain < 1 {
		retain = 2
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("statestore: create dir: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, retain: retain, watchers: make(map[uint64]chan struct{})}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("statestore: list dir: %w", err)
	}
	var snapGens, walGens []uint64
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			// In-flight snapshot interrupted by a crash: never valid.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if g, ok := parseGen(name, "snap-", snapSuffix); ok {
			snapGens = append(snapGens, g)
		}
		if g, ok := parseGen(name, "wal-", walSuffix); ok {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	// Current generation: the newest the directory knows about.
	for _, g := range snapGens {
		if g > s.gen {
			s.gen = g
		}
	}
	for _, g := range walGens {
		if g > s.gen {
			s.gen = g
		}
	}

	// Pick the newest snapshot that validates, walking backwards over
	// corrupt ones.
	rec := Recovery{}
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		payload, err := s.readSnapshot(g)
		if err != nil {
			rec.CorruptSnapshots++
			continue
		}
		rec.HasSnapshot = true
		rec.SnapshotGen = g
		rec.Snapshot = payload
		break
	}

	// Replay journals from the restored generation forward (or from the
	// oldest available journal on a cold/corrupt start). Replay must be
	// ordered, so a framing break anywhere ends it.
	replayFrom := rec.SnapshotGen
	if !rec.HasSnapshot && len(walGens) > 0 {
		replayFrom = walGens[0]
	}
	for i, g := range walGens {
		if g < replayFrom {
			continue
		}
		data, err := fsys.ReadFile(s.walPath(g))
		if err != nil {
			continue // no journal for this generation
		}
		records, validLen := parseJournal(data)
		rec.Records = append(rec.Records, records...)
		if g == s.gen {
			s.walOff = validLen
		}
		if validLen < int64(len(data)) {
			rec.TornTailBytes += int64(len(data)) - validLen
			if g == s.gen {
				// Truncate the current journal to the last valid record
				// boundary so future appends are replayable.
				if err := fsys.Truncate(s.walPath(g), validLen); err != nil {
					return nil, fmt.Errorf("statestore: truncate torn journal tail: %w", err)
				}
			}
			if i != len(walGens)-1 {
				rec.ReplayStopped = true
			}
			break // anything after a break is out of order
		}
	}
	s.recovery = rec
	s.needSnapshot = rec.ReplayStopped
	s.hasSnap = rec.HasSnapshot
	s.snapGen = rec.SnapshotGen
	s.firstGen = replayFrom

	wal, err := fsys.OpenAppend(s.walPath(s.gen))
	if err != nil {
		return nil, fmt.Errorf("statestore: open journal: %w", err)
	}
	s.wal = wal
	return s, nil
}

// Recovery returns what Open reconstructed. The caller applies the
// snapshot, then the records in order.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Gen reports the current snapshot generation.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append frames, writes, and fsyncs one record to the current journal.
// A nil return acks durability. Any failure poisons the store (the tail
// is in an unknown state); reopen to recover.
func (s *Store) Append(record []byte) error {
	return s.AppendBatch([][]byte{record})
}

// AppendBatch appends several records with a single fsync — the
// per-cycle flush path. Either all records are acked or the store is
// poisoned.
func (s *Store) AppendBatch(records [][]byte) error {
	if len(records) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range records {
		if len(r) == 0 {
			return errors.New("statestore: empty record")
		}
		if len(r) > maxRecordLen {
			return fmt.Errorf("statestore: record of %d bytes exceeds limit", len(r))
		}
		var hdr [recHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(r)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(r, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, r...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poisoned)
	}
	if s.needSnapshot {
		return ErrSnapshotNeeded
	}
	if _, err := s.wal.Write(buf); err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: journal append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: journal fsync: %w", err)
	}
	s.walOff += int64(len(buf))
	s.notifyLocked()
	return nil
}

// WriteSnapshot commits a full-state checkpoint and opens generation
// gen+1: the snapshot is written to a tmp file, fsynced, renamed into
// place, and the directory fsynced; only then does the journal roll
// over and old generations get collected. A nil return acks durability
// of the snapshot. Any failure poisons the store.
func (s *Store) WriteSnapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poisoned)
	}
	next := s.gen + 1
	final := s.snapPath(next)
	tmp := final + tmpSuffix

	if err := s.writeSnapshotFile(tmp, payload); err != nil {
		// The tmp file is ignored by recovery, but the fsync state of
		// anything we wrote is unknown — poison, like any failed write.
		s.poisoned = err
		return fmt.Errorf("statestore: write snapshot: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: commit snapshot: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: sync dir: %w", err)
	}

	// Roll the journal to the new generation.
	if err := s.wal.Close(); err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: close journal: %w", err)
	}
	wal, err := s.fs.OpenAppend(s.walPath(next))
	if err != nil {
		s.poisoned = err
		return fmt.Errorf("statestore: open journal gen %d: %w", next, err)
	}
	s.wal = wal
	s.gen = next
	s.walOff = 0
	s.hasSnap = true
	s.snapGen = next
	s.needSnapshot = false

	s.gc()
	s.notifyLocked()
	return nil
}

// notifyLocked signals every registered watcher that the committed
// cursor advanced. Non-blocking by construction: each watcher channel
// has capacity one and a pending signal coalesces.
func (s *Store) notifyLocked() {
	for _, ch := range s.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// writeSnapshotFile writes header+payload to name and fsyncs it.
func (s *Store) writeSnapshotFile(name string, payload []byte) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	hdr := make([]byte, snapHeaderLen)
	copy(hdr[0:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gc removes generations older than the retain-newest snapshots. Journal
// files are kept as far back as the oldest retained snapshot so a
// corrupt newer snapshot can still roll forward from an older one.
// Removal is best-effort: a leftover file costs disk, not correctness.
func (s *Store) gc() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var snapGens []uint64
	for _, name := range names {
		if g, ok := parseGen(name, "snap-", snapSuffix); ok {
			snapGens = append(snapGens, g)
		}
	}
	if len(snapGens) <= s.retain {
		return
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	cutoff := snapGens[s.retain-1] // oldest retained generation
	for _, name := range names {
		g, ok := parseGen(name, "snap-", snapSuffix)
		if !ok {
			g, ok = parseGen(name, "wal-", walSuffix)
		}
		if ok && g < cutoff {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Close releases the journal handle. Appends already acked remain
// durable; the store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	if s.poisoned == nil {
		s.poisoned = errors.New("statestore: closed")
	}
	return err
}

func (s *Store) snapPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%08d%s", gen, snapSuffix))
}

func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%08d%s", gen, walSuffix))
}

// readSnapshot loads and validates one snapshot generation, returning
// its payload.
func (s *Store) readSnapshot(gen uint64) ([]byte, error) {
	data, err := s.fs.ReadFile(s.snapPath(gen))
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}

// decodeSnapshot validates a snapshot file image: magic, version,
// length, checksum.
func decodeSnapshot(data []byte) ([]byte, error) {
	if len(data) < snapHeaderLen {
		return nil, errors.New("statestore: snapshot shorter than header")
	}
	if string(data[0:8]) != snapMagic {
		return nil, errors.New("statestore: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapVersion {
		return nil, fmt.Errorf("statestore: snapshot format version %d, want %d", v, snapVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(data[12:16])
	length := binary.LittleEndian.Uint64(data[16:24])
	payload := data[snapHeaderLen:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("statestore: snapshot payload %d bytes, header says %d", len(payload), length)
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, errors.New("statestore: snapshot checksum mismatch")
	}
	return payload, nil
}

// parseJournal walks a journal image and returns every record whose
// framing and checksum validate, plus the byte length of that valid
// prefix. A short header, short payload, zero or oversized length, or a
// checksum mismatch ends the walk: everything from there on is the torn
// tail of an interrupted append (or corruption) and is never surfaced.
func parseJournal(data []byte) (records [][]byte, validLen int64) {
	records, validLen, _ = parseJournalLimited(data, 0)
	return records, validLen
}

// parseJournalLimited is parseJournal with a byte budget: once the
// records collected reach maxBytes (0 = unlimited), the walk stops with
// limited=true so a tailing reader ships bounded batches. At least one
// record is always returned when one validates, regardless of budget.
func parseJournalLimited(data []byte, maxBytes int64) (records [][]byte, validLen int64, limited bool) {
	off := int64(0)
	for int64(len(data))-off >= recHeaderLen {
		if maxBytes > 0 && len(records) > 0 && off >= maxBytes {
			return records, off, true
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 || length > maxRecordLen {
			break
		}
		if int64(len(data))-off-recHeaderLen < length {
			break // torn payload
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			break
		}
		records = append(records, append([]byte(nil), payload...))
		off += recHeaderLen + length
	}
	return records, off, false
}

// parseGen extracts the generation number from a "prefix-NNNNNNNNsuffix"
// file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if digits == "" {
		return 0, false
	}
	var g uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		g = g*10 + uint64(c-'0')
	}
	return g, true
}
