package statestore

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// crashWorkload drives a store through a fixed mutation script —
// appends interleaved with snapshots — stopping at the first error (the
// simulated crash). It returns the durability floor: the set of
// key=value facts the store acked, every record ever submitted, and
// every snapshot payload ever acked.
//
// Records are "key=value" strings with unique keys; a snapshot payload
// is the joined state at its write ("k0=v0\nk1=v1\n..."), so recovered
// bytes can be checked for exact membership against what was submitted.
type crashResult struct {
	durable   map[string]string // acked as durable: must survive
	submitted map[string]bool   // every record payload ever handed to Append
	snapshots map[string]bool   // every snapshot payload handed to WriteSnapshot
}

func crashWorkload(fsys FS, dir string) crashResult {
	res := crashResult{
		durable:   map[string]string{},
		submitted: map[string]bool{},
		snapshots: map[string]bool{},
	}
	state := map[string]string{} // in-memory truth, acked or not
	var order []string

	st, err := Open(dir, Options{FS: fsys, Retain: 2})
	if err != nil {
		return res
	}
	defer st.Close()

	// Resume from whatever a previous incarnation persisted (the
	// double-crash test reopens mid-history).
	rec := st.Recovery()
	if rec.HasSnapshot {
		for _, line := range strings.Split(string(rec.Snapshot), "\n") {
			if k, v, ok := strings.Cut(line, "="); ok {
				state[k] = v
				order = append(order, k)
			}
		}
	}
	for _, r := range rec.Records {
		if k, v, ok := strings.Cut(string(r), "="); ok {
			state[k] = v
			order = append(order, k)
		}
	}

	encodeState := func() string {
		var sb strings.Builder
		for _, k := range order {
			fmt.Fprintf(&sb, "%s=%s\n", k, state[k])
		}
		return sb.String()
	}

	step := 0
	appendKV := func() bool {
		k, v := fmt.Sprintf("k%03d", len(order)), fmt.Sprintf("v%03d", step)
		recBytes := k + "=" + v
		res.submitted[recBytes] = true
		state[k] = v
		order = append(order, k)
		if err := st.Append([]byte(recBytes)); err != nil {
			return false
		}
		res.durable[k] = v
		return true
	}
	snapshot := func() bool {
		payload := encodeState()
		res.snapshots[payload] = true
		if err := st.WriteSnapshot([]byte(payload)); err != nil {
			return false
		}
		// A successful snapshot acks the entire state.
		for k, v := range state {
			res.durable[k] = v
		}
		return true
	}

	// Script: appends and snapshots interleaved so the op sweep visits
	// every phase — journal appends, snapshot body/fsync/rename/dir
	// fsync, journal rollover, GC of generation 1.
	for ; step < 40; step++ {
		ok := true
		switch {
		case step == 8 || step == 20 || step == 32:
			ok = snapshot()
		default:
			ok = appendKV()
		}
		if !ok {
			return res
		}
	}
	return res
}

// verifyRecovered reopens the directory on the real filesystem and
// checks the two crash-recovery invariants: every durably-acked fact
// survives, and nothing corrupt is ever surfaced.
func verifyRecovered(t *testing.T, dir string, res crashResult, label string) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	defer st.Close()
	rec := st.Recovery()

	recovered := map[string]string{}
	if rec.HasSnapshot {
		// Invariant: a surfaced snapshot is byte-identical to one the
		// engine wrote — never a blend or a truncation.
		if !res.snapshots[string(rec.Snapshot)] {
			t.Fatalf("%s: recovered snapshot was never submitted:\n%q", label, rec.Snapshot)
		}
		for _, line := range strings.Split(string(rec.Snapshot), "\n") {
			if k, v, ok := strings.Cut(line, "="); ok {
				recovered[k] = v
			}
		}
	}
	for _, r := range rec.Records {
		// Invariant: every surfaced record is byte-identical to a
		// submitted one.
		if !res.submitted[string(r)] {
			t.Fatalf("%s: recovered record was never submitted: %q", label, r)
		}
		k, v, ok := strings.Cut(string(r), "=")
		if !ok {
			t.Fatalf("%s: malformed recovered record %q", label, r)
		}
		recovered[k] = v
	}

	// Invariant: the durability floor holds — everything acked before
	// the crash is present with the exact acked value.
	for k, v := range res.durable {
		got, ok := recovered[k]
		if !ok {
			t.Fatalf("%s: durably-acked %s=%s lost (recovered %d keys)", label, k, v, len(recovered))
		}
		if got != v {
			t.Fatalf("%s: durably-acked %s=%s recovered as %s", label, k, v, got)
		}
	}
}

// TestCrashSweepEveryOp kills the store at every mutating-filesystem
// operation of the workload in turn — mid-journal-append, mid-snapshot
// write, between fsync and rename, mid-rename, during GC — and asserts
// the recovery invariants each time.
func TestCrashSweepEveryOp(t *testing.T) {
	// Dry run to size the sweep.
	dry := NewCrashFS(OSFS{}, 0)
	crashWorkload(dry, filepath.Join(t.TempDir(), "dry"))
	total := dry.Ops()
	if total < 60 {
		t.Fatalf("workload only issued %d fs ops; the sweep needs a longer script", total)
	}

	for _, seed := range []int64{1, 2, 3} {
		for op := 0; op < total; op++ {
			dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%d-op%d", seed, op))
			cfs := NewCrashFS(OSFS{}, seed+int64(op)*1000)
			cfs.CrashAt(op)
			res := crashWorkload(cfs, dir)
			if !cfs.Crashed() {
				t.Fatalf("seed %d op %d: workload finished without crashing", seed, op)
			}
			verifyRecovered(t, dir, res, fmt.Sprintf("seed %d op %d", seed, op))
		}
	}
}

// TestCrashTwice crashes, recovers, and crashes again at a later point:
// the second incarnation appends after a truncated torn tail, so this
// exercises recovery-of-a-recovery.
func TestCrashTwice(t *testing.T) {
	dry := NewCrashFS(OSFS{}, 0)
	crashWorkload(dry, filepath.Join(t.TempDir(), "dry"))
	total := dry.Ops()

	for _, firstOp := range []int{5, 13, 21, 33, total - 2} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("first%d", firstOp))
		cfs := NewCrashFS(OSFS{}, int64(firstOp))
		cfs.CrashAt(firstOp)
		res1 := crashWorkload(cfs, dir)
		if !cfs.Crashed() {
			t.Fatalf("first crash at %d not reached", firstOp)
		}

		// Second incarnation resumes in the same directory and dies again.
		cfs2 := NewCrashFS(OSFS{}, int64(firstOp)*7+1)
		cfs2.CrashAt(firstOp + 9)
		res2 := crashWorkload(cfs2, dir)

		// The union of both incarnations' acks must survive: res2's
		// workload rebuilt on top of res1's recovered state.
		merged := crashResult{
			durable:   map[string]string{},
			submitted: map[string]bool{},
			snapshots: map[string]bool{},
		}
		for k, v := range res1.durable {
			merged.durable[k] = v
		}
		for k, v := range res2.durable {
			merged.durable[k] = v
		}
		for r := range res1.submitted {
			merged.submitted[r] = true
		}
		for r := range res2.submitted {
			merged.submitted[r] = true
		}
		for s := range res1.snapshots {
			merged.snapshots[s] = true
		}
		for s := range res2.snapshots {
			merged.snapshots[s] = true
		}
		verifyRecovered(t, dir, merged, fmt.Sprintf("double crash %d", firstOp))
	}
}

// TestCrashedFSRefusesEverything pins the harness's own contract: after
// the crash point nothing reaches the disk.
func TestCrashedFSRefusesEverything(t *testing.T) {
	cfs := NewCrashFS(OSFS{}, 1)
	cfs.CrashAt(0)
	dir := t.TempDir()
	if err := cfs.MkdirAll(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point op: %v", err)
	}
	if err := cfs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if _, err := cfs.Create(filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if _, err := cfs.ReadFile(filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
}
