package statestore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drain polls the reader until it reports caught-up, collecting records.
func drain(t *testing.T, r *JournalReader) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		recs, _, err := r.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
	}
}

func TestTailFollowsAppends(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	_, has, from, err := st.ResyncSource()
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Fatal("fresh store claims a snapshot")
	}
	r := st.Tail(from, TailOptions{})
	defer r.Close()

	if recs := drain(t, r); len(recs) != 0 {
		t.Fatalf("fresh tail returned %d records", len(recs))
	}
	mustAppend(t, st, "a", "b", "c")
	got := drain(t, r)
	if len(got) != 3 || string(got[0]) != "a" || string(got[2]) != "c" {
		t.Fatalf("tail after append = %q", got)
	}
	if cur := r.Cursor(); cur != st.Committed() {
		t.Fatalf("caught-up cursor %+v != committed %+v", cur, st.Committed())
	}

	// A commit signals the notification channel; Next returns the batch.
	mustAppend(t, st, "d")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	recs, _, err := r.Next(ctx)
	if err != nil || len(recs) != 1 || string(recs[0]) != "d" {
		t.Fatalf("Next = %q, %v", recs, err)
	}
}

func TestTailCrossesGenerations(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	r := st.Tail(st.Committed(), TailOptions{})
	defer r.Close()

	mustAppend(t, st, "a", "b")
	if err := st.WriteSnapshot([]byte("snap1")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "c")
	if err := st.WriteSnapshot([]byte("snap2")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "d", "e")

	got := drain(t, r)
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("tail across gens = %q, want %q", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTailBatchBudget(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	r := st.Tail(st.Committed(), TailOptions{MaxBatchBytes: 1})
	defer r.Close()
	mustAppend(t, st, "aaaa", "bbbb", "cccc")

	// A one-byte budget still makes progress: each Poll returns exactly
	// one record (at least one is always returned when one validates).
	for _, want := range []string{"aaaa", "bbbb", "cccc"} {
		recs, _, err := r.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || string(recs[0]) != want {
			t.Fatalf("budgeted Poll = %q, want [%q]", recs, want)
		}
	}
	if recs := drain(t, r); len(recs) != 0 {
		t.Fatalf("expected caught-up, got %q", recs)
	}
}

func TestTailCursorGoneAfterGC(t *testing.T) {
	st := openT(t, t.TempDir(), Options{Retain: 1})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	r := st.Tail(st.Committed(), TailOptions{})
	defer r.Close()

	// Roll generations past retention without the reader keeping up.
	for i := 0; i < 4; i++ {
		mustAppend(t, st, fmt.Sprintf("r%d", i))
		if err := st.WriteSnapshot([]byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := r.Poll()
	if !errors.Is(err, ErrCursorGone) {
		t.Fatalf("Poll after GC = %v, want ErrCursorGone", err)
	}

	// Re-anchor: the resync source hands back the newest snapshot and the
	// cursor journal replay resumes from.
	snap, has, from, err := st.ResyncSource()
	if err != nil {
		t.Fatal(err)
	}
	if !has || string(snap) != "s3" {
		t.Fatalf("resync snapshot = %q (has=%v), want s3", snap, has)
	}
	r2 := st.Tail(from, TailOptions{})
	defer r2.Close()
	mustAppend(t, st, "after")
	got := drain(t, r2)
	if len(got) != 1 || string(got[0]) != "after" {
		t.Fatalf("post-resync tail = %q, want [after]", got)
	}
}

func TestTailAheadOfCommittedIsGone(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	r := st.Tail(Cursor{Gen: st.Committed().Gen, Offset: 1 << 20}, TailOptions{})
	defer r.Close()
	if _, _, err := r.Poll(); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("Poll ahead of committed = %v, want ErrCursorGone", err)
	}
}

// TestTailWhileAppending is the recovery-matrix "tail while appending"
// row: a JournalReader follows a store that is concurrently appending
// and rolling generations (with retention GC collecting old ones),
// under -race. The reader maintains a last-wins key/value replica —
// exactly what a replication standby does — re-anchoring from the
// resync source whenever it falls past retention, and must converge to
// the writer's final state.
func TestTailWhileAppending(t *testing.T) {
	st := openT(t, t.TempDir(), Options{Retain: 1})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	const (
		writes = 2000
		keys   = 50
	)
	type kv struct {
		K string `json:"k"`
		V int    `json:"v"`
	}

	// Writer: last-wins updates over a small key space, snapshotting
	// (and thereby GC-ing) every 100 appends so the reader races both
	// the append path and the generation roll.
	model := make(map[string]int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			rec := kv{K: fmt.Sprintf("k%02d", i%keys), V: i}
			model[rec.K] = rec.V
			b, err := json.Marshal(rec)
			if err != nil {
				t.Error(err)
				return
			}
			if err := st.Append(b); err != nil {
				t.Error(err)
				return
			}
			if i%100 == 99 {
				snap, err := json.Marshal(model)
				if err != nil {
					t.Error(err)
					return
				}
				if err := st.WriteSnapshot(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Reader: anchor from the resync source, then follow, re-anchoring
	// on ErrCursorGone. applyFrom restarts the replica from a snapshot.
	replica := make(map[string]int)
	var resyncs int
	anchor := func() *JournalReader {
		snap, has, from, err := st.ResyncSource()
		if err != nil {
			t.Fatal(err)
		}
		replica = make(map[string]int)
		if has {
			if err := json.Unmarshal(snap, &replica); err != nil {
				t.Fatal(err)
			}
		}
		return st.Tail(from, TailOptions{MaxBatchBytes: 4 << 10})
	}
	apply := func(recs [][]byte) {
		for _, b := range recs {
			var rec kv
			if err := json.Unmarshal(b, &rec); err != nil {
				t.Fatal(err)
			}
			replica[rec.K] = rec.V
		}
	}

	r := anchor()
	writerDone := make(chan struct{})
	go func() { wg.Wait(); close(writerDone) }()
	deadline := time.After(30 * time.Second)
	done := false
	for !done {
		recs, _, err := r.Poll()
		switch {
		case errors.Is(err, ErrCursorGone):
			resyncs++
			r.Close()
			r = anchor()
			continue
		case err != nil:
			t.Fatal(err)
		}
		apply(recs)
		if len(recs) > 0 {
			continue
		}
		// Caught up right now — but only final once the writer finished.
		select {
		case <-writerDone:
			if r.Cursor() == st.Committed() {
				done = true
			}
		case <-deadline:
			t.Fatal("reader did not converge in 30s")
		case <-r.Notify():
		case <-time.After(time.Millisecond):
		}
	}
	r.Close()

	if t.Failed() {
		return
	}
	if len(replica) != len(model) {
		t.Fatalf("replica has %d keys, model %d (resyncs=%d)", len(replica), len(model), resyncs)
	}
	for k, v := range model {
		if replica[k] != v {
			t.Fatalf("replica[%s]=%d, want %d (resyncs=%d)", k, replica[k], v, resyncs)
		}
	}
	t.Logf("converged after %d writes with %d resyncs", writes, resyncs)
}

func TestRemoveAllWipesStoreFiles(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	mustAppend(t, st, "a")
	if err := st.WriteSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "b")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveAll(dir, nil); err != nil {
		t.Fatal(err)
	}
	st = openT(t, dir, Options{})
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := st.Recovery()
	if rec.HasSnapshot || len(rec.Records) != 0 {
		t.Fatalf("store not empty after RemoveAll: %+v", rec)
	}
}
