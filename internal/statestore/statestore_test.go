package statestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openT opens a store and fails the test on error.
func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// reopen closes the store and opens the directory again.
func reopen(t *testing.T, st *Store, opts Options) *Store {
	t.Helper()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return openT(t, st.Dir(), opts)
}

func mustAppend(t *testing.T, st *Store, records ...string) {
	t.Helper()
	for _, r := range records {
		if err := st.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func recordsEqual(rec Recovery, want ...string) error {
	if len(rec.Records) != len(want) {
		return fmt.Errorf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, w := range want {
		if string(rec.Records[i]) != w {
			return fmt.Errorf("record %d = %q, want %q", i, rec.Records[i], w)
		}
	}
	return nil
}

// corruptFile flips one byte at offset (negative = from the end).
func corruptFile(t *testing.T, path string, offset int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if offset < 0 {
		offset += int64(len(data))
	}
	data[offset] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryMatrix is the table of recovery shapes the store must
// handle: the rows mirror the states a crashed deployment can wake up
// in.
func TestRecoveryMatrix(t *testing.T) {
	t.Run("no state dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "fresh", "nested")
		st := openT(t, dir, Options{})
		defer st.Close()
		rec := st.Recovery()
		if rec.HasSnapshot || len(rec.Records) != 0 || rec.CorruptSnapshots != 0 {
			t.Fatalf("fresh dir recovery not empty: %+v", rec)
		}
		mustAppend(t, st, "a", "b")
		st = reopen(t, st, Options{})
		defer st.Close()
		if err := recordsEqual(st.Recovery(), "a", "b"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("snapshot only", func(t *testing.T) {
		st := openT(t, t.TempDir(), Options{})
		defer st.Close()
		if err := st.WriteSnapshot([]byte("full-state")); err != nil {
			t.Fatal(err)
		}
		st = reopen(t, st, Options{})
		defer st.Close()
		rec := st.Recovery()
		if !rec.HasSnapshot || string(rec.Snapshot) != "full-state" {
			t.Fatalf("snapshot not recovered: %+v", rec)
		}
		if len(rec.Records) != 0 {
			t.Fatalf("unexpected records: %q", rec.Records)
		}
	})

	t.Run("snapshot plus journal", func(t *testing.T) {
		st := openT(t, t.TempDir(), Options{})
		defer st.Close()
		mustAppend(t, st, "pre") // superseded by the snapshot
		if err := st.WriteSnapshot([]byte("S")); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, st, "r1", "r2", "r3")
		st = reopen(t, st, Options{})
		defer st.Close()
		rec := st.Recovery()
		if !rec.HasSnapshot || string(rec.Snapshot) != "S" {
			t.Fatalf("snapshot: %+v", rec)
		}
		if err := recordsEqual(rec, "r1", "r2", "r3"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("torn journal tail", func(t *testing.T) {
		st := openT(t, t.TempDir(), Options{})
		defer st.Close()
		if err := st.WriteSnapshot([]byte("S")); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, st, "good-1", "good-2")
		dir := st.Dir()
		gen := st.Gen()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate an interrupted append: half a header and garbage.
		wal := filepath.Join(dir, fmt.Sprintf("wal-%08d.twj", gen))
		f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x09, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()

		st = openT(t, dir, Options{})
		defer st.Close()
		rec := st.Recovery()
		if err := recordsEqual(rec, "good-1", "good-2"); err != nil {
			t.Fatal(err)
		}
		if rec.TornTailBytes != 6 {
			t.Fatalf("torn tail bytes = %d, want 6", rec.TornTailBytes)
		}
		if rec.ReplayStopped {
			t.Fatal("a tail tear in the newest journal must not stop replay")
		}
		// The tail was truncated: appends extend a clean boundary.
		mustAppend(t, st, "good-3")
		st = reopen(t, st, Options{})
		defer st.Close()
		if err := recordsEqual(st.Recovery(), "good-1", "good-2", "good-3"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("corrupt snapshot falls back to previous generation", func(t *testing.T) {
		st := openT(t, t.TempDir(), Options{})
		defer st.Close()
		if err := st.WriteSnapshot([]byte("gen1")); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, st, "during-gen1")
		if err := st.WriteSnapshot([]byte("gen2")); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, st, "during-gen2")
		dir := st.Dir()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Flip a payload byte in the gen-2 snapshot: CRC must reject it.
		corruptFile(t, filepath.Join(dir, "snap-00000002.tws"), -1)

		st = openT(t, dir, Options{})
		defer st.Close()
		rec := st.Recovery()
		if !rec.HasSnapshot || string(rec.Snapshot) != "gen1" || rec.SnapshotGen != 1 {
			t.Fatalf("must fall back to gen 1: %+v", rec)
		}
		if rec.CorruptSnapshots != 1 {
			t.Fatalf("corrupt snapshots = %d, want 1", rec.CorruptSnapshots)
		}
		// Both generations' journals roll the old snapshot forward: no
		// acked record is lost to the corrupt snapshot.
		if err := recordsEqual(rec, "during-gen1", "during-gen2"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRetentionGC(t *testing.T) {
	st := openT(t, t.TempDir(), Options{Retain: 2})
	defer st.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, st, fmt.Sprintf("r%d", i))
		if err := st.WriteSnapshot([]byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, e := range names {
		kept = append(kept, e.Name())
	}
	for _, name := range kept {
		if g, ok := parseGen(name, "snap-", snapSuffix); ok && g < 4 {
			t.Fatalf("snapshot gen %d not collected (files: %v)", g, kept)
		}
		if g, ok := parseGen(name, "wal-", walSuffix); ok && g < 4 {
			t.Fatalf("journal gen %d not collected (files: %v)", g, kept)
		}
	}
	st = reopen(t, st, Options{Retain: 2})
	defer st.Close()
	rec := st.Recovery()
	if !rec.HasSnapshot || string(rec.Snapshot) != "gen5" {
		t.Fatalf("newest snapshot must survive GC: %+v", rec)
	}
}

func TestMidChainTearRequiresSnapshot(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer st.Close()
	mustAppend(t, st, "old-1", "old-2")
	if err := st.WriteSnapshot([]byte("gen1")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "new-1")
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST record of wal-0 and the gen-1 snapshot: recovery
	// falls back to cold start, replay breaks immediately in wal-0, and
	// everything after — including wal-1 — is beyond the replay horizon.
	corruptFile(t, filepath.Join(dir, "wal-00000000.twj"), recHeaderLen)
	corruptFile(t, filepath.Join(dir, "snap-00000001.tws"), -1)

	st = openT(t, dir, Options{})
	defer st.Close()
	rec := st.Recovery()
	if rec.HasSnapshot {
		t.Fatalf("no snapshot should validate: %+v", rec)
	}
	if !rec.ReplayStopped {
		t.Fatal("mid-chain tear must set ReplayStopped")
	}
	if len(rec.Records) != 0 {
		t.Fatalf("no record before the tear should surface: %q", rec.Records)
	}
	// Appends are refused until a snapshot re-anchors the chain —
	// otherwise they would be lost on the next open.
	if err := st.Append([]byte("x")); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("append after mid-chain tear: %v, want ErrSnapshotNeeded", err)
	}
	if err := st.WriteSnapshot([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "post")
	st = reopen(t, st, Options{})
	defer st.Close()
	rec = st.Recovery()
	if !rec.HasSnapshot || string(rec.Snapshot) != "fresh" {
		t.Fatalf("re-anchored snapshot must recover: %+v", rec)
	}
	if err := recordsEqual(rec, "post"); err != nil {
		t.Fatal(err)
	}
}

func TestPoisonedAfterWriteFailure(t *testing.T) {
	// A store whose journal write fails must refuse further writes: the
	// tail is in an unknown state and only a reopen re-validates it.
	dir := t.TempDir()
	cfs := NewCrashFS(OSFS{}, 7)
	st, err := Open(dir, Options{FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "ok")
	cfs.CrashAt(cfs.Ops()) // next mutating op dies
	if err := st.Append([]byte("doomed")); err == nil {
		t.Fatal("append at crash point must fail")
	}
	if err := st.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned store: %v, want ErrPoisoned", err)
	}
	if err := st.WriteSnapshot([]byte("s")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot on poisoned store: %v, want ErrPoisoned", err)
	}

	// Reopen with the real filesystem: the acked record survived.
	st2 := openT(t, dir, Options{})
	defer st2.Close()
	if err := recordsEqual(st2.Recovery(), "ok"); err != nil {
		t.Fatal(err)
	}
}

func TestAppendValidation(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer st.Close()
	if err := st.Append(nil); err == nil {
		t.Fatal("empty record must be rejected")
	}
	if err := st.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch is a no-op: %v", err)
	}
}

func TestSnapshotDecodeRejectsHostileImages(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		st := openT(t, t.TempDir(), Options{})
		defer st.Close()
		if err := st.WriteSnapshot([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(st.Dir(), "snap-00000001.tws"))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		return buf.Bytes()
	}()
	if _, err := decodeSnapshot(good); err != nil {
		t.Fatalf("control image must decode: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"short header":    func(b []byte) []byte { return b[:snapHeaderLen-1] },
		"bad magic":       func(b []byte) []byte { b[0] ^= 0xff; return b },
		"version skew":    func(b []byte) []byte { b[8] = 99; return b },
		"truncated body":  func(b []byte) []byte { return b[:len(b)-2] },
		"flipped payload": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"extra bytes":     func(b []byte) []byte { return append(b, 0x00) },
	}
	for name, mutate := range cases {
		img := mutate(append([]byte(nil), good...))
		if _, err := decodeSnapshot(img); err == nil {
			t.Errorf("%s: hostile snapshot image must be rejected", name)
		}
	}
}
