package statestore

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrNoSpace is the injected shape of a full disk: a write (or the tail
// of a short write) that could not land. Own sentinel rather than
// syscall.ENOSPC so fault campaigns behave identically on every
// platform the tests run on.
var ErrNoSpace = errors.New("statestore: injected fault: no space left on device")

// ErrIOFault is the injected shape of a media error surfaced at fsync —
// the fsyncgate failure mode: data was accepted by the page cache, then
// the durability barrier itself reports the loss.
var ErrIOFault = errors.New("statestore: injected fault: input/output error")

// FaultConfig selects which filesystem faults to inject and how hard.
// Probabilities are per-operation in [0,1]; zero disables the fault.
// Every decision draws from a stream seeded by Seed in operation order,
// so a workload that drives the store deterministically sees the same
// faults on every run.
type FaultConfig struct {
	// Seed makes every injection decision reproducible. Zero is a valid
	// seed (not "random").
	Seed int64

	// WriteErrProb fails a file write outright with ErrNoSpace: no bytes
	// land.
	WriteErrProb float64
	// ShortWriteProb persists only a proper prefix of a write, then
	// returns ErrNoSpace — the torn frame a disk that filled mid-write
	// leaves behind. The prefix length is drawn from the seeded stream.
	ShortWriteProb float64
	// SyncErrProb fails a file Sync with ErrIOFault after the data was
	// accepted — the ack that never comes.
	SyncErrProb float64
	// DirSyncErrProb fails SyncDir with ErrIOFault — a snapshot rename
	// whose durability barrier dies.
	DirSyncErrProb float64
}

// enabled reports whether any fault is configured at all.
func (c FaultConfig) enabled() bool {
	return c.WriteErrProb > 0 || c.ShortWriteProb > 0 || c.SyncErrProb > 0 || c.DirSyncErrProb > 0
}

// FaultStats counts the faults actually injected, for oracles asserting
// that a campaign exercised what it claims to.
type FaultStats struct {
	Ops         uint64 // mutating operations observed while armed
	WriteFaults uint64 // writes failed outright
	ShortWrites uint64 // writes torn to a prefix
	SyncFaults  uint64 // file or directory syncs failed
}

// FaultFS wraps another FS and injects runtime filesystem faults —
// ENOSPC on write, short writes, EIO at fsync — without killing the
// process, unlike CrashFS which models death. The store under a FaultFS
// must degrade per its poisoning contract: a failed write or sync
// poisons the store, already-acked records stay durable, and reopening
// the directory (with a healthy FS) recovers everything acked.
//
// The injector starts armed; Arm(false) lets a campaign boot a clean
// store and spring the faults at a chosen point in the workload. While
// disarmed every operation passes straight through and draws nothing
// from the decision stream, so the armed-phase fault sequence does not
// depend on how long the clean phase ran.
type FaultFS struct {
	inner FS
	cfg   FaultConfig
	armed atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultFS wraps inner with the configured fault injection, armed.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	f := &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	f.armed.Store(true)
	return f
}

// Arm enables (or disables) fault injection at runtime. Disarmed, the
// filesystem is honest.
func (f *FaultFS) Arm(on bool) { f.armed.Store(on) }

// Armed reports whether faults are currently being injected.
func (f *FaultFS) Armed() bool { return f.armed.Load() }

// Stats snapshots the injected-fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// draw makes one seeded probability decision. Only armed operations
// consume from the stream.
func (f *FaultFS) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// ReadDir implements FS. Reads are never faulted: recovery must be able
// to see what actually landed.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// SyncDir implements FS: the rename durability barrier can report EIO.
func (f *FaultFS) SyncDir(dir string) error {
	if f.armed.Load() {
		f.mu.Lock()
		f.stats.Ops++
		fault := f.draw(f.cfg.DirSyncErrProb)
		if fault {
			f.stats.SyncFaults++
		}
		f.mu.Unlock()
		if fault {
			return ErrIOFault
		}
	}
	return f.inner.SyncDir(dir)
}

// faultFile injects write/sync faults on one open file. Unlike
// CrashFS's page-cache model, writes pass straight through: the faults
// here are the disk saying no while the process lives on.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write implements File. An injected ENOSPC either drops the whole
// write or lands a proper prefix first (short write) — both poison the
// store above, which is the contract under test.
func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.armed.Load() {
		f.fs.mu.Lock()
		f.fs.stats.Ops++
		whole := f.fs.draw(f.fs.cfg.WriteErrProb)
		short := !whole && len(p) > 1 && f.fs.draw(f.fs.cfg.ShortWriteProb)
		keep := 0
		if short {
			keep = 1 + f.fs.rng.Intn(len(p)-1)
			f.fs.stats.ShortWrites++
		}
		if whole {
			f.fs.stats.WriteFaults++
		}
		f.fs.mu.Unlock()
		if whole {
			return 0, ErrNoSpace
		}
		if short {
			n, err := f.inner.Write(p[:keep])
			if err != nil {
				return n, err
			}
			return n, ErrNoSpace
		}
	}
	return f.inner.Write(p)
}

// Sync implements File: the durability ack itself can fail.
func (f *faultFile) Sync() error {
	if f.fs.armed.Load() {
		f.fs.mu.Lock()
		f.fs.stats.Ops++
		fault := f.fs.draw(f.fs.cfg.SyncErrProb)
		if fault {
			f.fs.stats.SyncFaults++
		}
		f.fs.mu.Unlock()
		if fault {
			return ErrIOFault
		}
	}
	return f.inner.Sync()
}

// Close implements File. Close is never faulted: the interesting
// failures happen at the durability barriers, and a store that survives
// those handles close trivially.
func (f *faultFile) Close() error { return f.inner.Close() }
