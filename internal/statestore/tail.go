package statestore

// Journal tailing: the replication feed. A primary's statestore is the
// single source of truth for everything the fleet acked durable, so
// streaming its journal (plus the occasional snapshot) to a standby IS
// registry-delta replication — the journal grammar is already the
// replication format. This file adds the pieces a shipper needs without
// touching the hot append path:
//
//   - Cursor: a (generation, byte offset) position in the journal chain;
//   - Committed: the cursor one byte past the last fsync-acked record;
//   - Tail / JournalReader: a pull-based reader that returns batches of
//     committed records from a cursor forward, crossing generation
//     boundaries, and reports ErrCursorGone when retention GC (or
//     corruption) makes the requested position unreadable — the signal
//     to re-anchor from a snapshot;
//   - ResyncSource: the newest snapshot payload plus the cursor journal
//     replay resumes from, i.e. everything needed to re-anchor a peer.
//
// Readers never block appends: they re-read journal files through the
// store's FS and are bounded by the committed cursor, so the only
// shared state is the cursor itself and a non-blocking notification
// channel. A reader that falls behind retention simply resyncs — the
// ship-behind, drop-to-snapshot-on-overflow degradation mode.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
)

// Cursor addresses a position in the journal chain: byte Offset into
// generation Gen's journal, always on a record boundary.
type Cursor struct {
	Gen    uint64 `json:"gen"`
	Offset int64  `json:"offset"`
}

// Before reports whether c addresses an earlier position than o.
func (c Cursor) Before(o Cursor) bool {
	return c.Gen < o.Gen || (c.Gen == o.Gen && c.Offset < o.Offset)
}

// ErrCursorGone reports that a tail position is no longer readable:
// retention GC collected the generation, the position is ahead of the
// committed cursor (a diverged peer), or the bytes there no longer
// parse. The only recovery is re-anchoring from ResyncSource.
var ErrCursorGone = errors.New("statestore: cursor position no longer available; re-anchor from a snapshot")

// Committed returns the cursor one byte past the last record whose
// durability was acked. Everything before it survives a crash and is
// safe to replicate.
func (s *Store) Committed() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Cursor{Gen: s.gen, Offset: s.walOff}
}

// ResyncSource returns the re-anchor point for a peer that cannot
// resume from its cursor: the newest validating snapshot payload (when
// one exists) and the cursor journal replay starts from. A peer applies
// the snapshot (or, with hasSnapshot false, starts empty) and then
// tails from the returned cursor.
func (s *Store) ResyncSource() (snapshot []byte, hasSnapshot bool, from Cursor, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasSnap {
		return nil, false, Cursor{Gen: s.firstGen}, nil
	}
	payload, err := s.readSnapshot(s.snapGen)
	if err != nil {
		return nil, false, Cursor{}, fmt.Errorf("statestore: read resync snapshot gen %d: %w", s.snapGen, err)
	}
	return payload, true, Cursor{Gen: s.snapGen}, nil
}

// TailOptions tunes a JournalReader.
type TailOptions struct {
	// MaxBatchBytes bounds the record payload bytes one Poll returns
	// (default 1 MiB) so a reader catching up after a long disconnect
	// ships bounded frames instead of one giant one.
	MaxBatchBytes int64
}

// Tail registers a reader that follows the journal from the given
// cursor. The reader is NOT safe for concurrent use (one shipper
// goroutine owns it); Close unregisters its commit notifications.
func (s *Store) Tail(from Cursor, opts TailOptions) *JournalReader {
	max := opts.MaxBatchBytes
	if max <= 0 {
		max = 1 << 20
	}
	r := &JournalReader{s: s, cur: from, max: max, notify: make(chan struct{}, 1)}
	s.mu.Lock()
	r.id = s.nextWatcher
	s.nextWatcher++
	s.watchers[r.id] = r.notify
	s.mu.Unlock()
	return r
}

// JournalReader reads committed journal records from a cursor forward,
// crossing generation boundaries as snapshots roll the journal over.
type JournalReader struct {
	s      *Store
	id     uint64
	notify chan struct{}
	cur    Cursor
	max    int64
}

// Cursor reports the reader's current position (the next byte it will
// read).
func (r *JournalReader) Cursor() Cursor { return r.cur }

// Notify returns the reader's commit-notification channel: one
// (coalesced) signal per committed append or snapshot. Select on it
// alongside heartbeat timers; a signal means Poll may have new records.
func (r *JournalReader) Notify() <-chan struct{} { return r.notify }

// Close unregisters the reader's notifications. The reader cannot be
// used afterwards.
func (r *JournalReader) Close() {
	r.s.mu.Lock()
	delete(r.s.watchers, r.id)
	r.s.mu.Unlock()
}

// Poll returns the next batch of committed records at the cursor, the
// cursor after them, and advances the reader. An empty batch with a nil
// error means the reader is caught up with Committed. ErrCursorGone
// means the position is unreadable (GC'd, corrupt, or ahead of the
// committed cursor) and the consumer must re-anchor via ResyncSource.
func (r *JournalReader) Poll() ([][]byte, Cursor, error) {
	for {
		committed := r.s.Committed()
		if committed.Before(r.cur) {
			return nil, r.cur, fmt.Errorf("%w (cursor %+v ahead of committed %+v)", ErrCursorGone, r.cur, committed)
		}
		if r.cur == committed {
			return nil, r.cur, nil // caught up
		}
		data, err := r.s.fs.ReadFile(r.s.walPath(r.cur.Gen))
		if err != nil {
			// The generation's journal is gone — retention GC collected it
			// while this reader was behind.
			return nil, r.cur, fmt.Errorf("%w (journal gen %d unreadable: %v)", ErrCursorGone, r.cur.Gen, err)
		}
		bound := int64(len(data))
		final := r.cur.Gen < committed.Gen
		if !final && bound > committed.Offset {
			// Never surface bytes past the committed cursor: they may be
			// written but not yet fsync-acked.
			bound = committed.Offset
		}
		if r.cur.Offset > bound {
			return nil, r.cur, fmt.Errorf("%w (offset %d past journal end %d in gen %d)", ErrCursorGone, r.cur.Offset, bound, r.cur.Gen)
		}
		records, validLen, limited := parseJournalLimited(data[r.cur.Offset:bound], r.max)
		end := r.cur.Offset + validLen
		if !limited && end < bound {
			// Parse stopped below the committed bound for a reason other
			// than the batch budget: the bytes there are corrupt, and
			// recovery would discard them too.
			return nil, r.cur, fmt.Errorf("%w (unparsable journal bytes at gen %d offset %d)", ErrCursorGone, r.cur.Gen, end)
		}
		next := Cursor{Gen: r.cur.Gen, Offset: end}
		if final && end == bound {
			// Finalized generation fully drained: continue in the next one.
			next = Cursor{Gen: r.cur.Gen + 1}
		}
		r.cur = next
		if len(records) == 0 {
			continue // an empty finalized journal; look at the next gen
		}
		return records, next, nil
	}
}

// Next blocks until Poll returns records or an error, or ctx ends.
func (r *JournalReader) Next(ctx context.Context) ([][]byte, Cursor, error) {
	for {
		records, next, err := r.Poll()
		if err != nil || len(records) > 0 {
			return records, next, err
		}
		select {
		case <-ctx.Done():
			return nil, r.cur, ctx.Err()
		case <-r.notify:
		}
	}
}

// RemoveAll deletes every store file in dir (snapshots, journals, and
// leftover tmp files), leaving the directory usable for a fresh Open.
// This is the standby's hard re-anchor path: a peer whose history can
// no longer be reconciled starts over from the primary's stream. A nil
// fsys uses the real filesystem.
func RemoveAll(dir string, fsys FS) error {
	if fsys == nil {
		fsys = OSFS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("statestore: wipe dir: %w", err)
	}
	var errs []error
	for _, name := range names {
		_, isSnap := parseGen(name, "snap-", snapSuffix)
		_, isWal := parseGen(name, "wal-", walSuffix)
		if isSnap || isWal || strings.HasSuffix(name, tmpSuffix) {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
