package statestore

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrCrashed is returned by every CrashFS operation from the crash
// point onward: the simulated process is dead and nothing it does
// afterwards reaches the disk.
var ErrCrashed = errors.New("statestore: simulated crash")

// CrashFS wraps another FS and kills the process at a chosen mutation,
// in the spirit of internal/chaos: deterministic, seeded, and honest
// about what real crashes do to half-written state.
//
// Durability is modelled the way a kernel page cache behaves: bytes
// written to a file sit in a pending buffer until Sync flushes them to
// the inner FS. At the crash point the harness flushes a seeded-random
// *prefix* of every pending buffer — the torn tail an interrupted
// append or snapshot write leaves behind — and a pending rename is
// performed or skipped by a seeded coin flip (a rename is atomic, so a
// crash leaves either the old name or the new, never a blend). Every
// operation after the crash returns ErrCrashed.
//
// Mutating operations (Create, OpenAppend, Write, Sync, Rename, Remove,
// Truncate, SyncDir, MkdirAll) each count as one crash point, so a
// sweep over CrashAt(0..Ops()) visits every interesting interleaving:
// mid-journal-append, mid-snapshot-body, between snapshot fsync and
// rename, mid-rename, between rename and directory fsync.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int
	crashAt int // op index that crashes; <0 never crashes
	crashed bool
	files   map[*crashFile]bool
}

// NewCrashFS wraps inner with a crash harness drawing tear lengths and
// rename outcomes from the seed. It starts disarmed (never crashes);
// arm it with CrashAt.
func NewCrashFS(inner FS, seed int64) *CrashFS {
	return &CrashFS{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		crashAt: -1,
		files:   make(map[*crashFile]bool),
	}
}

// CrashAt arms the harness: the n-th mutating operation (0-based)
// crashes. Call before driving the store.
func (c *CrashFS) CrashAt(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashAt = n
}

// Ops reports how many mutating operations have been counted — run the
// workload once disarmed to size the sweep.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the crash point was reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step counts one mutating operation and reports whether THIS call is
// the crash point. Callers must hold c.mu and have already bailed if
// c.crashed is set.
func (c *CrashFS) step() bool {
	op := c.ops
	c.ops++
	if c.crashAt >= 0 && op == c.crashAt {
		c.crash()
		return true
	}
	return false
}

// crash marks the filesystem dead and tears every pending buffer: a
// seeded-random prefix of each open file's unflushed bytes reaches the
// inner FS, the rest vanishes. Callers must hold c.mu.
func (c *CrashFS) crash() {
	c.crashed = true
	for f := range c.files {
		f.tear(c.rng)
	}
}

// MkdirAll implements FS.
func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return ErrCrashed
	}
	return c.inner.MkdirAll(dir)
}

// ReadDir implements FS. Reads are free (recovery runs them), but a
// crashed process cannot read either.
func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return c.inner.ReadDir(dir)
}

// ReadFile implements FS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return c.inner.ReadFile(name)
}

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return nil, ErrCrashed
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{fs: c, inner: f}
	c.files[cf] = true
	return cf, nil
}

// OpenAppend implements FS.
func (c *CrashFS) OpenAppend(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return nil, ErrCrashed
	}
	f, err := c.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{fs: c, inner: f}
	c.files[cf] = true
	return cf, nil
}

// Rename implements FS. A crash at the rename performs or skips it by a
// seeded coin flip: the operation is atomic on a journaling filesystem,
// but whether it happened before the power died is a coin flip.
func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if c.step() {
		if c.rng.Intn(2) == 1 {
			_ = c.inner.Rename(oldname, newname) //tagwatch:allow-fsyncorder fault-injection interposer: barrier discipline belongs to the caller under test
		}
		return ErrCrashed
	}
	return c.inner.Rename(oldname, newname) //tagwatch:allow-fsyncorder fault-injection interposer: barrier discipline belongs to the caller under test
}

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return ErrCrashed
	}
	return c.inner.Remove(name)
}

// Truncate implements FS.
func (c *CrashFS) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return ErrCrashed
	}
	return c.inner.Truncate(name, size)
}

// SyncDir implements FS.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.step() {
		return ErrCrashed
	}
	return c.inner.SyncDir(dir)
}

// crashFile buffers writes until Sync, modelling the page cache: bytes
// not yet synced may tear or vanish at the crash.
type crashFile struct {
	fs      *CrashFS
	inner   File
	pending []byte
	dead    bool
}

// Write implements File: bytes land in the pending buffer, durable only
// after Sync.
func (f *crashFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead || f.fs.crashed || f.fs.step() {
		f.dead = true
		return 0, ErrCrashed
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

// Sync implements File: flush the pending buffer to the inner FS and
// fsync it. A crash at this point tears the buffer instead.
func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead || f.fs.crashed || f.fs.step() {
		f.dead = true
		return ErrCrashed
	}
	if err := f.flushLocked(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements File. An un-synced buffer is flushed without an
// fsync — on a real system those bytes usually reach the disk soon
// after, and a crash between Close and that writeback is modelled by
// crashing at an earlier op instead.
func (f *crashFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	delete(f.fs.files, f)
	if f.dead || f.fs.crashed {
		f.dead = true
		f.inner.Close()
		return ErrCrashed
	}
	if err := f.flushLocked(); err != nil {
		f.inner.Close()
		return err
	}
	return f.inner.Close()
}

// flushLocked writes the pending buffer through. Callers hold fs.mu.
func (f *crashFile) flushLocked() error {
	if len(f.pending) == 0 {
		return nil
	}
	_, err := f.inner.Write(f.pending)
	f.pending = nil
	return err
}

// tear flushes a seeded-random prefix of the pending buffer — the
// half-written state a crash leaves behind — and marks the file dead.
// Callers hold fs.mu.
func (f *crashFile) tear(rng *rand.Rand) {
	if n := len(f.pending); n > 0 {
		keep := rng.Intn(n + 1)
		if keep > 0 {
			_, _ = f.inner.Write(f.pending[:keep])
		}
		f.pending = nil
	}
	f.dead = true
	_ = f.inner.Close()
}
