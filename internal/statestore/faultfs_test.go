package statestore

import (
	"errors"
	"fmt"
	"testing"
)

// faultStore opens a store whose filesystem is a disarmed FaultFS over
// the real one, so the test can boot clean and spring faults at a
// chosen point in the workload.
func faultStore(t *testing.T, dir string, cfg FaultConfig) (*Store, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(OSFS{}, cfg)
	ffs.Arm(false)
	st, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	return st, ffs
}

// reopenClean reopens the directory on the honest filesystem — the
// recovery half of every fault case: whatever was acked durable before
// the fault must come back.
func reopenClean(t *testing.T, dir string) (*Store, Recovery) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st, st.Recovery()
}

// ENOSPC mid-WAL-append: the write fails outright, the store poisons
// per the contract, and a clean reopen recovers exactly the acked
// records.
func TestFaultFSENOSPCMidWALAppend(t *testing.T) {
	dir := t.TempDir()
	st, ffs := faultStore(t, dir, FaultConfig{Seed: 1, WriteErrProb: 1})

	const acked = 5
	for i := 0; i < acked; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("clean append %d: %v", i, err)
		}
	}

	ffs.Arm(true)
	err := st.Append([]byte("lost"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append on a full disk: %v, want ErrNoSpace", err)
	}
	// Poisoned: the journal tail is unknown, so further mutation must
	// refuse rather than write past a possible tear.
	if err := st.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poisoning: %v, want ErrPoisoned", err)
	}
	if err := st.WriteSnapshot([]byte("snap")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot after poisoning: %v, want ErrPoisoned", err)
	}
	if s := ffs.Stats(); s.WriteFaults == 0 {
		t.Fatalf("fault never fired: %+v", s)
	}
	st.Close()

	st2, rec := reopenClean(t, dir)
	if len(rec.Records) != acked {
		t.Fatalf("recovered %d records, want %d acked", len(rec.Records), acked)
	}
	for i, r := range rec.Records {
		if want := fmt.Sprintf("rec-%d", i); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
	if rec.ReplayStopped {
		t.Fatal("replay stopped; a clean-boundary ENOSPC must not strand the chain")
	}
	if err := st2.Append([]byte("recovered")); err != nil {
		t.Fatalf("store not usable after recovery: %v", err)
	}
}

// EIO mid-snapshot: the checkpoint's own fsync fails, the store
// poisons, and recovery falls back to the previous generation with no
// acked record lost.
func TestFaultFSEIOMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, ffs := faultStore(t, dir, FaultConfig{Seed: 2, SyncErrProb: 1})

	if err := st.WriteSnapshot([]byte("base")); err != nil {
		t.Fatal(err)
	}
	const acked = 4
	for i := 0; i < acked; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ffs.Arm(true)
	err := st.WriteSnapshot([]byte("next"))
	if !errors.Is(err, ErrIOFault) {
		t.Fatalf("snapshot on failing media: %v, want ErrIOFault", err)
	}
	if err := st.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poisoning: %v, want ErrPoisoned", err)
	}
	if s := ffs.Stats(); s.SyncFaults == 0 {
		t.Fatalf("fault never fired: %+v", s)
	}
	st.Close()

	_, rec := reopenClean(t, dir)
	if !rec.HasSnapshot || string(rec.Snapshot) != "base" {
		t.Fatalf("recovered snapshot %q (has=%v), want the previous generation's %q",
			rec.Snapshot, rec.HasSnapshot, "base")
	}
	if len(rec.Records) != acked {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), acked)
	}
	if rec.CorruptSnapshots != 0 {
		t.Fatalf("%d corrupt snapshots surfaced; the interrupted tmp must be invisible", rec.CorruptSnapshots)
	}
}

// Short write mid-append: a prefix of the frame lands, the store
// poisons, and recovery truncates the torn tail back to the last acked
// boundary.
func TestFaultFSShortWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	st, ffs := faultStore(t, dir, FaultConfig{Seed: 3, ShortWriteProb: 1})

	const acked = 3
	for i := 0; i < acked; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ffs.Arm(true)
	err := st.Append([]byte("torn-record-payload"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write: %v, want ErrNoSpace", err)
	}
	if s := ffs.Stats(); s.ShortWrites == 0 {
		t.Fatalf("fault never fired: %+v", s)
	}
	st.Close()

	st2, rec := reopenClean(t, dir)
	if len(rec.Records) != acked {
		t.Fatalf("recovered %d records, want %d acked", len(rec.Records), acked)
	}
	if rec.TornTailBytes == 0 {
		t.Fatal("no torn tail reported; the short write must leave one")
	}
	if rec.ReplayStopped {
		t.Fatal("a tail tear on the newest journal must not stop replay")
	}
	// The truncated store extends a clean boundary: append, reopen,
	// everything is there.
	if err := st2.Append([]byte("rec-3")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	st2.Close()
	_, rec2 := reopenClean(t, dir)
	if len(rec2.Records) != acked+1 || string(rec2.Records[acked]) != "rec-3" {
		t.Fatalf("second recovery: %d records, want %d", len(rec2.Records), acked+1)
	}
}

// EIO at the directory sync after a snapshot rename: poisoned, but the
// snapshot file itself was fsynced before the rename, so recovery finds
// the new generation intact.
func TestFaultFSDirSyncFault(t *testing.T) {
	dir := t.TempDir()
	st, ffs := faultStore(t, dir, FaultConfig{Seed: 4, DirSyncErrProb: 1})

	if err := st.WriteSnapshot([]byte("base")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(true)
	err := st.WriteSnapshot([]byte("next"))
	if !errors.Is(err, ErrIOFault) {
		t.Fatalf("snapshot with failing dir sync: %v, want ErrIOFault", err)
	}
	if err := st.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poisoning: %v, want ErrPoisoned", err)
	}
	st.Close()

	_, rec := reopenClean(t, dir)
	if !rec.HasSnapshot {
		t.Fatal("no snapshot recovered")
	}
	// Either generation is a consistent full checkpoint; what must never
	// happen is a blend or a loss of both.
	if got := string(rec.Snapshot); got != "next" && got != "base" {
		t.Fatalf("recovered snapshot %q, want a whole checkpoint", got)
	}
}
