package statestore

import (
	"bytes"
	"testing"
)

// BenchmarkWALAppend measures the hot durable-path operation: one
// journal record framed, checksummed, and written through the
// single-writer WAL. This is what every registry flush pays per dirty
// tag, so it anchors the perf trajectory in BENCH_core.json.
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	rec := bytes.Repeat([]byte{0xAB}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
