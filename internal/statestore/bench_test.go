package statestore

import (
	"bytes"
	"testing"
)

// BenchmarkWALAppend measures the hot durable-path operation: one
// journal record framed, checksummed, and written through the
// single-writer WAL. This is what every registry flush pays per dirty
// tag, so it anchors the perf trajectory in BENCH_core.json.
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	rec := bytes.Repeat([]byte{0xAB}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalStream measures the replication feed: a JournalReader
// draining a committed journal in bounded batches, the per-connection
// cost a shipper pays to bring a standby from a cursor to caught-up.
func BenchmarkJournalStream(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	rec := bytes.Repeat([]byte{0xCD}, 256)
	const count = 4096
	start := s.Committed()
	for i := 0; i < count; i++ {
		if err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(count * len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.Tail(start, TailOptions{})
		n := 0
		for {
			recs, _, err := r.Poll()
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) == 0 {
				break
			}
			n += len(recs)
		}
		r.Close()
		if n != count {
			b.Fatalf("streamed %d records, want %d", n, count)
		}
	}
}
