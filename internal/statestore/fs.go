package statestore

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of filesystem behaviour the store depends on. The
// store never touches the os package directly: every mutation flows
// through this interface so the crash harness (CrashFS) can interpose
// at each durability-relevant step — a write that tears, a rename that
// never lands, an fsync that is acknowledged but not performed.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of the directory's entries.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to the given size.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so renames and creates within it are
	// durable.
	SyncDir(dir string) error
}

// File is the writable-file slice the store needs: sequential writes,
// an explicit durability barrier, and close.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage. Append is only
	// acked as durable after Sync returns nil.
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. On POSIX systems a rename is only durable once
// the containing directory has been fsynced.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
