package scenario

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"tagwatch/internal/rf"
)

func validSpec() Spec {
	return Spec{
		Name:       "test",
		Duration:   2 * time.Minute,
		Population: 40,
		CrossTime:  2 * time.Second,
		Categories: []Category{{Name: "box", Weight: 1, ParkProb: 0.5, MeanDwell: 30 * time.Second, GammaAlpha: 5}},
		Gates: []Gate{
			{Reader: "in", Antennas: 2, Center: rf.Pt(0, 0, 2)},
			{Reader: "out", Antennas: 2, Center: rf.Pt(10, 0, 2)},
		},
		Route: []int{0, 1},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"zero duration", func(s *Spec) { s.Duration = 0 }, "non-positive duration"},
		{"negative duration", func(s *Spec) { s.Duration = -time.Second }, "non-positive duration"},
		{"empty population", func(s *Spec) { s.Population = 0 }, "empty population"},
		{"negative population", func(s *Spec) { s.Population = -1 }, "negative population"},
		{"mover fraction", func(s *Spec) { s.MoverFraction = 1.5 }, "mover fraction"},
		{"zero cross", func(s *Spec) { s.CrossTime = 0 }, "non-positive cross time"},
		{"no categories", func(s *Spec) { s.Categories = nil }, "no categories"},
		{"zero weight", func(s *Spec) { s.Categories[0].Weight = 0 }, "non-positive weight"},
		{"park prob", func(s *Spec) { s.Categories[0].ParkProb = 2 }, "park probability"},
		{"park without dwell", func(s *Spec) { s.Categories[0].MeanDwell = 0 }, "non-positive dwell"},
		{"park without gamma", func(s *Spec) { s.Categories[0].GammaAlpha = 0 }, "non-positive gamma alpha"},
		{"no gates", func(s *Spec) { s.Gates = nil }, "no gates"},
		{"unnamed gate", func(s *Spec) { s.Gates[0].Reader = "" }, "no reader name"},
		{"duplicate gate", func(s *Spec) { s.Gates[1].Reader = "in" }, "duplicate reader"},
		{"no antennas", func(s *Spec) { s.Gates[0].Antennas = 0 }, "at least one antenna"},
		{"no route", func(s *Spec) { s.Route = nil }, "needs a route"},
		{"route range", func(s *Spec) { s.Route = []int{7} }, "out of range"},
		{"churn one gate", func(s *Spec) {
			s.Gates = s.Gates[:1]
			s.Route = []int{0}
			s.Residents, s.MoverFraction = 10, 0.1
		}, "at least two gates"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestPacksValidateAndCompile(t *testing.T) {
	packs := Packs()
	if len(packs) < 5 {
		t.Fatalf("want at least 5 built-in packs, have %d", len(packs))
	}
	for _, p := range packs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("pack invalid: %v", err)
			}
			c, err := Compile(p, 7)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if c.Stats.Tags == 0 || c.Stats.Readings == 0 || c.Stats.Events == 0 {
				t.Fatalf("degenerate timeline: %+v", c.Stats)
			}
			if len(p.Gates) > 1 && c.Stats.GateChanges == 0 {
				t.Errorf("multi-gate pack produced no gate changes (no handoffs on replay)")
			}
			// Events ordered by (At, Gate); readings within an event precede
			// its timestamp and are ordered.
			for i, ev := range c.Events {
				if i > 0 {
					prev := c.Events[i-1]
					if ev.At < prev.At || (ev.At == prev.At && ev.Gate <= prev.Gate) {
						t.Fatalf("event %d out of order: %v/%d after %v/%d", i, ev.At, ev.Gate, prev.At, prev.Gate)
					}
				}
				for j, r := range ev.Readings {
					if r.At > ev.At {
						t.Fatalf("event %d reading %d at %v after window end %v", i, j, r.At, ev.At)
					}
					if j > 0 && r.At < ev.Readings[j-1].At {
						t.Fatalf("event %d readings unsorted", i)
					}
					if int(r.Tag) >= len(c.Tags) {
						t.Fatalf("event %d reading %d tag index %d out of range", i, j, r.Tag)
					}
					if r.Antenna < 1 || int(r.Antenna) > p.Gates[ev.Gate].Antennas {
						t.Fatalf("event %d reading %d antenna %d outside gate ports", i, j, r.Antenna)
					}
				}
			}
			// Category structure is recoverable from the EPC prefix: byte 2
			// carries 0xA0 | category.
			for i, tag := range c.Tags {
				b := tag.EPC.Bytes()
				if len(b) < 3 || int(b[2]&0x0F) != tag.Category {
					t.Fatalf("tag %d EPC %s does not encode category %d", i, tag.EPC, tag.Category)
				}
			}
			for _, cs := range c.Stats.PerCategory {
				if cs.Tags == 0 {
					t.Errorf("category %s got no tags", cs.Name)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("retail-rush"); err != nil {
		t.Fatalf("lookup retail-rush: %v", err)
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown pack") {
		t.Fatalf("lookup nope: %v", err)
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names unsorted: %v", names)
		}
	}
}

func TestBuildScene(t *testing.T) {
	for _, p := range Packs() {
		sc, err := p.BuildScene(rand.New(rand.NewSource(3)), 50)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		wantAnts := 0
		for _, g := range p.Gates {
			wantAnts += g.Antennas
		}
		if len(sc.Antennas) != wantAnts {
			t.Errorf("%s: %d antennas, want %d", p.Name, len(sc.Antennas), wantAnts)
		}
		if len(sc.Tags) == 0 || len(sc.Tags) > 50 {
			t.Errorf("%s: %d tags outside (0,50]", p.Name, len(sc.Tags))
		}
		// A flowing pack must put at least one tag in motion somewhere;
		// scan at half the crossing time so even second-long transits at
		// hour scale are caught.
		if p.Population > 0 {
			moving := false
			for _, tag := range sc.Tags {
				for ti := time.Duration(0); ti < p.Duration && !moving; ti += p.CrossTime / 2 {
					moving = tag.Traj.Moving(ti)
				}
				if moving {
					break
				}
			}
			if !moving {
				t.Errorf("%s: no tag ever moves in the built scene", p.Name)
			}
		}
	}
}

func TestTraceConfig(t *testing.T) {
	for _, p := range Packs() {
		cfg, err := p.TraceConfig()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: derived trace config invalid: %v", p.Name, err)
		}
		if cfg.Arrivals != p.Population+p.Residents {
			t.Errorf("%s: arrivals %d, want %d", p.Name, cfg.Arrivals, p.Population+p.Residents)
		}
	}
}
