// Package scenario is the workload factory: a declarative Spec describes a
// tagged facility — population size and churn, mover fraction, category
// structure, gate geometry, arrival process — and compiles into the three
// artifacts the rest of the repo consumes:
//
//   - a Compiled timeline of per-gate reading cycles, the input to the
//     replay daemon (cmd/replayd) and to capacity-planning runs,
//   - an internal/scene world for simulator-driven experiments, and
//   - an internal/trace configuration for the statistical CSV generator
//     (cmd/tracegen -scenario).
//
// The paper's evidence is exactly one such scenario — the TrackPoint
// sorting facility of §2.4, where parked parcels starve crossing ones —
// and the built-in pack catalog generalises it: warehouse cross-docks,
// airport baggage routes, hospital asset tracking, and retail exit-gate
// rushes, each with calibrated mover fractions and churn. Populations are
// category-structured ("A Near-Optimal Category Information Sampling in
// RFID Systems", arXiv:2406.10347): every category owns an EPC prefix, so
// apps can query category counts without enumerating EPCs, and the packs
// sweep population churn far past the paper's 527 tags ("An Improved AFSA
// Algorithm", arXiv:1405.6217).
//
// Everything here is seeded and deterministic: no wall clock, no global
// RNG (enforced by tagwatchvet's simclock analyzer — this package is in
// its restricted set). The same (Spec, seed) pair compiles to a
// byte-identical timeline on every machine.
package scenario

import (
	"fmt"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/rf"
)

// Category is one slice of the population with its own dwell behaviour.
// Categories are what applications aggregate over (count pallets, not
// EPCs); each category owns a distinct EPC header byte so membership is
// recoverable from the code itself.
type Category struct {
	// Name labels the category in reports.
	Name string
	// Weight is the category's relative share of the population (weights
	// need not sum to 1; they are normalised).
	Weight float64
	// ParkProb is the probability a tag of this category parks in range of
	// its final gate instead of leaving.
	ParkProb float64
	// MeanDwell is the mean parked dwell before departure (exponential).
	MeanDwell time.Duration
	// GammaAlpha shapes the parked coupling γ ∈ (0,1]: γ = u^GammaAlpha for
	// uniform u, so large values skew toward weak coupling (marginal range)
	// with a heavy right tail of strongly-coupled bays — the paper's
	// "tag #271" mechanism.
	GammaAlpha float64
}

// Gate is one reader with its antenna geometry. A tag "at" a gate is in
// that reader's RF field and contends for its channel.
type Gate struct {
	// Reader names the gate's reader (the fleet registry's reader key).
	Reader string
	// Antennas is the number of antenna ports (1-based IDs, as LLRP).
	Antennas int
	// Center is the gate's position; antennas spread along x around it.
	Center rf.Point
	// Spacing is the antenna spacing in metres (default 0.5).
	Spacing float64
}

// Arrival tunes the arrival process of the flowing population.
type Arrival struct {
	// BatchMean is the mean batch size: parcels reach a gate on shared
	// trays/carts, so tens can be in flight at once (minimum 1).
	BatchMean float64
	// RushAt, when positive, concentrates arrivals in a triangular burst
	// peaking at this fraction of the duration (the retail closing-time
	// rush); zero spreads batches uniformly.
	RushAt float64
	// RushWidth is the burst half-width as a fraction of the duration
	// (default 0.25 when RushAt is set).
	RushWidth float64
}

// Spec declaratively describes a workload. Compile turns it into a
// timeline; BuildScene and TraceConfig derive the other artifact forms.
type Spec struct {
	// Name identifies the scenario (pack names are kebab-case).
	Name string
	// Description is a one-line catalog entry.
	Description string

	// Duration is the virtual length of the scenario.
	Duration time.Duration
	// Step is the simulation resolution (default 1s).
	Step time.Duration
	// Cycle is the assessment-cycle window: each gate emits one CycleEvent
	// (readings + mobility verdicts + summary) per window (default 2s).
	Cycle time.Duration

	// Population is the number of distinct flowing tags that arrive over
	// the duration and follow Route through the gates.
	Population int
	// Residents is the number of tags parked in range from t=0 (warehouse
	// stock, hospital assets); they churn between gates per MoverFraction.
	Residents int
	// MoverFraction is the target fraction of residents in motion at any
	// instant; it calibrates how often a resident relocates to another
	// gate. Ignored when Residents is zero.
	MoverFraction float64

	// CrossTime is the mean transit through one gate's field (jittered
	// ±50% per crossing).
	CrossTime time.Duration
	// TransitTime is the mean gap between consecutive gates on the route
	// (no reader sees the tag in between).
	TransitTime time.Duration

	// Arrival shapes the flowing population's arrival process.
	Arrival Arrival
	// Cost converts concurrent in-range population into per-tag reading
	// rate (zero value defaults to the paper's R420 constants).
	Cost aloha.CostModel

	// Categories partition the population (at least one required).
	Categories []Category
	// Gates lists the readers (at least one required).
	Gates []Gate
	// Route is the ordered gate-index path flowing tags take. Required
	// when Population > 0.
	Route []int
}

// Validate rejects specs that would compile to degenerate or
// non-deterministic timelines. The zero values of Step, Cycle, Cost,
// Arrival.BatchMean, and Gate.Spacing are defaulted, not rejected.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: non-positive duration %v", s.Name, s.Duration)
	}
	if s.Step < 0 || s.Cycle < 0 {
		return fmt.Errorf("scenario %s: negative step/cycle", s.Name)
	}
	if s.Population < 0 || s.Residents < 0 {
		return fmt.Errorf("scenario %s: negative population", s.Name)
	}
	if s.Population+s.Residents == 0 {
		return fmt.Errorf("scenario %s: empty population", s.Name)
	}
	if s.MoverFraction < 0 || s.MoverFraction > 1 {
		return fmt.Errorf("scenario %s: mover fraction %v outside [0,1]", s.Name, s.MoverFraction)
	}
	if s.CrossTime <= 0 {
		return fmt.Errorf("scenario %s: non-positive cross time %v", s.Name, s.CrossTime)
	}
	if s.TransitTime < 0 {
		return fmt.Errorf("scenario %s: negative transit time %v", s.Name, s.TransitTime)
	}
	if len(s.Categories) == 0 {
		return fmt.Errorf("scenario %s: no categories", s.Name)
	}
	if len(s.Categories) > 16 {
		return fmt.Errorf("scenario %s: %d categories exceed the EPC header space (16)", s.Name, len(s.Categories))
	}
	totalWeight := 0.0
	for i, c := range s.Categories {
		if c.Name == "" {
			return fmt.Errorf("scenario %s: category %d unnamed", s.Name, i)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("scenario %s: category %s non-positive weight %v", s.Name, c.Name, c.Weight)
		}
		totalWeight += c.Weight
		if c.ParkProb < 0 || c.ParkProb > 1 {
			return fmt.Errorf("scenario %s: category %s park probability %v outside [0,1]", s.Name, c.Name, c.ParkProb)
		}
		if c.ParkProb > 0 {
			if c.MeanDwell <= 0 {
				return fmt.Errorf("scenario %s: category %s parks but has non-positive dwell %v", s.Name, c.Name, c.MeanDwell)
			}
			if c.GammaAlpha <= 0 {
				return fmt.Errorf("scenario %s: category %s parks but has non-positive gamma alpha %v", s.Name, c.Name, c.GammaAlpha)
			}
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("scenario %s: zero total category weight", s.Name)
	}
	if len(s.Gates) == 0 {
		return fmt.Errorf("scenario %s: no gates", s.Name)
	}
	seen := make(map[string]bool, len(s.Gates))
	for i, g := range s.Gates {
		if g.Reader == "" {
			return fmt.Errorf("scenario %s: gate %d has no reader name", s.Name, i)
		}
		if seen[g.Reader] {
			return fmt.Errorf("scenario %s: duplicate reader name %q", s.Name, g.Reader)
		}
		seen[g.Reader] = true
		if g.Antennas < 1 {
			return fmt.Errorf("scenario %s: gate %s needs at least one antenna", s.Name, g.Reader)
		}
	}
	if s.Population > 0 && len(s.Route) == 0 {
		return fmt.Errorf("scenario %s: flowing population needs a route", s.Name)
	}
	for _, gi := range s.Route {
		if gi < 0 || gi >= len(s.Gates) {
			return fmt.Errorf("scenario %s: route gate index %d out of range", s.Name, gi)
		}
	}
	if s.Residents > 0 && s.MoverFraction > 0 && len(s.Gates) < 2 {
		return fmt.Errorf("scenario %s: resident churn needs at least two gates to move between", s.Name)
	}
	if s.Arrival.BatchMean < 0 {
		return fmt.Errorf("scenario %s: negative batch mean %v", s.Name, s.Arrival.BatchMean)
	}
	if s.Arrival.RushAt < 0 || s.Arrival.RushAt > 1 || s.Arrival.RushWidth < 0 || s.Arrival.RushWidth > 1 {
		return fmt.Errorf("scenario %s: rush parameters outside [0,1]", s.Name)
	}
	return nil
}

// withDefaults fills the defaulted zero values; call after Validate.
func (s Spec) withDefaults() Spec {
	if s.Step <= 0 {
		s.Step = time.Second
	}
	if s.Cycle <= 0 {
		s.Cycle = 2 * time.Second
	}
	if s.Cycle < s.Step {
		s.Cycle = s.Step
	}
	if s.Cost == (aloha.CostModel{}) {
		s.Cost = aloha.PaperCostModel()
	}
	if s.Arrival.BatchMean < 1 {
		s.Arrival.BatchMean = 1
	}
	if s.Arrival.RushAt > 0 && s.Arrival.RushWidth == 0 {
		s.Arrival.RushWidth = 0.25
	}
	for i := range s.Gates {
		if s.Gates[i].Spacing <= 0 {
			s.Gates[i].Spacing = 0.5
		}
	}
	return s
}
