package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current generator")

// goldenEntry pins one pack's compiled identity at seed 1. The digest is a
// SHA-256 over the canonical timeline encoding, so any change to the
// generator's draw order, pack parameters, or event layout shows up as a
// diff here — run `go test ./internal/scenario -run TestGolden -update`
// after an intentional change.
type goldenEntry struct {
	Digest   string `json:"digest"`
	Tags     int    `json:"tags"`
	Readings int    `json:"readings"`
	Events   int    `json:"events"`
}

const goldenSeed = 1

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

// TestGoldenDeterminism proves every built-in pack compiles to a
// byte-identical timeline for a fixed seed: twice in-process, and against
// the checked-in golden digests (cross-machine, cross-run determinism).
func TestGoldenDeterminism(t *testing.T) {
	got := make(map[string]goldenEntry)
	for _, p := range Packs() {
		a, err := Compile(p, goldenSeed)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, err := Compile(p, goldenSeed)
		if err != nil {
			t.Fatalf("%s (second compile): %v", p.Name, err)
		}
		da, db := a.Digest(), b.Digest()
		if da != db {
			t.Fatalf("%s: same seed compiled to different timelines: %s vs %s", p.Name, da, db)
		}
		if c, err := Compile(p, goldenSeed+1); err != nil {
			t.Fatalf("%s (seed+1): %v", p.Name, err)
		} else if c.Digest() == da {
			t.Fatalf("%s: different seeds compiled to the same timeline", p.Name)
		}
		got[p.Name] = goldenEntry{Digest: da, Tags: a.Stats.Tags, Readings: a.Stats.Readings, Events: a.Stats.Events}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten with %d packs", len(got))
		return
	}

	data, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	want := make(map[string]goldenEntry)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (run with -update)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: compiled timeline diverged from golden:\n got %+v\nwant %+v\n(run with -update if intentional)", name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: in golden file but no longer a built-in pack", name)
		}
	}
}
