package scenario

import (
	"testing"
	"time"
)

// benchSpec is retail-rush shrunk so the benchmark measures compile
// throughput, not a full-hour simulation.
func benchSpec() Spec {
	spec, err := Lookup("retail-rush")
	if err != nil {
		panic(err)
	}
	spec.Duration = 2 * time.Minute
	spec.Population = 100
	spec.TransitTime = 15 * time.Second
	return spec
}

// BenchmarkCompileTimeline measures the scenario factory end to end:
// spec validation, visit scheduling, the step-grid reading simulation,
// and event assembly.
func BenchmarkCompileTimeline(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(spec, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
