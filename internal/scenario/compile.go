package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"sort"
	"time"

	"tagwatch/internal/epc"
)

// Reading is one compiled tag observation: what one gate's reader would
// deliver upstream. Tag indexes into Compiled.Tags; phase/RSS are
// synthetic draws (the replay path exercises the fleet pipeline, not the
// RF channel — use BuildScene for physical-layer fidelity).
type Reading struct {
	Tag      int32
	At       time.Duration // virtual timestamp
	Antenna  uint8         // 1-based port on the event's gate
	Channel  uint8         // hop channel index
	PhaseRad float32
	RSSdBm   float32
}

// CycleEvent is one gate's assessment cycle: every reading delivered in
// the window, the distinct-present count, and the tags whose motion the
// cycle would assess as mobile. The replay daemon turns each event into a
// registry merge + assessment refresh + bus cycle summary.
type CycleEvent struct {
	At       time.Duration // window end (virtual)
	Gate     int           // index into Spec.Gates
	Present  int           // distinct tags read in the window
	Readings []Reading     // ordered by (At, Tag, Antenna)
	Mobile   []int32       // sorted tag indexes read while crossing
}

// TagInfo summarises one compiled tag's life.
type TagInfo struct {
	EPC      epc.EPC
	Category int
	Resident bool
	Arrive   time.Duration
	Depart   time.Duration
	Parked   bool // ended the trace (or its dwell) parked
	Reads    int
	// GateVisits counts distinct gate stays; a tag read at k > 1 gates
	// produces k-1 registry handoffs on replay.
	GateVisits int
}

// CategoryStats aggregates one category — the query unit of
// category-level applications.
type CategoryStats struct {
	Name     string
	Tags     int
	Readings int
}

// Stats summarises a compiled timeline.
type Stats struct {
	Tags           int
	Readings       int
	Events         int
	PeakConcurrent int // max tags simultaneously in any gate's field
	// GateChanges is the number of tag relocations between gates with
	// reads on both sides — the lower bound on replay handoffs.
	GateChanges int
	PerCategory []CategoryStats
}

// Compiled is a scenario timeline: deterministic for a (Spec, seed) pair,
// ordered by (At, Gate), ready to stream through the fleet.
type Compiled struct {
	Spec   Spec
	Seed   int64
	Tags   []TagInfo
	Events []CycleEvent
	Stats  Stats
}

// visit is one contiguous stay of a tag in one gate's field.
type visit struct {
	tag      int32
	gate     int
	from, to time.Duration
	moving   bool
	gamma    float64 // parked coupling; 1 while moving
}

// Compile turns a spec into a timeline. The same (spec, seed) pair always
// yields a byte-identical result (see Digest); every stochastic draw flows
// from the one seeded stream.
func Compile(spec Spec, seed int64) (*Compiled, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	c := &Compiled{Spec: spec, Seed: seed}
	var visits []visit

	// ---- Residents: parked from t=0, relocating per MoverFraction. ----
	// Target: MoverFraction of residents in motion at any instant, so each
	// resident makes about MoverFraction·Duration/CrossTime moves.
	movesPerResident := 0.0
	if spec.MoverFraction > 0 {
		movesPerResident = spec.MoverFraction * float64(spec.Duration) / float64(spec.CrossTime)
	}
	for i := 0; i < spec.Residents; i++ {
		cat := pickCategory(rng, spec.Categories)
		idx := int32(len(c.Tags))
		c.Tags = append(c.Tags, TagInfo{Category: cat, Resident: true, Depart: spec.Duration, Parked: true})
		gate := rng.Intn(len(spec.Gates))
		moveTimes := drawTimes(rng, poisson(rng, movesPerResident), spec.Duration)
		at := time.Duration(0)
		for _, m := range moveTimes {
			if m <= at {
				continue
			}
			visits = append(visits, visit{tag: idx, gate: gate, from: at, to: m,
				gamma: drawGamma(rng, spec.Categories[cat])})
			next := otherGate(rng, len(spec.Gates), gate)
			cross := jitter(rng, spec.CrossTime)
			visits = append(visits, visit{tag: idx, gate: next, from: m, to: m + cross, moving: true, gamma: 1})
			gate, at = next, m+cross
		}
		if at < spec.Duration {
			visits = append(visits, visit{tag: idx, gate: gate, from: at, to: spec.Duration,
				gamma: drawGamma(rng, spec.Categories[cat])})
		}
	}

	// ---- Flowing population: batched arrivals crossing the route. ----
	remaining := spec.Population
	for remaining > 0 {
		k := 1 + poisson(rng, spec.Arrival.BatchMean-1)
		if k > remaining {
			k = remaining
		}
		remaining -= k
		t0 := arrivalTime(rng, spec)
		for j := 0; j < k; j++ {
			cat := pickCategory(rng, spec.Categories)
			idx := int32(len(c.Tags))
			info := TagInfo{Category: cat, Arrive: t0}
			at := t0
			for _, gi := range spec.Route {
				cross := jitter(rng, spec.CrossTime)
				visits = append(visits, visit{tag: idx, gate: gi, from: at, to: at + cross, moving: true, gamma: 1})
				at += cross
				if spec.TransitTime > 0 {
					at += jitter(rng, spec.TransitTime)
				}
			}
			catSpec := spec.Categories[cat]
			if catSpec.ParkProb > 0 && rng.Float64() < catSpec.ParkProb {
				dwell := time.Duration(rng.ExpFloat64() * float64(catSpec.MeanDwell))
				last := spec.Route[len(spec.Route)-1]
				visits = append(visits, visit{tag: idx, gate: last, from: at, to: at + dwell,
					gamma: drawGamma(rng, catSpec)})
				info.Parked = true
				at += dwell
			}
			info.Depart = at
			if info.Depart > spec.Duration {
				info.Depart = spec.Duration
			}
			c.Tags = append(c.Tags, info)
		}
	}

	// ---- Identity: category-prefixed sequential EPCs. ----
	// Each category owns a header byte, so category membership is
	// recoverable from the EPC prefix alone (the arXiv:2406.10347 query
	// model: count categories without enumerating codes).
	for i := range c.Tags {
		code, err := epc.SequentialPopulation(
			[]byte{0x30, 0x1C, 0xA0 | byte(c.Tags[i].Category)}, uint32(i), 1, epc.StandardBits)
		if err != nil {
			return nil, err
		}
		c.Tags[i].EPC = code[0]
	}

	c.simulate(rng, visits)
	c.finishStats()
	return c, nil
}

// gateState tracks one gate's live visits and the current cycle bucket.
type gateState struct {
	live []visit
	next int // index of the first unconsumed visit in the gate's queue
	// queue holds the gate's visits sorted by from.
	queue []visit
	// bucket accumulates the current cycle window.
	readings []Reading
	touched  map[int32]bool // read this window
	mobile   map[int32]bool // read while moving this window
}

// simulate walks the step grid, drawing per-step Poisson readings for
// every live visit under the shared-channel cost model, and flushes one
// CycleEvent per gate per cycle window.
func (c *Compiled) simulate(rng *rand.Rand, visits []visit) {
	spec := c.Spec
	gates := make([]*gateState, len(spec.Gates))
	for i := range gates {
		gates[i] = &gateState{touched: make(map[int32]bool), mobile: make(map[int32]bool)}
	}
	for _, v := range visits {
		if v.to <= v.from || v.from >= spec.Duration {
			continue
		}
		gates[v.gate].queue = append(gates[v.gate].queue, v)
	}
	for _, g := range gates {
		sort.SliceStable(g.queue, func(i, j int) bool {
			a, b := g.queue[i], g.queue[j]
			if a.from != b.from {
				return a.from < b.from
			}
			return a.tag < b.tag
		})
	}

	steps := int(spec.Duration / spec.Step)
	if steps == 0 {
		steps = 1
	}
	stepSec := spec.Step.Seconds()
	cycleEnd := spec.Cycle
	for s := 0; s < steps; s++ {
		now := time.Duration(s) * spec.Step
		for gi, g := range gates {
			// Admit visits that have started; retire ones that ended.
			for g.next < len(g.queue) && g.queue[g.next].from <= now {
				g.live = append(g.live, g.queue[g.next])
				g.next++
			}
			keep := g.live[:0]
			for _, v := range g.live {
				if v.to > now {
					keep = append(keep, v)
				}
			}
			g.live = keep
			n := len(g.live)
			if n == 0 {
				continue
			}
			if n > c.Stats.PeakConcurrent {
				c.Stats.PeakConcurrent = n
			}
			// Everyone in range shares the channel: Λ(n) per tag, damped by
			// the parked coupling γ for stationary tags at range margin.
			irr := spec.Cost.IRR(n)
			ants := spec.Gates[gi].Antennas
			for _, v := range g.live {
				rate := irr
				if !v.moving {
					rate *= v.gamma
				}
				k := poisson(rng, rate*stepSec)
				for r := 0; r < k; r++ {
					g.readings = append(g.readings, Reading{
						Tag:      v.tag,
						At:       now + time.Duration(rng.Float64()*float64(spec.Step)),
						Antenna:  uint8(1 + rng.Intn(ants)),
						Channel:  uint8(rng.Intn(50)),
						PhaseRad: float32(rng.Float64() * 2 * math.Pi),
						RSSdBm:   float32(-50 - 25*rng.Float64()),
					})
					g.touched[v.tag] = true
					if v.moving {
						g.mobile[v.tag] = true
					}
				}
			}
		}
		stepEnd := now + spec.Step
		if stepEnd >= cycleEnd || s == steps-1 {
			// Flush at the step boundary (not the nominal cycle boundary) so
			// every reading in the window precedes its event's timestamp even
			// when Step does not divide Cycle.
			c.flush(gates, stepEnd)
			for cycleEnd <= stepEnd {
				cycleEnd += spec.Cycle
			}
		}
	}
}

// flush emits one CycleEvent per gate with a non-empty window, in gate
// order (events are therefore globally ordered by (At, Gate)).
func (c *Compiled) flush(gates []*gateState, at time.Duration) {
	if at > c.Spec.Duration {
		at = c.Spec.Duration
	}
	for gi, g := range gates {
		if len(g.readings) == 0 {
			continue
		}
		sort.SliceStable(g.readings, func(i, j int) bool {
			a, b := g.readings[i], g.readings[j]
			if a.At != b.At {
				return a.At < b.At
			}
			return a.Tag < b.Tag
		})
		mobile := make([]int32, 0, len(g.mobile))
		for tag := range g.mobile {
			mobile = append(mobile, tag)
		}
		sort.Slice(mobile, func(i, j int) bool { return mobile[i] < mobile[j] })
		c.Events = append(c.Events, CycleEvent{
			At:       at,
			Gate:     gi,
			Present:  len(g.touched),
			Readings: g.readings,
			Mobile:   mobile,
		})
		g.readings = nil
		g.touched = make(map[int32]bool)
		g.mobile = make(map[int32]bool)
	}
}

// finishStats accumulates per-tag and per-category totals from the
// emitted events.
func (c *Compiled) finishStats() {
	lastGate := make([]int, len(c.Tags))
	for i := range lastGate {
		lastGate[i] = -1
	}
	for _, ev := range c.Events {
		c.Stats.Readings += len(ev.Readings)
		for _, r := range ev.Readings {
			c.Tags[r.Tag].Reads++
			if lastGate[r.Tag] != ev.Gate {
				if lastGate[r.Tag] >= 0 {
					c.Stats.GateChanges++
				}
				lastGate[r.Tag] = ev.Gate
				c.Tags[r.Tag].GateVisits++
			}
		}
	}
	c.Stats.Tags = len(c.Tags)
	c.Stats.Events = len(c.Events)
	c.Stats.PerCategory = make([]CategoryStats, len(c.Spec.Categories))
	for i, cat := range c.Spec.Categories {
		c.Stats.PerCategory[i].Name = cat.Name
	}
	for _, t := range c.Tags {
		c.Stats.PerCategory[t.Category].Tags++
		c.Stats.PerCategory[t.Category].Readings += t.Reads
	}
}

// Digest returns a hex SHA-256 over a canonical binary encoding of the
// compiled tags and timeline — the golden-test fingerprint. Two Compiled
// values with the same digest are byte-identical workloads.
func (c *Compiled) Digest() string {
	h := sha256.New()
	w := func(vs ...any) {
		for _, v := range vs {
			// Writes to a hash never fail. //tagwatch:allow-droppederr
			_ = binary.Write(h, binary.LittleEndian, v)
		}
	}
	w(c.Seed, int64(len(c.Tags)), int64(len(c.Events)))
	for _, t := range c.Tags {
		h.Write([]byte(t.EPC.String()))
		w(int32(t.Category), t.Resident, int64(t.Arrive), int64(t.Depart), t.Parked, int64(t.Reads))
	}
	for _, ev := range c.Events {
		w(int64(ev.At), int32(ev.Gate), int32(ev.Present), int32(len(ev.Readings)), int32(len(ev.Mobile)))
		for _, r := range ev.Readings {
			w(r.Tag, int64(r.At), r.Antenna, r.Channel, r.PhaseRad, r.RSSdBm)
		}
		w(ev.Mobile)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ---- deterministic draw helpers ----

// pickCategory draws a category index by weight.
func pickCategory(rng *rand.Rand, cats []Category) int {
	total := 0.0
	for _, c := range cats {
		total += c.Weight
	}
	u := rng.Float64() * total
	for i, c := range cats {
		u -= c.Weight
		if u < 0 {
			return i
		}
	}
	return len(cats) - 1
}

// drawGamma draws the parked coupling for one stay.
func drawGamma(rng *rand.Rand, cat Category) float64 {
	alpha := cat.GammaAlpha
	if alpha <= 0 {
		alpha = 3
	}
	g := math.Pow(rng.Float64(), alpha)
	if g < 0.005 {
		g = 0.005
	}
	return g
}

// otherGate picks a gate different from cur.
func otherGate(rng *rand.Rand, n, cur int) int {
	if n < 2 {
		return cur
	}
	g := rng.Intn(n - 1)
	if g >= cur {
		g++
	}
	return g
}

// drawTimes draws k sorted times in (0, d).
func drawTimes(rng *rand.Rand, k int, d time.Duration) []time.Duration {
	if k <= 0 {
		return nil
	}
	out := make([]time.Duration, k)
	for i := range out {
		out[i] = time.Duration(rng.Float64() * float64(d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// arrivalTime draws one batch arrival time: uniform, or triangular around
// the rush peak.
func arrivalTime(rng *rand.Rand, spec Spec) time.Duration {
	if spec.Arrival.RushAt <= 0 {
		return time.Duration(rng.Float64() * float64(spec.Duration))
	}
	// Triangular: peak + (u1+u2-1)·width, clamped into the trace.
	frac := spec.Arrival.RushAt + (rng.Float64()+rng.Float64()-1)*spec.Arrival.RushWidth
	if frac < 0 {
		frac = 0
	}
	if frac > 0.999 {
		frac = 0.999
	}
	return time.Duration(frac * float64(spec.Duration))
}

// jitter returns a duration uniform in [0.5·d, 1.5·d).
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration((0.5 + rng.Float64()) * float64(d))
}

// poisson draws a Poisson variate (Knuth for small means, normal
// approximation for large).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
