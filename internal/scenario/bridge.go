package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/trace"
)

// BuildScene compiles the spec's geometry into an internal/scene world
// for simulator-driven experiments: antennas placed per gate, and up to
// maxTags tags with trajectories shaped like the compiled population
// (residents parked near their home gate, flowing tags crossing the route
// on conveyor-like lines). The physical layer — multipath, phase noise,
// hopping — then comes from the scene's RF channel rather than the
// synthetic draws of Compile.
func (s Spec) BuildScene(rng *rand.Rand, maxTags int) (*scene.Scene, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	if maxTags <= 0 {
		maxTags = 64
	}
	sc := scene.New(rf.NewChannel(rf.DefaultParams(), rng), rng)
	for _, g := range s.Gates {
		for a := 0; a < g.Antennas; a++ {
			off := (float64(a) - float64(g.Antennas-1)/2) * g.Spacing
			sc.AddAntenna(rf.Pt(g.Center.X+off, g.Center.Y, g.Center.Z))
		}
	}

	nRes := s.Residents
	nFlow := s.Population
	if nRes+nFlow > maxTags {
		// Sample proportionally, keeping at least one of each present kind.
		scale := float64(maxTags) / float64(nRes+nFlow)
		nRes = int(float64(nRes) * scale)
		nFlow = maxTags - nRes
		if s.Residents > 0 && nRes == 0 {
			nRes, nFlow = 1, nFlow-1
		}
	}
	idx := uint32(0)
	nextEPC := func(cat int) (epc.EPC, error) {
		pop, err := epc.SequentialPopulation([]byte{0x30, 0x1C, 0xA0 | byte(cat)}, idx, 1, epc.StandardBits)
		if err != nil {
			return epc.EPC{}, err
		}
		idx++
		return pop[0], nil
	}
	for i := 0; i < nRes; i++ {
		cat := pickCategory(rng, s.Categories)
		code, err := nextEPC(cat)
		if err != nil {
			return nil, err
		}
		g := s.Gates[rng.Intn(len(s.Gates))]
		pos := rf.Pt(g.Center.X+(rng.Float64()-0.5)*4, g.Center.Y+1+rng.Float64()*2, 0.5+rng.Float64())
		sc.AddTag(code, scene.Stationary{P: pos})
	}
	for i := 0; i < nFlow; i++ {
		cat := pickCategory(rng, s.Categories)
		code, err := nextEPC(cat)
		if err != nil {
			return nil, err
		}
		sc.AddTag(code, s.routeTrajectory(rng))
	}
	return sc, nil
}

// routeTrajectory builds one flowing tag's path along the route.
func (s Spec) routeTrajectory(rng *rand.Rand) scene.Trajectory {
	depart := time.Duration(rng.Float64() * float64(s.Duration))
	if len(s.Route) == 1 {
		// Single gate: a straight conveyor pass through its field.
		g := s.Gates[s.Route[0]]
		speed := 4.0 / s.CrossTime.Seconds() // field span ≈ 4 m
		return scene.Line{
			Start:  rf.Pt(g.Center.X-2, g.Center.Y+1, 1),
			Dir:    rf.Pt(1, 0, 0),
			Speed:  speed,
			Depart: depart,
			Arrive: depart + jitter(rng, s.CrossTime),
		}
	}
	w := scene.Waypoints{}
	t := depart
	for li, gi := range s.Route {
		g := s.Gates[gi]
		p := rf.Pt(g.Center.X, g.Center.Y+1, 1)
		w.T = append(w.T, t)
		w.P = append(w.P, p)
		t += jitter(rng, s.CrossTime)
		w.T = append(w.T, t)
		w.P = append(w.P, rf.Pt(p.X+2, p.Y, p.Z))
		if li < len(s.Route)-1 && s.TransitTime > 0 {
			t += jitter(rng, s.TransitTime)
		}
	}
	return w
}

// TraceConfig maps the spec onto the internal/trace statistical generator
// so cmd/tracegen and the replay daemon share one workload definition.
// Multi-gate structure collapses to the trace model's single gate;
// category parameters are blended by weight.
func (s Spec) TraceConfig() (trace.Config, error) {
	if err := s.Validate(); err != nil {
		return trace.Config{}, err
	}
	s = s.withDefaults()
	arrivals := s.Population + s.Residents
	if arrivals <= 0 {
		return trace.Config{}, fmt.Errorf("scenario %s: empty population", s.Name)
	}
	var wSum, park, alpha float64
	var dwell time.Duration
	for _, c := range s.Categories {
		wSum += c.Weight
		park += c.Weight * c.ParkProb
		dwell += time.Duration(c.Weight * float64(c.MeanDwell))
		a := c.GammaAlpha
		if a <= 0 {
			a = 3
		}
		alpha += c.Weight * a
	}
	cfg := trace.Config{
		Duration:      s.Duration,
		Arrivals:      arrivals,
		CrossTime:     s.CrossTime,
		ParkProb:      park / wSum,
		MeanParkDwell: time.Duration(float64(dwell) / wSum),
		Cost:          s.Cost,
		GammaAlpha:    alpha / wSum,
		BatchMean:     s.Arrival.BatchMean,
		Step:          s.Step,
	}
	if cfg.MeanParkDwell <= 0 {
		// A pure-flow scenario never parks; the trace model still wants a
		// positive dwell for its (unreached) exponential draw.
		cfg.MeanParkDwell = time.Minute
		cfg.ParkProb = 0
	}
	return cfg, nil
}
