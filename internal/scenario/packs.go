package scenario

import (
	"fmt"
	"sort"
	"time"

	"tagwatch/internal/rf"
)

// builtin returns the pack catalog. Each call builds fresh values so
// callers can mutate overrides (duration, population) without aliasing.
func builtin() []Spec {
	return []Spec{
		{
			Name:        "trackpoint",
			Description: "the paper's §2.4 sorting facility: one gate, parked parcels starving crossing ones",
			Duration:    4 * time.Hour,
			Population:  527,
			CrossTime:   time.Second,
			Arrival:     Arrival{BatchMean: 8},
			Categories: []Category{
				{Name: "parcel", Weight: 1, ParkProb: 0.45, MeanDwell: 100 * time.Minute, GammaAlpha: 15},
			},
			Gates: []Gate{
				{Reader: "gate", Antennas: 4, Center: rf.Pt(0, 0, 2.5)},
			},
			Route: []int{0},
		},
		{
			Name:        "warehouse-crossdock",
			Description: "inbound dock to outbound staging: pallet flow over resident stock",
			Duration:    45 * time.Minute,
			Population:  900,
			Residents:   220,
			// Forklifts shuffle ~2% of the standing stock at any moment.
			MoverFraction: 0.02,
			CrossTime:     4 * time.Second,
			TransitTime:   40 * time.Second,
			Arrival:       Arrival{BatchMean: 12},
			Categories: []Category{
				{Name: "pallet", Weight: 6, ParkProb: 0.6, MeanDwell: 20 * time.Minute, GammaAlpha: 10},
				{Name: "tote", Weight: 3, ParkProb: 0.3, MeanDwell: 8 * time.Minute, GammaAlpha: 6},
				{Name: "equipment", Weight: 1, ParkProb: 0.9, MeanDwell: 40 * time.Minute, GammaAlpha: 4},
			},
			Gates: []Gate{
				{Reader: "inbound", Antennas: 4, Center: rf.Pt(0, 0, 3)},
				{Reader: "outbound", Antennas: 4, Center: rf.Pt(30, 0, 3)},
			},
			Route: []int{0, 1},
		},
		{
			Name:        "airport-baggage",
			Description: "check-in, sorter, and gate reading zones: pure flow, many handoffs",
			Duration:    time.Hour,
			Population:  1600,
			CrossTime:   3 * time.Second,
			TransitTime: 90 * time.Second,
			Arrival:     Arrival{BatchMean: 5},
			Categories: []Category{
				{Name: "checked-bag", Weight: 8, ParkProb: 0.05, MeanDwell: 10 * time.Minute, GammaAlpha: 8},
				{Name: "transfer-bag", Weight: 2, ParkProb: 0.25, MeanDwell: 25 * time.Minute, GammaAlpha: 8},
				{Name: "crew-bag", Weight: 1, ParkProb: 0, MeanDwell: 0, GammaAlpha: 0},
			},
			Gates: []Gate{
				{Reader: "checkin", Antennas: 2, Center: rf.Pt(0, 0, 2)},
				{Reader: "sorter", Antennas: 4, Center: rf.Pt(80, 0, 2)},
				{Reader: "gate", Antennas: 2, Center: rf.Pt(200, 0, 2)},
			},
			Route: []int{0, 1, 2},
		},
		{
			Name:        "hospital-assets",
			Description: "four wards of mostly-stationary equipment with occasional relocations",
			Duration:    2 * time.Hour,
			Step:        2 * time.Second,
			Residents:   400,
			Population:  80,
			// Porters move ~0.5% of the inventory at any instant.
			MoverFraction: 0.005,
			CrossTime:     30 * time.Second,
			TransitTime:   60 * time.Second,
			Arrival:       Arrival{BatchMean: 2},
			Categories: []Category{
				{Name: "infusion-pump", Weight: 5, ParkProb: 0.95, MeanDwell: 100 * time.Minute, GammaAlpha: 12},
				{Name: "wheelchair", Weight: 3, ParkProb: 0.8, MeanDwell: 60 * time.Minute, GammaAlpha: 10},
				{Name: "monitor", Weight: 2, ParkProb: 0.95, MeanDwell: 100 * time.Minute, GammaAlpha: 8},
			},
			Gates: []Gate{
				{Reader: "ward-a", Antennas: 2, Center: rf.Pt(0, 0, 2.5)},
				{Reader: "ward-b", Antennas: 2, Center: rf.Pt(40, 0, 2.5)},
				{Reader: "ward-c", Antennas: 2, Center: rf.Pt(0, 40, 2.5)},
				{Reader: "icu", Antennas: 4, Center: rf.Pt(40, 40, 2.5)},
			},
			Route: []int{0, 3},
		},
		{
			Name:        "retail-rush",
			Description: "entry and exit gates under a closing-time checkout rush",
			Duration:    time.Hour,
			Population:  1400,
			CrossTime:   2 * time.Second,
			TransitTime: 4 * time.Minute,
			Arrival:     Arrival{BatchMean: 3, RushAt: 0.75, RushWidth: 0.2},
			Categories: []Category{
				{Name: "apparel", Weight: 6, ParkProb: 0.1, MeanDwell: 5 * time.Minute, GammaAlpha: 10},
				{Name: "electronics", Weight: 2, ParkProb: 0.05, MeanDwell: 3 * time.Minute, GammaAlpha: 8},
				{Name: "grocery", Weight: 4, ParkProb: 0, MeanDwell: 0, GammaAlpha: 0},
			},
			Gates: []Gate{
				{Reader: "entry", Antennas: 2, Center: rf.Pt(0, 0, 2.2)},
				{Reader: "exit", Antennas: 4, Center: rf.Pt(25, 0, 2.2)},
			},
			Route: []int{0, 1},
		},
	}
}

// Names lists the built-in pack names, sorted.
func Names() []string {
	packs := builtin()
	out := make([]string, len(packs))
	for i, p := range packs {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// Packs returns every built-in pack.
func Packs() []Spec { return builtin() }

// Lookup returns the named built-in pack.
func Lookup(name string) (Spec, error) {
	for _, p := range builtin() {
		if p.Name == name {
			return p, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown pack %q (have %v)", name, Names())
}
