package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the compact key=value fault spec used by the -chaos
// command-line flags, e.g.
//
//	seed=42,latency=5ms,jitter=2ms,corrupt=0.01,reset=0.02,blackhole-after=65536,refuse=0.2
//
// Keys: seed, latency, jitter, stall, truncate, corrupt, reset,
// blackhole-after (bytes), refuse, partition (rx|tx|both),
// partition-after (bytes), flap (bytes), skew (duration). Unknown keys
// error rather than silently injecting nothing. An empty spec returns
// the zero Config. Spec is the inverse: ParseSpec(cfg.Spec()) == cfg.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "stall":
			cfg.StallProb, err = parseProb(val)
		case "truncate":
			cfg.TruncateProb, err = parseProb(val)
		case "corrupt":
			cfg.CorruptProb, err = parseProb(val)
		case "reset":
			cfg.ResetProb, err = parseProb(val)
		case "blackhole-after":
			cfg.BlackholeAfter, err = strconv.ParseInt(val, 10, 64)
		case "refuse":
			cfg.RefuseProb, err = parseProb(val)
		case "partition":
			switch val {
			case "rx", "tx", "both":
				cfg.PartitionDir = val
			default:
				err = fmt.Errorf("direction %q not rx, tx, or both", val)
			}
		case "partition-after":
			cfg.PartitionAfter, err = strconv.ParseInt(val, 10, 64)
		case "flap":
			cfg.FlapBytes, err = strconv.ParseInt(val, 10, 64)
		case "skew":
			cfg.SkewMax, err = time.ParseDuration(val)
		default:
			return Config{}, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: %s=%s: %w", key, val, err)
		}
	}
	return cfg, nil
}

// Spec renders the config back into the canonical flag syntax: fixed
// key order, zero-valued fields omitted, so ParseSpec(cfg.Spec()) == cfg
// and equal configs render identical strings. The empty string is the
// zero Config — the gauntlet report embeds these strings, so this
// canonical form is part of what the verdict fingerprint covers.
func (c Config) Spec() string {
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	prob := func(key string, p float64) {
		if p != 0 {
			add(key, strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	if c.Seed != 0 {
		add("seed", strconv.FormatInt(c.Seed, 10))
	}
	if c.Latency != 0 {
		add("latency", c.Latency.String())
	}
	if c.Jitter != 0 {
		add("jitter", c.Jitter.String())
	}
	prob("stall", c.StallProb)
	prob("truncate", c.TruncateProb)
	prob("corrupt", c.CorruptProb)
	prob("reset", c.ResetProb)
	if c.BlackholeAfter != 0 {
		add("blackhole-after", strconv.FormatInt(c.BlackholeAfter, 10))
	}
	prob("refuse", c.RefuseProb)
	if c.PartitionDir != "" {
		add("partition", c.PartitionDir)
	}
	if c.PartitionAfter != 0 {
		add("partition-after", strconv.FormatInt(c.PartitionAfter, 10))
	}
	if c.FlapBytes != 0 {
		add("flap", strconv.FormatInt(c.FlapBytes, 10))
	}
	if c.SkewMax != 0 {
		add("skew", c.SkewMax.String())
	}
	return strings.Join(parts, ",")
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
