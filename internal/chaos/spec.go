package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the compact key=value fault spec used by the -chaos
// command-line flags, e.g.
//
//	seed=42,latency=5ms,jitter=2ms,corrupt=0.01,reset=0.02,blackhole-after=65536,refuse=0.2
//
// Keys: seed, latency, jitter, stall, truncate, corrupt, reset,
// blackhole-after (bytes), refuse. Unknown keys error rather than
// silently injecting nothing. An empty spec returns the zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "stall":
			cfg.StallProb, err = parseProb(val)
		case "truncate":
			cfg.TruncateProb, err = parseProb(val)
		case "corrupt":
			cfg.CorruptProb, err = parseProb(val)
		case "reset":
			cfg.ResetProb, err = parseProb(val)
		case "blackhole-after":
			cfg.BlackholeAfter, err = strconv.ParseInt(val, 10, 64)
		case "refuse":
			cfg.RefuseProb, err = parseProb(val)
		default:
			return Config{}, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: %s=%s: %w", key, val, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
