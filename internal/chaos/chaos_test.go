package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on a fresh listener and echoes bytes
// back until either side dies.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis
}

// runScript pushes the same fixed byte script through a fault-wrapped
// loopback echo connection and records what came back, so two runs with
// the same seed can be compared byte for byte.
func runScript(t *testing.T, cfg Config, rounds int) ([]byte, Stats) {
	t.Helper()
	inj := New(cfg)
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	var got bytes.Buffer
	buf := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		msg := []byte{byte(i), byte(i >> 8), 0xAB, 0xCD}
		if _, err := nc.Write(msg); err != nil {
			break
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := nc.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return got.Bytes(), inj.Stats()
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 7, CorruptProb: 0.3, TruncateProb: 0.05, ResetProb: 0.05}
	a, sa := runScript(t, cfg, 200)
	b, sb := runScript(t, cfg, 200)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged:\n%x\n%x", a, b)
	}
	if sa != sb {
		t.Fatalf("same seed, different fault counts: %+v vs %+v", sa, sb)
	}
	if sa.Corruptions == 0 {
		t.Fatalf("corruption never injected over 200 rounds: %+v", sa)
	}

	cfg.Seed = 8
	c, _ := runScript(t, cfg, 200)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestBlackholeAfterByteBudget(t *testing.T) {
	inj := New(Config{Seed: 1, BlackholeAfter: 8})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	// First exchange fits inside the budget.
	if _, err := nc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("pre-blackhole read: %v", err)
	}

	// The budget is spent: writes must be swallowed (report success) and
	// reads must hang until the connection closes.
	if n, err := nc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("blackholed write: n=%d err=%v, want silent success", n, err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := nc.Read(buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("blackholed read returned (%v); must block", err)
	case <-time.After(200 * time.Millisecond):
	}
	nc.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("read after close must error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed read did not release on Close")
	}
	if inj.Stats().Blackholes != 1 {
		t.Fatalf("stats: %+v, want exactly 1 blackhole trip", inj.Stats())
	}
}

func TestSetBlackholeTripsLiveConn(t *testing.T) {
	inj := New(Config{Seed: 3})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	if _, err := nc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatal(err)
	}

	inj.SetBlackhole(true)
	if n, err := nc.Write([]byte("gone")); err != nil || n != 4 {
		t.Fatalf("forced blackhole write: n=%d err=%v", n, err)
	}
	done := make(chan struct{})
	go func() {
		nc.Read(buf)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("read completed through a forced blackhole")
	case <-time.After(150 * time.Millisecond):
	}
	nc.Close()
	<-done
}

func TestRefuseProbAtAccept(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	inj := New(Config{Seed: 11, RefuseProb: 1.0})
	lis := inj.Listener(inner)

	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := lis.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	// Every dial is answered at the TCP level and then slammed shut; the
	// wrapped Accept never hands a refused conn to the server.
	for i := 0; i < 3; i++ {
		nc, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Fatal("refused conn delivered data")
		}
		nc.Close()
	}
	select {
	case nc := <-accepted:
		nc.Close()
		t.Fatal("Accept returned despite refuse=1.0")
	case <-time.After(100 * time.Millisecond):
	}
	if got := inj.Stats().Refusals; got < 3 {
		t.Fatalf("refusals = %d, want >= 3", got)
	}
}

func TestTruncateSeversConn(t *testing.T) {
	inj := New(Config{Seed: 5, TruncateProb: 1.0})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	if _, err := nc.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("truncated read should deliver the prefix first: %v", err)
	}
	if n >= 10 || n < 1 {
		t.Fatalf("truncated read delivered %d bytes of 10", n)
	}
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection must be severed after a truncation")
	}
	if inj.Stats().Truncations == 0 {
		t.Fatal("truncation not counted")
	}
}

func TestPartitionRxParksReadsKeepsWrites(t *testing.T) {
	inj := New(Config{Seed: 2, PartitionDir: "rx", PartitionAfter: 8})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	// First exchange fits inside the budget.
	if _, err := nc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("pre-partition read: %v", err)
	}

	// Budget spent: writes must still reach the wire, reads must park
	// until the socket dies — the rx half of an asymmetric partition.
	if n, err := nc.Write([]byte("still-flows")); err != nil || n != 11 {
		t.Fatalf("post-partition write: n=%d err=%v, want wire delivery", n, err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := nc.Read(buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("rx-partitioned read returned (%v); must park", err)
	case <-time.After(200 * time.Millisecond):
	}
	nc.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("read after close must error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partitioned read did not release on Close")
	}
	if got := inj.Stats().Partitions; got != 1 {
		t.Fatalf("partitions = %d, want exactly 1 latch", got)
	}
}

func TestPartitionTxDiscardsWritesKeepsReads(t *testing.T) {
	// PartitionAfter zero: tx dies from the very first byte. The echo
	// server never receives anything, so reads see only silence — but a
	// read against bytes the peer pushed spontaneously must still work.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	served := make(chan net.Conn, 1)
	go func() {
		nc, err := lis.Accept()
		if err == nil {
			nc.Write([]byte("hello"))
			served <- nc
		}
	}()

	inj := New(Config{Seed: 2, PartitionDir: "tx"})
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	if n, err := nc.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("tx-partitioned write: n=%d err=%v, want silent discard", n, err)
	}
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := nc.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("inbound read through tx partition: %q, %v", buf[:n], err)
	}
	sc := <-served
	sc.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, _ := sc.Read(buf); n != 0 {
		t.Fatalf("server received %d bytes through a tx partition", n)
	}
	sc.Close()
	if got := inj.Stats().Partitions; got != 1 {
		t.Fatalf("partitions = %d, want 1", got)
	}
}

func TestFlapSeversAfterByteBudget(t *testing.T) {
	inj := New(Config{Seed: 4, FlapBytes: 8})
	lis := echoServer(t)

	dial := func() net.Conn {
		raw, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return inj.Conn(raw)
	}

	// Each connection makes a little progress, then dies; a fresh dial
	// gets a fresh budget — the reconnect-storm shape.
	for round := 0; round < 3; round++ {
		nc := dial()
		if _, err := nc.Write([]byte("ping")); err != nil {
			t.Fatalf("round %d: first write: %v", round, err)
		}
		// Budget is 8 bytes: 4 out + 4 echoed. The echo delivers (possibly
		// split across reads), then the conn must be dead.
		buf := make([]byte, 16)
		total := 0
		var rerr error
		for i := 0; i < 10 && rerr == nil; i++ {
			nc.SetReadDeadline(time.Now().Add(2 * time.Second))
			var n int
			n, rerr = nc.Read(buf)
			total += n
		}
		if rerr == nil {
			t.Fatalf("round %d: connection never severed after budget", round)
		}
		if total != 4 {
			t.Fatalf("round %d: echoed %d bytes before sever, want 4", round, total)
		}
		nc.Close()
	}
	if got := inj.Stats().Flaps; got != 3 {
		t.Fatalf("flaps = %d, want 3 (one sever per connection)", got)
	}
}

func TestSkewDeterministicPerKey(t *testing.T) {
	a := New(Config{Seed: 9, SkewMax: 2 * time.Second})
	b := New(Config{Seed: 9, SkewMax: 2 * time.Second})
	keys := []string{"gate-0", "gate-1", "gate-2", "dock-door"}
	distinct := map[time.Duration]bool{}
	for _, k := range keys {
		sa, sb := a.Skew(k), b.Skew(k)
		if sa != sb {
			t.Fatalf("Skew(%q) not deterministic: %v vs %v", k, sa, sb)
		}
		if sa < -2*time.Second || sa > 2*time.Second {
			t.Fatalf("Skew(%q) = %v outside [-2s, 2s]", k, sa)
		}
		distinct[sa] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d keys skewed identically (%v)", len(keys), distinct)
	}
	if got := New(Config{Seed: 9}).Skew("gate-0"); got != 0 {
		t.Fatalf("zero SkewMax must mean zero skew, got %v", got)
	}
	if other := New(Config{Seed: 10, SkewMax: 2 * time.Second}).Skew("gate-0"); other == a.Skew("gate-0") {
		t.Fatal("different seeds produced identical skew for the same key")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want Config
	}{
		{
			// The pre-partition grammar must keep parsing byte-identically.
			name: "legacy full spec",
			spec: "seed=42, latency=5ms,jitter=2ms,corrupt=0.01,reset=0.02,blackhole-after=65536,refuse=0.2,stall=0.001,truncate=0.03",
			want: Config{
				Seed: 42, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
				CorruptProb: 0.01, ResetProb: 0.02, BlackholeAfter: 65536,
				RefuseProb: 0.2, StallProb: 0.001, TruncateProb: 0.03,
			},
		},
		{name: "empty", spec: "", want: Config{}},
		{
			name: "partition rx with budget",
			spec: "seed=7,partition=rx,partition-after=4096",
			want: Config{Seed: 7, PartitionDir: "rx", PartitionAfter: 4096},
		},
		{
			name: "partition tx immediate",
			spec: "partition=tx",
			want: Config{PartitionDir: "tx"},
		},
		{
			name: "partition both",
			spec: "partition=both,partition-after=1",
			want: Config{PartitionDir: "both", PartitionAfter: 1},
		},
		{
			name: "flap storm",
			spec: "seed=3,flap=8192",
			want: Config{Seed: 3, FlapBytes: 8192},
		},
		{
			name: "clock skew",
			spec: "skew=1.5s",
			want: Config{SkewMax: 1500 * time.Millisecond},
		},
		{
			name: "kitchen sink",
			spec: "seed=1,latency=1ms,corrupt=0.05,partition=rx,partition-after=65536,flap=32768,skew=250ms",
			want: Config{
				Seed: 1, Latency: time.Millisecond, CorruptProb: 0.05,
				PartitionDir: "rx", PartitionAfter: 65536,
				FlapBytes: 32768, SkewMax: 250 * time.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
			// Round trip: the canonical rendering re-parses to the same
			// config, and re-rendering is a fixed point.
			spec := got.Spec()
			back, err := ParseSpec(spec)
			if err != nil {
				t.Fatalf("re-parsing canonical %q: %v", spec, err)
			}
			if back != got {
				t.Fatalf("round trip drifted: %q -> %+v, want %+v", spec, back, got)
			}
			if again := back.Spec(); again != spec {
				t.Fatalf("Spec not canonical: %q vs %q", spec, again)
			}
		})
	}

	for _, bad := range []string{
		"latency", "bogus=1", "corrupt=1.5", "latency=fast",
		"partition=up", "partition=", "partition-after=lots", "flap=often", "skew=big",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q must error", bad)
		}
	}
}
