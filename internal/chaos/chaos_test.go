package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on a fresh listener and echoes bytes
// back until either side dies.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis
}

// runScript pushes the same fixed byte script through a fault-wrapped
// loopback echo connection and records what came back, so two runs with
// the same seed can be compared byte for byte.
func runScript(t *testing.T, cfg Config, rounds int) ([]byte, Stats) {
	t.Helper()
	inj := New(cfg)
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	var got bytes.Buffer
	buf := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		msg := []byte{byte(i), byte(i >> 8), 0xAB, 0xCD}
		if _, err := nc.Write(msg); err != nil {
			break
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := nc.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return got.Bytes(), inj.Stats()
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 7, CorruptProb: 0.3, TruncateProb: 0.05, ResetProb: 0.05}
	a, sa := runScript(t, cfg, 200)
	b, sb := runScript(t, cfg, 200)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged:\n%x\n%x", a, b)
	}
	if sa != sb {
		t.Fatalf("same seed, different fault counts: %+v vs %+v", sa, sb)
	}
	if sa.Corruptions == 0 {
		t.Fatalf("corruption never injected over 200 rounds: %+v", sa)
	}

	cfg.Seed = 8
	c, _ := runScript(t, cfg, 200)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestBlackholeAfterByteBudget(t *testing.T) {
	inj := New(Config{Seed: 1, BlackholeAfter: 8})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	// First exchange fits inside the budget.
	if _, err := nc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("pre-blackhole read: %v", err)
	}

	// The budget is spent: writes must be swallowed (report success) and
	// reads must hang until the connection closes.
	if n, err := nc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("blackholed write: n=%d err=%v, want silent success", n, err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := nc.Read(buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("blackholed read returned (%v); must block", err)
	case <-time.After(200 * time.Millisecond):
	}
	nc.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("read after close must error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed read did not release on Close")
	}
	if inj.Stats().Blackholes != 1 {
		t.Fatalf("stats: %+v, want exactly 1 blackhole trip", inj.Stats())
	}
}

func TestSetBlackholeTripsLiveConn(t *testing.T) {
	inj := New(Config{Seed: 3})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	if _, err := nc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatal(err)
	}

	inj.SetBlackhole(true)
	if n, err := nc.Write([]byte("gone")); err != nil || n != 4 {
		t.Fatalf("forced blackhole write: n=%d err=%v", n, err)
	}
	done := make(chan struct{})
	go func() {
		nc.Read(buf)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("read completed through a forced blackhole")
	case <-time.After(150 * time.Millisecond):
	}
	nc.Close()
	<-done
}

func TestRefuseProbAtAccept(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	inj := New(Config{Seed: 11, RefuseProb: 1.0})
	lis := inj.Listener(inner)

	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := lis.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	// Every dial is answered at the TCP level and then slammed shut; the
	// wrapped Accept never hands a refused conn to the server.
	for i := 0; i < 3; i++ {
		nc, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Fatal("refused conn delivered data")
		}
		nc.Close()
	}
	select {
	case nc := <-accepted:
		nc.Close()
		t.Fatal("Accept returned despite refuse=1.0")
	case <-time.After(100 * time.Millisecond):
	}
	if got := inj.Stats().Refusals; got < 3 {
		t.Fatalf("refusals = %d, want >= 3", got)
	}
}

func TestTruncateSeversConn(t *testing.T) {
	inj := New(Config{Seed: 5, TruncateProb: 1.0})
	lis := echoServer(t)
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := inj.Conn(raw)
	defer nc.Close()

	if _, err := nc.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("truncated read should deliver the prefix first: %v", err)
	}
	if n >= 10 || n < 1 {
		t.Fatalf("truncated read delivered %d bytes of 10", n)
	}
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection must be severed after a truncation")
	}
	if inj.Stats().Truncations == 0 {
		t.Fatal("truncation not counted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, latency=5ms,jitter=2ms,corrupt=0.01,reset=0.02,blackhole-after=65536,refuse=0.2,stall=0.001,truncate=0.03")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
		CorruptProb: 0.01, ResetProb: 0.02, BlackholeAfter: 65536,
		RefuseProb: 0.2, StallProb: 0.001, TruncateProb: 0.03,
	}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"latency", "bogus=1", "corrupt=1.5", "latency=fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q must error", bad)
		}
	}
}
