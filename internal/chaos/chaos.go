// Package chaos is a seeded, deterministic fault injector for TCP
// transports: a net.Conn / net.Listener wrapper that interposes between
// an LLRP client and reader (real, emulated, or proxied) and misbehaves
// on purpose — added latency and jitter, stalled reads, truncated
// frames, corrupted bytes, mid-message connection resets, half-open
// "keepalive blackhole" links, and refused accepts.
//
// Every probabilistic decision draws from per-connection RNGs seeded
// from the injector's master seed, with separate streams for the read
// and write sides, so a failure found under chaos reproduces from the
// same seed regardless of goroutine interleaving between directions.
//
// The zero Config injects nothing; each fault is enabled independently.
// cmd/readersim and cmd/llrpsniff expose the injector via a -chaos flag
// (see ParseSpec), and the fleet chaos regression suite drives it
// directly.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults to inject and how hard. Probabilities are
// per-operation (one Read or one Write) in [0,1]; zero disables the
// fault.
type Config struct {
	// Seed makes every injection decision reproducible. Zero is a valid
	// seed (not "random").
	Seed int64

	// Latency delays every read delivery; Jitter adds a uniform extra
	// in [0, Jitter) on top, drawn from the seeded stream.
	Latency time.Duration
	Jitter  time.Duration

	// StallProb stalls a read: the call blocks until the connection is
	// closed instead of returning data — a link that went quiet without
	// dying.
	StallProb float64
	// TruncateProb delivers only a prefix of a read and then severs the
	// connection — a frame cut off mid-flight.
	TruncateProb float64
	// CorruptProb flips one byte of a read — wire corruption that the
	// protocol layer must reject rather than misparse.
	CorruptProb float64
	// ResetProb severs the connection just before a write — a
	// mid-message TCP reset.
	ResetProb float64

	// BlackholeAfter trips the blackhole once this many bytes (both
	// directions combined) have crossed the connection: after that,
	// reads block forever and writes are silently discarded while the
	// socket stays open — the half-open link whose keepalives vanish.
	// Zero never trips by byte count (SetBlackhole still works).
	BlackholeAfter int64

	// RefuseProb makes the listener accept and then immediately close a
	// connection — a reader that answers the SYN and slams the door.
	RefuseProb float64

	// PartitionDir selects an asymmetric partition: once tripped, the
	// named direction goes silently dead while the socket stays open.
	// "rx" parks reads forever (inbound bytes never arrive, outbound
	// still flow — the peer keeps believing the link works); "tx"
	// silently discards writes (outbound bytes vanish, inbound still
	// arrive); "both" is a full half-open link, equivalent to the
	// blackhole but tripped by PartitionAfter. Empty disables the
	// partition. Unlike the blackhole, a partition never heals.
	PartitionDir string
	// PartitionAfter trips the partition once this many bytes (both
	// directions combined) have crossed the connection. Zero with
	// PartitionDir set trips from the very first operation.
	PartitionAfter int64

	// FlapBytes severs the connection each time this many bytes (both
	// directions combined) have crossed it. Every reconnect starts a
	// fresh budget, so against a retrying peer a nonzero value is a
	// deterministic flap storm: connect, make a little progress, die,
	// repeat — the fault that exercises resume/re-anchor negotiation
	// hardest.
	FlapBytes int64

	// SkewMax is the observation clock-skew magnitude. The conn wrapper
	// ignores it — skew is not a transport fault — but it rides in the
	// Config so one fault spec describes a whole scripted scenario:
	// consumers (the gauntlet's ingest path) draw a deterministic
	// per-source offset in [-SkewMax, +SkewMax] via Injector.Skew and
	// add it to every observation timestamp from that source.
	SkewMax time.Duration
}

// Stats counts the faults actually injected, for tests asserting that a
// run exercised what it claims to.
type Stats struct {
	Stalls      uint64
	Truncations uint64
	Corruptions uint64
	Resets      uint64
	Blackholes  uint64
	Refusals    uint64
	Partitions  uint64
	Flaps       uint64
	Conns       uint64
}

// Injector wraps listeners and connections with the configured faults.
// One injector owns one deterministic decision stream; wrap every
// connection of a scenario with the same injector to replay it.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand // master stream: hands per-conn seeds out in accept order

	forced atomic.Bool // SetBlackhole: trips every current and future conn

	stalls      atomic.Uint64
	truncations atomic.Uint64
	corruptions atomic.Uint64
	resets      atomic.Uint64
	blackholes  atomic.Uint64
	refusals    atomic.Uint64
	partitions  atomic.Uint64
	flaps       atomic.Uint64
	conns       atomic.Uint64
}

// New builds an injector from the config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Stalls:      inj.stalls.Load(),
		Truncations: inj.truncations.Load(),
		Corruptions: inj.corruptions.Load(),
		Resets:      inj.resets.Load(),
		Blackholes:  inj.blackholes.Load(),
		Refusals:    inj.refusals.Load(),
		Partitions:  inj.partitions.Load(),
		Flaps:       inj.flaps.Load(),
		Conns:       inj.conns.Load(),
	}
}

// Skew derives the deterministic clock-skew offset for the named source,
// uniform in [-SkewMax, +SkewMax]. The offset depends only on the master
// seed and the key — never on the per-connection decision streams — so
// attaching skewed sources to a scenario cannot perturb the fault
// sequence an existing spec replays. Zero SkewMax always returns zero.
func (inj *Injector) Skew(key string) time.Duration {
	max := inj.cfg.SkewMax
	if max <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := rand.New(rand.NewSource(inj.cfg.Seed ^ int64(h.Sum64())))
	return time.Duration(rng.Int63n(2*int64(max)+1)) - max
}

// SetBlackhole force-trips (or clears) the blackhole on every current
// and future connection — the runtime switch the chaos suite flips to
// simulate a link going half-open at a chosen moment. Clearing it does
// not revive connections that already tripped by byte count.
func (inj *Injector) SetBlackhole(on bool) { inj.forced.Store(on) }

// Listener wraps lis so every accepted connection carries the faults
// (and RefuseProb applies at accept time).
func (inj *Injector) Listener(lis net.Listener) net.Listener {
	return &faultListener{Listener: lis, inj: inj}
}

// Conn wraps an established connection with the faults.
func (inj *Injector) Conn(nc net.Conn) net.Conn {
	inj.conns.Add(1)
	inj.mu.Lock()
	rseed, wseed := inj.rng.Int63(), inj.rng.Int63()
	inj.mu.Unlock()
	return &faultConn{
		Conn:   nc,
		inj:    inj,
		rrng:   rand.New(rand.NewSource(rseed)),
		wrng:   rand.New(rand.NewSource(wseed)),
		closed: make(chan struct{}),
	}
}

type faultListener struct {
	net.Listener
	inj *Injector
}

// Accept applies RefuseProb, then wraps survivors. Refused connections
// are closed immediately and the accept loop continues — the caller
// only ever sees healthy-looking accepts.
func (l *faultListener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.inj.mu.Lock()
		refuse := l.inj.cfg.RefuseProb > 0 && l.inj.rng.Float64() < l.inj.cfg.RefuseProb
		l.inj.mu.Unlock()
		if refuse {
			l.inj.refusals.Add(1)
			nc.Close()
			continue
		}
		return l.inj.Conn(nc), nil
	}
}

// faultConn injects per-operation faults. The read and write sides hold
// separate RNGs so concurrent use keeps each direction's decision
// sequence deterministic.
type faultConn struct {
	net.Conn
	inj *Injector

	rmu  sync.Mutex
	rrng *rand.Rand
	wmu  sync.Mutex
	wrng *rand.Rand

	bytes   atomic.Int64 // both directions, for BlackholeAfter/PartitionAfter/FlapBytes
	tripped atomic.Bool  // per-conn blackhole latch
	parted  atomic.Bool  // per-conn partition latch: never heals
	flapped atomic.Bool  // per-conn flap latch: one sever per connection

	closed chan struct{}
	once   sync.Once
}

// Close releases any stalled or blackholed operations along with the
// socket.
func (c *faultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// blackholed reports whether this connection is half-open.
func (c *faultConn) blackholed() bool {
	if c.inj.forced.Load() {
		return true
	}
	if c.tripped.Load() {
		return true
	}
	if after := c.inj.cfg.BlackholeAfter; after > 0 && c.bytes.Load() >= after {
		if c.tripped.CompareAndSwap(false, true) {
			c.inj.blackholes.Add(1)
		}
		return true
	}
	return false
}

// partitioned reports whether the asymmetric partition has tripped on
// this connection, latching (and counting) the trip exactly once.
func (c *faultConn) partitioned(dir string) bool {
	d := c.inj.cfg.PartitionDir
	if d == "" || (d != dir && d != "both") {
		return false
	}
	if !c.parted.Load() {
		if c.bytes.Load() < c.inj.cfg.PartitionAfter {
			return false
		}
		if c.parted.CompareAndSwap(false, true) {
			c.inj.partitions.Add(1)
		}
	}
	return true
}

// flapCheck severs the connection once the per-connection byte budget is
// spent. The sever happens after the triggering operation delivers, so
// the peer sees progress-then-death — the signature of a flapping link.
func (c *faultConn) flapCheck() {
	if fb := c.inj.cfg.FlapBytes; fb > 0 && c.bytes.Load() >= fb {
		if c.flapped.CompareAndSwap(false, true) {
			c.inj.flaps.Add(1)
			c.Close()
		}
	}
}

// block parks the calling operation until the connection closes, then
// reports the usual closed-socket error by touching the dead conn.
func (c *faultConn) block() (int, error) {
	<-c.closed
	// The socket is closed (or closing); surface its error shape.
	var b [1]byte
	_, err := c.Conn.Read(b[:])
	if err == nil {
		err = net.ErrClosed
	}
	return 0, err
}

// drainBlocked models a dead inbound direction on a live socket: bytes
// the peer delivers are read off the kernel buffer and discarded (so
// the peer's writes keep succeeding and flow control never pushes
// back), while the socket's own lifecycle errors — read-deadline
// expiry, teardown — surface unchanged. That last part matters: a
// session guarding its reads with SetReadDeadline must still time out
// and die, which is exactly how a real asymmetric partition is
// detected.
func (c *faultConn) drainBlocked() (int, error) {
	var b [512]byte
	for {
		if _, err := c.Conn.Read(b[:]); err != nil {
			return 0, err
		}
	}
}

// awaitBlackhole parks a read while the connection is half-open. Unlike a
// stall (which holds until the socket dies), a blackhole can heal: when
// SetBlackhole clears the forced trip, parked reads resume against the
// real socket — whatever queued in the kernel during the outage (including
// a peer's FIN) is then observed. Returns false when the socket closed
// while parked.
func (c *faultConn) awaitBlackhole() bool {
	// The proxy paces a real kernel socket, so parking must poll wall
	// time; every fault *decision* still comes from the seeded RNG
	// streams, which is what replayability means for the injector.
	t := time.NewTicker(10 * time.Millisecond) //tagwatch:allow-wallclock real-socket pacing, not a simulated decision
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return false
		case <-t.C:
			if !c.blackholed() {
				return true
			}
		}
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.partitioned("rx") {
		// Inbound direction is dead and stays dead: whatever the peer
		// delivers is swallowed until the socket times out or is torn
		// down. Outbound writes continue to flow, so the peer's view of
		// the link stays asymmetrically healthy.
		return c.drainBlocked()
	}
	if c.blackholed() {
		c.inj.stalls.Add(1)
		if !c.awaitBlackhole() {
			return c.block()
		}
	}
	c.rmu.Lock()
	stall := c.inj.cfg.StallProb > 0 && c.rrng.Float64() < c.inj.cfg.StallProb
	var delay time.Duration
	if c.inj.cfg.Latency > 0 || c.inj.cfg.Jitter > 0 {
		delay = c.inj.cfg.Latency
		if c.inj.cfg.Jitter > 0 {
			delay += time.Duration(c.rrng.Int63n(int64(c.inj.cfg.Jitter)))
		}
	}
	c.rmu.Unlock()
	if stall {
		c.inj.stalls.Add(1)
		return c.block()
	}
	if delay > 0 {
		select {
		// Injected latency holds a real socket read back in wall time; the
		// delay's *magnitude* was drawn from the seeded read stream above.
		case <-time.After(delay): //tagwatch:allow-wallclock real-socket latency injection
		case <-c.closed:
			return c.block()
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.bytes.Add(int64(n))
		c.flapCheck()
		// A read that raced the blackhole trip point still delivers; the
		// next operation sees the half-open link.
		c.rmu.Lock()
		truncate := c.inj.cfg.TruncateProb > 0 && c.rrng.Float64() < c.inj.cfg.TruncateProb
		corrupt := c.inj.cfg.CorruptProb > 0 && c.rrng.Float64() < c.inj.cfg.CorruptProb
		var cut, flipAt int
		if truncate && n > 1 {
			cut = 1 + c.rrng.Intn(n-1)
		}
		if corrupt {
			flipAt = c.rrng.Intn(n)
		}
		c.rmu.Unlock()
		if truncate && cut > 0 {
			c.inj.truncations.Add(1)
			c.Close()
			return cut, nil
		}
		if corrupt {
			c.inj.corruptions.Add(1)
			p[flipAt] ^= 0xFF
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.partitioned("tx") {
		// Accept and discard: outbound bytes vanish while inbound reads
		// keep succeeding — the partition's other asymmetric half.
		return len(p), nil
	}
	if c.blackholed() {
		// Accept and discard: the peer believes the write succeeded.
		return len(p), nil
	}
	c.wmu.Lock()
	reset := c.inj.cfg.ResetProb > 0 && c.wrng.Float64() < c.inj.cfg.ResetProb
	c.wmu.Unlock()
	if reset {
		c.inj.resets.Add(1)
		c.Close()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.bytes.Add(int64(n))
		c.flapCheck()
	}
	return n, err
}
