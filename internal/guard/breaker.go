package guard

import (
	"sync"
	"time"
)

// BreakerConfig tunes a restart budget.
type BreakerConfig struct {
	// Budget is how many restarts the window allows before the breaker
	// trips to dead (default 5). A tripped breaker never un-trips: a
	// component that panics this often needs a human, not a retry loop.
	Budget int
	// Window is the sliding interval the budget applies to (default 1m).
	Window time.Duration
	// BackoffBase and BackoffMax bound the delay handed out before each
	// restart: the delay doubles with every restart still inside the
	// window, saturating at the max (defaults 100ms and 10s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Budget <= 0 {
		c.Budget = 5
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 10 * time.Second
	}
	return c
}

// Breaker meters restarts of one crashing component: each failure costs
// one unit of a per-window budget and buys an exponentially growing
// backoff delay; spending the whole budget inside one window trips the
// breaker permanently. It is the fleet's answer to a supervisor that
// panics in a tight loop — restarted while plausibly transient, severed
// before it can take the manager down with it.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	recent  []time.Time // failure instants still inside the window
	tripped bool
	trips   uint64 // 0 or 1; kept as a counter for the metrics shape
}

// NewBreaker builds a breaker from cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Next records a failure at time at. It returns the backoff delay to
// wait before restarting, or ok=false when this failure exhausted the
// window's budget and the breaker has tripped to dead.
func (b *Breaker) Next(at time.Time) (delay time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tripped {
		return 0, false
	}
	cutoff := at.Add(-b.cfg.Window)
	kept := b.recent[:0]
	for _, t := range b.recent {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	b.recent = append(kept, at)
	if len(b.recent) > b.cfg.Budget {
		b.tripped = true
		b.trips++
		return 0, false
	}
	// Exponential in the number of in-window failures: sparse panics pay
	// the base, a burst climbs toward the cap.
	d := b.cfg.BackoffBase << uint(len(b.recent)-1)
	if d > b.cfg.BackoffMax || d <= 0 {
		d = b.cfg.BackoffMax
	}
	return d, true
}

// Tripped reports whether the budget has been exhausted.
func (b *Breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// Restarts reports how many failures are currently inside the window
// and whether the breaker is dead — the metrics snapshot.
func (b *Breaker) Restarts() (inWindow int, tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recent), b.tripped
}
