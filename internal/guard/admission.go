package guard

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRateLimited reports a client that spent its token bucket.
var ErrRateLimited = errors.New("guard: client rate limit exceeded")

// ErrOverloaded reports a request shed by the concurrency limiter: the
// adaptive limit was saturated and the request aged out of (or never
// fit in) the LIFO wait queue.
var ErrOverloaded = errors.New("guard: server overloaded, request shed")

// AdmissionConfig tunes the HTTP admission layer. The zero value
// disables both the rate limiter and the concurrency limit, leaving
// only panic containment active.
type AdmissionConfig struct {
	// RatePerClient is the sustained request rate (req/s) each client
	// key (IP) may spend; Burst is the bucket depth (default 2×rate).
	// Zero disables per-client rate limiting.
	RatePerClient float64
	Burst         float64
	// MaxClients bounds the tracked client buckets (default 16384); when
	// full, the stalest bucket among a small sample is recycled.
	MaxClients int

	// MaxConcurrent is the ceiling (and the starting point) of the
	// adaptive concurrency limit; zero disables the concurrency limiter.
	// MinConcurrent floors the limit so a latency spike cannot choke the
	// API to zero (default 4).
	MaxConcurrent int
	MinConcurrent int
	// QueueDepth is how many requests may wait for a slot (LIFO: the
	// newest waiter is served first, and when the queue overflows the
	// oldest waiter — the one most likely already abandoned by its
	// client — is shed). QueueTimeout bounds the wait (default 250ms).
	QueueDepth   int
	QueueTimeout time.Duration
	// LatencyBudget is the AIMD feedback signal: a request finishing
	// within it votes the limit up (additive), one finishing late votes
	// it down (multiplicative), so the limit converges on the
	// concurrency the backend actually sustains (default 1s).
	LatencyBudget time.Duration

	// RetryAfter is the hint attached to 429/503 responses (default 1s).
	RetryAfter time.Duration

	// Bypass exempts a request from rate limiting and concurrency
	// limiting entirely (health and metrics probes must answer during
	// the exact overload this layer manages). Panics are still contained.
	Bypass func(*http.Request) bool
	// NoSlot exempts a request from the concurrency limit only (it is
	// still rate limited): long-lived streams like SSE would otherwise
	// pin slots forever and are bounded elsewhere (subscriber caps).
	NoSlot func(*http.Request) bool
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.RatePerClient > 0 && c.Burst <= 0 {
		c.Burst = 2 * c.RatePerClient
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 16384
	}
	if c.MaxConcurrent > 0 {
		if c.MinConcurrent <= 0 {
			c.MinConcurrent = 4
		}
		if c.MinConcurrent > c.MaxConcurrent {
			c.MinConcurrent = c.MaxConcurrent
		}
		if c.QueueTimeout <= 0 {
			c.QueueTimeout = 250 * time.Millisecond
		}
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// AdmissionStats is the counter snapshot for the metrics endpoint.
type AdmissionStats struct {
	Admitted    uint64 // requests that acquired a slot (or needed none)
	RateLimited uint64 // requests rejected 429 by the token bucket
	Shed        uint64 // requests rejected 503 by the concurrency limiter
	Panics      uint64 // handler panics contained into 500s
	Limit       int    // current adaptive concurrency limit
	Inflight    int    // requests currently holding slots
	Waiting     int    // requests currently queued
	Clients     int    // tracked client buckets
}

// Admission is the HTTP admission controller: token bucket per client,
// AIMD concurrency limit with LIFO shedding, and panic containment.
type Admission struct {
	cfg AdmissionConfig

	// now is the injected clock (tests); defaults to time.Now.
	now func() time.Time

	// Token buckets, keyed by client.
	bmu     sync.Mutex
	buckets map[string]*bucket

	// Concurrency limiter state. limit is a float so additive increase
	// accumulates across requests (+1/limit per good request ≈ +1 per
	// RTT of good requests, the classic AIMD shape).
	cmu      sync.Mutex
	limit    float64
	inflight int
	waiters  []*waiter // index 0 = oldest; LIFO grants from the tail

	admitted    atomic.Uint64
	rateLimited atomic.Uint64
	shed        atomic.Uint64
	panics      atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// waiter is one queued request. Exactly one of grant/shed is closed,
// under the limiter lock, which also clears w.queued.
type waiter struct {
	grant  chan struct{}
	shed   chan struct{}
	queued bool
}

// NewAdmission builds an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	return &Admission{
		cfg:     cfg,
		now:     time.Now,
		buckets: make(map[string]*bucket),
		limit:   float64(cfg.MaxConcurrent),
	}
}

// AllowClient spends one token from the client's bucket, reporting
// false when the client is over its rate. With rate limiting disabled
// every client is allowed.
func (a *Admission) AllowClient(client string) bool {
	if a.cfg.RatePerClient <= 0 {
		return true
	}
	at := a.now()
	a.bmu.Lock()
	b, ok := a.buckets[client]
	if !ok {
		if len(a.buckets) >= a.cfg.MaxClients {
			a.evictBucketLocked()
		}
		// A fresh bucket starts full; this request spends one token.
		a.buckets[client] = &bucket{tokens: a.cfg.Burst - 1, last: at}
		a.bmu.Unlock()
		return true
	}
	b.tokens = math.Min(a.cfg.Burst, b.tokens+a.cfg.RatePerClient*at.Sub(b.last).Seconds())
	b.last = at
	if b.tokens < 1 {
		a.bmu.Unlock()
		a.rateLimited.Add(1)
		return false
	}
	b.tokens--
	a.bmu.Unlock()
	return true
}

// evictBucketLocked recycles the stalest of a small sample of buckets —
// O(1) amortised and good enough: an attacker rotating source IPs only
// ever recycles other attacker buckets, because real clients keep their
// buckets fresh.
func (a *Admission) evictBucketLocked() {
	var victim string
	var oldest time.Time
	n := 0
	for k, b := range a.buckets {
		if n == 0 || b.last.Before(oldest) {
			victim, oldest = k, b.last
		}
		n++
		if n >= 8 {
			break
		}
	}
	if victim != "" {
		delete(a.buckets, victim)
	}
}

// Acquire obtains a concurrency slot, waiting in the LIFO queue up to
// the configured timeout (or ctx cancellation). On success it returns a
// release function that MUST be called exactly once when the request
// finishes; ok=true means the request completed within the latency
// budget and votes the adaptive limit up, ok=false votes it down. The
// error is ErrOverloaded when the request was shed, or the ctx error.
// With the concurrency limiter disabled, Acquire always succeeds with a
// no-op release.
//
// Ordering is deliberately LIFO throughout: releases grant the newest
// waiter first, and every free slot is handed to queued waiters before
// the fast path can see it (release drains the queue up to the limit,
// so waiters are only ever queued while inflight is at the limit — a
// fresh request never takes a slot a waiter could have had).
func (a *Admission) Acquire(ctx context.Context) (release func(ok bool), err error) {
	if a.cfg.MaxConcurrent <= 0 {
		a.admitted.Add(1)
		return func(bool) {}, nil
	}
	a.cmu.Lock()
	if a.inflight < a.limitNowLocked() {
		a.inflight++
		a.cmu.Unlock()
		a.admitted.Add(1)
		return a.release, nil
	}
	if a.cfg.QueueDepth <= 0 {
		a.cmu.Unlock()
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	w := &waiter{grant: make(chan struct{}), shed: make(chan struct{}), queued: true}
	if len(a.waiters) >= a.cfg.QueueDepth {
		// LIFO shedding: the OLDEST waiter has been in line longest, is
		// closest to its client giving up, and is the one to sacrifice
		// for the fresh request.
		old := a.waiters[0]
		a.waiters = a.waiters[1:]
		old.queued = false
		close(old.shed)
		a.shed.Add(1)
	}
	a.waiters = append(a.waiters, w)
	a.cmu.Unlock()

	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		a.admitted.Add(1)
		return a.release, nil
	case <-w.shed:
		return nil, ErrOverloaded
	case <-ctx.Done():
		if a.abandon(w) {
			a.shed.Add(1)
			return nil, ctx.Err()
		}
		return a.settleRaced(w)
	case <-timer.C:
		if a.abandon(w) {
			a.shed.Add(1)
			return nil, ErrOverloaded
		}
		return a.settleRaced(w)
	}
}

// settleRaced resolves a waiter that lost the abandon race: the limiter
// already dequeued it and committed to exactly one of grant (take the
// slot, unwind through the normal release path) or shed (overflow
// displacement, already counted at the close site). Waiting on only one
// channel here would deadlock forever when the other was the one closed.
func (a *Admission) settleRaced(w *waiter) (func(ok bool), error) {
	select {
	case <-w.grant:
		a.admitted.Add(1)
		return a.release, nil
	case <-w.shed:
		return nil, ErrOverloaded
	}
}

// abandon removes w from the queue, reporting false when w was already
// granted (or shed) and is no longer queued.
func (a *Admission) abandon(w *waiter) bool {
	a.cmu.Lock()
	defer a.cmu.Unlock()
	if !w.queued {
		return false
	}
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			w.queued = false
			return true
		}
	}
	w.queued = false
	return true
}

// release returns a slot and applies the AIMD feedback.
func (a *Admission) release(ok bool) {
	a.cmu.Lock()
	if ok {
		// Additive increase: +1 after ~limit good completions.
		a.limit += 1 / math.Max(a.limit, 1)
	} else {
		// Multiplicative decrease on latency-budget misses and panics.
		a.limit *= 0.9
	}
	a.limit = math.Min(math.Max(a.limit, float64(a.cfg.MinConcurrent)), float64(a.cfg.MaxConcurrent))
	a.inflight--
	a.grantLocked()
	a.cmu.Unlock()
}

// grantLocked hands every free slot to a queued waiter, NEWEST first
// (LIFO: under overload the freshest request is the one whose client is
// still listening). Looping — rather than granting a single slot per
// release — matters when the additive increase has just raised the
// limit: the extra capacity must reach waiters already in line, or they
// age out while fresh arrivals take the new slots on the fast path.
// This loop maintains the invariant that waiters remain queued only
// while inflight has reached the limit.
func (a *Admission) grantLocked() {
	for a.inflight < a.limitNowLocked() {
		n := len(a.waiters)
		if n == 0 {
			return
		}
		w := a.waiters[n-1]
		a.waiters = a.waiters[:n-1]
		w.queued = false
		a.inflight++
		close(w.grant)
	}
}

// limitNowLocked is the integer limit currently in force.
func (a *Admission) limitNowLocked() int {
	l := int(a.limit)
	if l < a.cfg.MinConcurrent {
		l = a.cfg.MinConcurrent
	}
	return l
}

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	a.cmu.Lock()
	limit, inflight, waiting := 0, a.inflight, len(a.waiters)
	if a.cfg.MaxConcurrent > 0 {
		limit = a.limitNowLocked()
	}
	a.cmu.Unlock()
	a.bmu.Lock()
	clients := len(a.buckets)
	a.bmu.Unlock()
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		RateLimited: a.rateLimited.Load(),
		Shed:        a.shed.Load(),
		Panics:      a.panics.Load(),
		Limit:       limit,
		Inflight:    inflight,
		Waiting:     waiting,
		Clients:     clients,
	}
}

// ClientIP extracts the admission key from a request: the bare host of
// RemoteAddr. (Deliberately not X-Forwarded-For: an unauthenticated
// header that lets any client mint fresh buckets would turn the rate
// limiter into decoration.)
func ClientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// statusRecorder tracks whether a handler already wrote headers, so the
// panic-recovery path only writes its 500 on a virgin response.
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.wrote = true
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(p)
}

// Flush preserves http.Flusher through the wrapper (SSE needs it).
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		sr.wrote = true
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer (the
// SSE per-write deadlines depend on it).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Middleware wraps next with the full admission pipeline: panic
// containment for every request, then — unless bypassed — the per-client
// token bucket (429) and the adaptive concurrency limit with LIFO
// shedding (503), both with Retry-After hints.
func (a *Admission) Middleware(next http.Handler) http.Handler {
	retryAfter := strconv.Itoa(int(math.Ceil(a.cfg.RetryAfter.Seconds())))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		if a.cfg.Bypass != nil && a.cfg.Bypass(r) {
			a.serveContained(next, rec, r)
			return
		}
		if !a.AllowClient(ClientIP(r)) {
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		if a.cfg.NoSlot != nil && a.cfg.NoSlot(r) {
			a.serveContained(next, rec, r)
			return
		}
		release, err := a.Acquire(r.Context())
		if err != nil {
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		start := a.now()
		panicked := a.serveContained(next, rec, r)
		release(!panicked && a.now().Sub(start) <= a.cfg.LatencyBudget)
	})
}

// serveContained runs the handler under recover: a panic is counted,
// answered with a 500 when the response is still unwritten, and never
// escapes to the server's connection goroutine. http.ErrAbortHandler is
// re-raised — it is the sanctioned way to abort a response, not a bug.
func (a *Admission) serveContained(next http.Handler, rec *statusRecorder, r *http.Request) (panicked bool) {
	defer func() {
		if rv := recover(); rv != nil {
			if rv == http.ErrAbortHandler {
				panic(rv)
			}
			panicked = true
			a.panics.Add(1)
			if !rec.wrote {
				http.Error(rec, "internal error", http.StatusInternalServerError)
			}
		}
	}()
	next.ServeHTTP(rec, r)
	return false
}
