package guard

import (
	"errors"
	"testing"
	"time"
)

func TestCallConvertsPanic(t *testing.T) {
	if perr := Call(func() {}); perr != nil {
		t.Fatalf("Call on clean fn returned %v", perr)
	}
	perr := Call(func() { panic("boom") })
	if perr == nil {
		t.Fatal("Call did not capture panic")
	}
	if perr.Value != "boom" {
		t.Fatalf("Value = %v, want boom", perr.Value)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestSentinelCountsPerComponent(t *testing.T) {
	var observed []string
	s := NewSentinel(func(component string, err *PanicError) {
		observed = append(observed, component)
	})
	if err := s.Do("clean", func() {}); err != nil {
		t.Fatalf("clean component returned %v", err)
	}
	for i := 0; i < 3; i++ {
		err := s.Do("cycler", func() { panic(i) })
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("Do returned %T, want *PanicError", err)
		}
		if perr.Component != "cycler" {
			t.Fatalf("Component = %q", perr.Component)
		}
	}
	_ = s.Do("bus", func() { panic("x") })
	if got := s.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	counts := s.Counts()
	if len(counts) != 2 || counts[0].Component != "bus" || counts[0].Count != 1 ||
		counts[1].Component != "cycler" || counts[1].Count != 3 {
		t.Fatalf("Counts = %+v", counts)
	}
	if len(observed) != 4 {
		t.Fatalf("observer saw %d panics, want 4", len(observed))
	}
}

func TestSentinelContainsPanickingObserver(t *testing.T) {
	s := NewSentinel(func(string, *PanicError) { panic("observer is broken") })
	_ = s.Do("comp", func() { panic("original") })
	counts := s.Counts()
	if len(counts) != 2 {
		t.Fatalf("Counts = %+v, want comp and sentinel.observer", counts)
	}
	if counts[1].Component != "sentinel.observer" || counts[1].Count != 1 {
		t.Fatalf("observer panic not counted: %+v", counts)
	}
}

func TestBreakerBackoffGrowsThenTrips(t *testing.T) {
	b := NewBreaker(BreakerConfig{Budget: 3, Window: time.Minute, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	t0 := time.Unix(1000, 0)
	wantDelays := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	for i, want := range wantDelays {
		d, ok := b.Next(t0.Add(time.Duration(i) * time.Second))
		if !ok || d != want {
			t.Fatalf("restart %d: delay=%v ok=%v, want %v true", i, d, ok, want)
		}
	}
	d, ok := b.Next(t0.Add(3 * time.Second))
	if ok {
		t.Fatalf("4th failure in window: delay=%v ok=true, want tripped", d)
	}
	if !b.Tripped() {
		t.Fatal("breaker should be tripped")
	}
	// A tripped breaker stays dead even after the window would lapse.
	if _, ok := b.Next(t0.Add(time.Hour)); ok {
		t.Fatal("tripped breaker granted a restart")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(BreakerConfig{Budget: 2, Window: 10 * time.Second, BackoffBase: time.Millisecond, BackoffMax: time.Second})
	t0 := time.Unix(0, 0)
	// Sparse failures — one per window — never accumulate.
	for i := 0; i < 20; i++ {
		d, ok := b.Next(t0.Add(time.Duration(i) * 11 * time.Second))
		if !ok {
			t.Fatalf("sparse failure %d tripped the breaker", i)
		}
		if d != time.Millisecond {
			t.Fatalf("sparse failure %d: delay %v, want base", i, d)
		}
	}
	in, tripped := b.Restarts()
	if in != 1 || tripped {
		t.Fatalf("Restarts = (%d,%v), want (1,false)", in, tripped)
	}
}

func TestBreakerBackoffCaps(t *testing.T) {
	b := NewBreaker(BreakerConfig{Budget: 50, Window: time.Hour, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	t0 := time.Unix(0, 0)
	var last time.Duration
	for i := 0; i < 20; i++ {
		d, ok := b.Next(t0.Add(time.Duration(i) * time.Second))
		if !ok {
			t.Fatalf("failure %d tripped under budget", i)
		}
		last = d
	}
	if last != time.Second {
		t.Fatalf("backoff did not cap: %v", last)
	}
}

func TestQuarantineConfirmsAfterK(t *testing.T) {
	q := NewQuarantine[string](3, 10*time.Second, 100)
	t0 := time.Unix(0, 0)
	if q.Observe("tag", t0) {
		t.Fatal("first sighting confirmed")
	}
	if q.Observe("tag", t0.Add(time.Second)) {
		t.Fatal("second sighting confirmed")
	}
	if !q.Observe("tag", t0.Add(2*time.Second)) {
		t.Fatal("third sighting not confirmed")
	}
	// Confirmed keys are forgotten: the caller owns them now.
	if q.Contains("tag") {
		t.Fatal("confirmed key still on probation")
	}
	st := q.Stats()
	if st.Confirmed != 1 || st.Held != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuarantineWindowExpiry(t *testing.T) {
	q := NewQuarantine[string](2, 10*time.Second, 100)
	t0 := time.Unix(0, 0)
	q.Observe("ghost", t0)
	// Second sighting outside the window restarts probation.
	if q.Observe("ghost", t0.Add(11*time.Second)) {
		t.Fatal("lapsed-window sighting confirmed")
	}
	// Now a sighting inside the NEW window confirms.
	if !q.Observe("ghost", t0.Add(12*time.Second)) {
		t.Fatal("sighting inside restarted window not confirmed")
	}
	if q.Stats().Expired != 1 {
		t.Fatalf("expired = %d, want 1", q.Stats().Expired)
	}
}

func TestQuarantineRingBound(t *testing.T) {
	const cap = 64
	q := NewQuarantine[int](2, time.Minute, cap)
	t0 := time.Unix(0, 0)
	for i := 0; i < 10*cap; i++ {
		if q.Observe(i, t0.Add(time.Duration(i)*time.Millisecond)) {
			t.Fatalf("one-off key %d confirmed", i)
		}
		if q.Len() > cap {
			t.Fatalf("probation population %d exceeds cap %d", q.Len(), cap)
		}
	}
	if q.Len() != cap {
		t.Fatalf("Len = %d, want full ring %d", q.Len(), cap)
	}
	st := q.Stats()
	if st.Evicted != 9*cap {
		t.Fatalf("Evicted = %d, want %d", st.Evicted, 9*cap)
	}
	// Eviction is oldest-first: the survivors are the newest cap keys.
	for i := 0; i < 9*cap; i++ {
		if q.Contains(i) {
			t.Fatalf("old key %d survived eviction", i)
		}
	}
	for i := 9 * cap; i < 10*cap; i++ {
		if !q.Contains(i) {
			t.Fatalf("new key %d missing from ring", i)
		}
	}
}

func TestQuarantinePassThrough(t *testing.T) {
	q := NewQuarantine[string](1, time.Minute, 8)
	if !q.Observe("anything", time.Unix(0, 0)) {
		t.Fatal("k=1 quarantine must admit on first sight")
	}
	if q.Len() != 0 {
		t.Fatal("pass-through quarantine holds state")
	}
}

// Regression: a key that cleared probation and later re-enters leaves a
// stale entry at the FRONT of the eviction FIFO. Matching that entry by
// key alone would evict the key's fresh probe — the youngest in the
// ring — instead of the genuinely oldest one; entries must be matched
// by probe identity so stale duplicates are discarded.
func TestQuarantineReprobationEvictionOrder(t *testing.T) {
	q := NewQuarantine[string](2, time.Minute, 3)
	t0 := time.Unix(1_700_000_000, 0)
	// A clears probation, leaving its stale order entry behind…
	q.Observe("A", t0)
	if !q.Observe("A", t0.Add(time.Second)) {
		t.Fatal("A not confirmed after K sightings")
	}
	// …then B and C enter, and A re-enters probation after both.
	q.Observe("B", t0.Add(2*time.Second))
	q.Observe("C", t0.Add(3*time.Second))
	q.Observe("A", t0.Add(4*time.Second))
	// Ring full: admitting D must evict B, the oldest live probe — not
	// A, whose stale front entry predates B but whose live probe is the
	// youngest in the ring.
	q.Observe("D", t0.Add(5*time.Second))
	if q.Contains("B") {
		t.Fatal("oldest live probe B survived eviction")
	}
	for _, k := range []string{"A", "C", "D"} {
		if !q.Contains(k) {
			t.Fatalf("probe %s wrongly evicted in place of B", k)
		}
	}
	if got := q.Stats().Evicted; got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
}

func TestQuarantineOrderCompaction(t *testing.T) {
	// Confirmed keys leave dead entries in the order slice; make sure the
	// slice stays O(cap) under a confirm-heavy workload.
	const cap = 16
	q := NewQuarantine[int](2, time.Minute, cap)
	t0 := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		at := t0.Add(time.Duration(i) * time.Millisecond)
		q.Observe(i, at)
		q.Observe(i, at.Add(time.Microsecond)) // confirms immediately
	}
	q.mu.Lock()
	orderLen := len(q.order)
	q.mu.Unlock()
	if orderLen > 2*cap {
		t.Fatalf("order slice grew to %d, cap %d", orderLen, cap)
	}
	if q.Stats().Confirmed != 1000 {
		t.Fatalf("Confirmed = %d", q.Stats().Confirmed)
	}
}
