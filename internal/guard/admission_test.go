package guard

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock drives an Admission deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestAdmission(cfg AdmissionConfig) (*Admission, *fakeClock) {
	a := NewAdmission(cfg)
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	a.now = clk.Now
	return a, clk
}

func TestTokenBucketRefill(t *testing.T) {
	a, clk := newTestAdmission(AdmissionConfig{RatePerClient: 10, Burst: 5})
	// The burst is spendable immediately…
	for i := 0; i < 5; i++ {
		if !a.AllowClient("10.0.0.1") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	// …then the bucket is dry…
	if a.AllowClient("10.0.0.1") {
		t.Fatal("dry bucket allowed a request")
	}
	// …and refills at the configured rate (10/s → one token per 100ms).
	clk.Advance(100 * time.Millisecond)
	if !a.AllowClient("10.0.0.1") {
		t.Fatal("refilled token denied")
	}
	if a.AllowClient("10.0.0.1") {
		t.Fatal("second request on one refilled token allowed")
	}
	// Other clients have independent buckets.
	if !a.AllowClient("10.0.0.2") {
		t.Fatal("fresh client denied")
	}
	if got := a.Stats().RateLimited; got != 2 {
		t.Fatalf("RateLimited = %d, want 2", got)
	}
}

func TestBucketMapBounded(t *testing.T) {
	a, clk := newTestAdmission(AdmissionConfig{RatePerClient: 1, Burst: 1, MaxClients: 32})
	for i := 0; i < 500; i++ {
		a.AllowClient(fmt.Sprintf("10.0.%d.%d", i/256, i%256))
		clk.Advance(time.Millisecond)
	}
	if got := a.Stats().Clients; got > 32 {
		t.Fatalf("bucket map grew to %d, cap 32", got)
	}
}

func TestAcquireUpToLimitThenShed(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{MaxConcurrent: 4, MinConcurrent: 4, QueueDepth: 0})
	var releases []func(bool)
	for i := 0; i < 4; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := a.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("over-limit Acquire err = %v, want ErrOverloaded", err)
	}
	st := a.Stats()
	if st.Inflight != 4 || st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for _, rel := range releases {
		rel(true)
	}
	if got := a.Stats().Inflight; got != 0 {
		t.Fatalf("Inflight after release = %d", got)
	}
}

func TestLIFOQueueGrantAndShed(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 1, MinConcurrent: 1,
		QueueDepth: 2, QueueTimeout: 5 * time.Second,
	})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		id  int
		err error
		rel func(bool)
	}
	results := make(chan result, 3)
	start := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		go func(id int) {
			start <- id
			r, e := a.Acquire(context.Background())
			results <- result{id, e, r}
		}(i)
		<-start
		// Wait until this waiter is actually queued (or shed) before
		// starting the next, so queue order is deterministic.
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := a.Stats()
			if st.Waiting+int(st.Shed) >= i || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Queue depth 2: enqueueing waiter 3 sheds waiter 1 (the oldest).
	r := <-results
	if r.id != 1 || r.err != ErrOverloaded {
		t.Fatalf("first completion = waiter %d err %v, want waiter 1 shed", r.id, r.err)
	}
	// Releasing the slot grants the NEWEST waiter (3), not waiter 2.
	rel(true)
	r = <-results
	if r.id != 3 || r.err != nil {
		t.Fatalf("grant went to waiter %d (err %v), want 3", r.id, r.err)
	}
	r.rel(true)
	r = <-results
	if r.id != 2 || r.err != nil {
		t.Fatalf("final grant to waiter %d (err %v), want 2", r.id, r.err)
	}
	r.rel(true)
}

func TestQueueTimeoutSheds(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 1, MinConcurrent: 1,
		QueueDepth: 4, QueueTimeout: 20 * time.Millisecond,
	})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel(true)
	if _, err := a.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("timed-out Acquire err = %v, want ErrOverloaded", err)
	}
	if a.Stats().Waiting != 0 {
		t.Fatal("timed-out waiter left in queue")
	}
}

func TestAcquireContextCancel(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 1, MinConcurrent: 1,
		QueueDepth: 4, QueueTimeout: time.Minute,
	})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, e := a.Acquire(ctx)
		done <- e
	}()
	waitForCond(t, time.Second, "waiter queued", func() bool { return a.Stats().Waiting == 1 })
	cancel()
	if e := <-done; e != context.Canceled {
		t.Fatalf("cancelled Acquire err = %v", e)
	}
}

// Regression: a waiter shed by queue overflow concurrently with its own
// queue timeout (or ctx cancellation) must settle on whichever of
// grant/shed actually fired — blocking on grant alone deadlocks the
// handler goroutine forever, since a shed waiter's grant never closes.
// Tiny timeouts plus constant overflow make the race fire in practice.
func TestAcquireShedTimeoutRaceNoDeadlock(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 2, MinConcurrent: 1,
		QueueDepth: 2, QueueTimeout: time.Millisecond,
	})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, err := a.Acquire(context.Background())
				if err == nil {
					rel(i%2 == 0)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Acquire deadlocked under shed/timeout races")
	}
	st := a.Stats()
	if st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked limiter state after drain: %+v", st)
	}
}

// Regression: when the additive increase raises the limit, the new
// capacity must reach waiters already in line — not sit idle for the
// fast path while a queued waiter ages out. One release at limit 1→2
// must therefore admit BOTH queued waiters.
func TestLimitRiseGrantsAllWaiters(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 2, MinConcurrent: 1,
		QueueDepth: 4, QueueTimeout: 5 * time.Second,
	})
	// One budget miss drives the limit down to 1.
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel(false)
	if got := a.Stats().Limit; got != 1 {
		t.Fatalf("limit after miss = %d, want 1", got)
	}
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rel func(bool)
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, e := a.Acquire(context.Background())
			results <- result{r, e}
		}()
	}
	waitForCond(t, time.Second, "both waiters queued", func() bool { return a.Stats().Waiting == 2 })
	// The good completion raises the limit to 2 and frees one slot: one
	// waiter takes the freed slot, the other the new capacity. Each holds
	// its slot so the second grant cannot come from the first's release.
	hold(true)
	granted := make([]result, 0, 2)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("waiter %d: %v", i, r.err)
			}
			granted = append(granted, r)
		case <-time.After(2 * time.Second):
			t.Fatal("waiter stranded despite free capacity from limit rise")
		}
	}
	for _, r := range granted {
		r.rel(true)
	}
}

func TestAIMDFeedback(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{MaxConcurrent: 100, MinConcurrent: 4})
	// A run of budget misses collapses the limit multiplicatively…
	for i := 0; i < 60; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel(false)
	}
	low := a.Stats().Limit
	if low != 4 {
		t.Fatalf("limit after sustained misses = %d, want floor 4", low)
	}
	// …and good completions climb it back additively (slowly).
	for i := 0; i < 200; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel(true)
	}
	if got := a.Stats().Limit; got <= low {
		t.Fatalf("limit did not recover: %d", got)
	}
}

func waitForCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMiddlewareRateLimit(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{RatePerClient: 1, Burst: 2})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	codes := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest("GET", "/api/tags", nil)
		req.RemoteAddr = "192.0.2.7:1234"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		codes = append(codes, rr.Code)
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != http.StatusTooManyRequests {
		t.Fatalf("codes = %v", codes)
	}
	req := httptest.NewRequest("GET", "/api/tags", nil)
	req.RemoteAddr = "192.0.2.7:1234"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestMiddlewareBypass(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		RatePerClient: 1, Burst: 1,
		Bypass: func(r *http.Request) bool { return r.URL.Path == "/healthz" },
	})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	// Health probes from one address never hit the bucket.
	for i := 0; i < 50; i++ {
		req := httptest.NewRequest("GET", "/healthz", nil)
		req.RemoteAddr = "192.0.2.9:999"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != 200 {
			t.Fatalf("healthz probe %d got %d", i, rr.Code)
		}
	}
}

func TestMiddlewareShed503(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{
		MaxConcurrent: 1, MinConcurrent: 1,
		QueueDepth: 0, RetryAfter: 3 * time.Second,
	})
	blocked := make(chan struct{})
	release := make(chan struct{})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-release
	}))
	go func() {
		req := httptest.NewRequest("GET", "/api/tags", nil)
		req.RemoteAddr = "192.0.2.1:1"
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-blocked
	req := httptest.NewRequest("GET", "/api/tags", nil)
	req.RemoteAddr = "192.0.2.2:2"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	close(release)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request got %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want 3", rr.Header().Get("Retry-After"))
	}
}

func TestMiddlewareContainsPanic(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{MaxConcurrent: 8, MinConcurrent: 8})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	req := httptest.NewRequest("GET", "/api/tags", nil)
	req.RemoteAddr = "192.0.2.1:1"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d", rr.Code)
	}
	st := a.Stats()
	if st.Panics != 1 {
		t.Fatalf("Panics = %d", st.Panics)
	}
	if st.Inflight != 0 {
		t.Fatal("panicking handler leaked its slot")
	}
}

func TestMiddlewareRepanicsAbortHandler(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
	}()
	req := httptest.NewRequest("GET", "/api/tags", nil)
	req.RemoteAddr = "192.0.2.1:1"
	h.ServeHTTP(httptest.NewRecorder(), req)
}

func TestClientIP(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "203.0.113.5:4312"
	if got := ClientIP(r); got != "203.0.113.5" {
		t.Fatalf("ClientIP = %q", got)
	}
	r.RemoteAddr = "weird"
	if got := ClientIP(r); got != "weird" {
		t.Fatalf("ClientIP fallback = %q", got)
	}
}
