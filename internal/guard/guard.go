// Package guard is Tagwatch's overload armor: the containment layer
// that keeps a fleet serving — degraded but observable — when its
// inputs turn hostile. It provides four independent mechanisms, each
// wired through the fleet, core, and daemon layers:
//
//   - panic containment: Call/Sentinel convert a panic anywhere in a
//     supervised component into a counted *PanicError instead of a
//     process death;
//   - restart budgets: Breaker meters how often a panicking component
//     may be restarted (exponential backoff, trip-to-dead when the
//     budget for the window is spent);
//   - admission control: Admission combines a per-client token bucket
//     with an adaptive (AIMD) concurrency limit and LIFO shedding for
//     the HTTP/SSE API, so 500 greedy clients degrade into 503s with
//     Retry-After instead of an unbounded goroutine pile-up;
//   - ghost-tag quarantine: Quarantine holds never-before-seen keys in
//     a fixed-size probationary ring until they have been sighted K
//     times within a window, so an RF corruption flood of one-off EPCs
//     can never reach the registry, the motion models, or the WAL.
//
// Everything is counted: every shed request, held sighting, evicted
// probe, and contained panic increments a counter the fleet exposes on
// /metrics, because graceful degradation only counts if an operator can
// see it happening.
package guard

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
)

// PanicError is a recovered panic promoted to an error: the component
// that panicked, the recovered value, and the goroutine stack captured
// at the recovery point.
type PanicError struct {
	Component string
	Value     any
	Stack     []byte
}

// Error renders the panic without the stack (the stack is for logs, not
// for error strings that end up in JSON events).
func (e *PanicError) Error() string {
	if e.Component == "" {
		return fmt.Sprintf("panic: %v", e.Value)
	}
	return fmt.Sprintf("panic in %s: %v", e.Component, e.Value)
}

// Call runs fn, converting a panic into a *PanicError (nil otherwise).
// It is the primitive the per-reading hot paths use directly; supervised
// components should prefer Sentinel.Do so the panic is also counted.
func Call(fn func()) (perr *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			perr = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Sentinel is a panic-containment hub: it runs component bodies under
// recover and keeps per-component panic counts for the metrics endpoint.
// The zero value is not usable; call NewSentinel.
type Sentinel struct {
	mu     sync.Mutex
	counts map[string]uint64

	// onPanic, when set, observes every contained panic (publishing a
	// bus event, logging). It runs outside the sentinel's lock and is
	// itself recovered: a panicking observer must not defeat containment.
	onPanic func(component string, err *PanicError)
}

// NewSentinel builds a sentinel. onPanic may be nil.
func NewSentinel(onPanic func(component string, err *PanicError)) *Sentinel {
	return &Sentinel{counts: make(map[string]uint64), onPanic: onPanic}
}

// Do runs fn under recover. A panic is counted against component,
// reported to the observer, and returned as a *PanicError; a normal
// return yields nil. Callers owning a restart decision must consume the
// error (deverr enforces this); fire-and-forget callers may discard it
// deliberately — the count and observer report have already happened.
func (s *Sentinel) Do(component string, fn func()) error {
	perr := Call(fn)
	if perr == nil {
		return nil
	}
	perr.Component = component
	s.mu.Lock()
	s.counts[component]++
	s.mu.Unlock()
	if s.onPanic != nil {
		// The observer is contained too — and its own panic is counted,
		// so a broken observer is visible rather than silent.
		if operr := Call(func() { s.onPanic(component, perr) }); operr != nil {
			s.mu.Lock()
			s.counts["sentinel.observer"]++
			s.mu.Unlock()
		}
	}
	return perr
}

// Total reports the lifetime number of contained panics.
func (s *Sentinel) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	return n
}

// ComponentCount is one (component, contained panics) pair.
type ComponentCount struct {
	Component string
	Count     uint64
}

// Counts snapshots the per-component panic counts, sorted by component
// for deterministic metrics output.
func (s *Sentinel) Counts() []ComponentCount {
	s.mu.Lock()
	out := make([]ComponentCount, 0, len(s.counts))
	for c, n := range s.counts {
		out = append(out, ComponentCount{Component: c, Count: n})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}
