package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Quarantine holds never-before-seen keys in a fixed-size probationary
// ring until they earn admission: K sightings within a sliding window.
// It is the ghost-tag filter — corrupted backscatter decodes into an
// EPC that was never on a tag, and such one-off reads must not be
// allowed to allocate registry entries, motion models, or WAL records.
// A real tag entering the field is sighted every cycle and clears
// probation in K cycles; a ghost is sighted once and ages out of the
// ring (or is evicted by newer ghosts) without ever being admitted.
//
// Memory is strictly bounded: at most Cap probationary entries exist at
// once, evicted oldest-first, so a flood of unique ghosts recycles the
// ring instead of growing it. All methods are safe for concurrent use.
type Quarantine[K comparable] struct {
	k      int
	window time.Duration
	cap    int

	mu     sync.Mutex
	probes map[K]*probe
	// order is the insertion-order FIFO used for ring eviction. Each
	// entry pins the probe pointer it was created for, so a stale entry
	// (its key confirmed or evicted, possibly back on probation under a
	// fresh probe) is recognised and skipped rather than evicting the
	// newer probe out of turn. Stale entries stay behind as dead weight
	// until an eviction pops them or a compaction sweeps them; the slice
	// is compacted once it outgrows 2×cap, keeping it O(cap).
	order []orderEntry[K]

	held      atomic.Uint64 // sightings answered "still on probation"
	confirmed atomic.Uint64 // keys admitted
	evicted   atomic.Uint64 // probes displaced by ring overflow
	expired   atomic.Uint64 // probes whose window lapsed and restarted
}

type probe struct {
	count int
	first time.Time
}

// orderEntry identifies one ring admission: key plus the exact probe it
// admitted. probes[key] == p iff that admission is still live.
type orderEntry[K comparable] struct {
	key K
	p   *probe
}

// NewQuarantine builds a quarantine requiring k sightings within window,
// holding at most cap probationary keys (cap minimum 1). k <= 1 builds a
// pass-through that admits every key on first sight.
func NewQuarantine[K comparable](k int, window time.Duration, cap int) *Quarantine[K] {
	if window <= 0 {
		window = 10 * time.Second
	}
	if cap < 1 {
		cap = 1
	}
	return &Quarantine[K]{
		k:      k,
		window: window,
		cap:    cap,
		probes: make(map[K]*probe),
	}
}

// Observe records one sighting of key at time at. It returns true when
// the key is (now) confirmed — the caller admits it and the quarantine
// forgets it — and false while the key remains on probation.
func (q *Quarantine[K]) Observe(key K, at time.Time) bool {
	if q.k <= 1 {
		q.confirmed.Add(1)
		return true
	}
	q.mu.Lock()
	p, ok := q.probes[key]
	if !ok {
		if len(q.probes) >= q.cap {
			q.evictOldestLocked()
		}
		p = &probe{count: 1, first: at}
		q.probes[key] = p
		q.order = append(q.order, orderEntry[K]{key: key, p: p})
		q.maybeCompactLocked()
		q.mu.Unlock()
		q.held.Add(1)
		return false
	}
	if at.Sub(p.first) > q.window {
		// The window lapsed before K sightings: probation starts over.
		// This sighting is the new first.
		p.count = 1
		p.first = at
		q.mu.Unlock()
		q.expired.Add(1)
		q.held.Add(1)
		return false
	}
	p.count++
	if p.count >= q.k {
		delete(q.probes, key)
		q.mu.Unlock()
		q.confirmed.Add(1)
		return true
	}
	q.mu.Unlock()
	q.held.Add(1)
	return false
}

// evictOldestLocked pops FIFO entries until one live probe is removed.
// An entry whose probe pointer no longer matches the map is stale — its
// admission already ended (confirmed or evicted), and the key may since
// have re-entered probation under a fresh probe with its own, younger
// entry — so it is discarded, never used to evict.
func (q *Quarantine[K]) evictOldestLocked() {
	for len(q.order) > 0 {
		e := q.order[0]
		q.order = q.order[1:]
		if q.probes[e.key] == e.p {
			delete(q.probes, e.key)
			q.evicted.Add(1)
			return
		}
	}
}

// maybeCompactLocked drops stale entries from the order slice once it
// has outgrown twice the ring capacity.
func (q *Quarantine[K]) maybeCompactLocked() {
	if len(q.order) <= 2*q.cap {
		return
	}
	kept := q.order[:0]
	for _, e := range q.order {
		if q.probes[e.key] == e.p {
			kept = append(kept, e)
		}
	}
	q.order = kept
}

// Contains reports whether key is currently on probation.
func (q *Quarantine[K]) Contains(key K) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.probes[key]
	return ok
}

// Len reports how many keys are currently on probation.
func (q *Quarantine[K]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.probes)
}

// QuarantineStats is the counter snapshot for the metrics endpoint.
type QuarantineStats struct {
	// Held counts sightings answered "not admitted"; Confirmed counts
	// keys that cleared probation; Evicted counts probes displaced by
	// ring overflow; Expired counts probation windows that lapsed and
	// restarted. Size is the current probationary population.
	Held      uint64
	Confirmed uint64
	Evicted   uint64
	Expired   uint64
	Size      int
}

// Stats snapshots the lifetime counters.
func (q *Quarantine[K]) Stats() QuarantineStats {
	return QuarantineStats{
		Held:      q.held.Load(),
		Confirmed: q.confirmed.Load(),
		Evicted:   q.evicted.Load(),
		Expired:   q.expired.Load(),
		Size:      q.Len(),
	}
}
