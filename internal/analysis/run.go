package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a concrete source position,
// tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyze runs every analyzer over every package and returns the
// surviving (non-suppressed) findings sorted by position.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range FilterSuppressed(pkg.Fset, pkg.Files, a, pass.diags) {
				// Test files are exempt across the suite: tests measure real
				// elapsed time on purpose, and their goroutines die with the
				// test process. The standalone loader never sees them; this
				// keeps the `go vet -vettool` path (which does) consistent.
				if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunForTest executes the pass's analyzer and returns the surviving
// diagnostics with the suppression filter applied, exactly as the
// runner would see them. It exists for the analysistest harness, which
// owns expectation matching.
func RunForTest(pass *Pass) ([]Diagnostic, error) {
	if err := pass.Analyzer.Run(pass); err != nil {
		return nil, err
	}
	return FilterSuppressed(pass.Fset, pass.Files, pass.Analyzer, pass.diags), nil
}

// Main is the entry point shared by cmd/tagwatchvet. It dispatches
// between the two supported invocation styles:
//
//	tagwatchvet [flags] ./...        standalone multichecker
//	go vet -vettool=$(which tagwatchvet) ./...
//
// and returns the process exit code: 0 clean, 1 usage/load failure,
// 2 findings (matching `go vet`).
func Main(stdout, stderr io.Writer, args []string, analyzers []*Analyzer) int {
	// The vet driver probes the tool with -V=full before handing it a
	// config file; both shapes are handled before normal flag parsing.
	if code, handled := vetToolMain(stdout, stderr, args, analyzers); handled {
		return code
	}

	fs := flag.NewFlagSet("tagwatchvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable; for CI annotation)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tagwatchvet [flags] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 1
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1
	}
	pkgs, err := Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1
	}
	findings, err := Analyze(pkgs, active)
	if err != nil {
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "tagwatchvet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tagwatchvet: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// jsonFinding is the -json wire shape, one object per finding. Field
// names are stable: the GitHub Actions problem matcher and any other
// tooling key off them.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON emits findings as one JSON array (an empty slice encodes
// as [], so consumers always get valid JSON).
func writeJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
