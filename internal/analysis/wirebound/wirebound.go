// Package wirebound flags allocations sized by untrusted wire input
// that are not bounded by a named constant cap — the bug class PR 7's
// review caught by hand: a corrupted length field in a replication
// frame header bought an attacker an up-to-1 GiB allocation before the
// payload checksum could reject the frame.
//
// The invariant: any `make` or `bytes.Repeat` whose length/capacity is
// tainted by a decoded length — a value derived from
// binary.{Big,Little}Endian.Uint16/32/64 or binary.ReadUvarint/ReadVarint,
// which is how every frame/WAL/LLRP header in this tree decodes sizes —
// must be dominated by an upper-bound comparison of that value (or a
// variable it derives from) against an expression mentioning a *named*
// constant — either fail-fast (`if length > cap { return }` before the
// allocation) or pass-gate (`if length <= cap { make(...) }`). A
// literal cap like `64 << 20` does not satisfy the checker on purpose:
// named caps (maxFramePayload, maxRecordLen, maxFrameLen) are
// greppable, documented, and shared between encoder and decoder. A
// floor check (`length < headerSize`) does not sanction the
// allocation; only the bounding direction counts.
//
// Taint propagates through assignments, conversions, and arithmetic
// within one function (see internal/analysis/flow); guards transfer
// from a variable to values derived from it, so checking `length`
// sanctions `make([]byte, int(length))`. An allocation sized directly
// from a decode call with no intermediate variable is always flagged —
// there is nothing to compare, so bind it first.
//
// A deliberately unbounded allocation (e.g. trusted local input) is
// annotated //tagwatch:allow-wirebound <why the size is trusted>.
package wirebound

import (
	"go/ast"
	"go/types"

	"tagwatch/internal/analysis"
	"tagwatch/internal/analysis/flow"
)

// Analyzer flags wire-length-tainted allocations without a named cap.
var Analyzer = &analysis.Analyzer{
	Name:      "wirebound",
	Directive: "allow-wirebound",
	Doc: `flag allocations sized by decoded wire lengths with no named-constant cap

A length field decoded from a socket, WAL, or frame header is attacker
input; make()ing a buffer from it without a dominating comparison
against a named constant cap is a one-frame denial of service (the
PR 7 1 GiB-allocation bug). Guard with a named cap, or annotate a
trusted size with //tagwatch:allow-wirebound.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkBody(pass, body)
		}
		return true
	})
	return nil
}

// isSource matches the decode calls that introduce wire-derived sizes:
// the fixed-width big/little endian readers and the varint readers.
func isSource(pass *analysis.Pass) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
			return false
		}
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint":
			return true
		}
		return false
	}
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	src := isSource(pass)
	taint := flow.ComputeTaint(pass.TypesInfo, body, src)
	info := flow.New(body)
	cmps := flow.Comparisons(body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own checkBody visit
		case *ast.CallExpr:
			for _, size := range sizeArgs(pass, n) {
				checkSize(pass, taint, info, cmps, src, n, size)
			}
		}
		return true
	})
}

// sizeArgs returns the size-carrying arguments of an allocation call:
// the length and capacity of make, the count of bytes.Repeat. Other
// calls have none.
func sizeArgs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
			return call.Args[1:]
		}
	}
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "bytes" && fn.Name() == "Repeat" && len(call.Args) == 2 {
		return call.Args[1:2]
	}
	return nil
}

func checkSize(pass *analysis.Pass, taint flow.Taint, info *flow.Info, cmps []*ast.BinaryExpr, src func(*ast.CallExpr) bool, call *ast.CallExpr, size ast.Expr) {
	objs, direct := taint.ExprTainted(pass.TypesInfo, size, src)
	if direct {
		pass.Reportf(call.Pos(), "allocation sized directly from a decoded wire length; bind the length to a variable and compare it against a named constant cap first")
		return
	}
	for _, o := range objs {
		if !flow.GuardedBy(info, pass.TypesInfo, taint, taint[o], cmps, call) {
			pass.Reportf(call.Pos(), "allocation sized by %s, which derives from a decoded wire length, is not dominated by a comparison against a named constant cap (one corrupt frame can buy an arbitrary allocation)", o.Name())
			return // one report per sink is enough
		}
	}
}
