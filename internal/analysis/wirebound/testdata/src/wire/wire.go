// Fixture: allocations sized by decoded wire lengths, with and without
// named-constant caps. readFrameUnguarded re-introduces the PR 7 bug
// shape — a frame-header length believed straight into make() — and
// must be caught.
package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
)

const maxFrame = 1 << 20
const minFrame = 4

// The PR 7 bug, reintroduced: a length decoded from a frame header
// sizes the payload allocation with no cap of any kind.
func readFrameUnguarded(conn net.Conn) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	payload := make([]byte, length) // want `allocation sized by length`
	_, err := io.ReadFull(conn, payload)
	return payload, err
}

// The fix shape: fail-fast against a named constant before allocating.
func readFrameGuarded(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxFrame {
		return nil, io.ErrUnexpectedEOF
	}
	payload := make([]byte, length)
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// A floor check against a named constant is not a cap: the allocation
// is still unbounded above.
func floorOnly(b []byte) []byte {
	length := binary.BigEndian.Uint32(b)
	if length < minFrame {
		return nil
	}
	return make([]byte, length) // want `allocation sized by length`
}

// A literal cap has no name; the invariant wants greppable constants
// shared between encoder and decoder.
func literalCap(b []byte) []byte {
	length := binary.BigEndian.Uint32(b)
	if length > 1<<20 {
		return nil
	}
	return make([]byte, length) // want `allocation sized by length`
}

// The guard transfers from a variable to values derived from it.
func derived(b []byte) []byte {
	length := binary.BigEndian.Uint32(b)
	if length > maxFrame {
		return nil
	}
	n := int(length)
	return make([]byte, n)
}

// Pass-gate shape: the allocation sits inside the bounding branch.
func passGate(b []byte) []byte {
	n := int(binary.LittleEndian.Uint16(b))
	if n <= maxFrame {
		return make([]byte, n)
	}
	return nil
}

// An allocation sized directly from a decode call can never be
// guarded — there is no variable to compare.
func direct(b []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(b)) // want `allocation sized directly`
}

// bytes.Repeat is a sink too.
func repeatUnguarded(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return bytes.Repeat([]byte{0}, n) // want `allocation sized by n`
}

// The capacity argument counts: a corrupt count buys the slice header
// even if the elements are appended lazily.
func capArg(b []byte) [][]byte {
	count := binary.LittleEndian.Uint32(b)
	return make([][]byte, 0, count) // want `allocation sized by count`
}

// Deliberately unbounded, with a justification.
func suppressed(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) //tagwatch:allow-wirebound fixture: size comes from a trusted local file
}
