// Fixture: a clean package — wire-derived allocations are capped by a
// named constant, and local sizes are not wire-tainted at all.
package wireclean

import (
	"encoding/binary"
	"io"
)

const maxPayload = 1 << 16

func read(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxPayload {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func local() []byte {
	n := 128
	return make([]byte, n)
}
