package wirebound_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/wirebound"
)

func TestWirebound(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// wire holds the violations (including the PR 7 unguarded
	// frame-length allocation, reintroduced on purpose) plus the
	// suppression case; wireclean must produce no diagnostics.
	analysistest.Run(t, testdata, wirebound.Analyzer, "wire", "wireclean")
}
