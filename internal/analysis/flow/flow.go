// Package flow provides the lightweight intra-function control- and
// data-flow helpers shared by the generation-2 tagwatch analyzers
// (wirebound, conndeadline): a structural dominance test over one
// function body, and a taint fixpoint that tracks which variables
// derive from untrusted source expressions.
//
// Both are deliberately syntactic approximations, tuned to be sound in
// the direction an invariant checker wants. Dominance claims "A runs
// before B on every path" only when the syntax guarantees it
// (preceding sibling in the same statement list, or the
// always-evaluated init/condition region of an enclosing statement);
// it never claims dominance across goto labels, function literals, or
// loop post-statements, so a missing claim produces at worst a false
// positive that the //tagwatch:allow-* escape hatch can silence — never
// a silently unguarded path.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// stmtRec positions one statement inside its function body: which
// statement encloses it, which of the parent's statement lists it sits
// in, and at what index.
type stmtRec struct {
	stmt   ast.Stmt
	parent ast.Stmt // nil for the top level of the body
	listID int      // distinguishes then/else/case lists of one parent
	index  int
	// lift marks init-position statements (if/for/switch init, type
	// switch assign) that are always evaluated when their parent
	// statement executes, so for dominance they count as the parent.
	lift bool
}

// Info holds the dominance structure of one function body. Build one
// per *ast.FuncDecl / *ast.FuncLit body with New; nested function
// literals are excluded (they run at some other time) and need their
// own Info.
type Info struct {
	recs   []stmtRec
	byStmt map[ast.Stmt]int // stmt -> index into recs
	// funcLits spans every nested function literal: a node inside one
	// belongs to that literal's own Info, not this one, so position
	// lookups inside these spans resolve to no statement.
	funcLits []span
}

type span struct{ pos, end token.Pos }

// New builds the dominance structure for one function body.
func New(body *ast.BlockStmt) *Info {
	in := &Info{byStmt: make(map[ast.Stmt]int)}
	if body != nil {
		in.addList(body.List, nil, 0)
		ast.Inspect(body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				in.funcLits = append(in.funcLits, span{fl.Body.Pos(), fl.Body.End()})
				return false
			}
			return true
		})
	}
	return in
}

func (in *Info) add(s ast.Stmt, parent ast.Stmt, listID, index int, lift bool) {
	in.byStmt[s] = len(in.recs)
	in.recs = append(in.recs, stmtRec{stmt: s, parent: parent, listID: listID, index: index, lift: lift})
}

// List IDs within one parent statement. Negative IDs mark positions
// that are not sibling lists (init/post slots hold a single statement).
const (
	listBody = iota // primary body list (then-branch, loop body, …)
	listElse
	listInit = -1 // always-evaluated init/assign slot
	listPost = -2 // for-loop post statement: not always evaluated first
)

// addList records every statement in stmts and recurses into nested
// statement lists, skipping function literal bodies.
func (in *Info) addList(stmts []ast.Stmt, parent ast.Stmt, listID int) {
	for i, s := range stmts {
		in.addStmt(s, parent, listID, i, false)
	}
}

func (in *Info) addStmt(s ast.Stmt, parent ast.Stmt, listID, index int, lift bool) {
	in.add(s, parent, listID, index, lift)
	switch s := s.(type) {
	case *ast.BlockStmt:
		in.addList(s.List, s, listBody)
	case *ast.IfStmt:
		if s.Init != nil {
			in.addStmt(s.Init, s, listInit, 0, true)
		}
		in.addList(s.Body.List, s, listBody)
		if s.Else != nil {
			in.addStmt(s.Else, s, listElse, 0, false)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			in.addStmt(s.Init, s, listInit, 0, true)
		}
		if s.Post != nil {
			in.addStmt(s.Post, s, listPost, 0, false)
		}
		in.addList(s.Body.List, s, listBody)
	case *ast.RangeStmt:
		in.addList(s.Body.List, s, listBody)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in.addStmt(s.Init, s, listInit, 0, true)
		}
		for i, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				in.add(cc, s, listBody, i, false)
				in.addList(cc.Body, cc, listBody)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in.addStmt(s.Init, s, listInit, 0, true)
		}
		// The type-switch assign (`switch v := x.(type)`) is always
		// evaluated, like an init.
		if s.Assign != nil {
			in.addStmt(s.Assign, s, listInit, 1, true)
		}
		for i, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				in.add(cc, s, listBody, i, false)
				in.addList(cc.Body, cc, listBody)
			}
		}
	case *ast.SelectStmt:
		for i, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				in.add(cc, s, listBody, i, false)
				if cc.Comm != nil {
					in.addStmt(cc.Comm, cc, listInit, 0, false)
				}
				in.addList(cc.Body, cc, listBody)
			}
		}
	case *ast.LabeledStmt:
		in.addStmt(s.Stmt, s, listBody, 0, false)
	}
}

// smallest returns the record of the innermost recorded statement whose
// span contains pos, or -1. A node inside a nested function literal
// resolves to no statement — the literal runs at some other time, so
// dominance involving its contents is never claimed.
func (in *Info) smallest(pos token.Pos) int {
	for _, fl := range in.funcLits {
		if fl.pos <= pos && pos < fl.end {
			return -1
		}
	}
	best := -1
	var bestSpan token.Pos
	for i := range in.recs {
		s := in.recs[i].stmt
		if s.Pos() <= pos && pos < s.End() {
			span := s.End() - s.Pos()
			if best == -1 || span < bestSpan {
				best, bestSpan = i, span
			}
		}
	}
	return best
}

// effective lifts an init-position statement to the parent it is an
// always-evaluated part of: a guard in `if n := f(); n > cap {` counts
// as the whole if statement for dominance over what follows.
func (in *Info) effective(i int) int {
	for in.recs[i].lift {
		p, ok := in.byStmt[in.recs[i].parent]
		if !ok {
			break
		}
		i = p
	}
	return i
}

// ancestorChain returns the indices of rec i and its enclosing
// statements, innermost first.
func (in *Info) ancestorChain(i int) []int {
	var chain []int
	for {
		chain = append(chain, i)
		p, ok := in.byStmt[in.recs[i].parent]
		if !ok {
			return chain
		}
		i = p
	}
}

// Dominates reports whether node a is executed before node b on every
// path through the function body that reaches b. It is true when a's
// innermost enclosing statement (after lifting init positions) either
// encloses b outright — a sits in an always-evaluated region such as an
// if condition or range expression — or is a preceding sibling of b or
// one of b's enclosing statements in the same statement list. Nodes
// inside function literals never dominate and are never dominated.
func Dominates(in *Info, a, b ast.Node) bool {
	rawA, rawB := in.smallest(a.Pos()), in.smallest(b.Pos())
	if rawA < 0 || rawB < 0 {
		return false
	}
	if rawA == rawB {
		// Same innermost statement: no ordering claimed between
		// sub-expressions of one statement.
		return false
	}
	ia := in.effective(rawA)
	sa := in.recs[ia]
	if sa.stmt.Pos() <= b.Pos() && b.Pos() < sa.stmt.End() {
		// a's effective statement encloses b. Because rawA is the
		// *smallest* statement containing a, this only happens when a
		// sits in an always-evaluated region of that statement: a lifted
		// init slot, or a non-statement slot (if/for condition, switch
		// tag, range expression, case-clause expression) — all evaluated
		// before any of the statement's bodies run.
		return true
	}
	for _, ic := range in.ancestorChain(rawB) {
		sb := in.recs[ic]
		if sb.parent == sa.parent && sb.listID == sa.listID && sa.listID >= 0 && sa.index < sb.index {
			return true
		}
	}
	return false
}

// Taint maps a tainted object to its root set: the objects its value
// was derived from (always including itself). A guard proven against
// any object in a sink variable's root set sanctions the sink.
type Taint map[types.Object]map[types.Object]bool

// Tainted reports whether the object is tainted.
func (t Taint) Tainted(o types.Object) bool { return o != nil && t[o] != nil }

// ExprTainted reports the tainted objects mentioned by e (not
// descending into function literals), plus whether e contains a source
// call directly.
func (t Taint) ExprTainted(info *types.Info, e ast.Expr, isSource func(*ast.CallExpr) bool) (objs []types.Object, direct bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSource != nil && isSource(n) {
				direct = true
			}
		case *ast.Ident:
			if o := info.Uses[n]; t.Tainted(o) {
				objs = append(objs, o)
			}
		}
		return true
	})
	return objs, direct
}

// ComputeTaint runs a fixpoint over the assignments in body: an object
// becomes tainted when it is assigned (wholly or as one of several
// results) from an expression containing a source call or an
// already-tainted object. Root sets accumulate so that
// `n := int(length)` keeps `length` in n's roots — a cap check on
// either variable then sanctions a sink using n. Function literals are
// skipped; taint does not flow through them.
func ComputeTaint(info *types.Info, body *ast.BlockStmt, isSource func(*ast.CallExpr) bool) Taint {
	t := Taint{}
	if body == nil {
		return t
	}
	// assign records that each object in lhs now derives from rhs.
	assign := func(lhs []types.Object, rhs ast.Expr) (changed bool) {
		objs, direct := t.ExprTainted(info, rhs, isSource)
		if !direct && len(objs) == 0 {
			return false
		}
		for _, o := range lhs {
			if o == nil {
				continue
			}
			roots := t[o]
			if roots == nil {
				roots = map[types.Object]bool{o: true}
				t[o] = roots
				changed = true
			}
			for _, src := range objs {
				for r := range t[src] {
					if !roots[r] {
						roots[r] = true
						changed = true
					}
				}
			}
		}
		return changed
	}
	lhsObjs := func(exprs []ast.Expr) []types.Object {
		out := make([]types.Object, len(exprs))
		for i, e := range exprs {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if o := info.Defs[id]; o != nil {
					out[i] = o
				} else {
					out[i] = info.Uses[id]
				}
			}
		}
		return out
	}
	for pass := 0; pass < 32; pass++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				lhs := lhsObjs(n.Lhs)
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Multi-value: every LHS derives from the one RHS.
					if assign(lhs, n.Rhs[0]) {
						changed = true
					}
				} else {
					for i, r := range n.Rhs {
						if i < len(lhs) && assign(lhs[i:i+1], r) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				lhs := make([]types.Object, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = info.Defs[id]
				}
				if len(n.Values) == 1 && len(n.Names) > 1 {
					if assign(lhs, n.Values[0]) {
						changed = true
					}
				} else {
					for i, v := range n.Values {
						if i < len(lhs) && assign(lhs[i:i+1], v) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			return t
		}
	}
	return t
}

// MentionsNamedConst reports whether e mentions at least one declared
// named constant (a *types.Const with a defining package). Untyped
// literals and expressions like `64 << 20` do not qualify: the point of
// the wirebound invariant is that the cap has a name the next reader
// (and the next analyzer run) can find.
func MentionsNamedConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok && c.Pkg() != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// GuardedBy reports whether sink is dominated by an upper-bound
// comparison in cmps that tests one of the sink variable's root
// objects against an expression mentioning a named constant. Direction
// matters, because dominance alone cannot tell a cap from a floor
// (`length < headerSize` dominates the very allocation it does not
// bound): when the sink lies *outside* the comparison's statement the
// comparison is presumed a fail-fast guard and the tainted value must
// sit on the large side (`length > cap`); when the sink lies *inside*
// it the comparison is presumed a pass-gate and the tainted value must
// sit on the small side (`length <= cap`). cmps is the pre-collected
// set of comparisons in the same function body that in describes.
func GuardedBy(in *Info, info *types.Info, t Taint, sinkRoots map[types.Object]bool, cmps []*ast.BinaryExpr, sink ast.Node) bool {
	for _, cmp := range cmps {
		var varSide, capSide ast.Expr
		for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
			if id, ok := ast.Unparen(pair[0]).(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil && sinkRoots[o] {
					varSide, capSide = pair[0], pair[1]
					break
				}
			}
		}
		if varSide == nil || !MentionsNamedConst(info, capSide) {
			continue
		}
		if !Dominates(in, cmp, sink) {
			continue
		}
		taintedIsUpper := false
		switch cmp.Op {
		case token.GTR, token.GEQ:
			taintedIsUpper = varSide == cmp.X // tainted > cap
		case token.LSS, token.LEQ:
			taintedIsUpper = varSide == cmp.Y // cap < tainted
		}
		if in.encloses(cmp, sink) {
			// Pass-gate: `if tainted <= cap { make(...) }`.
			if !taintedIsUpper {
				return true
			}
		} else if taintedIsUpper {
			// Fail-fast: `if tainted > cap { return }; make(...)`.
			return true
		}
	}
	return false
}

// encloses reports whether a's effective enclosing statement spans b —
// i.e. b sits inside the statement whose condition/init a is part of.
func (in *Info) encloses(a, b ast.Node) bool {
	ia := in.smallest(a.Pos())
	if ia < 0 {
		return false
	}
	s := in.recs[in.effective(ia)].stmt
	return s.Pos() <= b.Pos() && b.Pos() < s.End()
}

// Comparisons collects the relational comparisons (<, <=, >, >=) in
// body, excluding those inside function literals.
func Comparisons(body *ast.BlockStmt) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				out = append(out, n)
			}
		}
		return true
	})
	return out
}
