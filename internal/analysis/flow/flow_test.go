package flow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"tagwatch/internal/analysis/flow"
)

// parseFunc type-checks one synthetic file and returns the body of the
// function named "f" plus the shared types info. The preamble declares
// the markers the snippets use: a() (the candidate dominator, returns
// bool so it can sit in conditions), b() (the dominated candidate),
// src() (the taint source), and assorted helpers.
func parseFunc(t *testing.T, body string) (*types.Info, *ast.BlockStmt) {
	t.Helper()
	src := `package p

func a() bool { return true }
func b() bool { return true }
func src() int { return 0 }
func src2() (int, int) { return 0, 0 }
func use(...any) {}

const cap = 10

func f(c bool, xs []int, ch chan int) {
` + body + `
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v\n%s", err, src)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return info, fd.Body
		}
	}
	t.Fatal("no function f")
	return nil, nil
}

// findCall returns the first call to the named function in body,
// searching function literals too (tests need to locate a() inside
// one to prove it does not dominate).
func findCall(t *testing.T, body *ast.BlockStmt, name string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				out = call
				return false
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call to %s", name)
	}
	return out
}

func TestDominates(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"preceding sibling", `a(); b()`, true},
		{"following sibling", `b(); a()`, false},
		{"condition dominates body", `if a() { b() }`, true},
		{"init dominates body", `if x := a(); x { b() }`, true},
		{"init dominates later sibling", `if x := a(); x { use() }
			b()`, true},
		{"branch does not dominate after", `if c { a() }
			b()`, false},
		{"then does not dominate else", `if c { a() } else { b() }`, false},
		{"sibling of ancestor dominates nested", `a()
			if c { for range xs { b() } }`, true},
		{"loop body does not dominate after", `for range xs { a() }
			b()`, false},
		{"loop condition dominates body", `for a() { b() }`, true},
		{"for post does not dominate body", `for i := 0; c; a() { use(i); b() }`, false},
		{"range expr dominates body", `for range append(xs, boolToInt(a())) { b() }`, true},
		{"switch tag dominates case body", `switch a() { case true: b() }`, true},
		{"case body does not dominate sibling case", `switch c {
			case true:
				a()
			case false:
				b()
			}`, false},
		{"func lit does not dominate", `_ = func() { a() }
			b()`, false},
		{"outer does not dominate into func lit", `a()
			_ = func() { b() }`, false},
		{"same statement claims nothing", `use(a(), b())`, false},
		{"select comm does not dominate body", `select {
			case <-ch:
				a()
				b()
			}`, true}, // within one comm body the sibling rule still applies
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := tc.body
			if strings.Contains(body, "boolToInt") {
				body = "boolToInt := func(bool) int { return 0 }\n" + body
			}
			_, fn := parseFunc(t, body)
			in := flow.New(fn)
			ca, cb := findCall(t, fn, "a"), findCall(t, fn, "b")
			if got := flow.Dominates(in, ca, cb); got != tc.want {
				t.Errorf("Dominates = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

// taintSource matches calls to the fixture's src/src2 helpers.
func taintSource(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		fn, _ := info.Uses[id].(*types.Func)
		return fn != nil && (fn.Name() == "src" || fn.Name() == "src2")
	}
}

// objByName finds the named object among the taint map's keys, or in
// the function scope.
func taintedNames(t flow.Taint) map[string]bool {
	out := make(map[string]bool)
	for o := range t {
		out[o.Name()] = true
	}
	return out
}

func TestComputeTaint(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		tainted []string
		clean   []string
	}{
		{"direct", `n := src(); use(n)`, []string{"n"}, nil},
		{"derived arithmetic", `n := src(); m := n + 1; use(m)`, []string{"n", "m"}, nil},
		{"derived conversion", `n := src(); m := int64(n); use(m)`, []string{"n", "m"}, nil},
		{"untainted", `n := 3; use(n)`, nil, []string{"n"}},
		{"multi-value", `n, m := src2(); use(n, m)`, []string{"n", "m"}, nil},
		{"var decl", `var n = src(); use(n)`, []string{"n"}, nil},
		{"reassignment", `n := 3; n = src(); use(n)`, []string{"n"}, nil},
		{"compound assign", `n := 3; n += src(); use(n)`, []string{"n"}, nil},
		{"func lit is a barrier", `g := func() int { return src() }
			n := g()
			use(n)`, nil, []string{"n", "g"}},
		{"taint does not flow backward", `m := 3; n := src(); use(n, m)`, []string{"n"}, []string{"m"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info, fn := parseFunc(t, tc.body)
			taint := flow.ComputeTaint(info, fn, taintSource(info))
			names := taintedNames(taint)
			for _, want := range tc.tainted {
				if !names[want] {
					t.Errorf("%s not tainted; tainted set %v", want, names)
				}
			}
			for _, want := range tc.clean {
				if names[want] {
					t.Errorf("%s tainted, want clean; tainted set %v", want, names)
				}
			}
		})
	}
}

func TestRootsTransfer(t *testing.T) {
	// n derives from length, so length stays in n's root set and a
	// guard on either sanctions a sink sized by n.
	info, fn := parseFunc(t, `length := src()
		n := length * 2
		use(n)`)
	taint := flow.ComputeTaint(info, fn, taintSource(info))
	var nObj, lengthObj types.Object
	for o := range taint {
		switch o.Name() {
		case "n":
			nObj = o
		case "length":
			lengthObj = o
		}
	}
	if nObj == nil || lengthObj == nil {
		t.Fatalf("expected both n and length tainted, got %v", taintedNames(taint))
	}
	if !taint[nObj][lengthObj] {
		t.Errorf("length missing from n's root set %v", taint[nObj])
	}
	if taint[lengthObj][nObj] {
		t.Errorf("roots are derivation-directed; n must not be in length's root set")
	}
}

func TestGuardedBy(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"fail-fast named cap", `n := src()
			if n > cap { return }
			use(make([]byte, n))`, true},
		{"fail-fast flipped operands", `n := src()
			if cap < n { return }
			use(make([]byte, n))`, true},
		{"pass-gate named cap", `n := src()
			if n <= cap { use(make([]byte, n)) }`, true},
		{"floor is not a cap", `n := src()
			if n < cap { return }
			use(make([]byte, n))`, false},
		{"pass-gate wrong direction", `n := src()
			if n >= cap { use(make([]byte, n)) }`, false},
		{"literal cap has no name", `n := src()
			if n > 10 { return }
			use(make([]byte, n))`, false},
		{"guard after sink", `n := src()
			use(make([]byte, n))
			if n > cap { return }`, false},
		{"guard on sibling branch", `n := src()
			if c { if n > cap { return } } else { use(make([]byte, n)) }`, false},
		{"guard transfers to derived", `length := src()
			if length > cap { return }
			n := int64(length)
			use(make([]byte, n))`, true},
		{"guard on derived does not cover root", `length := src()
			n := int64(length)
			if n > cap { return }
			use(make([]byte, length))`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info, fn := parseFunc(t, tc.body)
			taint := flow.ComputeTaint(info, fn, taintSource(info))
			in := flow.New(fn)
			cmps := flow.Comparisons(fn)
			sink := findCall(t, fn, "make")
			objs, _ := taint.ExprTainted(info, sink.Args[1], taintSource(info))
			if len(objs) == 0 {
				t.Fatal("sink size not tainted; fixture broken")
			}
			got := flow.GuardedBy(in, info, taint, taint[objs[0]], cmps, sink)
			if got != tc.want {
				t.Errorf("GuardedBy = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

func TestMentionsNamedConst(t *testing.T) {
	info, fn := parseFunc(t, `use(cap, 64<<20, cap*2)`)
	call := findCall(t, fn, "use")
	cases := []struct {
		arg  int
		want bool
	}{
		{0, true},  // bare named constant
		{1, false}, // literal expression, constant value but no name
		{2, true},  // expression mentioning a named constant
	}
	for _, tc := range cases {
		if got := flow.MentionsNamedConst(info, call.Args[tc.arg]); got != tc.want {
			t.Errorf("arg %d: MentionsNamedConst = %v, want %v", tc.arg, got, tc.want)
		}
	}
}
