// Package analysistest runs one of the repo's analyzers over golden
// packages under a testdata directory and compares the diagnostics it
// reports against expectations written in the source itself, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	ch <- v // want `channel send while holding`
//
// Each `// want` comment carries one or more quoted regular expressions
// that must each match a diagnostic reported on that line; diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, fail the test.
//
// Test packages live under <testdata>/src/<import-path>/ — GOPATH
// layout, so a fixture can impersonate a real import path (deverr's
// fixtures declare a fake tagwatch/internal/core, simclock's a fake
// tagwatch/internal/gen2). Imports resolve testdata-first, then fall
// back to the real build via `go list -export`, so fixtures may use the
// standard library freely.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tagwatch/internal/analysis"
)

// Run loads each package path from testdataDir/src and checks the
// analyzer's diagnostics against the package's `// want` expectations.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := &loader{
		root:    testdataDir,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*types.Package),
		exports: make(map[string]string),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	for _, path := range paths {
		runOne(t, l, a, path)
	}
}

func runOne(t *testing.T, l *loader, a *analysis.Analyzer, path string) {
	t.Helper()
	files, info, tpkg, err := l.loadLocal(path)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, path, err)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.RunForTest(pass)
	if err != nil {
		t.Fatalf("%s: analyzing %s: %v", a.Name, path, err)
	}

	wants := parseWants(t, l.fset, files)
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s: unexpected diagnostic: %s", a.Name, key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: %s: expected diagnostic matching %q was not reported", a.Name, k, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE pulls the expectation list out of a comment: everything after
// the `want` keyword as space-separated quoted (or backquoted) strings.
var wantRE = regexp.MustCompile("// *want((?: +(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					var pattern string
					if arg[0] == '`' {
						pattern = arg[1 : len(arg)-1]
					} else {
						var err error
						pattern, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, arg, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// loader resolves fixture imports: testdata/src first, then the real
// build's export data.
type loader struct {
	root    string
	fset    *token.FileSet
	cache   map[string]*types.Package
	exports map[string]string
	gc      types.Importer
}

// Import implements types.Importer for the fixtures' dependencies.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.root, "src", filepath.FromSlash(path)); isDir(dir) {
		_, _, pkg, err := l.loadLocal(path)
		return pkg, err
	}
	if err := l.ensureExport(path); err != nil {
		return nil, err
	}
	pkg, err := l.gc.Import(path)
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}

// loadLocal parses and type-checks one testdata package from source.
func (l *loader) loadLocal(path string) ([]*ast.File, *types.Info, *types.Package, error) {
	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, nil, fmt.Errorf("fixture %s does not type-check:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	l.cache[path] = tpkg
	return files, info, tpkg, nil
}

// ensureExport fills l.exports with compiled export data for path and
// its transitive dependencies via `go list -export`.
func (l *loader) ensureExport(path string) error {
	if _, ok := l.exports[path]; ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	if _, ok := l.exports[path]; !ok {
		return fmt.Errorf("no export data produced for %q", path)
	}
	return nil
}

// lookup feeds the gc importer from the ensured export map.
func (l *loader) lookup(path string) (io.ReadCloser, error) {
	if err := l.ensureExport(path); err != nil {
		return nil, err
	}
	return os.Open(l.exports[path])
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}
