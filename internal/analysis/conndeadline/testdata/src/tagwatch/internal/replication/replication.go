// Fixture: blocking conn I/O with and without deadline arms. The
// package path impersonates tagwatch/internal/replication, which puts
// it in conndeadline's scope.
package replication

import (
	"io"
	"net"
	"time"
)

func writeArmed(conn net.Conn, b []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(b)
	return err
}

func writeBare(conn net.Conn, b []byte) error {
	_, err := conn.Write(b) // want `blocking Write on conn`
	return err
}

func readArmedBoth(conn net.Conn, b []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Read(b)
	return err
}

// Wrong direction: a write deadline does not arm a read.
func readWrongDirection(conn net.Conn, b []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Read(b) // want `blocking Read on conn`
	return err
}

// Wrong conn: arming a does not cover b.
func wrongConn(a, b net.Conn, buf []byte) error {
	if err := a.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := b.Read(buf) // want `blocking Read on b`
	return err
}

// Conditional arming does not dominate: the zero-config path reads
// with whatever deadline a previous operation left armed.
func conditionalArm(conn net.Conn, d time.Duration, b []byte) error {
	if d > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return err
		}
	}
	_, err := conn.Read(b) // want `blocking Read on conn`
	return err
}

// The fixed shape: arm unconditionally with a possibly-zero time.
func unconditionalArm(conn net.Conn, d time.Duration, b []byte) error {
	var dl time.Time
	if d > 0 {
		dl = time.Now().Add(d)
	}
	if err := conn.SetReadDeadline(dl); err != nil {
		return err
	}
	_, err := conn.Read(b)
	return err
}

// io helpers block exactly like direct conn methods.
func ioHelpers(conn net.Conn, b []byte) error {
	if _, err := io.ReadFull(conn, b); err != nil { // want `blocking io.ReadFull read on conn`
		return err
	}
	_, err := io.Copy(io.Discard, conn) // want `blocking io.Copy read on conn`
	return err
}

// An arm in a different function does not count: the invariant is
// same-function so a reader can audit one screen of code.
func armedElsewhere(conn net.Conn, b []byte) error {
	arm(conn)
	_, err := conn.Read(b) // want `blocking Read on conn`
	return err
}

func arm(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{})
}

// A deliberate wait-forever pump carries a justification.
func pump(conn net.Conn, b []byte) error {
	_, err := conn.Read(b) //tagwatch:allow-conndeadline fixture: wait-forever pump severed by Close
	return err
}
