// Fixture: the same undeadlined shapes as the replication fixture, but
// in a package outside conndeadline's scope — nothing is reported.
// Packages that only talk to loopback test helpers or local pipes are
// not forced into deadline discipline.
package connfree

import "net"

func bare(conn net.Conn, b []byte) error {
	_, err := conn.Read(b)
	return err
}
