// Package conndeadline enforces the PR 7 frame-I/O discipline in the
// packages that do socket I/O on hostile or flaky links
// (internal/replication, internal/llrp, internal/fleet, and the edge
// tier's upstream SSE link in internal/edge): every
// blocking Read/Write on a net.Conn must be dominated by a
// SetDeadline/SetReadDeadline/SetWriteDeadline call on the same conn
// in the same function, so a stalled peer surfaces as a timeout error
// instead of a wedged goroutine. The established frame-I/O helpers
// (replication writeFrame/readFrame, llrp send loops) arm their own
// deadlines internally, so callers that stick to the helpers are clean
// by construction.
//
// The dominating arm must be unconditional: `if d > 0 {
// conn.SetWriteDeadline(...) }` followed by a write does not satisfy
// the checker, because the zero-configuration path writes with
// whatever deadline a previous operation left armed. Arm with a
// possibly-zero time.Time instead — net.Conn defines the zero value
// as "no deadline", which also clears stale ones.
//
// Matching is per conn expression (rendered textually, so `c.conn`
// matches `c.conn`), per direction: SetDeadline arms both directions,
// SetReadDeadline arms Read/io.ReadFull/io.Copy-source,
// SetWriteDeadline arms Write/io.Copy-destination. Blocking reads that
// are *meant* to wait forever (an accept-style message pump whose
// shutdown path closes the conn) are annotated
// //tagwatch:allow-conndeadline <why blocking is the contract>.
package conndeadline

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"tagwatch/internal/analysis"
	"tagwatch/internal/analysis/flow"
)

// Analyzer flags undeadlined blocking conn I/O in the wire packages.
var Analyzer = &analysis.Analyzer{
	Name:      "conndeadline",
	Directive: "allow-conndeadline",
	Doc: `flag blocking net.Conn reads/writes not dominated by a deadline arm

In internal/replication, internal/llrp, internal/fleet, and
internal/edge a blocking
Read or Write on a net.Conn must be dominated by an unconditional
SetDeadline/SetReadDeadline/SetWriteDeadline on the same conn in the
same function; otherwise a stalled peer wedges the goroutine forever.
Annotate deliberate wait-forever pumps with
//tagwatch:allow-conndeadline.`,
	Run: run,
}

// scopePrefixes are the packages whose socket I/O faces hostile or
// flaky links and must be deadline-armed.
var scopePrefixes = []string{
	"tagwatch/internal/replication",
	"tagwatch/internal/llrp",
	"tagwatch/internal/fleet",
	"tagwatch/internal/edge",
}

const (
	dirRead = 1 << iota
	dirWrite
)

// arm is one deadline-setting call: which conn, which directions.
type arm struct {
	key  string
	dirs int
	node ast.Node
}

// blocker is one blocking I/O operation on a conn.
type blocker struct {
	key  string
	dirs int
	node ast.Node
	desc string
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkBody(pass, body)
		}
		return true
	})
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var arms []arm
	var blockers []blocker
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own visit
		case *ast.CallExpr:
			collect(pass, n, &arms, &blockers)
		}
		return true
	})
	if len(blockers) == 0 {
		return
	}
	info := flow.New(body)
	for _, b := range blockers {
		armed := false
		for _, a := range arms {
			if a.key == b.key && a.dirs&b.dirs == b.dirs && flow.Dominates(info, a.node, b.node) {
				armed = true
				break
			}
		}
		if !armed {
			pass.Reportf(b.node.Pos(), "%s on %s is not dominated by a deadline arm on the same conn in this function; a stalled peer wedges this goroutine (arm an unconditional Set%sDeadline, use the frame-I/O helpers, or annotate a deliberate wait-forever pump)",
				b.desc, b.key, dirName(b.dirs))
		}
	}
}

func dirName(dirs int) string {
	switch dirs {
	case dirRead:
		return "Read"
	case dirWrite:
		return "Write"
	}
	return ""
}

// collect classifies one call as a deadline arm, a blocking conn op,
// or neither.
func collect(pass *analysis.Pass, call *ast.CallExpr, arms *[]arm, blockers *[]blocker) {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}

	// Deadline arms: Set*Deadline methods on anything conn-shaped —
	// matching by name+signature covers net.Conn itself and wrappers
	// (e.g. a chaos conn) that implement the interface.
	if sel != nil {
		switch fn.Name() {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sig.Params().Len() == 1 {
				dirs := dirRead | dirWrite
				if fn.Name() == "SetReadDeadline" {
					dirs = dirRead
				} else if fn.Name() == "SetWriteDeadline" {
					dirs = dirWrite
				}
				*arms = append(*arms, arm{key: exprKey(sel.X), dirs: dirs, node: call})
				return
			}
		}
	}

	// Direct conn method I/O: Read/Write defined in package net.
	if sel != nil && (fn.Name() == "Read" || fn.Name() == "Write") {
		if pkgPath, _ := analysis.ReceiverNamed(fn); pkgPath == "net" {
			dirs := dirRead
			if fn.Name() == "Write" {
				dirs = dirWrite
			}
			*blockers = append(*blockers, blocker{
				key: exprKey(sel.X), dirs: dirs, node: call,
				desc: "blocking " + fn.Name(),
			})
			return
		}
	}

	// io helpers that block on a conn argument.
	if fn.Pkg() == nil || fn.Pkg().Path() != "io" {
		return
	}
	reads := func(argIdx int) {
		if argIdx < len(call.Args) && netTyped(pass, call.Args[argIdx]) {
			*blockers = append(*blockers, blocker{
				key: exprKey(call.Args[argIdx]), dirs: dirRead, node: call,
				desc: "blocking io." + fn.Name() + " read",
			})
		}
	}
	writes := func(argIdx int) {
		if argIdx < len(call.Args) && netTyped(pass, call.Args[argIdx]) {
			*blockers = append(*blockers, blocker{
				key: exprKey(call.Args[argIdx]), dirs: dirWrite, node: call,
				desc: "blocking io." + fn.Name() + " write",
			})
		}
	}
	switch fn.Name() {
	case "ReadFull", "ReadAtLeast", "ReadAll":
		reads(0)
	case "Copy", "CopyN", "CopyBuffer":
		writes(0)
		switch fn.Name() {
		case "Copy":
			reads(1)
		case "CopyBuffer", "CopyN":
			reads(1)
		}
	case "WriteString":
		writes(0)
	}
}

// netTyped reports whether the expression's static type is declared in
// package net (net.Conn, *net.TCPConn, …).
func netTyped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// exprKey renders an expression to text so `c.conn` in two statements
// compares equal (same convention as locksend).
func exprKey(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
