package conndeadline_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/conndeadline"
)

func TestConnDeadline(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// The fixture impersonates tagwatch/internal/replication to land in
	// scope; connfree holds identical shapes out of scope and must stay
	// silent.
	analysistest.Run(t, testdata, conndeadline.Analyzer, "tagwatch/internal/replication", "connfree")
}
