package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Match      []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load resolves the given package patterns with the go tool and
// type-checks every matched (non-test) package from source, importing
// dependencies from their compiled export data. It shells out to
// `go list -export`, so it works offline against the build cache and
// needs no third-party loader.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Incomplete,Match,ImportMap,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Match is set only on packages named by the patterns; -deps pulls
		// in the rest purely as export-data providers.
		if len(p.Match) > 0 && !p.Standard && p.Name != "" && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One shared importer: export data is read once per dependency no
	// matter how many targets import it. The repo has no vendoring, so a
	// global path->export map is sound; ImportMap is consulted per lookup
	// to stay correct if that ever changes.
	importMaps := make(map[string]string)
	for _, t := range targets {
		for from, to := range t.ImportMap {
			importMaps[from] = to
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMaps[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typecheck %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
