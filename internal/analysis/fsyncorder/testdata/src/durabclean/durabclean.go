// Fixture: a clean package — the full tmp+sync+rename+dir-fsync
// sequence, with every fsync error checked.
package durabclean

import "os"

func Commit(dir string, payload []byte) error {
	tmp, final := dir+"/state.tmp", dir+"/state"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return SyncDir(dir)
}

func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
