// Fixture: rename-commit durability ordering — File.Sync before the
// rename, a directory fsync after it, and no dropped Sync errors.
package durab

import "os"

// The torn-file bug: the tmp file is written and renamed into place
// without ever being synced, and the rename has no directory barrier.
func renameUnsynced(dir string) error {
	f, err := os.Create(dir + "/state.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return os.Rename(dir+"/state.tmp", dir+"/state") // want `not preceded by File.Sync` `no directory fsync`
}

// The correct commit sequence: create, write, sync, close, rename,
// directory fsync.
func renameSynced(dir string) error {
	f, err := os.Create(dir + "/state.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(dir+"/state.tmp", dir+"/state"); err != nil {
		return err
	}
	return SyncDir(dir)
}

// Renaming a file this function did not write needs no File.Sync here,
// but the commit still needs its directory barrier.
func renameForeign(dir string) error {
	err := os.Rename(dir+"/a", dir+"/b") // want `no directory fsync`
	return err
}

// Dropped fsync errors, in every discarding shape.
func droppedSync(f *os.File) {
	f.Sync()       // want `f.Sync error discarded`
	_ = f.Sync()   // want `f.Sync error discarded`
	defer f.Sync() // want `f.Sync error discarded`
}

// SyncDir fsyncs a directory; its own error must not be dropped either.
func droppedSyncDir(dir string) {
	SyncDir(dir) // want `SyncDir error discarded`
}

// A single-statement delegation wrapper is the rename; barrier
// discipline belongs to its callers.
type FS struct{}

func (FS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// An interposer with more logic carries a justification.
func interpose(fs FS, dir string) error {
	err := fs.Rename(dir+"/a", dir+"/b") //tagwatch:allow-fsyncorder fixture: interposer, the caller owns the barrier
	return err
}

// SyncDir opens and fsyncs the directory, propagating the error.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
