// Package fsyncorder enforces the PR 4 durability discipline around
// rename-commit: the tmp+fsync+rename+dir-fsync sequence that makes a
// snapshot or journal publish crash-safe. Three rules, per function:
//
//  1. An os.Rename (or FS.Rename) of a file this function created
//     (Create/OpenFile/OpenAppend on the same name expression) must be
//     dominated by a File.Sync — renaming an unsynced file publishes
//     whatever subset of pages the kernel flushed, i.e. a torn file
//     with a valid name.
//  2. A rename that commits durable state must be followed by a
//     directory fsync (a SyncDir-shaped call later in the same
//     function) — without it the rename itself can vanish on power
//     loss even though both files' contents were synced.
//  3. A dropped Sync/SyncDir error (bare call statement, defer, go, or
//     assignment to blank) is flagged unconditionally: fsync failure
//     is the one error class where "ignore and hope" silently
//     un-does the durability the call was for (the fsyncgate lesson —
//     after a failed fsync the kernel may have dropped the dirty
//     pages, so retrying or ignoring both lose data).
//
// Single-statement delegation wrappers (e.g. OSFS.Rename forwarding to
// os.Rename) are exempt from rule 2: they *are* the rename, and barrier
// discipline belongs to their callers. Interposers with more logic
// (fault injectors) annotate //tagwatch:allow-fsyncorder <why>.
package fsyncorder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"tagwatch/internal/analysis"
	"tagwatch/internal/analysis/flow"
)

// Analyzer flags rename-commit sequences that skip an fsync barrier.
var Analyzer = &analysis.Analyzer{
	Name:      "fsyncorder",
	Directive: "allow-fsyncorder",
	Doc: `flag rename-commits missing File.Sync before or directory fsync after

Durable publish is tmp + File.Sync + rename + dir fsync (DESIGN.md
§12). A rename of an unsynced file publishes a torn file; a rename
with no directory fsync can vanish on power loss; a dropped Sync()
error silently un-does durability. Annotate deliberate exceptions with
//tagwatch:allow-fsyncorder.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkBody(pass, body)
		}
		return true
	})
	return nil
}

// calleeNamed reports whether the call resolves to a function or
// method with the given name and parameter count.
func calleeNamed(pass *analysis.Pass, call *ast.CallExpr, name string, params int) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == params
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	type rename struct {
		call   *ast.CallExpr
		oldKey string
	}
	var renames []rename
	creates := map[string]bool{} // exprKey of names this function opened for writing
	var syncs, dirSyncs []ast.Node

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own visit
		case *ast.CallExpr:
			switch {
			case calleeNamed(pass, n, "Rename", 2) && len(n.Args) == 2:
				renames = append(renames, rename{call: n, oldKey: exprKey(n.Args[0])})
			case (calleeNamed(pass, n, "Create", 1) || calleeNamed(pass, n, "OpenAppend", 1) || calleeNamed(pass, n, "OpenFile", 3)) && len(n.Args) >= 1:
				creates[exprKey(n.Args[0])] = true
			case calleeNamed(pass, n, "Sync", 0):
				syncs = append(syncs, n)
			case calleeNamed(pass, n, "SyncDir", 1):
				dirSyncs = append(dirSyncs, n)
			}
		}
		return true
	})

	// Rule 3: dropped Sync/SyncDir errors, regardless of renames.
	checkDroppedSync(pass, body)

	if len(renames) == 0 {
		return
	}
	// Single-statement delegation wrappers are the rename; barrier
	// discipline belongs to their callers.
	if len(body.List) == 1 {
		return
	}
	info := flow.New(body)
	for _, r := range renames {
		if creates[r.oldKey] {
			synced := false
			for _, s := range syncs {
				if flow.Dominates(info, s, r.call) {
					synced = true
					break
				}
			}
			if !synced {
				pass.Reportf(r.call.Pos(), "rename of %s, written in this function, is not preceded by File.Sync; a crash can publish a torn file under the final name", r.oldKey)
			}
		}
		followed := false
		for _, d := range dirSyncs {
			if d.Pos() > r.call.End() {
				followed = true
				break
			}
		}
		if !followed {
			pass.Reportf(r.call.Pos(), "rename commits durable state but no directory fsync follows in this function; on power loss the rename itself can be rolled back")
		}
	}
}

// checkDroppedSync flags statements that discard the error of a
// Sync/SyncDir call: bare expression statements, defer, go, and
// assignment to blank identifiers only.
func checkDroppedSync(pass *analysis.Pass, body *ast.BlockStmt) {
	isSyncCall := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		if calleeNamed(pass, call, "Sync", 0) || calleeNamed(pass, call, "SyncDir", 1) {
			fn := analysis.Callee(pass.TypesInfo, call)
			return call, analysis.ReturnsError(fn)
		}
		return nil, false
	}
	report := func(call *ast.CallExpr) {
		pass.Reportf(call.Pos(), "%s error discarded; after a failed fsync the data may be gone — propagate or fail the operation", exprKey(call.Fun))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := isSyncCall(n.X); ok {
				report(call)
			}
		case *ast.DeferStmt:
			if call, ok := isSyncCall(n.Call); ok {
				report(call)
			}
		case *ast.GoStmt:
			if call, ok := isSyncCall(n.Call); ok {
				report(call)
			}
		case *ast.AssignStmt:
			allBlank := len(n.Lhs) > 0
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank && len(n.Rhs) == 1 {
				if call, ok := isSyncCall(n.Rhs[0]); ok {
					report(call)
				}
			}
		}
		return true
	})
}

// exprKey renders an expression to text for stable comparison (same
// convention as locksend).
func exprKey(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
