package fsyncorder_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/fsyncorder"
)

func TestFsyncOrder(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// durab holds the violations (torn-file rename, missing directory
	// barrier, dropped Sync errors) plus the wrapper exemption and the
	// suppression case; durabclean must produce no diagnostics.
	analysistest.Run(t, testdata, fsyncorder.Analyzer, "durab", "durabclean")
}
