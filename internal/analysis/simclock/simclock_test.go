package simclock_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, testdata, simclock.Analyzer,
		// Seeded violations, the sanctioned seeded-RNG/virtual-clock
		// patterns, and both spellings of //tagwatch:allow-wallclock.
		"tagwatch/internal/gen2",
		// Negative case: a package outside RestrictedPrefixes uses wall
		// time freely and must produce zero diagnostics.
		"tagwatch/cmd/wallclocked",
	)
}
