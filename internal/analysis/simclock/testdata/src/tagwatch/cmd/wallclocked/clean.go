// Fixture: a package outside the deterministic set. Wall time and the
// global RNG are its business; simclock must stay silent here.
package wallclocked

import (
	"math/rand"
	"time"
)

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Jitter(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(int64(d)))
}

func Stamp() time.Time {
	return time.Now()
}
