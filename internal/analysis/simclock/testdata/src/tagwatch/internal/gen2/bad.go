// Fixture: impersonates a deterministic simulator package, so every
// wall-clock and global-RNG touch below must be flagged unless
// explicitly excused.
package gen2

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time.Now breaks seed replay`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since breaks seed replay`
}

func nap() {
	time.Sleep(time.Millisecond) // want `time.Sleep breaks seed replay`
}

func draw() int {
	return rand.Intn(16) // want `global math/rand.Intn breaks seed replay`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle breaks seed replay`
}

// Taking the forbidden function as a value is the sneaky variant.
var clock = time.Now // want `time.Now breaks seed replay`

// The injected seeded stream is the sanctioned path: no diagnostics.
func seeded(rng *rand.Rand) int {
	return rng.Intn(16)
}

// Building a seeded stream is how determinism starts: legal.
func newStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Virtual-clock arithmetic never touches the wall: legal.
func virtual(now, dwell time.Duration) time.Duration {
	return now + dwell
}

func excusedAbove() time.Time {
	//tagwatch:allow-wallclock fixture: proves the line-above escape hatch
	return time.Now()
}

func excusedInline(start time.Time) time.Duration {
	return time.Since(start) //tagwatch:allow-wallclock fixture: proves the inline escape hatch
}
