// Package simclock enforces the repo's seed-replay invariant: the
// simulator packages must be bit-for-bit reproducible from a seed, so
// they may not consult the wall clock or the process-global math/rand
// stream. Time must flow from the injected virtual clock (the reader's
// Now()/device-virtual timestamps) and randomness from an explicitly
// seeded *rand.Rand threaded through the call tree.
//
// The check is path-scoped: only the deterministic packages listed in
// RestrictedPrefixes are inspected, so daemons, the fleet layer, and
// the CLIs remain free to use real time. Inside a restricted package a
// genuine need for wall time (e.g. the chaos proxy pacing a real
// socket) is annotated with
//
//	//tagwatch:allow-wallclock <why this cannot use the virtual clock>
package simclock

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tagwatch/internal/analysis"
)

// RestrictedPrefixes are the import paths (and their subpackages) that
// must stay deterministic. Everything a trace, an experiment, or a
// chaos replay depends on lives here.
var RestrictedPrefixes = []string{
	"tagwatch/internal/aloha",
	"tagwatch/internal/chaos",
	"tagwatch/internal/gen2",
	"tagwatch/internal/motion",
	"tagwatch/internal/reader",
	"tagwatch/internal/replay",
	"tagwatch/internal/replication",
	"tagwatch/internal/rf",
	"tagwatch/internal/scenario",
	"tagwatch/internal/scene",
	"tagwatch/internal/schedule",
	"tagwatch/internal/trace",
}

// wallclockFuncs are the package time functions that observe or wait on
// real time. Pure constructors/arithmetic (time.Duration, time.Unix,
// Time.Add, ...) stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// globalRandOK are the math/rand package-level functions that do NOT
// touch the global source: they build the seeded streams the simulator
// is supposed to use.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Analyzer rejects wall-clock and global-RNG use in deterministic
// packages.
var Analyzer = &analysis.Analyzer{
	Name:      "simclock",
	Directive: "allow-wallclock",
	Doc: `forbid wall-clock time and global math/rand in the deterministic simulator packages

The Gen2/RF/chaos simulators must replay bit-for-bit from a seed; any
time.Now/time.Since/time.Sleep or package-level math/rand call breaks
replayability silently. Use the injected virtual clock and a seeded
*rand.Rand instead, or annotate with //tagwatch:allow-wallclock and a
justification.`,
	Run: run,
}

func restricted(path string) bool {
	for _, p := range RestrictedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !restricted(pass.Pkg.Path()) {
		return nil
	}
	// Walking TypesInfo.Uses (rather than only call expressions) also
	// catches taking a forbidden function as a value, e.g. `clock :=
	// time.Now` smuggled into a struct field.
	type hit struct {
		id  *ast.Ident
		msg string
	}
	var hits []hit
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue // methods (e.g. (*rand.Rand).Intn) are the sanctioned path
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallclockFuncs[fn.Name()] {
				hits = append(hits, hit{id, "time." + fn.Name() +
					" breaks seed replay in a deterministic package; use the injected virtual clock"})
			}
		case "math/rand", "math/rand/v2":
			if !globalRandOK[fn.Name()] {
				hits = append(hits, hit{id, "global " + fn.Pkg().Path() + "." + fn.Name() +
					" breaks seed replay in a deterministic package; use the injected seeded *rand.Rand"})
			}
		}
	}
	// Map iteration order is random; report in source order so output is
	// stable for golden tests and CI diffs.
	sort.Slice(hits, func(i, j int) bool { return hits[i].id.Pos() < hits[j].id.Pos() })
	for _, h := range hits {
		pass.Reportf(h.id.Pos(), "%s", h.msg)
	}
	return nil
}
