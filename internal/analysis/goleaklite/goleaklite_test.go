package goleaklite_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/goleaklite"
)

func TestGoleakLite(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, testdata, goleaklite.Analyzer, "leak")
}
