// Package goleaklite enforces the repo's shutdown invariant: background
// goroutines must have a way to stop, and tickers/timers must be
// stopped. It is "lite" because it is purely syntactic about signal
// naming — precise escape analysis is not worth the complexity for the
// two leak shapes that actually bit this codebase:
//
//  1. `go func() { for { ... } }()` with no receive from a done/ctx
//     channel anywhere in the literal: the goroutine outlives its owner
//     (the fleet supervisors and llrp.Conn read loops all must honor
//     shutdown so tests and the daemon can drain cleanly).
//  2. A time.NewTicker/time.NewTimer whose handle never has Stop called
//     in the creating function and never escapes it: the runtime timer
//     leaks until process exit.
//
// One guard-package idiom is recognised as a shutdown path of its own:
// a restart loop metered by (*guard.Breaker).Next or gated on
// (*guard.Breaker).Tripped terminates when the restart budget is spent
// (the breaker trips to dead and the loop returns), so it is legal
// without a done-channel receive.
//
// Suppress a deliberate exception with //tagwatch:allow-leak <why>.
package goleaklite

import (
	"go/ast"
	"go/types"
	"regexp"

	"tagwatch/internal/analysis"
)

// Analyzer flags unstoppable goroutines and unstopped tickers/timers.
var Analyzer = &analysis.Analyzer{
	Name:      "goleaklite",
	Directive: "allow-leak",
	Doc: `flag goroutine literals with unbounded loops and no shutdown signal, and unstopped tickers/timers

Every long-lived goroutine must select on a done/ctx/stop channel so
Close/Stop/ctx-cancel actually terminates it, and every time.NewTicker
or time.NewTimer must be stopped (usually via defer) or handed off.
A restart loop metered by a guard.Breaker (Next/Tripped) is exempt: the
breaker trips to dead after the restart budget, ending the loop.
Annotate deliberate exceptions with //tagwatch:allow-leak.`,
	Run: run,
}

// shutdownName matches identifiers conventionally carrying a shutdown
// signal. Receiving from any of them (or from any Done() call) counts
// as a shutdown path.
var shutdownName = regexp.MustCompile(`(?i)(done|stop|quit|exit|clos|cancel|ctx|kill|shutdown)`)

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutine(pass, n, lit)
			}
		case *ast.FuncDecl:
			if n.Body != nil {
				checkTimers(pass, n.Body)
			}
		case *ast.FuncLit:
			checkTimers(pass, n.Body)
		}
		return true
	})
	return nil
}

// checkGoroutine reports a go'd function literal that loops forever
// without any receive from a shutdown-ish channel.
func checkGoroutine(pass *analysis.Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	unbounded := false
	hasSignal := false
	inspectOwn(lit.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				unbounded = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isShutdownChan(n.X) {
				hasSignal = true
			}
		case *ast.CallExpr:
			// A guard.Breaker-metered loop terminates when the restart
			// budget trips to dead; consulting the breaker is a shutdown
			// path even without a done-channel receive.
			if isBreakerCall(pass, n) {
				hasSignal = true
			}
		case *ast.RangeStmt:
			// `for range ch` terminates when the channel closes; treat a
			// channel range as its own shutdown path.
			if t, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					hasSignal = true
				}
			}
		}
	})
	if unbounded && !hasSignal {
		pass.Reportf(g.Pos(), "goroutine loops forever with no shutdown path: select on a done/ctx/stop channel so Close or ctx-cancel can end it")
	}
}

// guardPkg is the package whose Breaker bounds restart loops.
const guardPkg = "tagwatch/internal/guard"

// isBreakerCall reports whether call invokes (*guard.Breaker).Next or
// (*guard.Breaker).Tripped — the methods whose ok=false/true answer is
// how a budgeted restart loop learns it must stop.
func isBreakerCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if pkg, typ := analysis.ReceiverNamed(fn); pkg != guardPkg || typ != "Breaker" {
		return false
	}
	return fn.Name() == "Next" || fn.Name() == "Tripped"
}

// isShutdownChan reports whether a receive operand looks like a
// shutdown signal: any Done()-style call, or an identifier/selector
// whose name matches the conventional shutdown vocabulary.
func isShutdownChan(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			return shutdownName.MatchString(fun.Sel.Name)
		case *ast.Ident:
			return shutdownName.MatchString(fun.Name)
		}
	case *ast.Ident:
		return shutdownName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return shutdownName.MatchString(e.Sel.Name)
	}
	return false
}

// checkTimers flags `x := time.NewTicker(...)` / `time.NewTimer(...)`
// where x never has Stop called and never escapes the enclosing
// function body. The scan is per-body and does not descend into nested
// function literals when attributing the creation site, but a Stop in a
// nested literal (e.g. `defer func() { t.Stop() }()` or a restart
// closure) does count.
func checkTimers(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectOwn(body, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		if fn.Name() != "NewTicker" && fn.Name() != "NewTimer" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if !stoppedOrEscapes(pass, body, obj, id) {
			pass.Reportf(assign.Pos(), "time.%s is never stopped in this function and never escapes it; the timer leaks — add `defer %s.Stop()`", fn.Name(), id.Name)
		}
	})
}

// stoppedOrEscapes scans the whole body (nested literals included — a
// deferred closure stopping the ticker is the common idiom) for either
// a Stop call on obj or any use of obj that is not a field selection,
// which conservatively counts as handing the timer off.
func stoppedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if x, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(x) == obj {
				if n.Sel.Name == "Stop" {
					found = true
				}
				// x.C / x.Reset are plain uses of the handle, not escapes.
				return false
			}
		case *ast.Ident:
			if n != def && pass.TypesInfo.ObjectOf(n) == obj {
				// Bare use outside a selector: returned, stored, passed,
				// or reassigned — someone else owns the stop now.
				found = true
			}
		}
		return true
	})
	return found
}

// inspectOwn walks a function body without descending into nested
// function literals, so each body's findings are attributed to the
// function that owns the statement.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
