// Fixture: goroutine shutdown-path and ticker/timer hygiene cases.
package leak

import (
	"context"
	"net"
	"time"

	"tagwatch/internal/guard"
)

type worker struct {
	stop chan struct{}
	ch   chan int
}

func (w *worker) badLoop() {
	go func() { // want `goroutine loops forever with no shutdown path`
		for {
			process(<-w.ch)
		}
	}()
}

func (w *worker) goodStopChan() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.ch:
				process(v)
			}
		}
	}()
}

func (w *worker) goodCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-w.ch:
				process(v)
			}
		}
	}()
}

func (w *worker) goodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			process(i)
		}
	}()
}

// A channel range drains until close — its own shutdown path.
func (w *worker) goodRangeDrain() {
	go func() {
		for {
			for v := range w.ch {
				process(v)
			}
		}
	}()
}

func (w *worker) excusedLoop() {
	//tagwatch:allow-leak fixture: daemon loop that dies with the process
	go func() {
		for {
			process(<-w.ch)
		}
	}()
}

func badTicker() {
	t := time.NewTicker(time.Second) // want `time.NewTicker is never stopped`
	<-t.C
}

func badTimer() {
	tm := time.NewTimer(time.Second) // want `time.NewTimer is never stopped`
	<-tm.C
}

func goodDeferStop() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

// Stopping from a nested closure (the deferred-cleanup idiom) counts.
func goodClosureStop() {
	t := time.NewTicker(time.Second)
	defer func() { t.Stop() }()
	<-t.C
}

// Handing the handle off transfers stop responsibility.
func goodEscape() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

func excusedTicker() {
	t := time.NewTicker(time.Hour) //tagwatch:allow-leak fixture: burns for the process lifetime by design
	<-t.C
}

// The panic-restart loop shape from the fleet's supervision: contain a
// crash, back off, run again. Restarting forever with no shutdown
// receive is exactly the leak that keeps a dead manager's goroutines
// spinning after Stop.
func (w *worker) badRestartLoop(contained func() error) {
	go func() { // want `goroutine loops forever with no shutdown path`
		for {
			if err := contained(); err == nil {
				return
			}
			time.Sleep(100 * time.Millisecond) // backoff without a cancel path
		}
	}()
}

// The accepted shape: the backoff wait races ctx cancellation, so
// Stop/ctx-cancel ends the restart loop between attempts.
func (w *worker) goodRestartLoop(ctx context.Context, contained func() error) {
	go func() {
		for {
			if err := contained(); err == nil {
				return
			}
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}()
}

// The guard-budgeted shape: the breaker hands out backoff until the
// restart budget is spent, then answers ok=false and the loop dies.
// Trip-to-dead IS the shutdown path; no done-channel receive needed.
func (w *worker) goodBreakerLoop(b *guard.Breaker, contained func() error) {
	go func() {
		for {
			if err := contained(); err == nil {
				return
			}
			delay, ok := b.Next(time.Now())
			if !ok {
				return // tripped to dead
			}
			time.Sleep(delay)
		}
	}()
}

// Gating each lap on Tripped counts the same way.
func (w *worker) goodTrippedGate(b *guard.Breaker, contained func() error) {
	go func() {
		for {
			if b.Tripped() {
				return
			}
			_ = contained()
		}
	}()
}

// A sentinel alone contains panics but never ends the loop — only the
// breaker (or a shutdown receive) bounds a restart loop.
func (w *worker) badSentinelOnlyLoop(s *guard.Sentinel, body func()) {
	go func() { // want `goroutine loops forever with no shutdown path`
		for {
			_ = s.Do("component", body)
			time.Sleep(100 * time.Millisecond)
		}
	}()
}

// The replication ack-reader shape: a goroutine blocked in conn.Read
// whose only exit is the read failing. The analyzer cannot see that the
// session's deferred conn.Close IS the shutdown signal — a `return` on
// error is not a shutdown receive (the conn may never fail), so the
// shape is flagged and the real call sites carry the justification.
func badConnReadLoop(conn net.Conn) {
	go func() { // want `goroutine loops forever with no shutdown path`
		for {
			buf := make([]byte, 16)
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
}

// The shipper's actual ack-reader: closing the conn on session teardown
// unblocks the read and ends the loop, so the leak is excused in place.
func excusedConnReadLoop(conn net.Conn) {
	//tagwatch:allow-leak fixture: session teardown closes conn, failing the read
	go func() {
		for {
			buf := make([]byte, 16)
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
}

// The standby accept-loop shape done right: the read races the session
// context, so cancellation (not just a dead peer) ends the loop.
func goodConnCtxLoop(ctx context.Context, conn net.Conn, frames chan []byte) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case f, ok := <-frames:
				if !ok {
					return
				}
				if _, err := conn.Write(f); err != nil {
					return
				}
			}
		}
	}()
}

// The gauntlet's healthz-prober shape: a polling goroutine that reports
// its tally over a buffered channel when the case tears down. The
// ticker is stopped and the loop exits on ctx — both hygiene rules
// satisfied.
func goodProberLoop(ctx context.Context, probe func() bool) chan int {
	out := make(chan int, 1)
	go func() {
		n := 0
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				out <- n
				return
			case <-t.C:
				if probe() {
					n++
				}
			}
		}
	}()
	return out
}

// The same prober without the shutdown receive: the campaign ends but
// the prober spins forever and its verdict never arrives.
func badProberLoop(probe func() bool) {
	go func() { // want `goroutine loops forever with no shutdown path`
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			<-t.C
			_ = probe()
		}
	}()
}

// The edge client's reconnect-loop shape done right: every lap checks
// ctx before dialing and the backoff wait races cancellation, so the
// follower dies with its context instead of redialing a dead upstream
// forever.
func goodEdgeReconnectLoop(ctx context.Context, session func(context.Context) error) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			if err := session(ctx); err == nil {
				continue
			}
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}()
}

// The same follower with a bare sleep backoff: nothing ever ends the
// loop — the edge process "stops" but its link goroutine keeps dialing.
func badEdgeReconnectLoop(session func() error) {
	go func() { // want `goroutine loops forever with no shutdown path`
		for {
			_ = session()
			time.Sleep(100 * time.Millisecond)
		}
	}()
}

// The SSE streamer's heartbeat shape: ticker stopped on the way out,
// loop ended by the request context.
func goodHeartbeatLoop(ctx context.Context, sendKeepalive func() bool) {
	t := time.NewTicker(15 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !sendKeepalive() {
				return
			}
		}
	}
}

// A heartbeat ticker armed per-connection but never stopped leaks one
// timer per client for the life of the process.
func badHeartbeatTicker(send func() bool) {
	t := time.NewTicker(15 * time.Second) // want `time.NewTicker is never stopped`
	for send() {
		<-t.C
	}
}

func process(int) {}
