// Fixture: minimal stand-in for the real guard package, matched by the
// analyzer purely on import path + type name + signature.
package guard

import "time"

type Breaker struct{}

func (b *Breaker) Next(at time.Time) (time.Duration, bool) { return 0, false }
func (b *Breaker) Tripped() bool                           { return true }

// Sentinel is here so fixtures can mirror the real supervisor shape;
// its methods are NOT shutdown paths.
type Sentinel struct{}

func (s *Sentinel) Do(component string, fn func()) error { return nil }
