// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis core, built only on the standard
// library so the repo stays dependency-free. It exists to run
// tagwatch-specific invariant checkers (see the sibling simclock,
// goleaklite, deverr, and locksend packages) from cmd/tagwatchvet,
// both standalone and as a `go vet -vettool`.
//
// The API mirrors go/analysis deliberately: an Analyzer owns a Run
// function that receives a Pass (one type-checked package) and reports
// Diagnostics. If the repo ever vendors x/tools, the analyzers port
// over by changing imports.
//
// Every analyzer honors a source-level escape hatch: a comment of the
// form
//
//	//tagwatch:allow-<directive> <justification>
//
// on the flagged line, or alone on the line directly above it,
// suppresses that analyzer's diagnostics for the line. The justification
// text is not parsed but reviewers should demand one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Directive is the suffix of the suppression comment that silences
	// this analyzer, e.g. "allow-wallclock" for //tagwatch:allow-wallclock.
	Directive string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a finding with fmt-style formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file in the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree (same contract as
// ast.Inspect).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Callee resolves the *types.Func a call expression invokes, whether
// through a plain identifier, a package selector, or a method selector.
// It returns nil for calls to function values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverNamed reports the defining package path and type name of a
// method's receiver, dereferencing one pointer. It returns "", "" for
// plain functions and methods on unnamed types.
func ReceiverNamed(fn *types.Func) (pkgPath, typeName string) {
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// ReturnsError reports whether the function's final result is the
// built-in error type.
func ReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// directivePrefix is the comment marker all suppression directives share.
const directivePrefix = "//tagwatch:"

// directiveLines maps file name -> line -> set of directives ("allow-x")
// present on that line.
func directiveLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, _, _ := strings.Cut(rest, " ")
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					out[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				byLine[pos.Line][name] = true
			}
		}
	}
	return out
}

// FilterSuppressed drops diagnostics silenced by a //tagwatch:allow-*
// directive on the same line or the line immediately above. Both the
// standalone runner and the analysistest harness route findings through
// here so the escape hatch behaves identically everywhere.
func FilterSuppressed(fset *token.FileSet, files []*ast.File, a *Analyzer, diags []Diagnostic) []Diagnostic {
	if a.Directive == "" || len(diags) == 0 {
		return diags
	}
	dirs := directiveLines(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		byLine := dirs[pos.Filename]
		if byLine[pos.Line][a.Directive] || byLine[pos.Line-1][a.Directive] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
