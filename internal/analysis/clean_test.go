package analysis_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis"
	"tagwatch/internal/analysis/conndeadline"
	"tagwatch/internal/analysis/deverr"
	"tagwatch/internal/analysis/fsyncorder"
	"tagwatch/internal/analysis/goleaklite"
	"tagwatch/internal/analysis/locksend"
	"tagwatch/internal/analysis/simclock"
	"tagwatch/internal/analysis/wirebound"
)

// TestTreeIsClean runs the whole tagwatchvet suite over the whole
// module, so `go test ./...` — not just the CI lint step — fails the
// moment an invariant violation lands. Violations are either fixed or
// carry a //tagwatch:allow-* justification; this test is what keeps
// that bargain honest between CI runs.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	findings, err := analysis.Analyze(pkgs, []*analysis.Analyzer{
		simclock.Analyzer,
		goleaklite.Analyzer,
		deverr.Analyzer,
		locksend.Analyzer,
		wirebound.Analyzer,
		fsyncorder.Analyzer,
		conndeadline.Analyzer,
	})
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
