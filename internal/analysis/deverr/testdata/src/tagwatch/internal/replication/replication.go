// Fixture: minimal stand-in for the real replication package, matched by
// the analyzer purely on import path + type name + signature.
package replication

import "context"

type Shipper struct{}

func (s *Shipper) WaitSynced(ctx context.Context) error { return nil }

type Standby struct{}

func (sb *Standby) Run(ctx context.Context) {}
