// Fixture: minimal stand-in for the real fleet package.
package fleet

import (
	"context"
	"net"
)

type Manager struct{}

func (m *Manager) Serve(ctx context.Context, lis net.Listener) error { return nil }

type Standby struct{}

func (sb *Standby) Start(ctx context.Context) error               { return nil }
func (sb *Standby) Promote(ctx context.Context) (*Manager, error) { return nil, nil }
func (sb *Standby) Stop()                                         {}
