// Fixture: minimal stand-in for the real fleet package.
package fleet

import (
	"context"
	"net"
)

type Manager struct{}

func (m *Manager) Serve(ctx context.Context, lis net.Listener) error { return nil }
