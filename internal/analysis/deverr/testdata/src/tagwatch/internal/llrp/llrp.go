// Fixture: minimal stand-in for the real llrp package.
package llrp

import "context"

type Conn struct{}

func (c *Conn) StartROSpec(ctx context.Context, id uint32) error { return nil }
func (c *Conn) StopROSpec(ctx context.Context, id uint32) error  { return nil }
func (c *Conn) Close() error                                     { return nil }

type Server struct{}

func (s *Server) Close() error { return nil }
