// Fixture: minimal stand-in for the real gauntlet package, matched by
// the analyzer purely on import path + type name + signature.
package gauntlet

import "context"

type Report struct{}

type Runner struct{}

func (r *Runner) Run(ctx context.Context) (*Report, error) { return nil, nil }
