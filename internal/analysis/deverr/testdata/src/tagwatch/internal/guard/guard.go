// Fixture: minimal stand-in for the real guard package, matched by the
// analyzer purely on import path + type name + signature.
package guard

import "context"

type Sentinel struct{}

func (s *Sentinel) Do(component string, fn func()) error { return nil }
func (s *Sentinel) Total() uint64                        { return 0 }

type Admission struct{}

func (a *Admission) Acquire(ctx context.Context) (func(bool), error) { return nil, nil }
