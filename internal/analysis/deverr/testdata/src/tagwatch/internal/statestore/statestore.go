// Fixture: minimal stand-in for the real statestore package, matched by
// the analyzer purely on import path + type name + signature.
package statestore

type Store struct{}

func (s *Store) Append(data []byte) error         { return nil }
func (s *Store) AppendBatch(recs [][]byte) error  { return nil }
func (s *Store) WriteSnapshot(state []byte) error { return nil }
func (s *Store) Close() error                     { return nil }

type Cursor struct{}

type JournalReader struct{}

func (r *JournalReader) Poll() ([][]byte, Cursor, error) { return nil, Cursor{}, nil }
func (r *JournalReader) Close()                          {}
