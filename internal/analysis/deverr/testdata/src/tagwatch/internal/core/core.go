// Fixture: minimal stand-in for the real core package, matched by the
// analyzer purely on import path + type name + signature.
package core

import "time"

type Reading struct{}

type Device interface {
	ReadAll() ([]Reading, error)
	ReadSelective(dwell time.Duration) ([]Reading, error)
	Now() time.Duration
}

type SimDevice struct{}

func (d *SimDevice) ReadAll() ([]Reading, error)                          { return nil, nil }
func (d *SimDevice) ReadSelective(dwell time.Duration) ([]Reading, error) { return nil, nil }
func (d *SimDevice) Now() time.Duration                                   { return 0 }

type Checkpointer struct{}

func (c *Checkpointer) Restore() error    { return nil }
func (c *Checkpointer) AfterCycle() error { return nil }
func (c *Checkpointer) Snapshot() error   { return nil }
