// Fixture: minimal stand-in for the real edge package, matched by the
// analyzer purely on import path + type name + signature.
package edge

import (
	"context"
	"net"
)

type Client struct{}

func (c *Client) Run(ctx context.Context) error { return nil }

type Server struct{}

func (s *Server) Serve(ctx context.Context, lis net.Listener) error { return nil }
