// Fixture: call sites against the watched device/transport/fleet types.
package devclient

import (
	"context"
	"net"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/edge"
	"tagwatch/internal/fleet"
	"tagwatch/internal/gauntlet"
	"tagwatch/internal/guard"
	"tagwatch/internal/llrp"
	"tagwatch/internal/replication"
	"tagwatch/internal/statestore"
)

func drops(dev core.Device, sim *core.SimDevice, c *llrp.Conn, m *fleet.Manager, ctx context.Context, lis net.Listener) {
	dev.ReadAll()           // want `error from \(tagwatch/internal/core.Device\).ReadAll is silently dropped`
	sim.ReadSelective(0)    // want `error from \(tagwatch/internal/core.SimDevice\).ReadSelective is silently dropped`
	c.StartROSpec(ctx, 1)   // want `error from \(tagwatch/internal/llrp.Conn\).StartROSpec is silently dropped`
	go c.StopROSpec(ctx, 1) // want `error from \(tagwatch/internal/llrp.Conn\).StopROSpec is silently dropped`
	m.Serve(ctx, lis)       // want `error from \(tagwatch/internal/fleet.Manager\).Serve is silently dropped`
}

func handled(dev core.Device) error {
	if _, err := dev.ReadAll(); err != nil {
		return err
	}
	return nil
}

// Assigning to blank is a reviewed, deliberate discard: legal.
func deliberate(dev core.Device) {
	_, _ = dev.ReadAll()
}

// Close is exempt by convention — teardown is best-effort.
func closing(c *llrp.Conn, s *llrp.Server) {
	c.Close()
	s.Close()
}

// Deferred teardown is left to reviewers, not flagged.
func deferred(c *llrp.Conn, ctx context.Context) {
	defer c.StopROSpec(ctx, 1)
}

// No error in the signature means nothing to drop.
func now(dev core.Device) time.Duration {
	return dev.Now()
}

// Error-returning methods on unwatched types are out of scope.
type other struct{}

func (o other) Do() error { return nil }

func unwatched(o other) {
	o.Do()
}

func excused(dev core.Device) {
	dev.ReadAll() //tagwatch:allow-droppederr fixture: proves the escape hatch
}

// Durability writers: a dropped error means state the caller believes
// persisted but was never acked to disk.
func durabilityDrops(st *statestore.Store, ck *core.Checkpointer) {
	st.Append(nil)        // want `error from \(tagwatch/internal/statestore.Store\).Append is silently dropped`
	st.AppendBatch(nil)   // want `error from \(tagwatch/internal/statestore.Store\).AppendBatch is silently dropped`
	st.WriteSnapshot(nil) // want `error from \(tagwatch/internal/statestore.Store\).WriteSnapshot is silently dropped`
	ck.AfterCycle()       // want `error from \(tagwatch/internal/core.Checkpointer\).AfterCycle is silently dropped`
	st.Close()            // Close stays exempt: teardown is best-effort.
}

func durabilityHandled(st *statestore.Store, ck *core.Checkpointer) error {
	if err := st.WriteSnapshot(nil); err != nil {
		return err
	}
	return ck.Snapshot()
}

// The overload armor: Sentinel.Do's error is the contained panic, and
// Admission.Acquire's results are the slot release plus the shed error.
func guardDrops(s *guard.Sentinel, a *guard.Admission, ctx context.Context) {
	s.Do("worker", func() {}) // want `error from \(tagwatch/internal/guard.Sentinel\).Do is silently dropped`
	a.Acquire(ctx)            // want `error from \(tagwatch/internal/guard.Admission\).Acquire is silently dropped`
}

func guardHandled(s *guard.Sentinel, a *guard.Admission, ctx context.Context) error {
	if err := s.Do("worker", func() {}); err != nil {
		return err
	}
	release, err := a.Acquire(ctx)
	if err != nil {
		return err
	}
	release(true)
	return nil
}

// A reviewed, deliberate drop stays legal — containment-only call sites
// where no restart decision rides on the error.
func guardDeliberate(s *guard.Sentinel) {
	_ = s.Do("checkpoint", func() {})
}

// The replication link and the hot standby: WaitSynced's error is the
// only evidence a quiesce point was NOT reached, Poll's error carries
// the resync-needed signal, and Start/Promote errors are the difference
// between a hot spare following the primary and nobody following it.
func replicationDrops(sh *replication.Shipper, sb *fleet.Standby, jr *statestore.JournalReader, ctx context.Context) {
	sh.WaitSynced(ctx) // want `error from \(tagwatch/internal/replication.Shipper\).WaitSynced is silently dropped`
	sb.Start(ctx)      // want `error from \(tagwatch/internal/fleet.Standby\).Start is silently dropped`
	sb.Promote(ctx)    // want `error from \(tagwatch/internal/fleet.Standby\).Promote is silently dropped`
	jr.Poll()          // want `error from \(tagwatch/internal/statestore.JournalReader\).Poll is silently dropped`
}

func replicationHandled(sh *replication.Shipper, sb *fleet.Standby, ctx context.Context) error {
	if err := sh.WaitSynced(ctx); err != nil {
		return err
	}
	_, err := sb.Promote(ctx)
	return err
}

// The fault-campaign orchestrator: a dropped Run error is a campaign
// that silently never reached a verdict.
func gauntletDrops(r *gauntlet.Runner, ctx context.Context) {
	r.Run(ctx) // want `error from \(tagwatch/internal/gauntlet.Runner\).Run is silently dropped`
}

func gauntletHandled(r *gauntlet.Runner, ctx context.Context) error {
	if _, err := r.Run(ctx); err != nil {
		return err
	}
	return nil
}

// The edge fan-out tier: Client.Run's return is the shutdown cause and
// Server.Serve's error is the downstream API dying.
func edgeDrops(c *edge.Client, s *edge.Server, ctx context.Context, lis net.Listener) {
	go c.Run(ctx)     // want `error from \(tagwatch/internal/edge.Client\).Run is silently dropped`
	s.Serve(ctx, lis) // want `error from \(tagwatch/internal/edge.Server\).Serve is silently dropped`
}

// The run-forever follower pattern stays legal when the drop is the
// reviewed blank assignment.
func edgeDeliberate(c *edge.Client, ctx context.Context) {
	go func() { _ = c.Run(ctx) }()
}

func edgeHandled(s *edge.Server, ctx context.Context, lis net.Listener) error {
	return s.Serve(ctx, lis)
}
