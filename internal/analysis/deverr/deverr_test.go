package deverr_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/deverr"
)

func TestDevErr(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// The fixture fakes impersonate the watched import paths; the real
	// packages never enter the picture because the harness resolves
	// imports testdata-first.
	analysistest.Run(t, testdata, deverr.Analyzer, "devclient")
}
