// Package deverr enforces the error-propagation invariant introduced
// with the error-aware cycle pipeline: failures from the device and
// transport layers must never be silently dropped. A core.Device that
// returns an error alongside partial readings is reporting "the link is
// dying", and a call site that discards it turns a dying transport back
// into an invisible empty RF field — exactly the bug class the pipeline
// was built to kill.
//
// The same invariant covers durability: statestore.Store's writers and
// core.Checkpointer return "your state did NOT reach stable storage" as
// an error, and dropping it silently converts a durable system into one
// that merely looks durable until the first crash.
//
// The analyzer flags statements that invoke an error-returning method
// on one of the watched types (core.Device and its implementations,
// llrp.Conn/Server/Proxy, the fleet manager/bus/registry, the durable
// statestore.Store and core.Checkpointer) and discard
// every result — a bare expression statement or a `go` statement.
// Assigning the error to blank (`_ = dev.ReadAll()`-style) is treated
// as a reviewed, deliberate drop and stays legal, as do `Close`
// methods (teardown is best-effort by convention; CloseConnection,
// which performs the LLRP handshake, is still checked).
//
// Suppress a deliberate drop with //tagwatch:allow-droppederr <why>.
package deverr

import (
	"go/ast"

	"tagwatch/internal/analysis"
)

// watched maps package path -> type names whose error-returning methods
// must not be dropped.
var watched = map[string]map[string]bool{
	"tagwatch/internal/core": {
		"Device": true, "SimDevice": true, "LLRPDevice": true,
		// Checkpointer errors mean "this cycle's changes are NOT durable";
		// a caller that drops one silently breaks the durability ack.
		"Checkpointer": true,
	},
	"tagwatch/internal/llrp": {
		"Conn": true, "Server": true, "Proxy": true,
	},
	"tagwatch/internal/fleet": {
		"Manager": true, "Bus": true, "Registry": true,
		// Standby.Start/Promote errors are the difference between "a hot
		// spare is following the primary" and "nobody is".
		"Standby": true,
	},
	// The durable store's writers: a dropped Append/WriteSnapshot error is
	// state the operator believes persisted but was never acked to disk.
	// JournalReader's Poll/Next errors carry ErrCursorGone — the signal
	// that a tailer must resync from a snapshot; dropping one ships a
	// silently incomplete stream.
	"tagwatch/internal/statestore": {
		"Store": true, "JournalReader": true,
	},
	// The replication link: Shipper.WaitSynced's error is the only
	// evidence a quiesce point was NOT reached — dropping it turns a
	// planned failover into data loss.
	"tagwatch/internal/replication": {
		"Shipper": true, "Standby": true,
	},
	// The overload armor: Sentinel.Do returns the contained panic — the
	// only evidence a supervised component just crashed — and
	// Admission.Acquire returns the slot's release func alongside its
	// error. Dropping either erases a crash or leaks a concurrency slot.
	"tagwatch/internal/guard": {
		"Sentinel": true, "Admission": true,
	},
	// The fault-campaign orchestrator: Runner.Run's error is the
	// difference between "the campaign reached a verdict" and "no verdict
	// exists" — dropping it leaves a fault campaign silently unjudged.
	"tagwatch/internal/gauntlet": {
		"Runner": true,
	},
	// The fan-out tier: Client.Run only returns at context cancellation
	// (its error is the shutdown cause) and Server.Serve's error is the
	// downstream API dying — dropping either leaves an edge that looks
	// alive but serves nothing.
	"tagwatch/internal/edge": {
		"Client": true, "Server": true,
	},
}

// exemptMethods are error-returning methods whose drop is conventional.
var exemptMethods = map[string]bool{
	"Close": true,
}

// Analyzer flags dropped errors from device/transport/fleet methods.
var Analyzer = &analysis.Analyzer{
	Name:      "deverr",
	Directive: "allow-droppederr",
	Doc: `flag silently dropped errors from core.Device, llrp.Conn/Server, and fleet methods

The cycle pipeline distinguishes "transport failed" from "no tags in
the field" only if every call site propagates device and connection
errors. Discarding one re-introduces the silent-failure mode PR 2
removed. Handle the error, assign it to _ deliberately, or annotate
with //tagwatch:allow-droppederr.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			// Deferred teardown (e.g. `defer conn.CloseConnection(ctx)`)
			// has nowhere to send the error; leave defer to reviewers.
			return true
		}
		if call == nil {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || !analysis.ReturnsError(fn) || exemptMethods[fn.Name()] {
			return true
		}
		pkgPath, typeName := analysis.ReceiverNamed(fn)
		if pkgPath == "" || !watched[pkgPath][typeName] {
			return true
		}
		pass.Reportf(call.Pos(), "error from (%s.%s).%s is silently dropped; the error pipeline must propagate or deliberately discard it (err handling, `_ =`, or //tagwatch:allow-droppederr)",
			pkgPath, typeName, fn.Name())
		return true
	})
	return nil
}
