package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestFilterSuppressed(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //tagwatch:allow-test same-line excuse
}

func b() {
	//tagwatch:allow-test line-above excuse
	_ = 2
}

func c() {
	_ = 3 //tagwatch:allow-other wrong directive
}

func d() {
	_ = 4
}
`
	fset, files := parseOne(t, src)
	az := &Analyzer{Name: "test", Directive: "allow-test"}
	// Synthesize diagnostics on chosen lines via the file's line table.
	diagAtLine := func(line int) Diagnostic {
		tf := fset.File(files[0].Pos())
		return Diagnostic{Pos: tf.LineStart(line), Message: "m"}
	}
	diags := []Diagnostic{diagAtLine(4), diagAtLine(9), diagAtLine(13), diagAtLine(17)}
	kept := FilterSuppressed(fset, files, az, diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2 (lines 13 and 17)", len(kept))
	}
	for _, d := range kept {
		line := fset.Position(d.Pos).Line
		if line != 13 && line != 17 {
			t.Errorf("diagnostic on line %d survived; only 13 and 17 should", line)
		}
	}
}

func TestMainVetProtocolProbes(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := Main(&stdout, &stderr, []string{"-V=full"}, nil); code != 0 {
		t.Fatalf("-V=full exit %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "tagwatchvet version") {
		t.Errorf("-V=full output %q lacks the version fingerprint", stdout.String())
	}

	stdout.Reset()
	if code := Main(&stdout, &stderr, []string{"-flags"}, nil); code != 0 {
		t.Fatalf("-flags exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags output %q, want []", stdout.String())
	}
}

func TestMainUsageOnNoPatterns(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := Main(&stdout, &stderr, nil, []*Analyzer{{Name: "x", Doc: "d", Run: func(*Pass) error { return nil }}}); code != 1 {
		t.Fatalf("no-arg exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "usage: tagwatchvet") {
		t.Errorf("usage text missing from stderr: %q", stderr.String())
	}
}
