// Package locksend flags blocking operations performed while holding a
// sync.Mutex or sync.RWMutex — the deadlock shape PR 1 had to fix by
// hand in llrp.Server: a channel send under a lock blocks until a
// consumer runs, and if that consumer needs the same lock the process
// wedges. The analyzer catches, inside a critical section:
//
//   - blocking channel sends (`ch <- v`, or a select containing a send
//     case but no default);
//   - time.Sleep;
//   - Read/Write calls on a net.Conn (socket I/O can block for the
//     whole kernel timeout while every other lock acquirer queues up).
//
// Non-blocking sends (select with a default clause) are the sanctioned
// under-lock publish pattern (see fleet.Bus.Publish) and are not
// flagged. The critical section is tracked per statement list: from a
// `mu.Lock()` statement to the matching `mu.Unlock()` in the same list,
// or to the end of the list when the unlock is deferred. Nested
// function literals are skipped — they run later, not under the lock.
//
// A deliberate, bounded block (e.g. a socket write serialized by a
// write mutex and bounded by a deadline) is annotated with
// //tagwatch:allow-locked-send <why the block is bounded>.
package locksend

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"tagwatch/internal/analysis"
)

// Analyzer flags blocking sends and I/O under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name:      "locksend",
	Directive: "allow-locked-send",
	Doc: `flag blocking channel sends and blocking I/O while holding a sync mutex

A send under a lock deadlocks the moment its consumer needs the same
lock (the llrp.Server wedge PR 1 fixed by hand). Publish outside the
critical section, use select+default, or annotate a provably bounded
block with //tagwatch:allow-locked-send.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			scanList(pass, body.List)
		}
		return true
	})
	return nil
}

// lockCall matches `x.Lock()` / `x.RLock()` / `x.Unlock()` / `x.RUnlock()`
// where x's type is (a pointer to) sync.Mutex or sync.RWMutex, returning
// a stable textual key for the mutex expression.
func lockCall(pass *analysis.Pass, stmt ast.Stmt) (key string, lock bool, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	pkgPath, typeName := analysis.ReceiverNamed(fn)
	if pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", false, false
	}
	return exprKey(sel.X), lock, true
}

// exprKey renders an expression to text so `s.mu` in two statements
// compares equal. Positions are irrelevant to the rendering.
func exprKey(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// scanList walks one statement list in execution order, tracking which
// mutexes are held, and recurses into nested statement lists (with the
// held-set copied, so an unlock inside a branch ends the critical
// section for that branch only).
func scanList(pass *analysis.Pass, stmts []ast.Stmt) {
	held := map[string]bool{}
	scanStmts(pass, stmts, held)
}

func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if key, lock, ok := lockCall(pass, stmt); ok {
			if lock {
				held[key] = true
			} else {
				delete(held, key)
			}
			continue
		}
		// `defer mu.Unlock()` keeps the lock held to the end of this list;
		// nothing to track since held already says so.
		if anyHeld(held) {
			checkBlocking(pass, stmt, held)
		}
		// Recurse into compound statements with a copy of the held set.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanStmts(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			scanStmts(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					scanStmts(pass, e.List, copyHeld(held))
				case *ast.IfStmt:
					scanStmts(pass, []ast.Stmt{e}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			scanStmts(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanStmts(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanStmts(pass, []ast.Stmt{s.Stmt}, held)
		}
	}
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldName(held map[string]bool) string {
	name := ""
	for k := range held {
		if name == "" || k < name {
			name = k
		}
	}
	return name
}

// checkBlocking inspects one statement (shallowly — compound bodies are
// handled by the scanStmts recursion, function literals are skipped) for
// blocking operations.
func checkBlocking(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		pass.Reportf(s.Arrow, "channel send while holding %s can deadlock; publish outside the lock or use select with a default", heldName(held))
		return
	case *ast.SelectStmt:
		// A select containing a send is non-blocking only with a default.
		hasDefault := false
		var sends []*ast.SendStmt
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else if send, ok := cc.Comm.(*ast.SendStmt); ok {
				sends = append(sends, send)
			}
		}
		if !hasDefault {
			for _, send := range sends {
				pass.Reportf(send.Arrow, "select send while holding %s has no default and can block; add a default case or publish outside the lock", heldName(held))
			}
		}
		return
	}
	// Expression-level blocking calls within a simple statement.
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false // handled by scanStmts / runs later
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(n.Pos(), "time.Sleep while holding %s stalls every other lock acquirer", heldName(held))
				return true
			}
			if isNetIO(fn) {
				pass.Reportf(n.Pos(), "blocking %s.%s on a net.Conn while holding %s; socket I/O can block for the full kernel timeout — bound it and annotate, or move it outside the lock", recvShort(fn), fn.Name(), heldName(held))
			}
		}
		return true
	})
}

// isNetIO reports whether fn is a Read/Write-shaped method defined in
// package net (covers the net.Conn interface and its concrete types).
func isNetIO(fn *types.Func) bool {
	if fn.Name() != "Read" && fn.Name() != "Write" {
		return false
	}
	pkgPath, _ := analysis.ReceiverNamed(fn)
	return pkgPath == "net"
}

func recvShort(fn *types.Func) string {
	_, name := analysis.ReceiverNamed(fn)
	return name
}
