// Fixture: blocking operations inside and outside mutex critical
// sections.
package locks

import (
	"net"
	"sync"
	"time"
)

type hub struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
}

func (h *hub) badSend(v int) {
	h.mu.Lock()
	h.ch <- v // want `channel send while holding h.mu`
	h.mu.Unlock()
}

func (h *hub) badSendUnderDefer(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- v // want `channel send while holding h.mu`
}

func (h *hub) badSendUnderRLock(v int) {
	h.rw.RLock()
	defer h.rw.RUnlock()
	h.ch <- v // want `channel send while holding h.rw`
}

func (h *hub) goodAfterUnlock(v int) {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- v
}

// select+default is the sanctioned non-blocking publish under a lock
// (the fleet bus pattern).
func (h *hub) goodNonBlocking(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- v:
	default:
	}
}

func (h *hub) badSelectNoDefault(v int, done chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- v: // want `select send while holding h.mu`
	case <-done:
	}
}

func (h *hub) badSleep() {
	h.rw.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding h.rw`
	h.rw.Unlock()
}

func (h *hub) badConnWrite(p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.conn.Write(p) // want `blocking Conn.Write on a net.Conn while holding h.mu`
}

func (h *hub) badSendInLoop(vs []int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, v := range vs {
		h.ch <- v // want `channel send while holding h.mu`
	}
}

// A branch that releases the lock before sending is clean.
func (h *hub) goodBranchUnlock(v int) {
	h.mu.Lock()
	if v > 0 {
		h.mu.Unlock()
		h.ch <- v
		return
	}
	h.mu.Unlock()
}

// The deferred closure runs at return, after the explicit unlock below.
func (h *hub) goodDeferredClosure(v int) {
	h.mu.Lock()
	defer func() {
		h.ch <- v
	}()
	h.mu.Unlock()
}

// Two mutexes: releasing one does not release the other.
func (h *hub) badTwoLocks(v int) {
	h.mu.Lock()
	h.rw.Lock()
	h.rw.Unlock()
	h.ch <- v // want `channel send while holding h.mu`
	h.mu.Unlock()
}

func (h *hub) excusedWrite(p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.conn.Write(p) //tagwatch:allow-locked-send fixture: bounded by a deadline in real code
}
