package locksend_test

import (
	"path/filepath"
	"testing"

	"tagwatch/internal/analysis/analysistest"
	"tagwatch/internal/analysis/locksend"
)

func TestLockSend(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, testdata, locksend.Analyzer, "locks")
}
