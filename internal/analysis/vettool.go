package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON config `go vet` writes for each package
// when driving an external tool (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker). Only the fields this shim consumes
// are declared.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string
	ImportMap  map[string]string
	// PackageFile maps import paths to compiled export data, covering
	// the transitive dependencies of the unit under analysis.
	PackageFile map[string]string
	// VetxOnly units exist purely so fact-based analyzers can export
	// facts for dependents. The tagwatch analyzers carry no facts, so
	// such units are acknowledged and skipped.
	VetxOnly   bool
	VetxOutput string
	// SucceedOnTypecheckFailure is set for packages the driver already
	// knows are broken; the tool must stay quiet instead of double
	// reporting.
	SucceedOnTypecheckFailure bool
}

// vetToolMain implements the `go vet -vettool` protocol: the driver
// first invokes the tool with -V=full to fingerprint it for the build
// cache, then once per package with a single *.cfg argument. Returns
// handled=false when the invocation is not vet-shaped so the standalone
// CLI takes over.
func vetToolMain(stdout, stderr io.Writer, args []string, analyzers []*Analyzer) (code int, handled bool) {
	for _, a := range args {
		// The driver first asks which flags the tool accepts; declaring
		// none keeps the per-package invocation down to a single cfg path.
		if a == "-flags" || a == "--flags" {
			fmt.Fprintln(stdout, "[]")
			return 0, true
		}
		if a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V" {
			// The reported string doubles as a cache key; bump the version
			// when analyzer semantics change so stale verdicts are not
			// replayed from the vet cache.
			fmt.Fprintln(stdout, "tagwatchvet version v2 (tagwatch invariant suite)")
			return 0, true
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return 0, false
	}

	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1, true
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "tagwatchvet: parsing %s: %v\n", args[0], err)
		return 1, true
	}
	// The driver insists on the facts file existing even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "tagwatchvet:", err)
			return 1, true
		}
	}
	if cfg.VetxOnly {
		return 0, true
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, ".go") {
			files = append(files, f)
		}
	}
	sort.Strings(files)
	pkg, err := checkPackage(fset, importer.ForCompiler(fset, "gc", lookup), cfg.ImportPath, "", files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, true
		}
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1, true
	}
	findings, err := Analyze([]*Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "tagwatchvet:", err)
		return 1, true
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2, true
	}
	return 0, true
}
