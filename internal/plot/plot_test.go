package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "IRR vs population",
		XLabel: "tags",
		YLabel: "Hz",
		Series: []Series{
			{Name: "measured", Kind: Line, X: []float64{1, 10, 20, 40}, Y: []float64{45, 22, 15, 9}},
			{Name: "model", Kind: Scatter, X: []float64{1, 10, 20, 40}, Y: []float64{36, 23, 16, 9}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := samplePlot().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"IRR vs population", "polyline", "circle", "measured", "model", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGDeterministic(t *testing.T) {
	if samplePlot().SVG() != samplePlot().SVG() {
		t.Fatal("SVG must be deterministic")
	}
}

func TestBarsAndSteps(t *testing.T) {
	p := &Plot{
		Series: []Series{
			{Name: "a", Kind: Bars, X: []float64{1, 2, 3}, Y: []float64{5, 2, 8}},
			{Name: "b", Kind: Bars, X: []float64{1, 2, 3}, Y: []float64{3, 4, 1}},
			{Name: "cdf", Kind: Steps, X: []float64{1, 2, 3}, Y: []float64{0.2, 0.7, 1.0}},
		},
	}
	svg := p.SVG()
	if strings.Count(svg, "<rect") < 7 { // canvas + frame + 6 bars
		t.Fatalf("bar rectangles missing:\n%s", svg)
	}
	if !strings.Contains(svg, "polyline") {
		t.Fatal("step polyline missing")
	}
}

func TestEmptyPlotStillRenders(t *testing.T) {
	p := &Plot{Title: "empty"}
	svg := p.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty plot must render a valid document")
	}
}

func TestForcedYRange(t *testing.T) {
	p := samplePlot()
	p.SetYRange(0, 100)
	svg := p.SVG()
	if !strings.Contains(svg, ">100<") {
		t.Fatalf("forced y max must appear as a tick:\n%s", svg)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 40, 6)
	if len(ticks) < 4 || ticks[0] != 0 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks must ascend")
		}
	}
	// Degenerate range.
	if got := niceTicks(5, 5, 4); len(got) == 0 {
		t.Fatal("degenerate range must still tick")
	}
	// Fractional steps format cleanly.
	if formatTick(0.25) != "0.25" || formatTick(3) != "3" {
		t.Fatalf("tick formats: %s %s", formatTick(0.25), formatTick(3))
	}
	if math.IsNaN(niceTicks(-1, 1, 5)[0]) {
		t.Fatal("NaN tick")
	}
}

func TestEscape(t *testing.T) {
	if escape("a<b&c>") != "a&lt;b&amp;c&gt;" {
		t.Fatalf("escape = %q", escape("a<b&c>"))
	}
}
