// Package plot renders simple scientific plots as standalone SVG — enough
// to draw every figure of the paper's evaluation (lines, scatter, bars,
// step CDFs) without any dependency. The output is deterministic, making
// rendered figures diffable artefacts.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Kind selects how a series is drawn.
type Kind int

// Series kinds.
const (
	Line Kind = iota
	Scatter
	Bars
	Steps // staircase, for empirical CDFs
)

// Series is one named data series.
type Series struct {
	Name string
	Kind Kind
	X, Y []float64
}

// Plot is a single chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG canvas size in pixels (defaults
	// 640×420).
	Width, Height int
	// YMin/YMax force the y range when both are set (YMax > YMin).
	YMin, YMax float64
	forceY     bool
}

// SetYRange pins the y axis.
func (p *Plot) SetYRange(min, max float64) {
	p.YMin, p.YMax, p.forceY = min, max, true
}

// palette holds distinguishable series colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	marginLeft   = 62.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 46.0
)

// niceTicks picks ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		// Snap near-zero floating artefacts.
		if math.Abs(v) < step/1e6 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick label compactly.
func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// ranges computes the data extent across all series.
func (p *Plot) ranges() (xlo, xhi, ylo, yhi float64) {
	first := true
	for _, s := range p.Series {
		for i := range s.X {
			if first {
				xlo, xhi, ylo, yhi = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ylo = math.Min(ylo, s.Y[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	if first {
		return 0, 1, 0, 1
	}
	if p.forceY {
		ylo, yhi = p.YMin, p.YMax
	} else {
		if ylo > 0 && ylo < yhi/3 {
			ylo = 0 // anchor at zero when the data lives near it
		}
		pad := (yhi - ylo) * 0.06
		if pad == 0 {
			pad = 1
		}
		yhi += pad
		if ylo != 0 {
			ylo -= pad
		}
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	return
}

// SVG renders the plot.
func (p *Plot) SVG() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 420
	}
	xlo, xhi, ylo, yhi := p.ranges()
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xlo)/(xhi-xlo)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ylo)/(yhi-ylo)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="13">%s</text>`+"\n", w/2, escape(p.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", w/2, h-8, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		int(marginTop+plotH/2), int(marginTop+plotH/2), escape(p.YLabel))

	// Axes frame and grid.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)
	for _, t := range niceTicks(xlo, xhi, 6) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px(t), marginTop, px(t), marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(t), marginTop+plotH+16, formatTick(t))
	}
	for _, t := range niceTicks(ylo, yhi, 6) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, py(t), marginLeft+plotW, py(t))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py(t)+4, formatTick(t))
	}

	// Series.
	nBarSeries := 0
	for _, s := range p.Series {
		if s.Kind == Bars {
			nBarSeries++
		}
	}
	barIdx := 0
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		switch s.Kind {
		case Line, Steps:
			var pts []string
			for i := range s.X {
				if s.Kind == Steps && i > 0 {
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i-1])))
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		case Scatter:
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
					px(s.X[i]), py(s.Y[i]), color)
			}
		case Bars:
			slot := plotW / float64(maxPoints(p.Series)+1)
			bw := slot / float64(nBarSeries+1)
			for i := range s.X {
				x := px(s.X[i]) - slot/2 + bw*float64(barIdx) + bw/2
				y := py(s.Y[i])
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y, bw, py(ylo)-y, color)
			}
			barIdx++
		}
	}

	// Legend.
	lx, ly := marginLeft+8.0, marginTop+8.0
	for si, s := range p.Series {
		if s.Name == "" {
			continue
		}
		color := palette[si%len(palette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+14, ly+9, escape(s.Name))
		ly += 15
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func maxPoints(series []Series) int {
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	return n
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
