package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/gen2"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/stats"
	"tagwatch/internal/tracking"
)

// Fig01Case is one tracking configuration.
type Fig01Case struct {
	Name         string
	Stationary   int
	RateAdaptive bool
	MeanErrorCM  float64
	MoverIRRHz   float64
	Estimates    int
}

// Fig01Result is the application study: trajectory-recovery accuracy for a
// tagged toy train with different numbers of stationary companion tags,
// with and without rate-adaptive reading.
type Fig01Result struct {
	Cases []Fig01Case
}

// fig01Antennas returns the nominal (±5 m, ±5 m) rig with the small
// placement asymmetries of any real deployment. Perfect square symmetry
// makes opposite antennas' phase gradients exactly anti-parallel, so the
// differential hologram's λ/2 alias lattice fits the data exactly; a few
// decimetres of asymmetry — unavoidable in practice — break the lattice.
func fig01Antennas() []scene.Antenna {
	return []scene.Antenna{
		{ID: 1, Pos: rf.Pt(5.0, 4.3, 0)},
		{ID: 2, Pos: rf.Pt(-4.5, 5.2, 0)},
		{ID: 3, Pos: rf.Pt(-5.3, -4.1, 0)},
		{ID: 4, Pos: rf.Pt(4.2, -5.4, 0)},
	}
}

// fig01Scene builds the four-antenna tracking rig with the train and k
// stationary companions beside the track.
func fig01Scene(seed int64, k int) (*scene.Scene, epc.EPC, scene.Trajectory) {
	rng := rand.New(rand.NewSource(seed))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	for _, pos := range fig01Antennas() {
		scn.AddAntenna(pos.Pos)
	}
	mobile := epc.MustParse("30f4ab12cd0045e100000101")
	track := scene.Circle{Center: rf.Pt(0, 0, 0), Radius: 0.2, Speed: 0.7}
	scn.AddTag(mobile, track)
	companions, err := epc.SequentialPopulation([]byte{0x30, 0xAA}, 1, k, 96)
	if err != nil {
		panic(err)
	}
	for i, c := range companions {
		ang := float64(i) * 1.3
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.45*cos(ang), 0.45*sin(ang), 0)})
	}
	return scn, mobile, track
}

// trackFromReadings runs the DAH tracker over the mover's readings.
func trackFromReadings(readings []core.Reading, mobile epc.EPC, track scene.Trajectory, span time.Duration) (float64, float64, int) {
	plan := rf.DefaultFrequencyPlan()
	tcfg := tracking.DefaultConfig()
	tcfg.MaxSpeed = 1.5 // m/s: generous bound for a toy train at 0.7 m/s
	tr := tracking.New(tcfg, plan, fig01Antennas())
	var obs []tracking.Observation
	for _, r := range readings {
		if r.EPC != mobile {
			continue
		}
		obs = append(obs, tracking.Observation{
			Time: r.Time, Antenna: r.Antenna, Channel: r.Channel, Phase: r.PhaseRad,
		})
	}
	if len(obs) == 0 {
		return 0, 0, 0
	}
	// "We fix the initial position at a known point": the ground truth at
	// the time of the first observation.
	tr.SetInitial(track.Pos(obs[0].Time))
	ests := tr.Track(obs)
	err := tracking.MeanError(ests, track)
	irr := hz(len(obs), span)
	return err * 100, irr, len(ests)
}

// Fig01 reproduces the tracking study: traditional reading with 0/2/4
// stationary companions, then rate-adaptive reading with 4. Each arm is
// averaged over several seeds: at contended reading rates the differential
// tracker operates at the phase-aliasing edge, so individual runs vary.
func Fig01(opt Options) (Fig01Result, error) {
	dur := time.Duration(opt.pick(20, 45)) * time.Second
	seeds := opt.pick(5, 9)
	var res Fig01Result

	// The tracking gate runs a dense-interrogator link profile with small
	// per-round overhead, calibrated so the single-tag rate lands at the
	// paper's ≈68 Hz and four companions cut it to the paper's ≈21 Hz
	// (Fig. 1's own numbers imply this operating point: slow slots, small
	// τ₀ — with the default 19 ms start-up cost four companion tags would
	// change the cycle time by only ~15%).
	rcfg := reader.DefaultConfig()
	rcfg.Timing = gen2.ImpinjDenseProfile()
	rcfg.StartupCost = 9 * time.Millisecond

	// Traditional reading-all arms. Per-seed errors are aggregated by
	// median: at contended rates the tracker sits at the λ/4 aliasing
	// edge and individual runs are bimodal (locked vs diverged).
	for _, k := range []int{0, 2, 4} {
		var errs []float64
		var irrSum float64
		var nSum int
		for s := 0; s < seeds; s++ {
			scn, mobile, track := fig01Scene(opt.Seed+int64(100*s), k)
			r := reader.New(rcfg, scn)
			dev := core.NewSimDevice(r)
			start := dev.Now()
			reads := dev.ReadAllFor(dur)
			span := dev.Now() - start
			errCM, irr, n := trackFromReadings(reads, mobile, track, span)
			errs = append(errs, errCM)
			irrSum += irr
			nSum += n
		}
		res.Cases = append(res.Cases, Fig01Case{
			Name:        fmt.Sprintf("read-all (1+%d)", k),
			Stationary:  k,
			MeanErrorCM: stats.Median(errs),
			MoverIRRHz:  irrSum / float64(seeds),
			Estimates:   nSum / seeds,
		})
	}

	// Rate-adaptive arm with 4 companions: the full two-phase middleware.
	var errs []float64
	var irrSum float64
	var nSum int
	for s := 0; s < seeds; s++ {
		scn, mobile, track := fig01Scene(opt.Seed+int64(100*s), 4)
		dev := core.NewSimDevice(reader.New(rcfg, scn))
		cfg := core.DefaultConfig()
		cfg.PhaseIIDwell = 5 * time.Second
		cfg.StickyFor = 12 * time.Second
		// One mover among five tags is exactly the default 20% fallback
		// cutoff; the paper's application study schedules at this ratio,
		// so the tracking deployment raises the cutoff.
		cfg.MobileCutoff = 0.6
		tw := core.New(cfg, dev)
		// A few flood cycles vouch the parked companions; fresh hop
		// channels then bootstrap silently.
		for i := 0; i < 6; i++ {
			tw.RunCycle()
		}
		var reads []core.Reading
		start := dev.Now()
		for dev.Now()-start < dur {
			rep := tw.RunCycle()
			reads = append(reads, rep.PhaseIReads...)
			reads = append(reads, rep.PhaseIIReads...)
		}
		span := dev.Now() - start
		errCM, irr, n := trackFromReadings(reads, mobile, track, span)
		errs = append(errs, errCM)
		irrSum += irr
		nSum += n
	}
	res.Cases = append(res.Cases, Fig01Case{
		Name:         "tagwatch (1+4)",
		Stationary:   4,
		RateAdaptive: true,
		MeanErrorCM:  stats.Median(errs),
		MoverIRRHz:   irrSum / float64(seeds),
		Estimates:    nSum / seeds,
	})
	return res, nil
}

// String renders the tracking comparison.
func (r Fig01Result) String() string {
	t := &table{header: []string{"case", "mover IRR (Hz)", "mean error (cm)", "estimates"}}
	for _, c := range r.Cases {
		t.add(c.Name, fmt.Sprintf("%.1f", c.MoverIRRHz), fmt.Sprintf("%.1f", c.MeanErrorCM),
			fmt.Sprintf("%d", c.Estimates))
	}
	return fmt.Sprintf(`Fig 1 — toy-train trajectory recovery (circular track, r=20 cm, v=0.7 m/s)
(paper: 1.8 cm with no companions → 6 cm with 2 → 10.6 cm with 4;
 rate-adaptive restores 3.34 cm with 4 companions)
%s`, t)
}

// Fig01SceneDebug exposes the tracking rig for diagnostics.
func Fig01SceneDebug(seed int64, k int) (*scene.Scene, epc.EPC, scene.Trajectory) {
	return fig01Scene(seed, k)
}
