package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/stats"
)

// Fig18Row is the IRR-gain distribution for one mobile fraction.
type Fig18Row struct {
	Percent                               int
	TagwatchP50, TagwatchP90, TagwatchStd float64
	NaiveP50, NaiveP90                    float64
	Populations                           []int
}

// Fig18Result is the overall IRR-gain study: the ratio of mobile tags' IRR
// under rate-adaptive reading to their IRR under reading-all, for 5%, 10%
// and 20% movers across population sizes.
type Fig18Result struct {
	Rows   []Fig18Row
	Cycles int
}

// moverIRRPerCycle runs the middleware and yields the movers' mean IRR for
// each post-warmup cycle.
func moverIRRPerCycle(seed int64, n, nMob, cycles, warm int, dwell time.Duration, naive bool) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	scn, movers, _, err := turntableScene(rng, n, nMob)
	if err != nil {
		return nil, err
	}
	isMover := map[epc.EPC]bool{}
	for _, m := range movers {
		isMover[m] = true
	}
	dev := core.NewSimDevice(reader.New(reader.DefaultConfig(), scn))
	cfg := core.DefaultConfig()
	cfg.PhaseIIDwell = dwell
	cfg.StickyFor = 5 * dwell / 2
	cfg.NaiveSchedule = naive
	// The paper's Fig. 18 measures the scheduling economics all the way to
	// 20% movers (falling back is its *recommendation* above that point,
	// not part of the measurement), so the experiment raises the cutoff
	// out of the way.
	cfg.MobileCutoff = 0.5
	tw := core.New(cfg, dev)
	for i := 0; i < warm; i++ {
		tw.RunCycle()
	}
	var out []float64
	for i := 0; i < cycles; i++ {
		start := dev.Now()
		rep := tw.RunCycle()
		span := dev.Now() - start
		var reads int
		for _, r := range append(rep.PhaseIReads, rep.PhaseIIReads...) {
			if isMover[r.EPC] {
				reads++
			}
		}
		out = append(out, hz(reads, span)/float64(nMob))
	}
	return out, nil
}

// baselineMoverIRR measures the movers' IRR under plain reading-all on an
// identical rig.
func baselineMoverIRR(seed int64, n, nMob int, span time.Duration) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	scn, movers, _, err := turntableScene(rng, n, nMob)
	if err != nil {
		return 0, err
	}
	isMover := map[epc.EPC]bool{}
	for _, m := range movers {
		isMover[m] = true
	}
	dev := core.NewSimDevice(reader.New(reader.DefaultConfig(), scn))
	start := dev.Now()
	reads := dev.ReadAllFor(span)
	total := dev.Now() - start
	var count int
	for _, r := range reads {
		if isMover[r.EPC] {
			count++
		}
	}
	return hz(count, total) / float64(nMob), nil
}

// Fig18 sweeps the mobile fraction and population size, comparing Tagwatch
// and the naive schedule against reading-all.
func Fig18(opt Options) (Fig18Result, error) {
	populations := []int{50, 100, 200}
	if !opt.Quick {
		populations = []int{50, 100, 200, 300, 400}
	}
	cycles := opt.pick(5, 30)
	// Warm-up scales with population: establishing a channel's immobility
	// mode takes ~WeightFloor/α matches, and each flood round contributes
	// one match per tag, so larger populations (longer rounds, fewer per
	// dwell) vouch later.
	warmFor := func(n int) int { return 6 + n/25 }
	dwell := 5 * time.Second
	res := Fig18Result{Cycles: cycles}

	for _, pct := range []int{5, 10, 20} {
		row := Fig18Row{Percent: pct, Populations: populations}
		var twGains, nvGains []float64
		for _, n := range populations {
			nMob := n * pct / 100
			if nMob < 1 {
				nMob = 1
			}
			seed := opt.Seed + int64(1000*pct+n)
			base, err := baselineMoverIRR(seed, n, nMob, time.Duration(cycles)*(dwell+time.Second))
			if err != nil {
				return res, err
			}
			if base <= 0 {
				return res, fmt.Errorf("fig18: zero baseline IRR at n=%d", n)
			}
			tw, err := moverIRRPerCycle(seed, n, nMob, cycles, warmFor(n), dwell, false)
			if err != nil {
				return res, err
			}
			nv, err := moverIRRPerCycle(seed, n, nMob, cycles, warmFor(n), dwell, true)
			if err != nil {
				return res, err
			}
			for _, v := range tw {
				twGains = append(twGains, v/base)
			}
			for _, v := range nv {
				nvGains = append(nvGains, v/base)
			}
		}
		row.TagwatchP50 = stats.Median(twGains)
		row.TagwatchP90 = stats.Percentile(twGains, 0.9)
		row.TagwatchStd = stats.StdDev(twGains)
		row.NaiveP50 = stats.Median(nvGains)
		row.NaiveP90 = stats.Percentile(nvGains, 0.9)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the gain table.
func (r Fig18Result) String() string {
	t := &table{header: []string{"%mobile", "tagwatch p50", "p90", "std", "naive p50", "naive p90"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d%%", row.Percent),
			fmt.Sprintf("%.2f×", row.TagwatchP50),
			fmt.Sprintf("%.2f×", row.TagwatchP90),
			fmt.Sprintf("%.2f", row.TagwatchStd),
			fmt.Sprintf("%.2f×", row.NaiveP50),
			fmt.Sprintf("%.2f×", row.NaiveP90))
	}
	return fmt.Sprintf(`Fig 18 — IRR gain of mobile tags vs reading-all (%d cycles per setting)
(paper: 5%% → 3.2× median / 4× p90 Tagwatch, 2.6× naive; 10%% → 1.9× (σ 0.29);
 20%% → ≈1.5× Tagwatch while naive drops to 0.8× — below reading-all)
%s`, r.Cycles, t)
}
