package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/rf"
)

// Fig13Row is the detection rate at one displacement.
type Fig13Row struct {
	DisplacementCM float64
	PhaseRate      float64
	RSSRate        float64
}

// Fig13Result is the detection-sensitivity study: successful detection
// rate versus displacement, phase vs RSS.
type Fig13Result struct {
	Rows   []Fig13Row
	Trials int
}

// Fig13 trains detectors on a parked tag through the physical channel,
// then moves the tag 1–5 cm in a random direction and scores whether the
// first post-move readings are detected (the paper's 20-trials-per-setting
// protocol). The rig mirrors the paper's: four antennas (so no displacement
// direction is tangential to every link) and a static multipath environment
// (standing waves are what give RSS any sensitivity to centimetre moves).
func Fig13(opt Options) (Fig13Result, error) {
	trials := opt.pick(20, 60)
	res := Fig13Result{Trials: trials}
	const xi = 3.0
	tag := epc.MustParse("30f4ab12cd0045e100000013")
	antennas := []rf.Point{
		rf.Pt(3, 3, 1), rf.Pt(-3, 3, 1), rf.Pt(-3, -3, 1), rf.Pt(3, -3, 1),
	}

	for _, cm := range []float64{1, 2, 3, 4, 5} {
		var phaseHits, rssHits int
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(opt.Seed + int64(1000*cm) + int64(trial)))
			ch := rf.NewChannel(rf.DefaultParams(), rng)
			pos := rf.Pt(rng.Float64()-0.5, rng.Float64()-0.5, 0)
			// Fixed furniture/wall reflectors: a static standing-wave
			// pattern through which the displacement moves the tag.
			env := []rf.Reflector{
				{Pos: rf.Pt(1.2, -0.8, 0.5), Coeff: complex(0.3, 0.05)},
				{Pos: rf.Pt(-0.9, 1.4, 0.3), Coeff: complex(0.25, -0.1)},
				{Pos: rf.Pt(0.4, 2.0, 0.8), Coeff: complex(0.2, 0)},
			}

			phase := motion.NewPhaseMoG(motion.Config{})
			rss := motion.NewRSSMoG(motion.Config{})
			for i := 0; i < 200; i++ {
				a := i % len(antennas)
				m := ch.Measure(rng, antennas[a], pos, 0.5, 0, env)
				phase.Observe(tag, a, 0, m.PhaseRad, 0)
				rss.Observe(tag, a, 0, m.RSSdBm, 0)
			}
			// Move cm centimetres in a random planar direction and probe
			// one reading per antenna (non-mutating).
			ang := rng.Float64() * 2 * math.Pi
			moved := pos.Add(rf.Pt(math.Cos(ang), math.Sin(ang), 0).Scale(cm / 100))
			phaseHit, rssHit := false, false
			for a := range antennas {
				m := ch.Measure(rng, antennas[a], moved, 0.5, 0, env)
				if phase.Peek(tag, a, 0, m.PhaseRad) > xi {
					phaseHit = true
				}
				if rss.Peek(tag, a, 0, m.RSSdBm) > xi {
					rssHit = true
				}
			}
			if phaseHit {
				phaseHits++
			}
			if rssHit {
				rssHits++
			}
		}
		res.Rows = append(res.Rows, Fig13Row{
			DisplacementCM: cm,
			PhaseRate:      float64(phaseHits) / float64(trials),
			RSSRate:        float64(rssHits) / float64(trials),
		})
	}
	return res, nil
}

// String renders the sensitivity table.
func (r Fig13Result) String() string {
	t := &table{header: []string{"displacement", "phase", "RSS"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%.0f cm", row.DisplacementCM),
			fmt.Sprintf("%.2f", row.PhaseRate),
			fmt.Sprintf("%.2f", row.RSSRate))
	}
	return fmt.Sprintf(`Fig 13 — detection rate vs displacement, %d trials each
(paper: phase 87%% @2 cm, 99%% @3 cm; RSS 9%% @2 cm, 18%% @3 cm, 76%% @5 cm)
%s`, r.Trials, t)
}
