package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tagwatch/internal/plot"
	"tagwatch/internal/stats"
)

// NamedPlot pairs a figure's chart with its file stem.
type NamedPlot struct {
	Name string
	Plot *plot.Plot
}

// WriteSVG renders the plot under dir as <Name>.svg.
func (n NamedPlot) WriteSVG(dir string) error {
	return os.WriteFile(filepath.Join(dir, n.Name+".svg"), []byte(n.Plot.SVG()), 0o644)
}

// Plots renders the Fig. 2 IRR curves.
func (r Fig02Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 2 — IRR vs population", XLabel: "tags", YLabel: "IRR (Hz)"}
	for _, q := range r.InitialQs {
		s := plot.Series{Name: fmt.Sprintf("measured Q0=%d", q), Kind: plot.Line}
		for _, row := range r.Rows {
			s.X = append(s.X, float64(row.N))
			s.Y = append(s.Y, row.MeasuredHz[q])
		}
		p.Series = append(p.Series, s)
	}
	model := plot.Series{Name: "fitted model", Kind: plot.Scatter}
	for _, row := range r.Rows {
		model.X = append(model.X, float64(row.N))
		model.Y = append(model.Y, row.ModelHz)
	}
	p.Series = append(p.Series, model)
	return []NamedPlot{{Name: "fig02_irr", Plot: p}}
}

// Plots renders the Fig. 3 timeline and Fig. 4 CDF.
func (r Fig03Result) Plots() []NamedPlot {
	tl := &plot.Plot{Title: "Fig 3 — readings per minute", XLabel: "minute", YLabel: "readings"}
	s := plot.Series{Kind: plot.Line}
	for m, c := range r.Trace.Timeline {
		s.X = append(s.X, float64(m))
		s.Y = append(s.Y, float64(c))
	}
	tl.Series = []plot.Series{s}

	cdfPlot := &plot.Plot{Title: "Fig 4 — reading-count CDF", XLabel: "readings per tag", YLabel: "fraction of tags"}
	cdf := stats.CDF(r.Trace.ReadCounts())
	cs := plot.Series{Kind: plot.Steps}
	for _, pt := range cdf {
		// Log-compress the x axis by plotting against log10(1+x) ticks? We
		// keep it linear but clip the hero tag so the body is visible.
		if pt.X > 2000 {
			continue
		}
		cs.X = append(cs.X, pt.X)
		cs.Y = append(cs.Y, pt.P)
	}
	cdfPlot.Series = []plot.Series{cs}
	cdfPlot.SetYRange(0, 1)
	return []NamedPlot{{Name: "fig03_timeline", Plot: tl}, {Name: "fig04_cdf", Plot: cdfPlot}}
}

// Plots renders the Fig. 8 histogram.
func (r Fig08Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 8 — stationary tag phase distribution", XLabel: "phase (rad)", YLabel: "count"}
	s := plot.Series{Kind: plot.Bars}
	for i, e := range r.HistEdges {
		s.X = append(s.X, e)
		s.Y = append(s.Y, float64(r.HistCounts[i]))
	}
	p.Series = []plot.Series{s}
	return []NamedPlot{{Name: "fig08_histogram", Plot: p}}
}

// Plots renders the Fig. 12 ROC curves.
func (r Fig12Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 12 — detection ROC", XLabel: "false positive rate", YLabel: "true positive rate"}
	for _, c := range r.Curves {
		s := plot.Series{Name: c.Name, Kind: plot.Line}
		for _, pt := range c.Curve {
			s.X = append(s.X, pt.FPR)
			s.Y = append(s.Y, pt.TPR)
		}
		p.Series = append(p.Series, s)
	}
	p.SetYRange(0, 1)
	return []NamedPlot{{Name: "fig12_roc", Plot: p}}
}

// Plots renders the Fig. 13 sensitivity curves.
func (r Fig13Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 13 — detection vs displacement", XLabel: "displacement (cm)", YLabel: "detection rate"}
	phase := plot.Series{Name: "RF phase", Kind: plot.Line}
	rss := plot.Series{Name: "RSS", Kind: plot.Line}
	for _, row := range r.Rows {
		phase.X = append(phase.X, row.DisplacementCM)
		phase.Y = append(phase.Y, row.PhaseRate)
		rss.X = append(rss.X, row.DisplacementCM)
		rss.Y = append(rss.Y, row.RSSRate)
	}
	p.Series = []plot.Series{phase, rss}
	p.SetYRange(0, 1.05)
	return []NamedPlot{{Name: "fig13_sensitivity", Plot: p}}
}

// Plots renders the Fig. 14 learning curve.
func (r Fig14Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 14 — learning curve", XLabel: "training (ms)", YLabel: "accuracy"}
	s := plot.Series{Kind: plot.Line}
	for _, row := range r.Rows {
		s.X = append(s.X, float64(row.TrainMS))
		s.Y = append(s.Y, row.Accuracy)
	}
	p.Series = []plot.Series{s}
	p.SetYRange(0, 1.05)
	return []NamedPlot{{Name: "fig14_learning", Plot: p}}
}

// Plots renders the per-tag feasibility bars (targets and collateral
// only, like the experiment's table).
func (r Fig15Result) Plots() []NamedPlot {
	p := &plot.Plot{
		Title:  fmt.Sprintf("Fig %s — %d targets of %d tags", figNo(r.Targets), r.Targets, r.Total),
		XLabel: "tag", YLabel: "IRR (Hz)",
	}
	all := plot.Series{Name: "read-all", Kind: plot.Bars}
	tw := plot.Series{Name: "tagwatch", Kind: plot.Bars}
	nv := plot.Series{Name: "naive", Kind: plot.Bars}
	var shown []int
	for i, tag := range r.Tags {
		if tag.Target || tag.Tagwatch > 0 || tag.NaiveHz > 0 {
			shown = append(shown, i)
		}
	}
	sort.Ints(shown)
	for xi, i := range shown {
		tag := r.Tags[i]
		x := float64(xi + 1)
		all.X = append(all.X, x)
		all.Y = append(all.Y, tag.ReadAllHz)
		tw.X = append(tw.X, x)
		tw.Y = append(tw.Y, tag.Tagwatch)
		nv.X = append(nv.X, x)
		nv.Y = append(nv.Y, tag.NaiveHz)
	}
	p.Series = []plot.Series{all, tw, nv}
	return []NamedPlot{{Name: fmt.Sprintf("fig%s_feasibility", figNo(r.Targets)), Plot: p}}
}

// Plots renders the schedule-cost percentiles.
func (r Fig17Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 17 — schedule cost", XLabel: "percentile", YLabel: "ms"}
	s := plot.Series{Kind: plot.Bars}
	for i, v := range []float64{
		float64(r.P50.Microseconds()) / 1000,
		float64(r.P90.Microseconds()) / 1000,
		float64(r.P99.Microseconds()) / 1000,
		float64(r.Max.Microseconds()) / 1000,
	} {
		s.X = append(s.X, float64(i+1)) // p50, p90, p99, max
		s.Y = append(s.Y, v)
	}
	p.Series = []plot.Series{s}
	return []NamedPlot{{Name: "fig17_schedulecost", Plot: p}}
}

// Plots renders the IRR-gain sweep.
func (r Fig18Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 18 — IRR gain vs mobile fraction", XLabel: "% mobile", YLabel: "gain ×"}
	tw := plot.Series{Name: "tagwatch p50", Kind: plot.Bars}
	tw90 := plot.Series{Name: "tagwatch p90", Kind: plot.Bars}
	nv := plot.Series{Name: "naive p50", Kind: plot.Bars}
	for _, row := range r.Rows {
		x := float64(row.Percent)
		tw.X = append(tw.X, x)
		tw.Y = append(tw.Y, row.TagwatchP50)
		tw90.X = append(tw90.X, x)
		tw90.Y = append(tw90.Y, row.TagwatchP90)
		nv.X = append(nv.X, x)
		nv.Y = append(nv.Y, row.NaiveP50)
	}
	p.Series = []plot.Series{tw, tw90, nv}
	return []NamedPlot{{Name: "fig18_irrgain", Plot: p}}
}

// Plots renders the tracking comparison.
func (r Fig01Result) Plots() []NamedPlot {
	p := &plot.Plot{Title: "Fig 1 — tracking error by configuration", XLabel: "case", YLabel: "mean error (cm)"}
	s := plot.Series{Kind: plot.Bars}
	for i, c := range r.Cases {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, c.MeanErrorCM)
	}
	p.Series = []plot.Series{s}
	return []NamedPlot{{Name: "fig01_tracking", Plot: p}}
}
