package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/aloha"
	"tagwatch/internal/reader"
	"tagwatch/internal/stats"
)

// Fig02Row is one population size of the IRR study.
type Fig02Row struct {
	N int
	// MeasuredHz maps initial Q → mean measured IRR.
	MeasuredHz map[int]float64
	// ModelHz is Λ(n) under the fitted cost model.
	ModelHz float64
}

// Fig02Result is the §2.3 empirical reading-rate study: measured IRR
// across populations and initial Q settings, plus the least-squares fit of
// the cost model C(n) = τ₀ + τ̄·n·e·ln n.
type Fig02Result struct {
	Rows       []Fig02Row
	InitialQs  []int
	FitTau0    time.Duration
	FitTauBar  time.Duration
	RMSEms     float64
	DropFrac   float64 // 1 − IRR(max n)/IRR(1): the paper's 84% collapse
	PaperTau0  time.Duration
	PaperTauBa time.Duration
}

// Fig02 measures IRR for 1..40 tags with several initial Q settings and
// fits τ₀, τ̄ exactly as the paper does.
func Fig02(opt Options) (Fig02Result, error) {
	res := Fig02Result{
		InitialQs:  []int{0, 2, 4, 6},
		PaperTau0:  19 * time.Millisecond,
		PaperTauBa: 180 * time.Microsecond,
	}
	reps := opt.pick(5, 50)
	ns := []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40}

	var ones, basis, y []float64
	meanIRR := make(map[int]float64) // n -> mean across Qs (for fit)
	for _, n := range ns {
		row := Fig02Row{N: n, MeasuredHz: make(map[int]float64)}
		var rowMean float64
		for _, q := range res.InitialQs {
			rng := rand.New(rand.NewSource(opt.Seed + int64(1000*n+q)))
			scn, _, err := gridScene(rng, n)
			if err != nil {
				return res, err
			}
			cfg := reader.DefaultConfig()
			cfg.Strategy = aloha.NewQAdaptive(uint8(q))
			r := reader.New(cfg, scn)
			var total time.Duration
			for i := 0; i < reps; i++ {
				_, d := r.RunRound(reader.RoundOpts{Antenna: 1})
				total += d
			}
			irr := float64(reps) * float64(time.Second) / float64(total)
			row.MeasuredHz[q] = irr
			rowMean += irr
		}
		rowMean /= float64(len(res.InitialQs))
		meanIRR[n] = rowMean
		ones = append(ones, 1)
		basis = append(basis, aloha.CostBasis(n))
		y = append(y, 1000/rowMean) // mean round time in ms
		res.Rows = append(res.Rows, row)
	}

	tau0, tauBar, err := stats.LeastSquares2(ones, basis, y)
	if err != nil {
		return res, fmt.Errorf("fig02: fit: %w", err)
	}
	res.FitTau0 = time.Duration(tau0 * float64(time.Millisecond))
	res.FitTauBar = time.Duration(tauBar * float64(time.Millisecond))
	model := aloha.CostModel{Tau0: res.FitTau0, TauBar: res.FitTauBar}
	var pred []float64
	for i := range res.Rows {
		res.Rows[i].ModelHz = model.IRR(res.Rows[i].N)
		pred = append(pred, 1000*float64(model.Cost(res.Rows[i].N))/float64(time.Second))
	}
	res.RMSEms = stats.RMSE(pred, y)
	res.DropFrac = 1 - meanIRR[ns[len(ns)-1]]/meanIRR[1]
	return res, nil
}

// String renders the Fig. 2 table.
func (r Fig02Result) String() string {
	t := &table{header: []string{"n", "Q0=0", "Q0=2", "Q0=4", "Q0=6", "model"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.1f", row.MeasuredHz[0]),
			fmt.Sprintf("%.1f", row.MeasuredHz[2]),
			fmt.Sprintf("%.1f", row.MeasuredHz[4]),
			fmt.Sprintf("%.1f", row.MeasuredHz[6]),
			fmt.Sprintf("%.1f", row.ModelHz),
		)
	}
	return fmt.Sprintf(`Fig 2 — IRR (Hz) vs population, by initial Q, with fitted model
%s
fit: τ0=%v τ̄=%v (paper: 19ms / 180µs)   RMSE=%.2f ms
IRR collapse 1→%d tags: %.0f%% (paper: 84%%)
`, t, r.FitTau0.Round(time.Microsecond), r.FitTauBar.Round(time.Microsecond),
		r.RMSEms, r.Rows[len(r.Rows)-1].N, 100*r.DropFrac)
}
