package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/core"
	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/schedule"
)

// Fig15Tag is one tag's IRR under the three reading modes.
type Fig15Tag struct {
	EPC       epc.EPC
	Target    bool
	ReadAllHz float64
	Tagwatch  float64
	NaiveHz   float64
}

// Fig15Result is the schedule-feasibility study of Figs. 15/16: per-tag
// IRRs for "reading all", Tagwatch's bitmask schedule, and the naive
// EPC-per-target schedule, with targets pinned via configuration (the
// paper isolates Phase II by labelling targets directly).
type Fig15Result struct {
	Targets       int
	Total         int
	Tags          []Fig15Tag
	MeanTargetAll float64
	MeanTargetTW  float64
	MeanTargetNV  float64
	PlanMasks     int
	Collateral    int
}

// Fig15 runs the feasibility experiment with the given number of pinned
// targets out of 40 tags (2 reproduces Fig. 15, 5 reproduces Fig. 16).
func Fig15(opt Options, targets int) (Fig15Result, error) {
	const total = 40
	res := Fig15Result{Targets: targets, Total: total}
	dwell := time.Duration(opt.pick(3, 10)) * time.Second

	// Build three identical rigs (same seed → same EPCs and layout).
	build := func() (*core.SimDevice, []epc.EPC) {
		rng := rand.New(rand.NewSource(opt.Seed))
		scn, codes, err := gridScene(rng, total)
		if err != nil {
			panic(err)
		}
		return core.NewSimDevice(reader.New(reader.DefaultConfig(), scn)), codes
	}

	// Arm 1: reading all.
	devAll, codes := build()
	startAll := devAll.Now()
	allReads := devAll.ReadAllFor(dwell)
	allSpan := devAll.Now() - startAll
	allCount := map[epc.EPC]int{}
	for _, r := range allReads {
		allCount[r.EPC]++
	}

	targetSet := codes[:targets]
	isTarget := map[epc.EPC]bool{}
	for _, c := range targetSet {
		isTarget[c] = true
	}

	// Phase II schedules from the index table over the full population.
	it, err := schedule.NewIndexTable(schedule.DefaultConfig(), codes)
	if err != nil {
		return res, err
	}
	plan, err := it.Select(targetSet)
	if err != nil {
		return res, err
	}
	res.PlanMasks = len(plan.Masks)
	res.Collateral = plan.Collateral
	naive := it.NaivePlan(targetSet)

	runSelective := func(p schedule.Plan) (map[epc.EPC]int, time.Duration) {
		dev, _ := build()
		start := dev.Now()
		reads, _ := dev.ReadSelective(p.Bitmasks(), dwell) // SimDevice cannot fail
		span := dev.Now() - start
		count := map[epc.EPC]int{}
		for _, r := range reads {
			count[r.EPC]++
		}
		return count, span
	}
	twCount, twSpan := runSelective(plan)
	nvCount, nvSpan := runSelective(naive)

	var sumAll, sumTW, sumNV float64
	for _, c := range codes {
		tag := Fig15Tag{
			EPC:       c,
			Target:    isTarget[c],
			ReadAllHz: hz(allCount[c], allSpan),
			Tagwatch:  hz(twCount[c], twSpan),
			NaiveHz:   hz(nvCount[c], nvSpan),
		}
		res.Tags = append(res.Tags, tag)
		if tag.Target {
			sumAll += tag.ReadAllHz
			sumTW += tag.Tagwatch
			sumNV += tag.NaiveHz
		}
	}
	res.MeanTargetAll = sumAll / float64(targets)
	res.MeanTargetTW = sumTW / float64(targets)
	res.MeanTargetNV = sumNV / float64(targets)
	return res, nil
}

// String renders the per-tag IRR bars (targets and any collaterally read
// tags; fully suppressed tags are summarised).
func (r Fig15Result) String() string {
	t := &table{header: []string{"tag", "role", "read-all", "tagwatch", "naive"}}
	suppressed := 0
	for i, tag := range r.Tags {
		if !tag.Target && tag.Tagwatch == 0 && tag.NaiveHz == 0 {
			suppressed++
			continue
		}
		role := "target"
		if !tag.Target {
			role = "collateral"
		}
		t.add(fmt.Sprintf("#%d", i+1), role,
			fmt.Sprintf("%.1f", tag.ReadAllHz),
			fmt.Sprintf("%.1f", tag.Tagwatch),
			fmt.Sprintf("%.1f", tag.NaiveHz))
	}
	return fmt.Sprintf(`Fig %s — schedule feasibility: %d targets of %d tags (IRR in Hz)
(paper Fig 15, 2/40: read-all ≈13 Hz → Tagwatch ≈47 Hz (+261%%), naive ≈24 Hz;
 paper Fig 16, 5/40: Tagwatch +120%%, naive *below* read-all)
%s(%d stationary non-targets suppressed to ≈0 Hz in both selective modes)
plan: %d mask(s), %d collateral tag(s)
mean target IRR: read-all %.1f Hz | tagwatch %.1f Hz (%+.0f%%) | naive %.1f Hz (%+.0f%%)
`, figNo(r.Targets), r.Targets, r.Total, t, suppressed,
		r.PlanMasks, r.Collateral,
		r.MeanTargetAll,
		r.MeanTargetTW, 100*(r.MeanTargetTW/r.MeanTargetAll-1),
		r.MeanTargetNV, 100*(r.MeanTargetNV/r.MeanTargetAll-1))
}

func figNo(targets int) string {
	if targets <= 2 {
		return "15"
	}
	return "16"
}
