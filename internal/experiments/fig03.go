package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/stats"
	"tagwatch/internal/trace"
)

// Fig03Result is the TrackPoint case study (Figs. 3 and 4): the 4-hour
// sorting-facility reading trace and its per-tag reading-count
// distribution.
type Fig03Result struct {
	Trace       trace.Trace
	HeroReads   int
	MedianCross float64
	Over205     float64 // fraction of tags read > 205 times (paper: 0.20)
	Over655     float64 // fraction of tags read > 655 times (paper: 0.10)
	// TimelinePerMinute summarises Fig. 3's series.
	TimelineMean float64
	TimelineMax  int
	// MedianCrossAdaptive replays the facility under the rate-adaptive
	// policy: the paper's "should be read about 50 times" expectation.
	MedianCrossAdaptive float64
}

// Fig03 generates the sorting-facility trace and computes the paper's
// headline statistics for Figs. 3 and 4.
func Fig03(opt Options) (Fig03Result, error) {
	cfg := trace.DefaultConfig()
	if opt.Quick {
		cfg.Duration = time.Hour
		cfg.Arrivals = 527 / 4
		// Keep the steady-state parked population (and thus the shared
		// IRR) unchanged by shortening dwells with the trace.
		cfg.MeanParkDwell /= 1 // dwell shortening would change shape; keep
	}
	tr, err := trace.Generate(cfg, rand.New(rand.NewSource(opt.Seed)))
	if err != nil {
		return Fig03Result{}, err
	}
	acfg := cfg
	acfg.RateAdaptive = true
	adaptive, err := trace.Generate(acfg, rand.New(rand.NewSource(opt.Seed)))
	if err != nil {
		return Fig03Result{}, err
	}
	counts := tr.ReadCounts()
	var crossing []float64
	for _, tag := range tr.Tags {
		crossing = append(crossing, float64(tag.CrossingReads))
	}
	var tmSum int
	tmMax := 0
	for _, c := range tr.Timeline {
		tmSum += c
		if c > tmMax {
			tmMax = c
		}
	}
	var adaptiveCross []float64
	for _, tag := range adaptive.Tags {
		adaptiveCross = append(adaptiveCross, float64(tag.CrossingReads))
	}
	res := Fig03Result{
		MedianCrossAdaptive: stats.Median(adaptiveCross),
		Trace:               tr,
		HeroReads:           tr.MaxTag().Reads(),
		MedianCross:         stats.Median(crossing),
		Over205:             1 - stats.CDFAt(counts, 205),
		Over655:             1 - stats.CDFAt(counts, 655),
		TimelineMean:        float64(tmSum) / float64(len(tr.Timeline)),
		TimelineMax:         tmMax,
	}
	return res, nil
}

// String renders the Fig. 3/4 summary.
func (r Fig03Result) String() string {
	cdf := stats.CDF(r.Trace.ReadCounts())
	t := &table{header: []string{"reads ≤", "fraction of tags"}}
	for _, q := range []float64{5, 20, 50, 205, 655, 5000, 50000} {
		t.add(fmt.Sprintf("%.0f", q), fmt.Sprintf("%.3f", stats.CDFAt(r.Trace.ReadCounts(), q)))
	}
	_ = cdf
	return fmt.Sprintf(`Fig 3 — sorting-facility trace (%v, %d tags)
total readings: %d (paper: 367,536 over 4 h)
readings/minute: mean %.0f, max %d
hottest parked tag: %d reads (paper's tag #271: ≈90,000)
peak concurrent movers: %d (paper: ≈30, ≤5.7%%)
median crossing reads: %.1f (paper: <5, expected ≈50 uncontended)
…and with the rate-adaptive policy replayed on the same facility: %.1f

Fig 4 — reading-count CDF
%s
fraction read >205: %.3f (paper: 0.20)   >655: %.3f (paper: 0.10)
`, r.Trace.Config.Duration, len(r.Trace.Tags), r.Trace.Total,
		r.TimelineMean, r.TimelineMax, r.HeroReads,
		r.Trace.PeakConcurrentMovers, r.MedianCross, r.MedianCrossAdaptive, t, r.Over205, r.Over655)
}
