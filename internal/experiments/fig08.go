package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/stats"
)

// Fig08Result shows a stationary tag's phase distribution in a dynamic
// environment and the GMM modes learned from it.
type Fig08Result struct {
	Phases     []float64
	HistEdges  []float64
	HistCounts []int
	// Learned modes (weight, mean, std), priority order.
	ModeW, ModeMu, ModeSigma []float64
	StrongModes              int // modes above the weight floor
}

// Fig08 parks one tag, lets a walker roam (two extra multipath states) and
// shows that the resulting phase histogram is multi-modal — the GMM's
// justification — and that the self-learning stack recovers the modes.
func Fig08(opt Options) (Fig08Result, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	code := epc.MustParse("30f4ab12cd0045e100000008")
	scn.AddTag(code, scene.Stationary{P: rf.Pt(3, 0, 0)})
	// A person pacing between two rest points near the link, pausing at
	// each — two stable multipath configurations plus transitions.
	scn.AddWalker(scene.Waypoints{
		T: []time.Duration{0, 20 * time.Second, 25 * time.Second, 45 * time.Second, 50 * time.Second},
		P: []rf.Point{
			rf.Pt(1.5, 1.5, 0), rf.Pt(1.5, 1.5, 0),
			rf.Pt(2.0, -1.2, 0), rf.Pt(2.0, -1.2, 0),
			rf.Pt(1.5, 1.5, 0),
		},
	}, complex(0.6, 0))

	cfg := reader.DefaultConfig()
	cfg.HopEvery = 0 // single channel isolates the multipath modes
	r := reader.New(cfg, scn)

	res := Fig08Result{}
	det := motion.NewPhaseMoG(motion.Config{})
	dur := time.Duration(opt.pick(50, 120)) * time.Second
	for r.Now() < dur {
		reads, _ := r.RunRound(reader.RoundOpts{Antenna: 1})
		for _, rd := range reads {
			res.Phases = append(res.Phases, rd.PhaseRad)
			det.Observe(rd.EPC, rd.Antenna, rd.Channel, rd.PhaseRad, rd.Time)
		}
	}
	res.HistEdges, res.HistCounts = stats.Histogram(res.Phases, 0, 2*math.Pi, 48)
	st := det.Stack(code, 1, 0)
	if st != nil {
		res.ModeW, res.ModeMu, res.ModeSigma = st.Modes()
	}
	for _, w := range res.ModeW {
		if w >= 0.01 {
			res.StrongModes++
		}
	}
	return res, nil
}

// String renders the Fig. 8 histogram and learned modes.
func (r Fig08Result) String() string {
	var maxC int
	for _, c := range r.HistCounts {
		if c > maxC {
			maxC = c
		}
	}
	t := &table{header: []string{"phase (rad)", "count", "histogram"}}
	for i, e := range r.HistEdges {
		bar := ""
		if maxC > 0 {
			bar = repeat('#', 40*r.HistCounts[i]/maxC)
		}
		if r.HistCounts[i] == 0 {
			continue
		}
		t.add(fmt.Sprintf("%.2f", e), fmt.Sprintf("%d", r.HistCounts[i]), bar)
	}
	m := &table{header: []string{"mode", "weight", "mean", "std"}}
	for i := range r.ModeW {
		m.add(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.4f", r.ModeW[i]),
			fmt.Sprintf("%.3f", r.ModeMu[i]),
			fmt.Sprintf("%.3f", r.ModeSigma[i]))
	}
	return fmt.Sprintf(`Fig 8 — stationary tag's phase under a moving reflector (%d readings)
%s
learned immobility modes (GMM):
%s
strong (established) modes: %d — a single Gaussian cannot depict this
`, len(r.Phases), t, m, r.StrongModes)
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
