package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/schedule"
	"tagwatch/internal/stats"
)

// Fig17Result is the schedule-cost study: the wall-clock CDF of the
// assessment+selection gap between Phase I and Phase II.
type Fig17Result struct {
	Cycles        int
	P50, P90, P99 time.Duration
	Max           time.Duration
}

// Fig17 measures the real compute cost of bitmask selection over many
// cycles with churning target sets — the paper slices this gap from
// 50,000 cycles and reports <4 ms at p50 and <6 ms at p90.
func Fig17(opt Options) (Fig17Result, error) {
	cycles := opt.pick(300, 5000)
	rng := rand.New(rand.NewSource(opt.Seed))
	codes, err := epc.RandomPopulation(rng, 40, 96)
	if err != nil {
		return Fig17Result{}, err
	}
	it, err := schedule.NewIndexTable(schedule.DefaultConfig(), codes)
	if err != nil {
		return Fig17Result{}, err
	}
	var samples []float64
	for c := 0; c < cycles; c++ {
		// A fresh mobile set each cycle: 1–5 targets.
		k := 1 + rng.Intn(5)
		targets := make([]epc.EPC, k)
		for i := range targets {
			targets[i] = codes[rng.Intn(len(codes))]
		}
		start := time.Now()
		if _, err := it.Select(targets); err != nil {
			return Fig17Result{}, err
		}
		samples = append(samples, float64(time.Since(start)))
	}
	return Fig17Result{
		Cycles: cycles,
		P50:    time.Duration(stats.Percentile(samples, 0.50)),
		P90:    time.Duration(stats.Percentile(samples, 0.90)),
		P99:    time.Duration(stats.Percentile(samples, 0.99)),
		Max:    time.Duration(stats.Percentile(samples, 1)),
	}, nil
}

// String renders the schedule-cost CDF summary.
func (r Fig17Result) String() string {
	return fmt.Sprintf(`Fig 17 — schedule cost over %d cycles (wall clock)
p50 = %v   p90 = %v   p99 = %v   max = %v
(paper: <4 ms at p50, <6 ms at p90 — negligible against the 5 s cycle)
`, r.Cycles, r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}
