package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/rf"
)

// Fig14Row is the detection accuracy after one training duration.
type Fig14Row struct {
	TrainMS  int
	Readings int
	Accuracy float64
}

// Fig14Result is the learning-curve study: how much trace the self-learning
// GMM needs before it stably recognises a stationary tag in a dynamic
// environment.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 trains on the first t milliseconds of a stationary tag's readings
// (walker roaming nearby), then measures accuracy on the following 100 ms
// — the paper's protocol, at the uncontended ≈45 Hz reading rate.
func Fig14(opt Options) (Fig14Result, error) {
	res := Fig14Result{}
	const readHz = 45.0
	period := time.Duration(float64(time.Second.Nanoseconds()) / readHz)
	_ = period
	tag := epc.MustParse("30f4ab12cd0045e100000014")
	reps := opt.pick(10, 40)

	trainPoints := []int{100, 300, 700, 1000, 1490, 2000, 2900, 4000, 6000, 10000}
	for _, ms := range trainPoints {
		var acc float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(opt.Seed + int64(ms*100+rep)))
			ch := rf.NewChannel(rf.DefaultParams(), rng)
			ant := rf.Pt(0, 0, 2)
			pos := rf.Pt(2.5, 0.5, 0)
			// Walker pacing a loop: multipath mode changes during both
			// training and test.
			walker := func(t time.Duration) []rf.Reflector {
				angle := 0.8 / 1.2 * t.Seconds()
				c := rf.Pt(1.8+1.2*math.Cos(angle), 1.2*math.Sin(angle), 0)
				return []rf.Reflector{{Pos: c, Coeff: complex(0.5, 0)}}
			}
			det := motion.NewPhaseMoG(motion.Config{})
			train := time.Duration(ms) * time.Millisecond
			for t := time.Duration(0); t < train; t += period {
				m := ch.Measure(rng, ant, pos, 0.5, 0, walker(t))
				det.Observe(tag, 0, 0, m.PhaseRad, t)
			}
			// Test on the next 100 ms (non-mutating probes).
			var ok, total int
			for t := train; t < train+100*time.Millisecond; t += period {
				m := ch.Measure(rng, ant, pos, 0.5, 0, walker(t))
				total++
				if det.Peek(tag, 0, 0, m.PhaseRad) <= 3.0 {
					ok++
				}
			}
			if total > 0 {
				acc += float64(ok) / float64(total)
			}
		}
		res.Rows = append(res.Rows, Fig14Row{
			TrainMS:  ms,
			Readings: int(float64(ms) / 1000 * readHz),
			Accuracy: acc / float64(reps),
		})
	}
	return res, nil
}

// String renders the learning curve.
func (r Fig14Result) String() string {
	t := &table{header: []string{"train (ms)", "≈readings", "accuracy"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.TrainMS), fmt.Sprintf("%d", row.Readings),
			fmt.Sprintf("%.2f", row.Accuracy))
	}
	return fmt.Sprintf(`Fig 14 — learning curve: accuracy vs training-trace length
(paper: 70%% with 1.49 s ≈ 67 readings, 90%% with 2.9 s ≈ 130 readings)
%s`, t)
}
