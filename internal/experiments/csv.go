package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// CSVTable is one figure's data as a named CSV table, ready for external
// plotting.
type CSVTable struct {
	Name   string // file stem, e.g. "fig02_irr"
	Header []string
	Rows   [][]string
}

// WriteCSV writes the table under dir as <Name>.csv.
func (t CSVTable) WriteCSV(dir string) error {
	path := filepath.Join(dir, t.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		return err
	}
	if err := w.WriteAll(t.Rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// CSV renders the Fig. 2 series.
func (r Fig02Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig02_irr", Header: []string{"n", "q0", "measured_hz", "model_hz"}}
	for _, row := range r.Rows {
		for _, q := range r.InitialQs {
			t.Rows = append(t.Rows, []string{
				itoa(row.N), itoa(q), ftoa(row.MeasuredHz[q]), ftoa(row.ModelHz),
			})
		}
	}
	fit := CSVTable{
		Name:   "fig02_fit",
		Header: []string{"tau0_ms", "taubar_ms", "rmse_ms", "irr_drop"},
		Rows: [][]string{{
			ftoa(float64(r.FitTau0) / float64(time.Millisecond)),
			ftoa(float64(r.FitTauBar) / float64(time.Millisecond)),
			ftoa(r.RMSEms), ftoa(r.DropFrac),
		}},
	}
	return []CSVTable{t, fit}
}

// CSV renders the Fig. 3 timeline and the Fig. 4 per-tag counts.
func (r Fig03Result) CSV() []CSVTable {
	tl := CSVTable{Name: "fig03_timeline", Header: []string{"minute", "readings"}}
	for m, c := range r.Trace.Timeline {
		tl.Rows = append(tl.Rows, []string{itoa(m), itoa(c)})
	}
	counts := CSVTable{Name: "fig04_readcounts", Header: []string{"epc", "crossing_reads", "parked_reads"}}
	for _, tag := range r.Trace.Tags {
		counts.Rows = append(counts.Rows, []string{
			tag.EPC.String(), itoa(tag.CrossingReads), itoa(tag.ParkedReads),
		})
	}
	return []CSVTable{tl, counts}
}

// CSV renders the Fig. 8 histogram and modes.
func (r Fig08Result) CSV() []CSVTable {
	h := CSVTable{Name: "fig08_histogram", Header: []string{"phase_rad", "count"}}
	for i, e := range r.HistEdges {
		h.Rows = append(h.Rows, []string{ftoa(e), itoa(r.HistCounts[i])})
	}
	m := CSVTable{Name: "fig08_modes", Header: []string{"weight", "mean", "std"}}
	for i := range r.ModeW {
		m.Rows = append(m.Rows, []string{ftoa(r.ModeW[i]), ftoa(r.ModeMu[i]), ftoa(r.ModeSigma[i])})
	}
	return []CSVTable{h, m}
}

// CSV renders the full ROC curves.
func (r Fig12Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig12_roc", Header: []string{"detector", "fpr", "tpr"}}
	for _, c := range r.Curves {
		for _, p := range c.Curve {
			t.Rows = append(t.Rows, []string{c.Name, ftoa(p.FPR), ftoa(p.TPR)})
		}
	}
	return []CSVTable{t}
}

// CSV renders the sensitivity curves.
func (r Fig13Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig13_sensitivity", Header: []string{"displacement_cm", "phase_rate", "rss_rate"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{ftoa(row.DisplacementCM), ftoa(row.PhaseRate), ftoa(row.RSSRate)})
	}
	return []CSVTable{t}
}

// CSV renders the learning curve.
func (r Fig14Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig14_learning", Header: []string{"train_ms", "readings", "accuracy"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{itoa(row.TrainMS), itoa(row.Readings), ftoa(row.Accuracy)})
	}
	return []CSVTable{t}
}

// CSV renders the per-tag feasibility bars.
func (r Fig15Result) CSV() []CSVTable {
	t := CSVTable{
		Name:   fmt.Sprintf("fig%s_feasibility_%dof%d", figNo(r.Targets), r.Targets, r.Total),
		Header: []string{"tag", "target", "readall_hz", "tagwatch_hz", "naive_hz"},
	}
	for i, tag := range r.Tags {
		t.Rows = append(t.Rows, []string{
			itoa(i + 1), strconv.FormatBool(tag.Target),
			ftoa(tag.ReadAllHz), ftoa(tag.Tagwatch), ftoa(tag.NaiveHz),
		})
	}
	return []CSVTable{t}
}

// CSV renders the schedule-cost percentiles.
func (r Fig17Result) CSV() []CSVTable {
	return []CSVTable{{
		Name:   "fig17_schedulecost",
		Header: []string{"p50_us", "p90_us", "p99_us", "max_us"},
		Rows: [][]string{{
			itoa(int(r.P50 / time.Microsecond)), itoa(int(r.P90 / time.Microsecond)),
			itoa(int(r.P99 / time.Microsecond)), itoa(int(r.Max / time.Microsecond)),
		}},
	}}
}

// CSV renders the IRR-gain sweep.
func (r Fig18Result) CSV() []CSVTable {
	t := CSVTable{
		Name:   "fig18_irrgain",
		Header: []string{"percent_mobile", "tagwatch_p50", "tagwatch_p90", "tagwatch_std", "naive_p50", "naive_p90"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			itoa(row.Percent), ftoa(row.TagwatchP50), ftoa(row.TagwatchP90),
			ftoa(row.TagwatchStd), ftoa(row.NaiveP50), ftoa(row.NaiveP90),
		})
	}
	return []CSVTable{t}
}

// CSV renders the tracking cases.
func (r Fig01Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig01_tracking", Header: []string{"case", "mover_irr_hz", "mean_error_cm", "estimates"}}
	for _, c := range r.Cases {
		t.Rows = append(t.Rows, []string{c.Name, ftoa(c.MoverIRRHz), ftoa(c.MeanErrorCM), itoa(c.Estimates)})
	}
	return []CSVTable{t}
}
