package experiments

// Shape tests: each experiment must reproduce the paper's qualitative
// result — who wins, in which direction, and roughly by how much. These
// run at quick scale with the default seed (all randomness is seeded, so
// the only nondeterminism is the wall clock in Fig 17).

import (
	"strings"
	"testing"
	"time"
)

func opts() Options { return Options{Seed: 1, Quick: true} }

func TestFig02Shape(t *testing.T) {
	r, err := Fig02(opts())
	if err != nil {
		t.Fatal(err)
	}
	// The IRR collapse (paper: 84%).
	if r.DropFrac < 0.6 || r.DropFrac > 0.95 {
		t.Fatalf("IRR drop = %.2f, want the paper's collapse regime", r.DropFrac)
	}
	// τ₀ recovered near the configured 19 ms (the fit absorbs the round
	// tail, so it lands a bit above).
	if r.FitTau0 < 15*time.Millisecond || r.FitTau0 > 45*time.Millisecond {
		t.Fatalf("fitted τ₀ = %v", r.FitTau0)
	}
	if r.FitTauBar <= 0 || r.FitTauBar > time.Millisecond {
		t.Fatalf("fitted τ̄ = %v", r.FitTauBar)
	}
	// IRR decreases with n for every initial Q.
	for _, q := range r.InitialQs {
		if r.Rows[0].MeasuredHz[q] <= r.Rows[len(r.Rows)-1].MeasuredHz[q] {
			t.Fatalf("IRR must fall with n for Q0=%d", q)
		}
	}
	// Initial Q barely matters at large n (paper: curves converge).
	last := r.Rows[len(r.Rows)-1]
	lo, hi := last.MeasuredHz[0], last.MeasuredHz[0]
	for _, q := range r.InitialQs {
		v := last.MeasuredHz[q]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1.5*lo {
		t.Fatalf("initial-Q spread at n=40 too wide: %.1f..%.1f Hz", lo, hi)
	}
	if !strings.Contains(r.String(), "Fig 2") {
		t.Fatal("rendering")
	}
}

func TestFig03Shape(t *testing.T) {
	r, err := Fig03(opts())
	if err != nil {
		t.Fatal(err)
	}
	if r.HeroReads < 20_000 {
		t.Fatalf("hero reads = %d", r.HeroReads)
	}
	if r.Over205 <= r.Over655 {
		t.Fatal("CDF must be monotone")
	}
	if r.Over655 < 0.02 || r.Over205 > 0.5 {
		t.Fatalf("quantiles off: >205=%.2f >655=%.2f", r.Over205, r.Over655)
	}
	if !strings.Contains(r.String(), "Fig 4") {
		t.Fatal("rendering")
	}
}

func TestFig08Shape(t *testing.T) {
	r, err := Fig08(opts())
	if err != nil {
		t.Fatal(err)
	}
	if r.StrongModes < 2 {
		t.Fatalf("want ≥2 strong immobility modes, got %d", r.StrongModes)
	}
	if len(r.Phases) < 500 {
		t.Fatalf("too few readings: %d", len(r.Phases))
	}
	if r.String() == "" {
		t.Fatal("rendering")
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(opts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig12Curve{}
	for _, c := range r.Curves {
		byName[c.Name] = c
	}
	phaseMoG := byName["Phase-MoG"]
	// Phase beats RSS (the paper's central Fig 12 finding).
	if phaseMoG.AUC <= byName["RSS-MoG"].AUC {
		t.Fatalf("Phase-MoG AUC %.3f must beat RSS-MoG %.3f", phaseMoG.AUC, byName["RSS-MoG"].AUC)
	}
	if byName["Phase-differencing"].AUC <= byName["RSS-differencing"].AUC {
		t.Fatal("phase differencing must beat RSS differencing")
	}
	// MoG controls the low-FPR regime at least as well as differencing —
	// the paper's operating point ("≥0.95 TPR while ≤0.1 FPR"). (In our
	// channel model the margin is thinner than the paper's; see
	// EXPERIMENTS.md.)
	if phaseMoG.TPRAtFPR1 < byName["Phase-differencing"].TPRAtFPR1-0.02 {
		t.Fatalf("Phase-MoG TPR@0.1 %.3f must not trail differencing %.3f",
			phaseMoG.TPRAtFPR1, byName["Phase-differencing"].TPRAtFPR1)
	}
	// The cycle-level operating point — what the scheduler actually acts
	// on — is solid.
	if r.CycleAUC < 0.75 {
		t.Fatalf("cycle-level AUC = %.3f", r.CycleAUC)
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Phase is far more sensitive than RSS at small displacements.
	if r.Rows[0].PhaseRate < 0.5 {
		t.Fatalf("phase@1cm = %.2f", r.Rows[0].PhaseRate)
	}
	if r.Rows[1].PhaseRate <= r.Rows[1].RSSRate {
		t.Fatalf("phase@2cm (%.2f) must beat RSS@2cm (%.2f)", r.Rows[1].PhaseRate, r.Rows[1].RSSRate)
	}
	if r.Rows[0].RSSRate > 0.3 {
		t.Fatalf("RSS@1cm = %.2f should be near-blind", r.Rows[0].RSSRate)
	}
	// RSS catches up at large displacements (paper: 76% at 5 cm).
	if r.Rows[4].RSSRate < 0.5 {
		t.Fatalf("RSS@5cm = %.2f", r.Rows[4].RSSRate)
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14(opts())
	if err != nil {
		t.Fatal(err)
	}
	var at130, atEnd float64
	for _, row := range r.Rows {
		if row.TrainMS == 2900 {
			at130 = row.Accuracy
		}
	}
	atEnd = r.Rows[len(r.Rows)-1].Accuracy
	if at130 < 0.8 {
		t.Fatalf("accuracy@130 readings = %.2f (paper: 0.90)", at130)
	}
	if atEnd < 0.85 {
		t.Fatalf("late accuracy = %.2f", atEnd)
	}
	if r.Rows[0].Accuracy > atEnd+0.1 {
		t.Fatal("learning curve must not be decreasing overall")
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15(opts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +261% Tagwatch, +83% naive.
	if r.MeanTargetTW < 2*r.MeanTargetAll {
		t.Fatalf("tagwatch %.1f Hz must at least double read-all %.1f Hz", r.MeanTargetTW, r.MeanTargetAll)
	}
	if r.MeanTargetTW <= r.MeanTargetNV {
		t.Fatal("tagwatch must beat the naive schedule")
	}
	if r.MeanTargetNV <= r.MeanTargetAll {
		t.Fatal("at 2/40 even the naive schedule must beat read-all")
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig15(opts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Tagwatch +120%, naive *below* read-all.
	if r.MeanTargetTW <= 1.2*r.MeanTargetAll {
		t.Fatalf("tagwatch %.1f Hz vs read-all %.1f Hz", r.MeanTargetTW, r.MeanTargetAll)
	}
	if r.MeanTargetNV >= r.MeanTargetAll {
		t.Fatalf("at 5/40 the naive schedule must fall below read-all (%.1f vs %.1f)",
			r.MeanTargetNV, r.MeanTargetAll)
	}
}

func TestFig17Shape(t *testing.T) {
	r, err := Fig17(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: <4 ms p50, <6 ms p90; generous slack for shared machines.
	if r.P50 > 40*time.Millisecond {
		t.Fatalf("p50 schedule cost = %v", r.P50)
	}
	if r.P90 > 80*time.Millisecond {
		t.Fatalf("p90 schedule cost = %v", r.P90)
	}
	if r.P90 < r.P50 {
		t.Fatal("percentiles must be ordered")
	}
}

func TestFig18Shape(t *testing.T) {
	r, err := Fig18(opts())
	if err != nil {
		t.Fatal(err)
	}
	g5, g10, g20 := r.Rows[0], r.Rows[1], r.Rows[2]
	if g5.TagwatchP50 < 2 {
		t.Fatalf("gain@5%% = %.2f×, want ≥2 (paper: 3.2×)", g5.TagwatchP50)
	}
	if !(g5.TagwatchP50 > g10.TagwatchP50 && g10.TagwatchP50 > g20.TagwatchP50) {
		t.Fatalf("gain must shrink with mover fraction: %.2f/%.2f/%.2f",
			g5.TagwatchP50, g10.TagwatchP50, g20.TagwatchP50)
	}
	if g5.TagwatchP50 <= g5.NaiveP50 {
		t.Fatal("tagwatch must beat naive at 5%")
	}
	if g20.NaiveP50 >= 1 {
		t.Fatalf("naive@20%% = %.2f×, must fall below read-all", g20.NaiveP50)
	}
}

func TestFig01Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed tracking study")
	}
	r, err := Fig01(opts())
	if err != nil {
		t.Fatal(err)
	}
	c0, c4, tw := r.Cases[0], r.Cases[2], r.Cases[3]
	// IRR falls with companions; error grows.
	if c4.MoverIRRHz >= c0.MoverIRRHz {
		t.Fatal("companions must depress the mover IRR")
	}
	if c4.MeanErrorCM <= 2*c0.MeanErrorCM {
		t.Fatalf("4 companions must blow up the tracking error: %.1f vs %.1f cm",
			c4.MeanErrorCM, c0.MeanErrorCM)
	}
	// Rate-adaptive reading restores both.
	if tw.MoverIRRHz <= c4.MoverIRRHz {
		t.Fatal("tagwatch must restore the mover IRR")
	}
	if tw.MeanErrorCM >= c4.MeanErrorCM/2 {
		t.Fatalf("tagwatch error %.1f cm must undercut read-all(1+4) %.1f cm",
			tw.MeanErrorCM, c4.MeanErrorCM)
	}
}
