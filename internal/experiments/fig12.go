package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/motion"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
	"tagwatch/internal/stats"
)

// Fig12Curve is one detector's ROC.
type Fig12Curve struct {
	Name      string
	AUC       float64
	TPRAtFPR1 float64 // TPR at FPR ≤ 0.1 (the paper's headline point)
	TPRAtFPR2 float64 // TPR at FPR ≤ 0.2
	Curve     []stats.ROCPoint
}

// Fig12Result compares the four motion detectors of the paper's ROC study:
// Phase-MoG, Phase-differencing, RSS-MoG, RSS-differencing.
type Fig12Result struct {
	Curves []Fig12Curve
	// Cycle-level Phase-MoG operating point: Tagwatch classifies a tag
	// per assessment window (not per reading), taking the strongest
	// evidence in the window. This is the figure of merit the system
	// actually acts on.
	CycleAUC, CycleTPRAtFPR1 float64
}

// restlessScore folds the binary mode-switch signal into the sweepable
// deviation score: a switched reading carries maximal motion evidence.
func restlessScore(res motion.Result) float64 {
	if math.IsInf(res.Score, 1) {
		return res.Score
	}
	if res.Switched {
		return res.Score + 100
	}
	return res.Score
}

// Fig12 runs the detection-accuracy study: stationary tags in a dynamic
// office for false positives, a tag on a moving track for true positives.
//
// The rig mirrors the paper's monitoring regime: the 48-hour office trace
// collects ~2 million readings from 100 tags — about one reading per tag
// every several seconds — so consecutive readings of a tag straddle
// changes of the multipath environment. That sparsity is exactly what
// breaks the differencing baseline (every environmental change looks like
// motion) while the mixture model absorbs the recurring states. We
// emulate it with a duty-cycled reader: one inventory round every few
// seconds of virtual time.
func Fig12(opt Options) (Fig12Result, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))

	nStatic := opt.pick(30, 100)
	codes, err := epc.RandomPopulation(rng, nStatic+1, 96)
	if err != nil {
		return Fig12Result{}, err
	}
	mobile := codes[0]
	scn.AddTag(mobile, scene.Circle{Center: rf.Pt(2.2, 2.2, 0), Radius: 0.2, Speed: 0.7})
	for i, c := range codes[1:] {
		scn.AddTag(c, scene.Stationary{P: rf.Pt(0.4+float64(i%10)*0.3, 0.4+float64(i/10)*0.3, 0)})
	}
	// Office walkers perturbing the multipath (the paper: "approximately
	// 10 individuals work in the room"). People sit most of the time and
	// occasionally move to another spot; each relocation flips the
	// affected tags' multipath into a new stable mode.
	dur := time.Duration(opt.pick(2400, 9600)) * time.Second
	for w := 0; w < 8; w++ {
		spots := make([]rf.Point, 3+rng.Intn(2))
		for i := range spots {
			// Habitual spots sit among the tagged shelving, at body
			// height — where a person meaningfully perturbs tag links.
			spots[i] = rf.Pt(0.2+rng.Float64()*3.0, 0.2+rng.Float64()*1.6, 0.5)
		}
		scn.AddWalker(scene.OfficeWalker(rng, spots, dur+time.Minute), complex(0.9, 0))
	}

	rcfg := reader.DefaultConfig()
	rcfg.HopEvery = 2 * time.Second
	r := reader.New(rcfg, scn)

	detectors := []struct {
		name string
		a    motion.Assessor
		rss  bool
	}{
		{"Phase-MoG", motion.NewPhaseMoG(motion.Config{}), false},
		{"Phase-differencing", motion.NewPhaseDiff(), false},
		{"RSS-MoG", motion.NewRSSMoG(motion.Config{}), true},
		{"RSS-differencing", motion.NewRSSDiff(), true},
	}
	type scored struct {
		pos, neg []float64
	}
	scores := make([]scored, len(detectors))
	// Cycle-level aggregation for Phase-MoG: max score per (tag, window).
	const window = 20 * time.Second
	type winKey struct {
		tag epc.EPC
		win int64
	}
	winMax := make(map[winKey]float64)

	warm := dur / 3
	const dutyPeriod = 4 * time.Second
	for r.Now() < dur {
		next := r.Now() + dutyPeriod
		reads, _ := r.RunRound(reader.RoundOpts{Antenna: 1})
		if gap := next - r.Now(); gap > 0 {
			r.Advance(gap)
		}
		for _, rd := range reads {
			for i, d := range detectors {
				v := rd.PhaseRad
				if d.rss {
					v = rd.RSSdBm
				}
				res := d.a.Observe(rd.EPC, rd.Antenna, rd.Channel, v, rd.Time)
				if rd.Time < warm {
					continue // learning period: not scored
				}
				s := restlessScore(res)
				if math.IsInf(s, 1) {
					s = 1000
				}
				if rd.EPC == mobile {
					scores[i].pos = append(scores[i].pos, s)
				} else {
					scores[i].neg = append(scores[i].neg, s)
				}
				if i == 0 {
					k := winKey{tag: rd.EPC, win: int64(rd.Time / window)}
					if s > winMax[k] {
						winMax[k] = s
					}
				}
			}
		}
	}
	var winPos, winNeg []float64
	for k, s := range winMax {
		if k.tag == mobile {
			winPos = append(winPos, s)
		} else {
			winNeg = append(winNeg, s)
		}
	}

	var out Fig12Result
	winCurve := stats.ROC(winPos, winNeg)
	out.CycleAUC = stats.AUC(winCurve)
	out.CycleTPRAtFPR1 = stats.TPRAtFPR(winCurve, 0.1)
	for i, d := range detectors {
		curve := stats.ROC(scores[i].pos, scores[i].neg)
		out.Curves = append(out.Curves, Fig12Curve{
			Name:      d.name,
			AUC:       stats.AUC(curve),
			TPRAtFPR1: stats.TPRAtFPR(curve, 0.1),
			TPRAtFPR2: stats.TPRAtFPR(curve, 0.2),
			Curve:     curve,
		})
	}
	return out, nil
}

// String renders the ROC comparison.
func (r Fig12Result) String() string {
	t := &table{header: []string{"detector", "AUC", "TPR@FPR≤0.1", "TPR@FPR≤0.2"}}
	for _, c := range r.Curves {
		t.add(c.Name, fmt.Sprintf("%.3f", c.AUC),
			fmt.Sprintf("%.3f", c.TPRAtFPR1), fmt.Sprintf("%.3f", c.TPRAtFPR2))
	}
	return fmt.Sprintf(`Fig 12 — motion-detection ROC (paper: Phase-MoG reaches ≥0.95 TPR at ≤0.1 FPR;
RSS-MoG 0.53 and RSS-differencing 0.12 TPR at 0.2 FPR)
%scycle-level Phase-MoG (per assessment window, what the scheduler acts on):
AUC = %.3f, TPR@FPR≤0.1 = %.3f
`, t, r.CycleAUC, r.CycleTPRAtFPR1)
}
