// Package experiments regenerates every figure of the paper's evaluation
// (§2.3 and §7) against the simulated substrate. Each FigNN function is a
// self-contained experiment returning a printable result; cmd/experiments
// drives them from the command line and bench_test.go wraps them as
// benchmarks. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"tagwatch/internal/epc"
	"tagwatch/internal/reader"
	"tagwatch/internal/rf"
	"tagwatch/internal/scene"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives all randomness; experiments are reproducible per seed.
	Seed int64
	// Quick reduces repetitions/populations for fast CI runs; the full
	// settings match the paper's scales.
	Quick bool
}

// DefaultOptions is the quick, seeded configuration.
func DefaultOptions() Options { return Options{Seed: 1, Quick: true} }

// pick chooses between the quick and full value of a scale parameter.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// table renders rows of columns with a header, right-aligned.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// gridScene builds a scene with one antenna and n stationary tags laid out
// on a grid in range.
func gridScene(rng *rand.Rand, n int) (*scene.Scene, []epc.EPC, error) {
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, n, 96)
	if err != nil {
		return nil, nil, err
	}
	for i, c := range codes {
		x := 0.4 + float64(i%10)*0.3
		y := 0.4 + float64(i/10)*0.3
		scn.AddTag(c, scene.Stationary{P: rf.Pt(x, y, 0)})
	}
	return scn, codes, nil
}

// turntableScene builds the §7.3 rig: one antenna, nMob tags on a spinning
// turntable and the rest parked on a grid.
func turntableScene(rng *rand.Rand, nTotal, nMob int) (*scene.Scene, []epc.EPC, []epc.EPC, error) {
	p := rf.DefaultParams()
	scn := scene.New(rf.NewChannel(p, rng), rng)
	scn.AddAntenna(rf.Pt(0, 0, 2))
	codes, err := epc.RandomPopulation(rng, nTotal, 96)
	if err != nil {
		return nil, nil, nil, err
	}
	movers := codes[:nMob]
	static := codes[nMob:]
	for i, c := range movers {
		scn.AddTag(c, scene.Circle{
			Center:     rf.Pt(2.0, 2.0, 0),
			Radius:     0.2,
			Speed:      0.7,
			StartAngle: float64(i) * 0.7,
		})
	}
	for i, c := range static {
		x := 0.4 + float64(i%20)*0.15
		y := 0.4 + float64(i/20)*0.15
		scn.AddTag(c, scene.Stationary{P: rf.Pt(x, y, 0)})
	}
	return scn, movers, static, nil
}

// countReads tallies reads per tag.
func countReads(reads []reader.TagRead) map[epc.EPC]int {
	out := make(map[epc.EPC]int)
	for _, r := range reads {
		out[r.EPC]++
	}
	return out
}

// hz converts a count over a virtual span into a rate.
func hz(count int, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(count) / span.Seconds()
}

// cos/sin shorthands for scene geometry.
func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// TurntableSceneForDebug exposes the turntable rig for ad-hoc diagnostics.
func TurntableSceneForDebug(rng *rand.Rand, nTotal, nMob int) (*scene.Scene, []epc.EPC, []epc.EPC, error) {
	return turntableScene(rng, nTotal, nMob)
}
