package rf

import "math"

// FresnelZone returns the index (1-based) of the Fresnel zone containing
// point q for the link between reader antenna r and tag t at wavelength
// lambda, following the paper's Eqn. 10:
//
//	|RQ| + |QT| − |RT| = k·λ/2
//
// The innermost ellipsoid is zone 1; the k-th zone is the annulus between
// the (k−1)-th and k-th ellipsoids. Points on the segment RT itself are in
// zone 1.
func FresnelZone(r, t, q Point, lambda float64) int {
	excess := r.Dist(q) + q.Dist(t) - r.Dist(t)
	if excess < 0 {
		excess = 0
	}
	return int(math.Floor(2*excess/lambda)) + 1
}

// PathExcess returns |RQ|+|QT|−|RT| in metres — the extra one-way path
// length a reflector at q introduces.
func PathExcess(r, t, q Point) float64 {
	e := r.Dist(q) + q.Dist(t) - r.Dist(t)
	if e < 0 {
		return 0
	}
	return e
}

// InPhaseReflection reports whether a reflector at q superimposes the LOS
// signal (approximately) in phase: reflections from odd zones add in phase,
// those from even zones are out of phase (§4.1).
func InPhaseReflection(r, t, q Point, lambda float64) bool {
	return FresnelZone(r, t, q, lambda)%2 == 1
}

// FirstZoneRadius returns the radius of the first Fresnel zone at the
// midpoint of an LOS link of length d — a convenient scale for placing
// significant reflectors (the paper notes >70% of energy transfers via the
// first zone).
func FirstZoneRadius(d, lambda float64) float64 {
	if d <= 0 {
		return 0
	}
	return math.Sqrt(lambda * d / 4)
}
