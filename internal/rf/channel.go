package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// FrequencyPlan describes the reader's hop table. The paper's experiments
// run on the 920–926 MHz band with 16 channels (§2.3); the defaults below
// match the Chinese UHF band plan used by the ImpinJ R420 there.
type FrequencyPlan struct {
	BaseHz  float64 // centre frequency of channel 0
	StepHz  float64 // spacing between adjacent channels
	NumChan int
}

// DefaultFrequencyPlan returns the 16-channel 920.625–924.375 MHz plan.
func DefaultFrequencyPlan() FrequencyPlan {
	return FrequencyPlan{BaseHz: 920.625e6, StepHz: 0.25e6, NumChan: 16}
}

// Freq returns the centre frequency of channel i.
func (fp FrequencyPlan) Freq(i int) float64 {
	if fp.NumChan > 0 {
		i = ((i % fp.NumChan) + fp.NumChan) % fp.NumChan
	}
	return fp.BaseHz + float64(i)*fp.StepHz
}

// Wavelength returns λ of channel i in metres.
func (fp FrequencyPlan) Wavelength(i int) float64 { return C / fp.Freq(i) }

// Reflector is a surrounding object that adds one propagation path. The
// paper's office walkers and passers-by are Reflectors with positions
// updated by the scene.
type Reflector struct {
	Pos Point
	// Coeff is the complex reflection coefficient: magnitude < 1 models
	// energy loss at the surface, the argument models the reflection
	// phase shift.
	Coeff complex128
}

// Params are the tunable physical constants of a Channel.
type Params struct {
	Plan FrequencyPlan

	PhaseNoiseStd float64 // rad; thermal noise on each phase estimate
	RSSNoiseStd   float64 // dB; noise on each RSS estimate
	RSSQuantum    float64 // dB; COTS readers (ImpinJ) report RSS in 0.5 dB steps; 0 disables

	TxPowerDBm     float64 // reader transmit power
	TagLossDB      float64 // backscatter conversion loss at the tag
	RefGainDBm     float64 // link budget constant folded into RSS calibration
	SensitivityDBm float64 // reader receive sensitivity: below this the read fails

	// ChannelPhaseOffset is the per-channel hardware phase offset of the
	// reader's LO chain; COTS readers exhibit a different constant offset
	// per hop frequency.
	ChannelPhaseOffset []float64
}

// DefaultParams returns parameters calibrated to reproduce the noise floors
// reported in the paper's references [30, 32]: milli-degree-class phase
// resolution dominated by ~0.1 rad thermal jitter, 0.5 dB RSS quanta.
func DefaultParams() Params {
	return Params{
		Plan:           DefaultFrequencyPlan(),
		PhaseNoiseStd:  0.1,
		RSSNoiseStd:    0.4,
		RSSQuantum:     0.5,
		TxPowerDBm:     32.5,
		TagLossDB:      6,
		RefGainDBm:     -67,
		SensitivityDBm: -84,
	}
}

// Channel evaluates the composite backscatter link between one reader
// antenna and one tag, given the current positions of any reflectors.
// Channel itself is stateless apart from its parameters and a per-channel
// offset table, so one Channel may serve an entire scene.
type Channel struct {
	p Params
}

// NewChannel builds a Channel, deriving deterministic per-channel phase
// offsets from rng if none are supplied.
func NewChannel(p Params, rng *rand.Rand) *Channel {
	if p.Plan.NumChan <= 0 {
		p.Plan = DefaultFrequencyPlan()
	}
	if len(p.ChannelPhaseOffset) != p.Plan.NumChan {
		offs := make([]float64, p.Plan.NumChan)
		for i := range offs {
			offs[i] = rng.Float64() * 2 * math.Pi
		}
		p.ChannelPhaseOffset = offs
	}
	return &Channel{p: p}
}

// Params returns the channel's parameters.
func (c *Channel) Params() Params { return c.p }

// Measurement is one physical-layer observation of a tag, as a COTS reader
// reports it alongside the EPC.
type Measurement struct {
	PhaseRad float64 // in [0, 2π)
	RSSdBm   float64
	Channel  int  // hop channel index
	Readable bool // false when RSS is below reader sensitivity
}

// baseband computes the noiseless composite complex channel for the
// round-trip reader→tag→reader link including single-bounce reflector
// paths, excluding the constant tag/reader phase offsets (added by the
// caller so the sign convention matches ExpectedPhase). Path amplitude
// follows free-space 1/d² round-trip decay.
func (c *Channel) baseband(antenna, tag Point, chanIdx int, reflectors []Reflector) complex128 {
	lambda := c.p.Plan.Wavelength(chanIdx)
	d0 := antenna.Dist(tag)
	if d0 < 1e-6 {
		d0 = 1e-6
	}
	// Direct (LOS) path: phase advance 4πd/λ for the round trip.
	h := cmplx.Rect(1/(d0*d0), -4*math.Pi*d0/lambda)
	for _, r := range reflectors {
		// One-way path length via the reflector; round trip doubles it.
		dr := antenna.Dist(r.Pos) + r.Pos.Dist(tag)
		if dr < 1e-6 {
			dr = 1e-6
		}
		h += r.Coeff * cmplx.Rect(1/(dr*dr), -4*math.Pi*dr/lambda)
	}
	return h
}

// offset returns the constant per-channel reader phase offset.
func (c *Channel) offset(chanIdx int) float64 {
	n := c.p.Plan.NumChan
	return c.p.ChannelPhaseOffset[((chanIdx%n)+n)%n]
}

// Measure produces one noisy (phase, RSS) observation for a tag at tagPos
// seen from antenna on hop channel chanIdx. tagPhase is the tag's constant
// backscatter phase offset θ₀. Reflectors model moving surrounding objects.
func (c *Channel) Measure(rng *rand.Rand, antenna, tagPos Point, tagPhase float64, chanIdx int, reflectors []Reflector) Measurement {
	h := c.baseband(antenna, tagPos, chanIdx, reflectors)
	mag := cmplx.Abs(h)
	if mag == 0 {
		return Measurement{Channel: chanIdx, RSSdBm: math.Inf(-1)}
	}
	phase := WrapPhase(-cmplx.Phase(h) + tagPhase + c.offset(chanIdx) + rng.NormFloat64()*c.p.PhaseNoiseStd)
	rss := c.p.TxPowerDBm - c.p.TagLossDB + c.p.RefGainDBm + 20*math.Log10(mag) + rng.NormFloat64()*c.p.RSSNoiseStd
	if q := c.p.RSSQuantum; q > 0 {
		rss = math.Round(rss/q) * q
	}
	return Measurement{
		PhaseRad: phase,
		RSSdBm:   rss,
		Channel:  chanIdx,
		Readable: rss >= c.p.SensitivityDBm,
	}
}

// ExpectedPhase returns the deterministic LOS phase (no reflectors, no
// noise) that a tag at tagPos would present — the forward model used by the
// hologram tracker.
func (c *Channel) ExpectedPhase(antenna, tagPos Point, tagPhase float64, chanIdx int) float64 {
	lambda := c.p.Plan.Wavelength(chanIdx)
	d := antenna.Dist(tagPos)
	return WrapPhase(4*math.Pi*d/lambda + tagPhase + c.offset(chanIdx))
}

// String summarises the channel configuration.
func (c *Channel) String() string {
	return fmt.Sprintf("rf.Channel{%d ch @ %.3f MHz, σθ=%.3f rad, σRSS=%.2f dB}",
		c.p.Plan.NumChan, c.p.Plan.BaseHz/1e6, c.p.PhaseNoiseStd, c.p.RSSNoiseStd)
}
