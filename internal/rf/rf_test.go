package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2, 3), Pt(4, 6, 8)
	if got := p.Add(q); got != Pt(5, 8, 11) {
		t.Fatalf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(3, 4, 5) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4, 6) {
		t.Fatalf("Scale = %v", got)
	}
	if d := p.Dist(q); math.Abs(d-math.Sqrt(50)) > 1e-12 {
		t.Fatalf("Dist = %v", d)
	}
	if p.String() == "" {
		t.Fatal("String must render")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-0.5, 2*math.Pi - 0.5},
		{7, 7 - 2*math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPhaseDistPaperExample(t *testing.T) {
	// §4.3: expected 0.02, measured 2π−0.01 → minimum distance 0.03.
	d := PhaseDist(2*math.Pi-0.01, 0.02)
	if math.Abs(d-0.03) > 1e-9 {
		t.Fatalf("PhaseDist = %v, want 0.03", d)
	}
}

func TestPhaseDistProperties(t *testing.T) {
	f := func(a, b float64) bool {
		d := PhaseDist(a, b)
		return d >= 0 && d <= math.Pi+1e-9 && math.Abs(d-PhaseDist(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyPlan(t *testing.T) {
	fp := DefaultFrequencyPlan()
	if fp.NumChan != 16 {
		t.Fatalf("NumChan = %d, want 16", fp.NumChan)
	}
	if f0 := fp.Freq(0); f0 != 920.625e6 {
		t.Fatalf("Freq(0) = %v", f0)
	}
	if f15 := fp.Freq(15); math.Abs(f15-924.375e6) > 1 {
		t.Fatalf("Freq(15) = %v", f15)
	}
	// Band check: paper quotes 920–926 MHz.
	for i := 0; i < 16; i++ {
		if f := fp.Freq(i); f < 920e6 || f > 926e6 {
			t.Fatalf("channel %d at %v Hz outside 920–926 MHz", i, f)
		}
	}
	// Wrap-around indexing.
	if fp.Freq(16) != fp.Freq(0) || fp.Freq(-1) != fp.Freq(15) {
		t.Fatal("channel index must wrap")
	}
	if l := fp.Wavelength(0); math.Abs(l-0.3256) > 0.001 {
		t.Fatalf("λ(0) = %v, want ≈0.3256 m", l)
	}
}

func newTestChannel(seed int64) (*Channel, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	p := DefaultParams()
	p.PhaseNoiseStd = 0 // deterministic unless a test wants noise
	p.RSSNoiseStd = 0
	p.RSSQuantum = 0
	return NewChannel(p, rng), rng
}

func TestMeasureMatchesExpectedPhaseLOS(t *testing.T) {
	ch, rng := newTestChannel(1)
	ant, tag := Pt(0, 0, 2), Pt(1.3, 0.4, 0)
	for ci := 0; ci < 16; ci++ {
		m := ch.Measure(rng, ant, tag, 0.7, ci, nil)
		want := ch.ExpectedPhase(ant, tag, 0.7, ci)
		if PhaseDist(m.PhaseRad, want) > 1e-9 {
			t.Fatalf("chan %d: measured %v, expected %v", ci, m.PhaseRad, want)
		}
		if !m.Readable {
			t.Fatalf("chan %d: short LOS link must be readable (RSS %v)", ci, m.RSSdBm)
		}
	}
}

func TestPhaseProportionalToDistance(t *testing.T) {
	// Moving the tag by λ/2 along the LOS advances the phase by a full 2π
	// (round trip), i.e. the measured phase is unchanged; λ/4 flips it by π.
	ch, rng := newTestChannel(2)
	ant := Pt(0, 0, 0)
	lambda := ch.Params().Plan.Wavelength(3)
	base := ch.Measure(rng, ant, Pt(2, 0, 0), 0, 3, nil).PhaseRad
	half := ch.Measure(rng, ant, Pt(2+lambda/2, 0, 0), 0, 3, nil).PhaseRad
	quarter := ch.Measure(rng, ant, Pt(2+lambda/4, 0, 0), 0, 3, nil).PhaseRad
	if PhaseDist(base, half) > 1e-6 {
		t.Fatalf("λ/2 displacement must preserve phase: %v vs %v", base, half)
	}
	if math.Abs(PhaseDist(base, quarter)-math.Pi) > 1e-6 {
		t.Fatalf("λ/4 displacement must flip phase by π: %v vs %v", base, quarter)
	}
}

func TestSmallDisplacementDetectablePhase(t *testing.T) {
	// A 1 cm move produces a 2 cm round-trip change ≈ 0.39 rad at 920 MHz —
	// the "natural amplifier" the paper cites in Fig. 13's discussion.
	ch, rng := newTestChannel(3)
	ant := Pt(0, 0, 0)
	a := ch.Measure(rng, ant, Pt(2, 0, 0), 0, 0, nil).PhaseRad
	b := ch.Measure(rng, ant, Pt(2.01, 0, 0), 0, 0, nil).PhaseRad
	lambda := ch.Params().Plan.Wavelength(0)
	want := 4 * math.Pi * 0.01 / lambda
	if math.Abs(PhaseDist(a, b)-want) > 1e-6 {
		t.Fatalf("1 cm phase delta = %v, want %v", PhaseDist(a, b), want)
	}
	if want < 0.3 {
		t.Fatalf("sanity: expected ≈0.39 rad, got %v", want)
	}
}

func TestRSSFallsWithDistance(t *testing.T) {
	ch, rng := newTestChannel(4)
	ant := Pt(0, 0, 0)
	near := ch.Measure(rng, ant, Pt(1, 0, 0), 0, 0, nil).RSSdBm
	far := ch.Measure(rng, ant, Pt(4, 0, 0), 0, 0, nil).RSSdBm
	// 4x distance, 1/d² round-trip amplitude → 40·log10(4) ≈ 24 dB drop.
	if d := near - far; math.Abs(d-24.08) > 0.5 {
		t.Fatalf("RSS drop over 1→4 m = %v dB, want ≈24", d)
	}
}

func TestSensitivityGatesReadability(t *testing.T) {
	ch, rng := newTestChannel(5)
	ant := Pt(0, 0, 0)
	if m := ch.Measure(rng, ant, Pt(2, 0, 0), 0, 0, nil); !m.Readable {
		t.Fatalf("2 m link must be readable, RSS %v", m.RSSdBm)
	}
	if m := ch.Measure(rng, ant, Pt(500, 0, 0), 0, 0, nil); m.Readable {
		t.Fatalf("500 m link must not be readable, RSS %v", m.RSSdBm)
	}
}

func TestRSSQuantisation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := DefaultParams()
	p.PhaseNoiseStd = 0
	p.RSSNoiseStd = 0
	p.RSSQuantum = 0.5
	ch := NewChannel(p, rng)
	m := ch.Measure(rng, Pt(0, 0, 0), Pt(1.234, 0.5, 0), 0, 2, nil)
	q := m.RSSdBm / 0.5
	if math.Abs(q-math.Round(q)) > 1e-9 {
		t.Fatalf("RSS %v not on a 0.5 dB grid", m.RSSdBm)
	}
}

func TestReflectorShiftsPhaseMode(t *testing.T) {
	// A reflector creates a distinct, stable phase mode — the mechanism
	// behind the GMM (Fig. 7): same tag position, different composite phase.
	ch, rng := newTestChannel(7)
	ant, tag := Pt(0, 0, 0), Pt(3, 0, 0)
	base := ch.Measure(rng, ant, tag, 0, 0, nil).PhaseRad
	refl := []Reflector{{Pos: Pt(1.5, 1.2, 0), Coeff: complex(0.5, 0)}}
	with := ch.Measure(rng, ant, tag, 0, 0, refl).PhaseRad
	if PhaseDist(base, with) < 0.02 {
		t.Fatalf("reflector must shift composite phase: %v vs %v", base, with)
	}
	// And the shifted mode is stable across repeated measurements.
	again := ch.Measure(rng, ant, tag, 0, 0, refl).PhaseRad
	if PhaseDist(with, again) > 1e-9 {
		t.Fatal("noiseless composite phase must be deterministic")
	}
}

func TestDistantReflectorNegligible(t *testing.T) {
	ch, rng := newTestChannel(8)
	ant, tag := Pt(0, 0, 0), Pt(2, 0, 0)
	base := ch.Measure(rng, ant, tag, 0, 0, nil).PhaseRad
	far := []Reflector{{Pos: Pt(200, 200, 0), Coeff: complex(0.5, 0)}}
	with := ch.Measure(rng, ant, tag, 0, 0, far).PhaseRad
	if PhaseDist(base, with) > 0.01 {
		t.Fatalf("distant reflector shifted phase by %v", PhaseDist(base, with))
	}
}

func TestPhaseNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := DefaultParams()
	p.PhaseNoiseStd = 0.1
	p.RSSQuantum = 0
	ch := NewChannel(p, rng)
	ant, tag := Pt(0, 0, 0), Pt(2, 0, 0)
	want := ch.ExpectedPhase(ant, tag, 0, 0)
	var devs []float64
	for i := 0; i < 4000; i++ {
		m := ch.Measure(rng, ant, tag, 0, 0, nil)
		d := m.PhaseRad - want
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		devs = append(devs, d)
	}
	var mean, varr float64
	for _, d := range devs {
		mean += d
	}
	mean /= float64(len(devs))
	for _, d := range devs {
		varr += (d - mean) * (d - mean)
	}
	std := math.Sqrt(varr / float64(len(devs)))
	if math.Abs(mean) > 0.01 || math.Abs(std-0.1) > 0.01 {
		t.Fatalf("phase noise mean %v std %v, want ≈(0, 0.1)", mean, std)
	}
}

func TestZeroDistanceDoesNotBlowUp(t *testing.T) {
	ch, rng := newTestChannel(10)
	m := ch.Measure(rng, Pt(0, 0, 0), Pt(0, 0, 0), 0, 0, nil)
	if math.IsNaN(m.PhaseRad) || math.IsNaN(m.RSSdBm) {
		t.Fatalf("degenerate geometry produced NaN: %+v", m)
	}
}

func TestChannelString(t *testing.T) {
	ch, _ := newTestChannel(11)
	if ch.String() == "" {
		t.Fatal("String must render")
	}
}

func TestFresnelZone(t *testing.T) {
	r, tag := Pt(0, 0, 0), Pt(4, 0, 0)
	lambda := 0.3256
	// A point on the LOS segment: zone 1.
	if z := FresnelZone(r, tag, Pt(2, 0, 0), lambda); z != 1 {
		t.Fatalf("LOS point zone = %d, want 1", z)
	}
	// First-zone radius at midpoint.
	r1 := FirstZoneRadius(4, lambda)
	if z := FresnelZone(r, tag, Pt(2, r1*0.9, 0), lambda); z != 1 {
		t.Fatalf("inside first zone: %d", z)
	}
	if z := FresnelZone(r, tag, Pt(2, r1*1.3, 0), lambda); z < 2 {
		t.Fatalf("outside first zone should be ≥2: %d", z)
	}
	// Zones grow monotonically with lateral offset.
	prev := 0
	for y := 0.0; y < 2; y += 0.05 {
		z := FresnelZone(r, tag, Pt(2, y, 0), lambda)
		if z < prev {
			t.Fatalf("zone decreased at y=%v: %d < %d", y, z, prev)
		}
		prev = z
	}
}

func TestInPhaseReflection(t *testing.T) {
	r, tag := Pt(0, 0, 0), Pt(4, 0, 0)
	lambda := 0.3256
	if !InPhaseReflection(r, tag, Pt(2, 0.1, 0), lambda) {
		t.Fatal("first-zone reflection must be in phase")
	}
	// Find a point in zone 2.
	for y := 0.1; y < 3; y += 0.01 {
		if FresnelZone(r, tag, Pt(2, y, 0), lambda) == 2 {
			if InPhaseReflection(r, tag, Pt(2, y, 0), lambda) {
				t.Fatal("second-zone reflection must be out of phase")
			}
			return
		}
	}
	t.Fatal("never found a zone-2 point")
}

func TestPathExcess(t *testing.T) {
	r, tag := Pt(0, 0, 0), Pt(4, 0, 0)
	if e := PathExcess(r, tag, Pt(2, 0, 0)); e != 0 {
		t.Fatalf("on-segment excess = %v, want 0", e)
	}
	if e := PathExcess(r, tag, Pt(2, 3, 0)); math.Abs(e-(2*math.Sqrt(13)-4)) > 1e-12 {
		t.Fatalf("excess = %v", e)
	}
	if FirstZoneRadius(0, 0.3) != 0 {
		t.Fatal("degenerate link radius must be 0")
	}
}
