// Package rf models the physical layer of a UHF RFID link: backscatter
// phase, received signal strength, multipath from discrete reflectors,
// measurement noise, and the frequency plan of a Gen2 reader.
//
// The model reproduces the signal structure the paper's motion assessment
// (§4) depends on:
//
//   - θ = (4πd/λ + θ₀) mod 2π — phase proportional to twice the
//     reader–tag distance, plus a per-tag/per-channel offset;
//   - Gaussian measurement noise on phase and RSS;
//   - the multipath effect: each surrounding object contributes one extra
//     propagation whose superposition shifts the received phase into a new
//     stable mode (the Gaussian-mixture structure of Fig. 8);
//   - Fresnel-zone geometry (Eqn. 10) used to reason about which reflector
//     displacements change the composite signal.
package rf

import (
	"fmt"
	"math"
)

// C is the speed of light in m/s.
const C = 299_792_458.0

// Point is a position in metres. The simulator is 3-D even though most of
// the paper's rigs are planar; antennas are typically mounted above tags.
type Point struct {
	X, Y, Z float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y, z float64) Point { return Point{x, y, z} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y + p.Z*p.Z) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String renders the point for logs.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f, %.3f)", p.X, p.Y, p.Z) }

// WrapPhase reduces a phase in radians to [0, 2π).
func WrapPhase(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta
}

// PhaseDist returns the minimum circular distance between two phases in
// [0, 2π) — the paper's fix for base-2π wrap-around ("How to deal with
// phase jumps?", §4.3).
func PhaseDist(a, b float64) float64 {
	d := math.Abs(WrapPhase(a) - WrapPhase(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
